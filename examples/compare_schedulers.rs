//! Scheduler comparison on one workload — a miniature Figure 3 panel.
//!
//! Sweeps HLE, RTM, SCM, ATS and Seer over 1..=8 threads on a chosen
//! benchmark and prints speedup, abort rate, and fall-back usage, so you
//! can see *why* a scheduler wins, not just that it does.
//!
//! ```sh
//! cargo run --release --example compare_schedulers [benchmark]
//! ```
//! where `[benchmark]` is one of genome, intruder, kmeans-high,
//! kmeans-low, ssca2, vacation-high, vacation-low, yada (default:
//! vacation-high).

use seer_harness::{Cell, PolicyKind};
use seer_scenario::RunRequest;
use seer_stamp::Benchmark;

fn parse_benchmark(name: &str) -> Option<Benchmark> {
    Benchmark::STAMP.into_iter().find(|b| b.name() == name)
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "vacation-high".into());
    let Some(benchmark) = parse_benchmark(&name) else {
        eprintln!("unknown benchmark {name:?}; pick one of:");
        for b in Benchmark::STAMP {
            eprintln!("  {}", b.name());
        }
        std::process::exit(1);
    };

    let policies = [
        PolicyKind::Hle,
        PolicyKind::Rtm,
        PolicyKind::Scm,
        PolicyKind::Ats,
        PolicyKind::Seer,
    ];

    println!("benchmark: {}", benchmark.name());
    println!(
        "{:>8} {:>22} {:>12} {:>12}",
        "threads", "speedup (per policy)", "aborts/commit", "fall-back %"
    );
    for threads in 1..=8usize {
        let mut speedups = String::new();
        let mut best = (f64::MIN, "");
        let mut aborts = String::new();
        let mut fallbacks = String::new();
        for policy in policies {
            let m = RunRequest::cell(Cell {
                    benchmark,
                    policy,
                    threads,
                }).scale(0.5).run();
            let s = m.speedup();
            if s > best.0 {
                best = (s, policy.label());
            }
            speedups += &format!("{s:>5.2}");
            aborts += &format!("{:>5.1}", m.abort_ratio());
            fallbacks += &format!("{:>5.0}", m.fallback_fraction() * 100.0);
        }
        println!("{threads:>8} {speedups:>22} {aborts:>12} {fallbacks:>12}   best: {}", best.1);
    }
    println!("\ncolumns per group: HLE, RTM, SCM, ATS, Seer");
}
