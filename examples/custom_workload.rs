//! Bringing your own workload: a transactional order-matching engine.
//!
//! Demonstrates the full public API surface a downstream user touches to
//! evaluate Seer on their own application model:
//!
//! 1. implement [`seer_runtime::Workload`] — here a toy exchange where
//!    *order placement* hammers per-instrument books, *matching* touches
//!    both a hot instrument book and the trade log, and *market-data
//!    snapshots* read broadly but rarely conflict;
//! 2. run it under RTM and under Seer on the simulated machine;
//! 3. inspect what Seer inferred about the conflict structure.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use seer::{Seer, SeerConfig};
use seer_baselines::Rtm;
use seer_htm::AccessKind;
use seer_runtime::{run, Access, DriverConfig, TxRequest, Workload};
use seer_sim::{SimRng, ThreadId, ZipfTable};

/// Atomic blocks of the exchange.
const PLACE_ORDER: usize = 0;
const MATCH_ORDERS: usize = 1;
const SNAPSHOT: usize = 2;

/// Address layout (cache lines).
const BOOKS_BASE: u64 = 0;
const BOOK_LINES_PER_INSTRUMENT: u64 = 8;
const INSTRUMENTS: u64 = 24;
const TRADE_LOG_BASE: u64 = 1 << 20;
const TRADE_LOG_LINES: u64 = 4;
const SNAPSHOT_BASE: u64 = 1 << 21;
const SNAPSHOT_LINES: u64 = 4096;

struct Exchange {
    remaining: Vec<usize>,
    /// Popularity of instruments: a few are very hot, like real markets.
    instrument_popularity: ZipfTable,
}

impl Exchange {
    fn new(threads: usize, txs_per_thread: usize) -> Self {
        Self {
            remaining: vec![txs_per_thread; threads],
            instrument_popularity: ZipfTable::new(INSTRUMENTS as usize, 1.1),
        }
    }

    fn book_line(&self, rng: &mut SimRng) -> u64 {
        let instrument = rng.zipf(&self.instrument_popularity) as u64;
        BOOKS_BASE
            + instrument * BOOK_LINES_PER_INSTRUMENT
            + rng.below(BOOK_LINES_PER_INSTRUMENT)
    }

    fn build(&mut self, block: usize, rng: &mut SimRng) -> TxRequest {
        let mut accesses = Vec::new();
        let mut offset = 0u64;
        let mut push = |line: u64, kind: AccessKind, offset: &mut u64, rng: &mut SimRng| {
            *offset += rng.range_inclusive(6, 14);
            accesses.push(Access {
                line,
                kind,
                offset: *offset,
            });
        };
        match block {
            PLACE_ORDER => {
                // Read the book top, insert the order (1-2 line writes).
                for _ in 0..rng.range_inclusive(3, 6) {
                    push(self.book_line(rng), AccessKind::Read, &mut offset, rng);
                }
                for _ in 0..rng.range_inclusive(1, 2) {
                    push(self.book_line(rng), AccessKind::Write, &mut offset, rng);
                }
            }
            MATCH_ORDERS => {
                // Walk one book and append to the (very hot) trade log.
                for _ in 0..rng.range_inclusive(6, 14) {
                    push(self.book_line(rng), AccessKind::Read, &mut offset, rng);
                }
                for _ in 0..rng.range_inclusive(2, 4) {
                    push(self.book_line(rng), AccessKind::Write, &mut offset, rng);
                }
                push(
                    TRADE_LOG_BASE + rng.below(TRADE_LOG_LINES),
                    AccessKind::Write,
                    &mut offset,
                    rng,
                );
            }
            SNAPSHOT => {
                // Broad, read-only sweep over market data.
                for _ in 0..rng.range_inclusive(20, 40) {
                    push(
                        SNAPSHOT_BASE + rng.below(SNAPSHOT_LINES),
                        AccessKind::Read,
                        &mut offset,
                        rng,
                    );
                }
            }
            _ => unreachable!(),
        }
        let duration = offset + 10;
        TxRequest {
            block,
            accesses,
            duration,
            think: rng.range_inclusive(80, 240),
        }
    }
}

impl Workload for Exchange {
    fn name(&self) -> &str {
        "exchange"
    }

    fn num_blocks(&self) -> usize {
        3
    }

    fn next(&mut self, thread: ThreadId, rng: &mut SimRng) -> Option<TxRequest> {
        if self.remaining[thread] == 0 {
            return None;
        }
        self.remaining[thread] -= 1;
        let block = match rng.below(10) {
            0..=4 => PLACE_ORDER,
            5..=8 => MATCH_ORDERS,
            _ => SNAPSHOT,
        };
        Some(self.build(block, rng))
    }

    fn regenerate(&mut self, _thread: ThreadId, req: &mut TxRequest, rng: &mut SimRng) {
        let (block, think) = (req.block, req.think);
        *req = self.build(block, rng);
        req.think = think;
    }
}

fn main() {
    let threads = 8;
    let config = DriverConfig::paper_machine(threads, 2024);

    let mut rtm = Rtm::default();
    let mut w = Exchange::new(threads, 600);
    let base = run(&mut w, &mut rtm, &config);

    let mut seer = Seer::new(SeerConfig::full(), threads, 3);
    let mut w = Exchange::new(threads, 600);
    let tuned = run(&mut w, &mut seer, &config);

    let names = ["place-order", "match-orders", "snapshot"];
    println!("exchange under RTM : speedup {:.2}x, {:.2} aborts/commit, {:.0}% fall-back",
        base.speedup(), base.abort_ratio(), base.fallback_fraction() * 100.0);
    println!("exchange under Seer: speedup {:.2}x, {:.2} aborts/commit, {:.0}% fall-back",
        tuned.speedup(), tuned.abort_ratio(), tuned.fallback_fraction() * 100.0);

    println!("\nwhat Seer inferred (one lock per atomic block):");
    for x in 0..3 {
        let row = seer.lock_table().row(x);
        if row.is_empty() {
            println!("  {:<13} runs freely", names[x]);
        } else {
            let partners: Vec<_> = row.iter().map(|&y| names[y]).collect();
            println!("  {:<13} serializes with {partners:?}", names[x]);
        }
    }
    println!("\nground truth (simulator oracle, victim <- killer kills):");
    for v in 0..3 {
        for k in 0..3 {
            let kills = tuned.ground_truth.get(v, k);
            if kills > 0 {
                println!("  {:<13} <- {:<13} {kills}", names[v], names[k]);
            }
        }
    }
}
