//! A user-defined tuning objective: minimize tail waiting.
//!
//! The built-in objectives optimize throughput and disturbance
//! recovery. This example plugs a different figure of merit into the
//! same deterministic search machinery: the p99 of Seer's wait-queue
//! residency (how long the unluckiest transactions sit parked before
//! the scheduler releases them), folded from the `RunMetrics` the
//! executor already caches. Nothing else changes — the driver batches,
//! memoizes, and ranks exactly as for the built-ins.
//!
//! ```sh
//! cargo run --release --example custom_objective [budget]
//! ```

use seer_harness::{Cell, Plan, PolicyKind};
use seer_scenario::ScenarioPlan;
use seer_stamp::Benchmark;
use seer_tune::{run_search, DriverKind, Objective, ParamSpace, TuneExecutor};

/// The pinned workload: one high-contention benchmark where waiting is
/// the mechanism Seer trades aborts against.
const BENCHMARK: Benchmark = Benchmark::KmeansHigh;
const THREADS: usize = 8;
const SCALE: f64 = 0.5;

/// Tail-latency objective: higher is better, so the score is the
/// negated seed-averaged p99 park time in cycles.
struct TailWaitObjective;

impl Objective for TailWaitObjective {
    fn name(&self) -> &'static str {
        "p99-wait"
    }

    fn plan(
        &self,
        policy: PolicyKind,
        fidelity: u64,
        cells: &mut Plan,
        _scenarios: &mut ScenarioPlan,
    ) {
        for seed in 0..fidelity {
            cells.add_one(
                Cell {
                    benchmark: BENCHMARK,
                    policy,
                    threads: THREADS,
                },
                seed,
                SCALE,
            );
        }
    }

    fn score(&self, policy: PolicyKind, fidelity: u64, exec: &TuneExecutor) -> Option<f64> {
        let mut total = 0.0;
        for seed in 0..fidelity {
            let m = exec.cells().cached(
                Cell {
                    benchmark: BENCHMARK,
                    policy,
                    threads: THREADS,
                },
                seed,
                SCALE,
            )?;
            total += m.wait_histogram.quantile(0.99) as f64;
        }
        Some(-(total / fidelity as f64))
    }
}

fn main() {
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);

    let space = ParamSpace::default_space();
    let exec = TuneExecutor::new(4);
    let outcome = run_search(
        &space,
        DriverKind::Random,
        budget,
        0,
        &TailWaitObjective,
        &exec,
        &mut |what, _| eprintln!("evaluating {what}"),
    );

    println!(
        "{} on {}/{THREADS}t — lower p99 park time is better ({} config(s)):",
        TailWaitObjective.name(),
        BENCHMARK.name(),
        outcome.trials.len(),
    );
    let mut ranked: Vec<_> = outcome.trials.iter().collect();
    ranked.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.index.cmp(&b.index))
    });
    for t in &ranked {
        match t.score {
            Some(s) => println!("  {:>8.0} cycles  {}", -s, space.policy(&t.point).spec()),
            None => println!("    FAILED  {}", space.policy(&t.point).spec()),
        }
    }

    // The paper defaults under the same yardstick.
    let mut cells = Plan::new();
    let mut scenarios = ScenarioPlan::new();
    TailWaitObjective.plan(PolicyKind::Seer, 2, &mut cells, &mut scenarios);
    exec.execute(&cells, &scenarios);
    if let Some(d) = TailWaitObjective.score(PolicyKind::Seer, 2, &exec) {
        println!("  {:>8.0} cycles  seer (paper defaults)", -d);
    }
}
