//! Quickstart: schedule a STAMP-like workload with Seer and read the
//! results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use seer::{Seer, SeerConfig};
use seer_runtime::{run, DriverConfig, TxMode, Workload};
use seer_stamp::Benchmark;

fn main() {
    // A simulated 4-core × 2-hyper-thread machine (the paper's Haswell),
    // running 8 threads of the intruder workload model.
    let threads = 8;
    let mut workload = Benchmark::Intruder.instantiate_default(threads);
    let blocks = workload.num_blocks();

    // Full Seer: monitoring, probabilistic inference, transaction locks,
    // core locks, HTM lock acquisition, and threshold self-tuning.
    let mut scheduler = Seer::new(SeerConfig::full(), threads, blocks);

    let config = DriverConfig::paper_machine(threads, /* seed */ 42);
    let metrics = run(&mut workload, &mut scheduler, &config);

    println!("workload            : {}", workload.name());
    println!("commits             : {}", metrics.commits);
    println!("speedup vs seq      : {:.2}x", metrics.speedup());
    println!("aborts per commit   : {:.2}", metrics.abort_ratio());
    println!(
        "SGL fall-back       : {:.1}% of commits",
        metrics.fallback_fraction() * 100.0
    );
    println!(
        "tx-lock commits     : {:.1}%",
        (metrics.modes.fraction(TxMode::HtmTxLocks)
            + metrics.modes.fraction(TxMode::HtmTxAndCoreLocks))
            * 100.0
    );

    // What did Seer learn? The lock table is the inferred conflict
    // relation: row x lists the blocks x must not run concurrently with.
    println!("\ninferred locking scheme (thresholds {:?}):", scheduler.thresholds());
    for x in 0..blocks {
        let row = scheduler.lock_table().row(x);
        if !row.is_empty() {
            println!("  block {x} serializes with {row:?}");
        }
    }
}
