//! Core locks in action: SMT-induced capacity aborts and their cure.
//!
//! Two hardware threads on one physical core share its L1 cache; when both
//! run transactions with non-minimal write sets, each sees roughly half
//! the buffer capacity and capacity aborts soar (paper §3). Seer's *core
//! locks* serialize the SMT siblings whenever a capacity abort is
//! detected.
//!
//! This example runs the yada model (large cavities, heavy write sets) at
//! 4 threads (one per physical core — no sharing) and 8 threads (two per
//! core), with core locks disabled and enabled, and prints the capacity
//! abort counts and speedups side by side.
//!
//! ```sh
//! cargo run --release --example capacity_and_core_locks
//! ```

use seer::{Seer, SeerConfig};
use seer_runtime::{run, DriverConfig, TxMode, Workload};
use seer_stamp::Benchmark;

fn run_variant(threads: usize, core_locks: bool) -> (f64, u64, u64) {
    let mut workload = Benchmark::Yada.instantiate_default(threads);
    let blocks = workload.num_blocks();
    let mut cfg = SeerConfig::full();
    cfg.core_locks = core_locks;
    let mut sched = Seer::new(cfg, threads, blocks);
    let metrics = run(&mut workload, &mut sched, &DriverConfig::paper_machine(threads, 1234));
    let core_lock_commits = metrics.modes.get(TxMode::HtmCoreLock)
        + metrics.modes.get(TxMode::HtmTxAndCoreLocks);
    (metrics.speedup(), metrics.aborts.capacity, core_lock_commits)
}

fn main() {
    println!("yada (Delaunay refinement: ~100-200-line write sets)\n");
    println!(
        "{:>8} {:>12} {:>16} {:>16} {:>18}",
        "threads", "core locks", "speedup", "capacity aborts", "core-lock commits"
    );
    for &threads in &[4usize, 8] {
        for &locks in &[false, true] {
            let (speedup, capacity, commits) = run_variant(threads, locks);
            println!(
                "{threads:>8} {:>12} {speedup:>16.2} {capacity:>16} {commits:>18}",
                if locks { "on" } else { "off" }
            );
        }
        println!();
    }
    println!("At 4 threads every thread owns a physical core: capacity is rare and");
    println!("core locks are a no-op. At 8 threads the SMT siblings halve each");
    println!("other's transactional buffers; core locks trade a little concurrency");
    println!("for far fewer capacity aborts.");
}
