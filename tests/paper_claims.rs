//! The paper's quantitative claims, each quoted and asserted at reduced
//! scale. Where the simulator compresses magnitudes (see EXPERIMENTS.md),
//! the assertion checks the *direction* with a conservative bound rather
//! than the paper's absolute factor.

use seer_harness::{geometric_mean, Cell, PolicyKind};
use seer_scenario::RunRequest;
use seer_runtime::TxMode;
use seer_stamp::Benchmark;

const SCALE: f64 = 0.25;

fn cell(b: Benchmark, p: PolicyKind, t: usize, seed: u64) -> seer_runtime::RunMetrics {
    RunRequest::cell(Cell {
            benchmark: b,
            policy: p,
            threads: t,
        }).seed(seed).scale(SCALE).run()
}

/// §1: "Seer improves the performance of the Intel TSX HTM … in TM
/// benchmarks with 8 threads" — Seer's STAMP geo-mean beats every
/// baseline's at 8 threads.
#[test]
fn claim_seer_leads_every_baseline_at_eight_threads() {
    let geo = |p: PolicyKind| {
        let v: Vec<f64> = Benchmark::STAMP
            .iter()
            .map(|&b| cell(b, p, 8, 2).speedup())
            .collect();
        geometric_mean(&v)
    };
    let seer = geo(PolicyKind::Seer);
    for p in [PolicyKind::Hle, PolicyKind::Rtm, PolicyKind::Scm] {
        let other = geo(p);
        assert!(
            seer > other,
            "Seer geo-mean {seer:.3} should beat {} {other:.3}",
            p.label()
        );
    }
}

/// §1: "These performance gains are not only a consequence of the reduced
/// aborts, but also of the reduced activation of the HTM's pessimistic
/// fall-back path."
#[test]
fn claim_gains_come_from_aborts_and_fallback() {
    let b = Benchmark::VacationHigh;
    let rtm = cell(b, PolicyKind::Rtm, 8, 3);
    let seer = cell(b, PolicyKind::Seer, 8, 3);
    assert!(
        seer.abort_ratio() < rtm.abort_ratio(),
        "aborts: seer {:.2} vs rtm {:.2}",
        seer.abort_ratio(),
        rtm.abort_ratio()
    );
    assert!(
        seer.fallback_fraction() < rtm.fallback_fraction() / 2.0,
        "fallback: seer {:.3} vs rtm {:.3}",
        seer.fallback_fraction(),
        rtm.fallback_fraction()
    );
}

/// §5.2 / Table 3: "HLE drastically loses its ability to execute
/// transactions in hardware, as threads increase".
#[test]
fn claim_hle_hardware_fraction_decays_with_threads() {
    let frac = |t: usize| {
        let m = cell(Benchmark::Genome, PolicyKind::Hle, t, 4);
        m.modes.fraction(TxMode::HtmNoLocks)
    };
    let at2 = frac(2);
    let at8 = frac(8);
    assert!(
        at2 > at8 + 0.2,
        "HLE hardware fraction should collapse: 2t {at2:.2} vs 8t {at8:.2}"
    );
}

/// §5.2: SCM "has significantly lower usage of the fall-back path" than
/// RTM, but commits a substantial share under the auxiliary lock, "a
/// single lock, which prevents parallelism among all restarting
/// transactions".
#[test]
fn claim_scm_trades_fallback_for_aux_serialization() {
    let rtm = cell(Benchmark::KmeansHigh, PolicyKind::Rtm, 8, 5);
    let scm = cell(Benchmark::KmeansHigh, PolicyKind::Scm, 8, 5);
    assert!(scm.fallback_fraction() < rtm.fallback_fraction() / 4.0);
    assert!(
        scm.modes.fraction(TxMode::HtmAuxLock) > 0.1,
        "aux share {:.3}",
        scm.modes.fraction(TxMode::HtmAuxLock)
    );
}

/// §5.2: "the frequency with which [Seer] uses a single-global lock is
/// drastically lower" — low single digits at 8 threads.
#[test]
fn claim_seer_sgl_usage_is_marginal() {
    let mut total = 0.0;
    for b in Benchmark::STAMP {
        total += cell(b, PolicyKind::Seer, 8, 6).fallback_fraction();
    }
    let mean = total / Benchmark::STAMP.len() as f64;
    assert!(mean < 0.07, "Seer mean SGL usage too high: {mean:.3}");
}

/// Mean speedup over a few seeds: the single-seed numbers carry enough
/// run-to-run variance to drown a ±10% claim, exactly as single hardware
/// runs would (the paper averages 20).
fn mean_speedup(b: Benchmark, p: PolicyKind, t: usize, seeds: std::ops::Range<u64>) -> f64 {
    let n = seeds.end - seeds.start;
    seeds.map(|s| cell(b, p, t, s).speedup()).sum::<f64>() / n as f64
}

/// §5.3 / Figure 5: "the core locks are only beneficial when using 6 or 8
/// threads, i.e., when we start executing multiple hardware threads on the
/// same core."
#[test]
fn claim_core_locks_matter_only_with_smt() {
    // At 4 threads the core-locks-only variant must be a no-op (within
    // noise); at 8 threads it must help on the capacity-bound model.
    let base4 = mean_speedup(Benchmark::Yada, PolicyKind::SeerProfileOnly, 4, 0..4);
    let core4 = mean_speedup(Benchmark::Yada, PolicyKind::SeerCoreLocksOnly, 4, 0..4);
    assert!(
        (core4 / base4 - 1.0).abs() < 0.10,
        "4t core locks should be ~neutral: {:.3}",
        core4 / base4
    );
    let base8 = mean_speedup(Benchmark::Yada, PolicyKind::SeerProfileOnly, 8, 0..4);
    let core8 = mean_speedup(Benchmark::Yada, PolicyKind::SeerCoreLocksOnly, 8, 0..4);
    assert!(
        core8 > base8 * 1.1,
        "8t core locks should pay off on yada: {:.3}",
        core8 / base8
    );
}

/// §5.3 / Figure 4: the monitoring/inference overhead "is less than 5%
/// and varies from negligible to at most 8%" — enforced with a small
/// cushion at this reduced scale.
#[test]
fn claim_profiling_overhead_is_bounded() {
    let mut ratios = Vec::new();
    for b in Benchmark::STAMP {
        let rtm = mean_speedup(b, PolicyKind::Rtm, 4, 0..3);
        let prof = mean_speedup(b, PolicyKind::SeerProfileOnly, 4, 0..3);
        ratios.push(prof / rtm);
    }
    let geo = geometric_mean(&ratios);
    assert!(geo > 0.90, "mean profiling overhead too high: {geo:.3}");
    assert!(
        ratios.iter().all(|&r| r > 0.85),
        "worst-case overhead too high: {ratios:?}"
    );
}

/// §5 setup: "We used a budget of 5 attempts for hardware transactions in
/// all approaches" — the shipped defaults agree.
#[test]
fn claim_attempt_budget_defaults() {
    assert_eq!(PolicyKind::Rtm.build(8, 4).attempt_budget(), 5);
    assert_eq!(PolicyKind::Scm.build(8, 4).attempt_budget(), 5);
    assert_eq!(PolicyKind::Seer.build(8, 4).attempt_budget(), 5);
}

/// §4: self-tuning starts from "the initial values of Th1 = 0.3 and
/// Th2 = 0.8".
#[test]
fn claim_initial_thresholds() {
    let t = seer::Thresholds::default();
    assert_eq!(t.th1, 0.3);
    assert_eq!(t.th2, 0.8);
}
