//! Cross-crate integration tests: the paper's qualitative claims, checked
//! end-to-end on the full stack (workload models → schedulers → HTM model
//! → DES driver → metrics).

use seer::{Seer, SeerConfig};
use seer_baselines::Hle;
use seer_harness::{geometric_mean, Cell, PolicyKind};
use seer_scenario::RunRequest;
use seer_runtime::{run, DriverConfig, TxMode, Workload};
use seer_stamp::Benchmark;

const SCALE: f64 = 0.3;

fn speedup(benchmark: Benchmark, policy: PolicyKind, threads: usize) -> f64 {
    RunRequest::cell(Cell {
            benchmark,
            policy,
            threads,
        }).seed(1).scale(SCALE).run()
    .speedup()
}

#[test]
fn every_benchmark_completes_under_every_figure3_policy() {
    for benchmark in Benchmark::STAMP {
        for policy in PolicyKind::FIGURE3 {
            let m = RunRequest::cell(Cell {
                    benchmark,
                    policy,
                    threads: 8,
                }).scale(0.15).run();
            assert!(!m.truncated, "{} under {} truncated", benchmark.name(), policy.label());
            assert!(m.commits > 0);
            assert_eq!(m.modes.total(), m.commits);
        }
    }
}

#[test]
fn seer_beats_rtm_on_geomean_at_eight_threads() {
    let seer: Vec<f64> = Benchmark::STAMP
        .iter()
        .map(|&b| speedup(b, PolicyKind::Seer, 8))
        .collect();
    let rtm: Vec<f64> = Benchmark::STAMP
        .iter()
        .map(|&b| speedup(b, PolicyKind::Rtm, 8))
        .collect();
    let g_seer = geometric_mean(&seer);
    let g_rtm = geometric_mean(&rtm);
    assert!(
        g_seer > g_rtm,
        "Seer geo-mean ({g_seer:.3}) should beat RTM ({g_rtm:.3}) at 8 threads"
    );
}

#[test]
fn hle_collapses_at_high_thread_counts() {
    // The lemming effect: HLE ends up executing almost everything under
    // the elided lock at 8 threads on contended benchmarks.
    let m = RunRequest::cell(Cell {
            benchmark: Benchmark::VacationHigh,
            policy: PolicyKind::Hle,
            threads: 8,
        }).scale(SCALE).run();
    assert!(
        m.fallback_fraction() > 0.5,
        "HLE should lemming: {:.3}",
        m.fallback_fraction()
    );
}

#[test]
fn seer_slashes_fallback_activation_versus_rtm() {
    // Paper §5.2: Seer's single-global-lock usage is drastically lower
    // (≈1% vs 37% for RTM at 8 threads, averaged over STAMP).
    let mut rtm_fb = Vec::new();
    let mut seer_fb = Vec::new();
    for benchmark in Benchmark::STAMP {
        rtm_fb.push(
            RunRequest::cell(Cell {
                    benchmark,
                    policy: PolicyKind::Rtm,
                    threads: 8,
                }).scale(SCALE).run()
            .fallback_fraction(),
        );
        seer_fb.push(
            RunRequest::cell(Cell {
                    benchmark,
                    policy: PolicyKind::Seer,
                    threads: 8,
                }).scale(SCALE).run()
            .fallback_fraction(),
        );
    }
    let rtm_mean = rtm_fb.iter().sum::<f64>() / rtm_fb.len() as f64;
    let seer_mean = seer_fb.iter().sum::<f64>() / seer_fb.len() as f64;
    assert!(
        seer_mean < rtm_mean / 3.0,
        "Seer fall-back ({seer_mean:.3}) should be far below RTM ({rtm_mean:.3})"
    );
    assert!(seer_mean < 0.08, "Seer fall-back should be rare: {seer_mean:.3}");
}

#[test]
fn scm_commits_under_aux_lock_but_seer_never_does() {
    let scm = RunRequest::cell(Cell {
            benchmark: Benchmark::Genome,
            policy: PolicyKind::Scm,
            threads: 8,
        }).scale(SCALE).run();
    assert!(scm.modes.get(TxMode::HtmAuxLock) > 0);
    let seer = RunRequest::cell(Cell {
            benchmark: Benchmark::Genome,
            policy: PolicyKind::Seer,
            threads: 8,
        }).scale(SCALE).run();
    assert_eq!(seer.modes.get(TxMode::HtmAuxLock), 0);
    assert!(
        seer.modes.get(TxMode::HtmTxLocks) + seer.modes.get(TxMode::HtmTxAndCoreLocks) > 0,
        "Seer should commit some transactions under its fine-grained locks"
    );
}

#[test]
fn core_locks_engage_only_with_smt_sharing() {
    // At 4 threads each thread owns a physical core: no capacity squeeze,
    // so Seer should (almost) never take a core lock; at 8 threads it must.
    let at4 = RunRequest::cell(Cell {
            benchmark: Benchmark::Yada,
            policy: PolicyKind::Seer,
            threads: 4,
        }).scale(SCALE).run();
    let at8 = RunRequest::cell(Cell {
            benchmark: Benchmark::Yada,
            policy: PolicyKind::Seer,
            threads: 8,
        }).scale(SCALE).run();
    let core4 = at4.modes.get(TxMode::HtmCoreLock) + at4.modes.get(TxMode::HtmTxAndCoreLocks);
    let core8 = at8.modes.get(TxMode::HtmCoreLock) + at8.modes.get(TxMode::HtmTxAndCoreLocks);
    assert!(core8 > core4, "core locks at 8t ({core8}) should exceed 4t ({core4})");
    assert!(core8 > 0);
    assert!(at8.aborts.capacity > at4.aborts.capacity);
}

#[test]
fn seer_inference_finds_the_hot_pair_end_to_end() {
    // kmeans-high conflicts are concentrated in the center-update block
    // conflicting with itself; Seer must discover exactly that.
    let threads = 8;
    let mut w = Benchmark::KmeansHigh.instantiate(threads, 400);
    let blocks = w.num_blocks();
    let mut seer = Seer::new(SeerConfig::full(), threads, blocks);
    let m = run(&mut w, &mut seer, &DriverConfig::paper_machine(threads, 5));
    assert!(m.commits > 0);
    assert!(
        seer.lock_table().row(0).contains(&0),
        "center-update self-conflict not inferred: {:?}",
        seer.lock_table().row(0)
    );
    // Ground truth agrees.
    assert!(m.ground_truth.get(0, 0) > m.ground_truth.get(1, 0));
}

#[test]
fn profile_only_seer_never_acquires_its_locks() {
    let m = RunRequest::cell(Cell {
            benchmark: Benchmark::Intruder,
            policy: PolicyKind::SeerProfileOnly,
            threads: 8,
        }).scale(SCALE).run();
    assert_eq!(m.modes.get(TxMode::HtmTxLocks), 0);
    assert_eq!(m.modes.get(TxMode::HtmCoreLock), 0);
    assert_eq!(m.modes.get(TxMode::HtmTxAndCoreLocks), 0);
}

#[test]
fn profiling_overhead_is_single_digit_percent() {
    // Figure 4's claim at the scale of this test: profile-only Seer is
    // within ~10% of RTM on the low-contention hash map.
    let rtm = speedup(Benchmark::HashmapLow, PolicyKind::Rtm, 4);
    let prof = speedup(Benchmark::HashmapLow, PolicyKind::SeerProfileOnly, 4);
    let ratio = prof / rtm;
    assert!(
        ratio > 0.88 && ratio < 1.05,
        "profiling overhead out of range: ratio {ratio:.3}"
    );
}

#[test]
fn raw_policies_agree_on_single_thread() {
    // With one thread there are no conflicts; every policy should land on
    // nearly the same speedup (pure HTM overhead), differing only in
    // instrumentation overhead.
    let hle = speedup(Benchmark::Genome, PolicyKind::Hle, 1);
    let rtm = speedup(Benchmark::Genome, PolicyKind::Rtm, 1);
    let seer = speedup(Benchmark::Genome, PolicyKind::Seer, 1);
    assert!((hle - rtm).abs() < 0.02, "hle {hle} vs rtm {rtm}");
    assert!(rtm - seer < 0.08, "Seer 1-thread overhead too big: {seer} vs {rtm}");
    assert!(seer <= rtm + 0.02);
}

#[test]
fn deterministic_across_identical_full_stack_runs() {
    let run_it = || {
        let mut w = Benchmark::VacationLow.instantiate(6, 120);
        let blocks = w.num_blocks();
        let mut s = Seer::new(SeerConfig::full(), 6, blocks);
        run(&mut w, &mut s, &DriverConfig::paper_machine(6, 77))
    };
    let a = run_it();
    let b = run_it();
    assert_eq!(a.commits, b.commits);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.aborts.total(), b.aborts.total());
    assert_eq!(a.wait_cycles, b.wait_cycles);
}

#[test]
fn hle_uses_hardware_at_low_threads() {
    // Paper Table 3: HLE commits 75% in hardware at 2 threads; the
    // collapse is a high-concurrency phenomenon.
    let m = RunRequest::cell(Cell {
            benchmark: Benchmark::KmeansLow,
            policy: PolicyKind::Hle,
            threads: 2,
        }).scale(SCALE).run();
    assert!(
        m.modes.fraction(TxMode::HtmNoLocks) > 0.6,
        "2-thread HLE should mostly elide: {:.3}",
        m.modes.fraction(TxMode::HtmNoLocks)
    );
}

#[test]
fn ats_is_available_as_extra_series() {
    let m = RunRequest::cell(Cell {
            benchmark: Benchmark::Ssca2,
            policy: PolicyKind::Ats,
            threads: 4,
        }).scale(0.15).run();
    assert!(m.commits > 0);
    assert!(m.speedup() > 1.0);
}

#[test]
fn hle_baseline_is_beaten_by_everything_at_scale() {
    for policy in [PolicyKind::Rtm, PolicyKind::Scm, PolicyKind::Seer] {
        let hle = speedup(Benchmark::VacationHigh, PolicyKind::Hle, 8);
        let other = speedup(Benchmark::VacationHigh, policy, 8);
        assert!(
            other > hle,
            "{} ({other:.2}) should beat HLE ({hle:.2}) at 8 threads",
            policy.label()
        );
    }
}

#[test]
fn hle_reference_from_baselines_crate_matches_policy_kind() {
    // The harness's PolicyKind::Hle and a hand-built Hle must agree.
    let mut w = Benchmark::Ssca2.instantiate(4, 100);
    let mut hle = Hle::default();
    let cfg = DriverConfig::paper_machine(4, 0x5EE2);
    let direct = run(&mut w, &mut hle, &cfg);
    let via_kind = RunRequest::cell(Cell {
        benchmark: Benchmark::Ssca2,
        policy: PolicyKind::Hle,
        threads: 4,
    })
    .scale(100.0 / Benchmark::Ssca2.default_txs() as f64)
    .run();
    assert_eq!(direct.commits, via_kind.commits);
    assert_eq!(direct.makespan, via_kind.makespan);
}

#[test]
fn rtm_wait_gate_reduces_explicit_aborts_versus_hle() {
    let hle = RunRequest::cell(Cell {
            benchmark: Benchmark::Genome,
            policy: PolicyKind::Hle,
            threads: 8,
        }).scale(SCALE).run();
    let rtm = RunRequest::cell(Cell {
            benchmark: Benchmark::Genome,
            policy: PolicyKind::Rtm,
            threads: 8,
        }).scale(SCALE).run();
    // HLE begins blindly while the SGL is held (explicit subscription
    // aborts); RTM's wait-while-locked gate avoids most of those.
    let hle_rate = hle.aborts.explicit as f64 / hle.commits as f64;
    let rtm_rate = rtm.aborts.explicit as f64 / rtm.commits as f64;
    assert!(
        rtm_rate < hle_rate / 2.0,
        "explicit-abort rates: rtm {rtm_rate:.3} vs hle {hle_rate:.3}"
    );
}
