//! Value-generation strategies: the `Strategy` trait and the concrete
//! strategies the workspace's tests use (ranges, `any`, tuples, vectors,
//! `prop_map`).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for producing random values of one type.
///
/// Unlike the real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// References work as strategies so helpers can borrow.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// How often range strategies emit a boundary value instead of sampling
/// uniformly (1 in `EDGE_ONE_IN` draws per boundary). Property tests lean
/// on boundary values to hit off-by-one bugs quickly.
const EDGE_ONE_IN: u64 = 16;

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                if rng.one_in(EDGE_ONE_IN) {
                    return self.start;
                }
                if rng.one_in(EDGE_ONE_IN) {
                    return self.end - 1;
                }
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                if rng.one_in(EDGE_ONE_IN) {
                    return lo;
                }
                if rng.one_in(EDGE_ONE_IN) {
                    return hi;
                }
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        if rng.one_in(EDGE_ONE_IN) {
            return self.start;
        }
        let v = self.start + rng.unit() * (self.end - self.start);
        // Floating-point round-off can land exactly on `end`; stay half-open.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        let wide = Range {
            start: f64::from(self.start),
            end: f64::from(self.end),
        };
        let v = wide.generate(rng) as f32;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Strategy for "any value of `T`", from [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// `any::<T>()` — the full domain of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any {
        _marker: PhantomData,
    }
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! any_uint_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                if rng.one_in(EDGE_ONE_IN) {
                    return 0;
                }
                if rng.one_in(EDGE_ONE_IN) {
                    return <$t>::MAX;
                }
                rng.next_u64() as $t
            }
        }
    )*};
}

any_uint_strategy!(u8, u16, u32, u64, usize);

macro_rules! any_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                if rng.one_in(EDGE_ONE_IN) {
                    return 0;
                }
                if rng.one_in(EDGE_ONE_IN) {
                    return <$t>::MIN;
                }
                if rng.one_in(EDGE_ONE_IN) {
                    return <$t>::MAX;
                }
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int_strategy!(i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
);

/// Length specification for [`collection_vec`]: an exact `usize` or a
/// half-open `Range<usize>`.
pub trait VecLen {
    /// Draws a length.
    fn draw_len(&self, rng: &mut TestRng) -> usize;
}

impl VecLen for usize {
    fn draw_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl VecLen for Range<usize> {
    fn draw_len(&self, rng: &mut TestRng) -> usize {
        self.generate(rng)
    }
}

impl VecLen for RangeInclusive<usize> {
    fn draw_len(&self, rng: &mut TestRng) -> usize {
        self.generate(rng)
    }
}

/// Strategy producing `Vec`s of values drawn from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: VecLen> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.draw_len(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, len)` — vectors whose length is drawn
/// from `len` (a `usize` for an exact length, or a range).
pub fn collection_vec<S: Strategy, L: VecLen>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..2000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.5f64..2.5).generate(&mut rng);
            assert!((0.5..2.5).contains(&f));
            let i = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn ranges_hit_boundaries() {
        let mut rng = TestRng::for_test("edges");
        let mut lo = false;
        let mut hi = false;
        for _ in 0..2000 {
            match (10u32..13).generate(&mut rng) {
                10 => lo = true,
                12 => hi = true,
                _ => {}
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::for_test("map");
        let s = (1u64..10).prop_map(|v| v * 100);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((100..1000).contains(&v) && v % 100 == 0);
        }
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::for_test("tuple");
        let s = (0u8..4, any::<bool>(), 0.0f64..1.0);
        let (a, _b, c) = s.generate(&mut rng);
        assert!(a < 4);
        assert!((0.0..1.0).contains(&c));
    }

    #[test]
    fn vec_lengths() {
        let mut rng = TestRng::for_test("vec");
        let exact = collection_vec(0u64..5, 7usize);
        assert_eq!(exact.generate(&mut rng).len(), 7);
        let ranged = collection_vec(0u64..5, 2usize..6);
        for _ in 0..200 {
            let v = ranged.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn any_hits_extremes() {
        let mut rng = TestRng::for_test("any");
        let s = any::<u64>();
        let mut zero = false;
        let mut max = false;
        for _ in 0..2000 {
            match s.generate(&mut rng) {
                0 => zero = true,
                u64::MAX => max = true,
                _ => {}
            }
        }
        assert!(zero && max);
    }
}
