//! Deterministic test runner state: configuration and the generation RNG.

/// Per-`proptest!` configuration. Only `cases` is honoured by the shim.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest's default.
        Self { cases: 256 }
    }
}

/// The generation RNG: xoshiro256++ seeded from a SplitMix64-mixed hash of
/// the fully-qualified test name, so every test owns a fixed, reproducible
/// stream independent of test ordering.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Creates the RNG for the test named `name` (use
    /// `module_path!()::test_name` for uniqueness across crates).
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 expansion into the state.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::from_seed(h)
    }

    /// Creates the RNG from a raw seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// A stable digest of the current state, reported on failure so a
    /// failing case can be replayed in isolation via [`TestRng::from_seed`]
    /// — though simply re-running the test reproduces it too, since the
    /// whole stream is a function of the test name.
    pub fn state_fingerprint(&self) -> u64 {
        self.s[0] ^ self.s[1].rotate_left(16) ^ self.s[2].rotate_left(32) ^ self.s[3].rotate_left(48)
    }

    /// Next 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)` via Lemire rejection.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// True with probability `num / denom`.
    pub fn one_in(&mut self, denom: u64) -> bool {
        self.below(denom) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_names_diverge() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::z");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_in_bounds() {
        let mut r = TestRng::for_test("bounds");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
