//! Minimal, dependency-free property-testing shim.
//!
//! The workspace must build with **no network access**, so it cannot pull
//! the real `proptest` crate from a registry. This crate implements the
//! subset of proptest's API the test suites actually use, with the same
//! names and call shapes, so the tests read identically:
//!
//! - `proptest! { ... }` with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! - `Strategy` (with `prop_map`), `any::<T>()`, integer/float range
//!   strategies, tuple strategies, and `prop::collection::vec`,
//! - `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! - **No shrinking.** A failing case reports the case number and the
//!   per-test RNG seed; re-running the test replays the identical sequence
//!   because generation is fully deterministic (seeded from the test name).
//! - **No persistence files**, no forking, no timeouts.
//!
//! Generation quality still matters (the suites probe edge cases), so
//! ranges occasionally emit their boundary values rather than sampling
//! purely uniformly.

pub mod strategy;
pub mod test_runner;

/// `proptest::prelude::*` — what the test files import.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest};
}

/// The `prop::` namespace (`prop::collection::vec(...)`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::collection_vec as vec;
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Declares property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` becomes a `#[test]` that
/// draws `config.cases` inputs from the strategies and runs the body on
/// each. Generation is deterministic per test name.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); ) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let seed_here = rng.state_fingerprint();
                let ($($arg,)+) = (
                    $( $crate::strategy::Strategy::generate(&($strat), &mut rng), )+
                );
                let run = || { $body };
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest shim: {} failed on case {case}/{} (rng fingerprint {seed_here:#x})",
                        stringify!($name),
                        config.cases,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
}
