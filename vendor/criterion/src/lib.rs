//! Minimal, dependency-free benchmarking shim.
//!
//! The workspace must build with **no network access**, so it cannot pull
//! the real `criterion` crate from a registry. This crate implements the
//! subset of criterion's API the `seer-bench` suite uses — groups,
//! `bench_function`, `BenchmarkId`, `criterion_group!`/`criterion_main!` —
//! with the same call shapes, so the bench files compile unmodified.
//!
//! Measurement is intentionally simple: each benchmark is warmed up for
//! `warm_up_time`, then timed for `sample_size` samples of adaptively many
//! iterations (aiming to fill `measurement_time`), and the per-iteration
//! median, minimum, and maximum are printed. There is no statistical
//! analysis, no plotting, and no baseline comparison — the shim exists so
//! `cargo bench` runs and reports stable order-of-magnitude numbers
//! offline.

use std::time::{Duration, Instant};

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            // The real criterion defaults to 100 samples / 3s warm-up / 5s
            // measurement; the shim trims those so the full suite stays
            // fast while remaining overridable per group.
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// No-op (the shim never plots); kept for call-site compatibility.
    pub fn without_plots(self) -> Self {
        self
    }

    /// Default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Default warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Default measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let cfg = self.clone();
        run_benchmark(&id.into().0, cfg.sample_size, cfg.warm_up_time, cfg.measurement_time, f);
        self
    }
}

/// A group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Warm-up duration for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Measurement duration for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_benchmark(&label, self.sample_size, self.warm_up_time, self.measurement_time, f);
        self
    }

    /// Ends the group (no-op beyond matching the real API).
    pub fn finish(self) {}
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{function_name}/{parameter}"))
    }

    /// Just the parameter (the group supplies the rest of the label).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_once<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_benchmark<F>(
    label: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    // Warm up while estimating the per-iteration cost.
    let warm_start = Instant::now();
    let mut iters_done: u64 = 0;
    let mut batch: u64 = 1;
    while warm_start.elapsed() < warm_up_time {
        time_once(&mut f, batch);
        iters_done += batch;
        batch = batch.saturating_mul(2).min(1 << 20);
    }
    let per_iter = if iters_done > 0 {
        warm_start.elapsed().as_secs_f64() / iters_done as f64
    } else {
        1e-3
    };

    // Pick iterations per sample so all samples fit the measurement budget.
    let budget_per_sample = measurement_time.as_secs_f64() / sample_size as f64;
    let iters = ((budget_per_sample / per_iter.max(1e-12)) as u64).clamp(1, 1 << 24);

    let mut samples: Vec<f64> = (0..sample_size)
        .map(|_| time_once(&mut f, iters).as_secs_f64() / iters as f64)
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let max = samples[samples.len() - 1];
    let median = samples[samples.len() / 2];

    println!(
        "{label:<50} median {} (min {}, max {}, {} samples x {iters} iters)",
        format_time(median),
        format_time(min),
        format_time(max),
        samples.len(),
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a benchmark group: a function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $(
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_labels_compose() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
        let id: BenchmarkId = "plain".into();
        assert_eq!(id.0, "plain");
    }

    #[test]
    fn format_time_units() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" us"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
