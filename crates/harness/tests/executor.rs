//! Executor guarantees, pinned as tests: parallel execution is
//! bit-identical to serial, and a set of overlapping experiments sharing
//! one executor simulates each unique `(cell, seed)` exactly once.

use seer_harness::{
    figure3, figure4, table3, Cell, CellExecutor, CellResult, HarnessConfig, Plan, PolicyKind,
    THREADS_TABLE,
};
use seer_stamp::Benchmark;

const SCALE: f64 = 0.08;
const THREADS: [usize; 2] = [2, 4];

fn config(jobs: usize, seeds: u64) -> HarnessConfig {
    HarnessConfig {
        seeds,
        scale: SCALE,
        jobs,
    }
}

fn grid() -> Vec<Cell> {
    let mut cells = Vec::new();
    for benchmark in Benchmark::STAMP {
        for policy in PolicyKind::FIGURE3 {
            for threads in THREADS {
                cells.push(Cell {
                    benchmark,
                    policy,
                    threads,
                });
            }
        }
    }
    cells
}

#[test]
fn parallel_execution_equals_serial_field_for_field() {
    let serial = CellExecutor::new(config(1, 2));
    let parallel = CellExecutor::new(config(4, 2));
    let cells = grid();

    let mut serial_plan = Plan::new();
    let mut parallel_plan = Plan::new();
    for &cell in &cells {
        serial_plan.add(cell, serial.config());
        parallel_plan.add(cell, parallel.config());
    }
    serial.execute(&serial_plan);
    parallel.execute(&parallel_plan);

    for &cell in &cells {
        let a: CellResult = serial.cell(cell);
        let b: CellResult = parallel.cell(cell);
        assert_eq!(a, b, "results diverged for {cell:?}");
        // Down to the raw per-seed trace: bit-identical schedules.
        for seed in 0..serial.config().seeds {
            let ma = serial.metrics(cell, seed);
            let mb = parallel.metrics(cell, seed);
            assert_eq!(ma.trace_hash, mb.trace_hash, "{cell:?} seed {seed}");
            assert_eq!(ma.makespan, mb.makespan, "{cell:?} seed {seed}");
            assert_eq!(ma.commits, mb.commits, "{cell:?} seed {seed}");
            assert_eq!(ma.aborts, mb.aborts, "{cell:?} seed {seed}");
            assert_eq!(ma.modes, mb.modes, "{cell:?} seed {seed}");
        }
    }
    // Both executors did exactly the unique work, no more.
    assert_eq!(serial.misses(), parallel.misses());
    assert_eq!(serial.misses(), (cells.len() * 2) as u64);
}

#[test]
fn parallel_figure3_renders_identically_to_serial() {
    let serial = CellExecutor::new(config(1, 1));
    let parallel = CellExecutor::new(config(3, 1));
    let a = figure3(&serial, &THREADS);
    let b = figure3(&parallel, &THREADS);
    assert_eq!(a.len(), b.len());
    for (pa, pb) in a.iter().zip(&b) {
        assert_eq!(pa.render(), pb.render());
    }
}

#[test]
fn memoization_accounting_across_overlapping_experiments() {
    let seeds = 1u64;
    let exec = CellExecutor::new(config(2, seeds));

    figure3(&exec, &THREADS);
    table3(&exec, &THREADS);
    figure4(&exec, &THREADS);

    // figure3: STAMP × FIGURE3 × |THREADS| cells; table3 re-reads exactly
    // that grid; figure4 adds (STAMP + hashmap-low) × {RTM, profile-only},
    // of which STAMP × RTM is already cached. New per thread count:
    // profile-only on the 8 STAMP benchmarks + both policies on hashmap.
    let fig3_cells = 8 * 4 * THREADS.len();
    let fig4_new = (8 + 2) * THREADS.len();
    let unique = (fig3_cells + fig4_new) as u64 * seeds;
    assert_eq!(
        exec.misses(),
        unique,
        "combined run must simulate each unique cell exactly once \
         (misses {} hits {})",
        exec.misses(),
        exec.hits()
    );
    assert!(exec.hits() > 0, "table3 should have been served from cache");
}

#[test]
fn table3_after_figure3_is_free() {
    let exec = CellExecutor::new(config(2, 1));
    figure3(&exec, &THREADS_TABLE);
    let before = exec.misses();
    table3(&exec, &THREADS_TABLE);
    assert_eq!(exec.misses(), before, "table3 re-simulated cached cells");
}
