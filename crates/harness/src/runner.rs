//! Experiment runner: one configuration → seed-averaged measurements.

use std::sync::Once;

use seer_runtime::{run, run_traced, DriverConfig, RunMetrics, TraceSink, TxMode, Workload};
use seer_stamp::Benchmark;

use crate::policy::PolicyKind;

/// A single experiment cell: benchmark × policy × thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cell {
    /// Workload model.
    pub benchmark: Benchmark,
    /// Scheduler variant.
    pub policy: PolicyKind,
    /// Simulated threads.
    pub threads: usize,
}

/// Harness-wide settings.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Seeds to average over (the paper averages 20 hardware runs; the
    /// simulator's only run-to-run variance is the seed).
    pub seeds: u64,
    /// Scale factor on each benchmark's default transactions-per-thread
    /// (1.0 = the full default; smaller for quick benches).
    pub scale: f64,
    /// OS threads the cell executor fans work out across (1 = serial;
    /// results are bit-identical either way).
    pub jobs: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            seeds: default_seeds(),
            scale: 1.0,
            jobs: default_jobs(),
        }
    }
}

/// Parses a positive integer from `env_name`, warning once per process on
/// an invalid (unparsable or zero) value instead of silently falling back.
fn positive_env(env_name: &str, default: u64, warned: &'static Once) -> u64 {
    match std::env::var(env_name) {
        Err(_) => default,
        Ok(raw) => match raw.parse::<u64>() {
            Ok(n) if n > 0 => n,
            _ => {
                warned.call_once(|| {
                    eprintln!(
                        "warning: ignoring invalid {env_name}={raw:?} \
                         (expected a positive integer); using default {default}"
                    );
                });
                default
            }
        },
    }
}

/// Seeds averaged per cell: `SEER_SEEDS`, default 3.
pub fn default_seeds() -> u64 {
    static WARNED: Once = Once::new();
    positive_env("SEER_SEEDS", 3, &WARNED)
}

/// Executor fan-out width: `SEER_JOBS`, default 1 (serial).
pub fn default_jobs() -> usize {
    static WARNED: Once = Once::new();
    positive_env("SEER_JOBS", 1, &WARNED) as usize
}

/// Derives the driver RNG seed for harness seed `seed`.
///
/// Every simulation the harness, benches, CLI and conformance replay
/// matrix perform goes through this one function, so the committed golden
/// trace hashes (`crates/conformance/tests/fixtures/trace_hashes.txt`)
/// pin its output: changing the constants is a fixture re-bless, not a
/// tweak. The multiplier spreads consecutive harness seeds across the
/// driver RNG's seed space; the offset keeps seed 0 away from the
/// all-zeros state.
pub const fn sim_seed(seed: u64) -> u64 {
    0x5EE2 + seed * 7919
}

/// Seed-averaged measurements of one experiment cell.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellResult {
    /// Mean speedup over the sequential execution.
    pub speedup: f64,
    /// Mean aborts per commit.
    pub abort_ratio: f64,
    /// Mean fraction of commits per transaction mode (Table 3 order).
    pub mode_fractions: [f64; 6],
    /// Mean fraction of commits that used the SGL fall-back.
    pub fallback_fraction: f64,
    /// Mean of the per-run median fraction of available transaction locks
    /// taken by lock-acquiring transactions (§5.2), if any run acquired.
    pub median_tx_lock_fraction: Option<f64>,
}

impl CellResult {
    /// Averages raw per-seed metrics into one `CellResult` (the reduction
    /// shared by [`run_cell`] and `CellExecutor::cell`).
    ///
    /// # Panics
    /// If `runs` is empty.
    pub fn average(runs: &[RunMetrics]) -> Self {
        assert!(!runs.is_empty(), "averaging zero runs");
        let mut acc = CellResult::default();
        let mut lock_fraction_acc = 0.0;
        let mut lock_fraction_n = 0u64;
        for m in runs {
            acc.speedup += m.speedup();
            acc.abort_ratio += m.abort_ratio();
            acc.fallback_fraction += m.fallback_fraction();
            for (i, mode) in TxMode::ALL.iter().enumerate() {
                acc.mode_fractions[i] += m.modes.fraction(*mode);
            }
            if let Some(f) = m.median_tx_lock_fraction() {
                lock_fraction_acc += f;
                lock_fraction_n += 1;
            }
        }
        let n = runs.len() as f64;
        acc.speedup /= n;
        acc.abort_ratio /= n;
        acc.fallback_fraction /= n;
        for f in &mut acc.mode_fractions {
            *f /= n;
        }
        acc.median_tx_lock_fraction = if lock_fraction_n > 0 {
            Some(lock_fraction_acc / lock_fraction_n as f64)
        } else {
            None
        };
        acc
    }
}

/// Runs `cell` once per seed (serially, uncached) and averages the
/// measurements. The memoizing equivalent is `CellExecutor::cell`.
pub fn run_cell(cell: Cell, cfg: &HarnessConfig) -> CellResult {
    let runs: Vec<RunMetrics> = (0..cfg.seeds)
        .map(|seed| execute_cell(cell, seed, cfg.scale, None))
        .collect();
    CellResult::average(&runs)
}

/// The one cell-execution primitive: runs one seed of `cell` and returns
/// the raw metrics. With a sink, the run's lifecycle and inference
/// streams are collected into it; per the sink-not-flag discipline the
/// returned metrics (and in particular `trace_hash`) are bit-identical
/// either way.
///
/// This is the mechanism under `RunRequest::cell` (the workspace's
/// public entry-point builder, in `seer-scenario`); harness-internal
/// code and the executor's run function call it directly.
///
/// # Panics
/// If the run trips the driver's event safety valve (`truncated`) — the
/// simulated-cycle budget. Under a supervised executor that panic is
/// caught and reported as a failed cell, not a process abort.
pub fn execute_cell(
    cell: Cell,
    seed: u64,
    scale: f64,
    sink: Option<&mut dyn TraceSink>,
) -> RunMetrics {
    let mut workload = cell.benchmark.instantiate_scaled(cell.threads, scale);
    let blocks = workload.num_blocks();
    let mut sched = cell.policy.build(cell.threads, blocks);
    let cfg = DriverConfig::paper_machine(cell.threads, sim_seed(seed));
    let metrics = match sink {
        None => run(&mut workload, sched.as_mut(), &cfg),
        Some(sink) => run_traced(&mut workload, sched.as_mut(), &cfg, sink),
    };
    assert!(!metrics.truncated, "run truncated: {cell:?} seed {seed}");
    metrics
}

/// Geometric mean of positive values; 0 for an empty slice.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            debug_assert!(v > 0.0, "geometric mean of non-positive value {v}");
            v.max(f64::MIN_POSITIVE).ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sim_seed_is_pinned() {
        // The golden trace hashes depend on this derivation; see the
        // conformance replay suite.
        assert_eq!(sim_seed(0), 0x5EE2);
        assert_eq!(sim_seed(1) - sim_seed(0), 7919);
    }

    #[test]
    fn run_cell_is_deterministic() {
        let cell = Cell {
            benchmark: Benchmark::Ssca2,
            policy: PolicyKind::Rtm,
            threads: 4,
        };
        let cfg = HarnessConfig {
            seeds: 2,
            scale: 0.1,
            jobs: 1,
        };
        let a = run_cell(cell, &cfg);
        let b = run_cell(cell, &cfg);
        assert_eq!(a.speedup, b.speedup);
        assert_eq!(a.abort_ratio, b.abort_ratio);
        assert!(a.speedup > 0.0);
    }

    #[test]
    fn mode_fractions_sum_to_one() {
        let cell = Cell {
            benchmark: Benchmark::KmeansHigh,
            policy: PolicyKind::Seer,
            threads: 4,
        };
        let cfg = HarnessConfig {
            seeds: 1,
            scale: 0.2,
            jobs: 1,
        };
        let r = run_cell(cell, &cfg);
        let total: f64 = r.mode_fractions.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "fractions sum to {total}");
    }
}
