//! # seer-harness — regenerating the paper's evaluation
//!
//! One function per table/figure of the Seer paper's §5 (see
//! `DESIGN.md` §4 for the experiment index), plus the binaries that render
//! them:
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `fig3` | Figure 3 (a–i): speedups of HLE/RTM/SCM/Seer across STAMP |
//! | `table3` | Table 3: commit-mode breakdown per policy |
//! | `fig4` | Figure 4: profiling/inference overhead of Seer vs RTM |
//! | `fig5` | Figure 5: cumulative mechanism ablation |
//! | `ablation_core_locks` | §5.3: core-locks-only gains |
//! | `accuracy` | extra: inferred conflict pairs vs simulator ground truth |
//! | `fine_grained` | extra: the paper's future-work (block × structure) locks |
//! | `convergence` | extra: when the inferred locking scheme stabilizes |
//!
//! Execution goes through one API (`DESIGN.md` §9): experiments declare
//! their grid as a [`Plan`] and hand it to a [`CellExecutor`], which
//! deduplicates, memoizes per `(benchmark, policy, threads, seed, scale)`,
//! and fans uncached cells out across OS threads. Parallel execution is
//! bit-identical to serial — every cell is an independent deterministic
//! simulation — so `--jobs`/`SEER_JOBS` only changes wall-clock time.
//!
//! Environment knobs: `SEER_SEEDS` (seeds averaged per cell, default 3),
//! `SEER_SCALE` (work scale factor, default 1.0), `SEER_JOBS` (executor
//! fan-out width, default 1 = serial), `SEER_REPORT_JSON` (write
//! structured results to a JSON file as well).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod exec;
pub mod experiments;
pub mod policy;
pub mod report;
pub mod runner;
pub mod trace_export;

/// The workspace's dependency-free JSON tree, re-exported from
/// `seer-store` (its home since the result store landed) so existing
/// `seer_harness::json::…` paths keep working.
pub mod json {
    pub use seer_store::json::*;
}

pub use exec::{parallel_map, CellExecutor, CellKey, Plan};
pub use experiments::{
    convergence, core_locks_only, figure3, figure4, figure5, fine_grained, inference_accuracy,
    table3, AccuracyResult, ConvergenceResult, FineGrainedResult, THREADS_FULL, THREADS_TABLE,
};
pub use json::{Json, ToJson};
pub use policy::{PolicyKind, TunedParams, UnknownPolicy};
pub use report::{maybe_write_json, Panel, PercentTable, Series};
pub use runner::{
    default_jobs, default_seeds, execute_cell, geometric_mean, run_cell, sim_seed, Cell,
    CellResult, HarnessConfig,
};
pub use seer_store::{ExecReport, FailedItem, RunFailure, Store, SupervisorConfig};
pub use trace_export::{
    chrome_trace, inference_json, lifecycle_json, trace_jsonl, write_chrome_trace,
    write_trace_jsonl,
};

/// Reads the common environment configuration for the binaries
/// (`SEER_SEEDS`, `SEER_SCALE`, `SEER_JOBS`).
pub fn env_config() -> HarnessConfig {
    let mut cfg = HarnessConfig::default();
    if let Ok(scale) = std::env::var("SEER_SCALE") {
        if let Ok(s) = scale.parse::<f64>() {
            if s > 0.0 {
                cfg.scale = s;
            }
        }
    }
    cfg
}
