//! Export of decision-provenance traces: JSONL and Chrome trace-event.
//!
//! A [`MemoryTraceSink`] collected through a traced `RunRequest` serializes to:
//!
//! * **JSONL** ([`trace_jsonl`]) — one record per line, both streams
//!   merged chronologically (ties: lifecycle before inference; within a
//!   stream, emission order). The schema is documented in `DESIGN.md`
//!   §10 and machine-checked by the `trace_check` binary.
//! * **Chrome trace-event JSON** ([`chrome_trace`]) — loadable in
//!   `chrome://tracing` / [Perfetto](https://ui.perfetto.dev): hardware
//!   attempts become duration (`B`/`E`) slices per thread, everything
//!   else instant events; inference rounds land on a dedicated row.
//!
//! Serialization is deterministic: records are value types, floats use
//! Rust's shortest-round-trip formatting, and key order is fixed — so
//! the same run always produces byte-identical output (the golden
//! decision-JSONL snapshot in `seer-conformance` pins this).
//!
//! The file writers warn **once** per process on an unwritable path
//! (matching the `SEER_SEEDS`/`SEER_JOBS` env-var style) instead of
//! panicking: tracing is diagnostics, and diagnostics must not take down
//! an experiment run that already computed its results.

use std::sync::Once;

use seer_runtime::trace::{InferenceTrace, LifecycleEvent, MemoryTraceSink};
use seer_sim::cycles_to_trace_micros;

use crate::json::Json;

/// One lifecycle event as a JSONL record.
pub fn lifecycle_json(ev: &LifecycleEvent) -> Json {
    let mut fields = vec![
        ("type".to_string(), Json::Str(ev.kind().to_string())),
        ("at".to_string(), Json::UInt(ev.at())),
        ("thread".to_string(), Json::UInt(ev.thread() as u64)),
    ];
    match ev {
        LifecycleEvent::AttemptBegin { block, attempt, .. } => {
            fields.push(("block".to_string(), Json::UInt(*block as u64)));
            fields.push(("attempt".to_string(), Json::UInt(*attempt as u64)));
        }
        LifecycleEvent::Abort {
            block,
            cause,
            attempts_left,
            ..
        } => {
            fields.push(("block".to_string(), Json::UInt(*block as u64)));
            fields.push(("cause".to_string(), Json::Str(cause.label().to_string())));
            fields.push((
                "attempts_left".to_string(),
                Json::UInt(*attempts_left as u64),
            ));
        }
        LifecycleEvent::LockWait { lock, holder, .. } => {
            fields.push(("lock".to_string(), Json::Str(lock.to_string())));
            fields.push((
                "holder".to_string(),
                match holder {
                    Some(h) => Json::UInt(*h as u64),
                    None => Json::Null,
                },
            ));
        }
        LifecycleEvent::LocksAcquired { locks, .. } => {
            fields.push((
                "locks".to_string(),
                Json::Array(locks.iter().map(|l| Json::Str(l.to_string())).collect()),
            ));
        }
        LifecycleEvent::SglFallback { block, .. } => {
            fields.push(("block".to_string(), Json::UInt(*block as u64)));
        }
        LifecycleEvent::HtmCommit {
            block,
            attempts_used,
            ..
        } => {
            fields.push(("block".to_string(), Json::UInt(*block as u64)));
            fields.push((
                "attempts_used".to_string(),
                Json::UInt(*attempts_used as u64),
            ));
        }
        LifecycleEvent::FallbackCommit { block, .. } => {
            fields.push(("block".to_string(), Json::UInt(*block as u64)));
        }
    }
    Json::Object(fields)
}

/// One inference round as a JSONL record.
pub fn inference_json(tr: &InferenceTrace) -> Json {
    let rows = tr
        .rows
        .iter()
        .map(|r| {
            let pairs = r
                .pairs
                .iter()
                .map(|p| {
                    Json::object([
                        ("y", Json::UInt(p.y as u64)),
                        ("conditional", Json::Num(p.conditional)),
                        ("conjunctive", Json::Num(p.conjunctive)),
                        ("verdict", Json::Str(p.verdict.label().to_string())),
                    ])
                })
                .collect();
            Json::object([
                ("x", Json::UInt(r.x as u64)),
                ("eta", Json::Num(r.eta)),
                ("sigma2", Json::Num(r.sigma2)),
                ("cutoff", Json::Num(r.cutoff)),
                ("discriminative", Json::Bool(r.discriminative)),
                ("pairs", Json::Array(pairs)),
            ])
        })
        .collect();
    Json::object([
        ("type", Json::Str("inference".to_string())),
        ("at", Json::UInt(tr.at)),
        ("round", Json::UInt(tr.round)),
        ("stats_digest", Json::Str(format!("{:#018x}", tr.stats_digest))),
        ("th1", Json::Num(tr.th1)),
        ("th2", Json::Num(tr.th2)),
        ("total_execs", Json::UInt(tr.total_execs)),
        ("rows", Json::Array(rows)),
    ])
}

/// Both streams of `sink` as JSONL: one compact record per line, merged
/// chronologically (lifecycle first on equal timestamps), trailing
/// newline included when non-empty.
pub fn trace_jsonl(sink: &MemoryTraceSink) -> String {
    let mut out = String::new();
    let (mut li, mut ii) = (0, 0);
    while li < sink.lifecycle.len() || ii < sink.inference.len() {
        let take_lifecycle = match (sink.lifecycle.get(li), sink.inference.get(ii)) {
            (Some(l), Some(i)) => l.at() <= i.at,
            (Some(_), None) => true,
            (None, _) => false,
        };
        let record = if take_lifecycle {
            li += 1;
            lifecycle_json(&sink.lifecycle[li - 1])
        } else {
            ii += 1;
            inference_json(&sink.inference[ii - 1])
        };
        out.push_str(&record.to_string_compact());
        out.push('\n');
    }
    out
}

/// The Chrome trace-event document for `sink` (the JSON Object Format:
/// `{"traceEvents": [...]}`), loadable in `chrome://tracing` or Perfetto.
///
/// Hardware attempts become `B`/`E` duration slices (closed by the abort
/// or commit that ends them); lock waits, fall-backs and lock
/// acquisitions are instant (`i`) events on their thread's row; inference
/// rounds are instant events on the synthetic thread row `"inference"`
/// (tid one past the last simulated thread).
pub fn chrome_trace(sink: &MemoryTraceSink) -> Json {
    let mut events: Vec<Json> = Vec::new();
    let mut max_thread = 0usize;
    let ev = |name: String, ph: &str, at: u64, tid: u64, args: Vec<(String, Json)>| {
        let mut fields = vec![
            ("name".to_string(), Json::Str(name)),
            ("ph".to_string(), Json::Str(ph.to_string())),
            ("ts".to_string(), Json::Num(cycles_to_trace_micros(at))),
            ("pid".to_string(), Json::UInt(0)),
            ("tid".to_string(), Json::UInt(tid)),
        ];
        if !args.is_empty() {
            fields.push(("args".to_string(), Json::Object(args)));
        }
        // Instant events need a scope; thread scope is the narrowest.
        if ph == "i" {
            fields.push(("s".to_string(), Json::Str("t".to_string())));
        }
        Json::Object(fields)
    };
    for e in &sink.lifecycle {
        let tid = e.thread() as u64;
        max_thread = max_thread.max(e.thread());
        match e {
            LifecycleEvent::AttemptBegin { at, block, attempt, .. } => {
                events.push(ev(
                    format!("attempt b{block}"),
                    "B",
                    *at,
                    tid,
                    vec![("attempt".to_string(), Json::UInt(*attempt as u64))],
                ));
            }
            LifecycleEvent::Abort { at, cause, .. } => {
                events.push(ev(
                    format!("attempt b{}", abort_block(e)),
                    "E",
                    *at,
                    tid,
                    vec![(
                        "outcome".to_string(),
                        Json::Str(format!("abort:{}", cause.label())),
                    )],
                ));
            }
            LifecycleEvent::HtmCommit { at, block, .. } => {
                events.push(ev(
                    format!("attempt b{block}"),
                    "E",
                    *at,
                    tid,
                    vec![("outcome".to_string(), Json::Str("commit".to_string()))],
                ));
            }
            LifecycleEvent::LockWait { at, lock, holder, .. } => {
                events.push(ev(
                    format!("wait {lock}"),
                    "i",
                    *at,
                    tid,
                    vec![(
                        "holder".to_string(),
                        match holder {
                            Some(h) => Json::UInt(*h as u64),
                            None => Json::Null,
                        },
                    )],
                ));
            }
            LifecycleEvent::LocksAcquired { at, locks, .. } => {
                events.push(ev(
                    "locks-acquired".to_string(),
                    "i",
                    *at,
                    tid,
                    vec![(
                        "locks".to_string(),
                        Json::Array(locks.iter().map(|l| Json::Str(l.to_string())).collect()),
                    )],
                ));
            }
            LifecycleEvent::SglFallback { at, block, .. } => {
                events.push(ev(format!("sgl-fallback b{block}"), "i", *at, tid, vec![]));
            }
            LifecycleEvent::FallbackCommit { at, block, .. } => {
                events.push(ev(
                    format!("fallback-commit b{block}"),
                    "i",
                    *at,
                    tid,
                    vec![],
                ));
            }
        }
    }
    let inference_tid = (max_thread + 1) as u64;
    for tr in &sink.inference {
        let serialized = tr
            .rows
            .iter()
            .flat_map(|r| r.pairs.iter())
            .filter(|p| p.verdict.serialize())
            .count();
        events.push(ev(
            format!("inference round {}", tr.round),
            "i",
            tr.at,
            inference_tid,
            vec![
                ("serialized_pairs".to_string(), Json::UInt(serialized as u64)),
                ("th1".to_string(), Json::Num(tr.th1)),
                ("th2".to_string(), Json::Num(tr.th2)),
            ],
        ));
    }
    Json::object([("traceEvents", Json::Array(events))])
}

/// Block id of an abort event (only called on `Abort`).
fn abort_block(e: &LifecycleEvent) -> u64 {
    match e {
        LifecycleEvent::Abort { block, .. } => *block as u64,
        _ => unreachable!("abort_block on non-abort event"),
    }
}

/// Writes `content` to `path`, warning **once** per process (in the
/// `SEER_SEEDS`/`SEER_JOBS` style) instead of panicking when the path is
/// unwritable. Returns whether the write succeeded.
fn write_or_warn(path: &str, content: &str, warned: &'static Once) -> bool {
    match std::fs::write(path, content) {
        Ok(()) => true,
        Err(e) => {
            warned.call_once(|| {
                eprintln!(
                    "warning: cannot write trace to {path:?}: {e}; \
                     continuing without trace output"
                );
            });
            false
        }
    }
}

/// Writes the merged JSONL of `sink` to `path`; warns once and returns
/// `false` on an unwritable path.
pub fn write_trace_jsonl(path: &str, sink: &MemoryTraceSink) -> bool {
    static WARNED: Once = Once::new();
    write_or_warn(path, &trace_jsonl(sink), &WARNED)
}

/// Writes the Chrome trace-event document of `sink` to `path`; warns once
/// and returns `false` on an unwritable path.
pub fn write_chrome_trace(path: &str, sink: &MemoryTraceSink) -> bool {
    static WARNED: Once = Once::new();
    write_or_warn(path, &chrome_trace(sink).to_string_pretty(), &WARNED)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seer_runtime::trace::{AbortCause, PairDecision, RowTrace, Verdict};
    use seer_runtime::LockId;

    fn sample_sink() -> MemoryTraceSink {
        let mut s = MemoryTraceSink::new();
        s.lifecycle.push(LifecycleEvent::AttemptBegin {
            at: 10,
            thread: 0,
            block: 1,
            attempt: 0,
        });
        s.lifecycle.push(LifecycleEvent::LockWait {
            at: 15,
            thread: 1,
            lock: LockId::Tx(3),
            holder: Some(0),
        });
        s.lifecycle.push(LifecycleEvent::Abort {
            at: 20,
            thread: 0,
            block: 1,
            cause: AbortCause::Capacity,
            attempts_left: 2,
        });
        s.lifecycle.push(LifecycleEvent::LocksAcquired {
            at: 25,
            thread: 0,
            locks: vec![LockId::Core(0), LockId::Tx(1)],
        });
        s.lifecycle.push(LifecycleEvent::SglFallback { at: 30, thread: 0, block: 1 });
        s.lifecycle.push(LifecycleEvent::FallbackCommit { at: 40, thread: 0, block: 1 });
        s.inference.push(InferenceTrace {
            round: 1,
            at: 20,
            stats_digest: 0xabcd,
            th1: 0.3,
            th2: 0.8,
            total_execs: 5,
            rows: vec![RowTrace {
                x: 0,
                eta: 0.1,
                sigma2: 0.04,
                cutoff: 0.26,
                discriminative: true,
                pairs: vec![PairDecision {
                    y: 1,
                    conditional: 0.5,
                    conjunctive: 0.4,
                    verdict: Verdict::Serialize,
                }],
            }],
        });
        s
    }

    #[test]
    fn jsonl_merges_chronologically_lifecycle_first() {
        let jsonl = trace_jsonl(&sample_sink());
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 7);
        // The inference record at t=20 lands after the abort at t=20
        // (lifecycle wins ties) and before the t=25 acquisition.
        let types: Vec<String> = lines
            .iter()
            .map(|l| {
                Json::parse(l).unwrap().get("type").unwrap().as_str().unwrap().to_string()
            })
            .collect();
        assert_eq!(
            types,
            vec![
                "attempt-begin",
                "lock-wait",
                "abort",
                "inference",
                "locks-acquired",
                "sgl-fallback",
                "fallback-commit"
            ]
        );
        // Timestamps are non-decreasing.
        let ats: Vec<u64> = lines
            .iter()
            .map(|l| Json::parse(l).unwrap().get("at").unwrap().as_u64().unwrap())
            .collect();
        assert!(ats.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn jsonl_field_content_survives_round_trip() {
        let jsonl = trace_jsonl(&sample_sink());
        let wait = Json::parse(jsonl.lines().nth(1).unwrap()).unwrap();
        assert_eq!(wait.get("lock").unwrap().as_str(), Some("tx:3"));
        assert_eq!(wait.get("holder").unwrap().as_u64(), Some(0));
        let abort = Json::parse(jsonl.lines().nth(2).unwrap()).unwrap();
        assert_eq!(abort.get("cause").unwrap().as_str(), Some("capacity"));
        assert_eq!(abort.get("attempts_left").unwrap().as_u64(), Some(2));
        let inf = Json::parse(jsonl.lines().nth(3).unwrap()).unwrap();
        assert_eq!(inf.get("stats_digest").unwrap().as_str(), Some("0x000000000000abcd"));
        let row = &inf.get("rows").unwrap().as_array().unwrap()[0];
        assert_eq!(row.get("cutoff").unwrap().as_f64(), Some(0.26));
        let pair = &row.get("pairs").unwrap().as_array().unwrap()[0];
        assert_eq!(pair.get("verdict").unwrap().as_str(), Some("serialize"));
    }

    #[test]
    fn serialization_is_deterministic() {
        let s = sample_sink();
        assert_eq!(trace_jsonl(&s), trace_jsonl(&s));
        assert_eq!(
            chrome_trace(&s).to_string_pretty(),
            chrome_trace(&s).to_string_pretty()
        );
    }

    #[test]
    fn chrome_trace_pairs_begin_end_and_isolates_inference() {
        let doc = chrome_trace(&sample_sink());
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(phases.iter().filter(|&&p| p == "B").count(), 1);
        assert_eq!(phases.iter().filter(|&&p| p == "E").count(), 1);
        // Inference rides a synthetic tid above all simulated threads.
        let inf = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str().unwrap().starts_with("inference"))
            .unwrap();
        assert_eq!(inf.get("tid").unwrap().as_u64(), Some(2));
        // ts is in microseconds under the 1 GHz nominal clock.
        assert_eq!(inf.get("ts").unwrap().as_f64(), Some(0.02));
    }

    #[test]
    fn unwritable_path_warns_instead_of_panicking() {
        let sink = sample_sink();
        assert!(!write_trace_jsonl("/nonexistent-dir/deep/trace.jsonl", &sink));
        assert!(!write_chrome_trace("/nonexistent-dir/deep/trace.json", &sink));
        // Repeat: the Once means no second warning, and still no panic.
        assert!(!write_trace_jsonl("/nonexistent-dir/deep/trace.jsonl", &sink));
    }

    #[test]
    fn writable_path_round_trips() {
        let sink = sample_sink();
        let dir = std::env::temp_dir().join("seer-trace-export-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let path = path.to_str().unwrap();
        assert!(write_trace_jsonl(path, &sink));
        let read_back = std::fs::read_to_string(path).unwrap();
        assert_eq!(read_back, trace_jsonl(&sink));
    }
}
