//! Declarative experiment plans and the parallel, memoizing cell executor.
//!
//! The paper's evaluation (Figs. 3–5, Table 3, the §5.3 ablations) is a
//! grid of *independent, deterministic* simulation cells, and several
//! artefacts consume overlapping subsets of that grid (Table 3 re-reads
//! every Figure 3 cell; Figure 4 and Figure 5 share the profile-only
//! baseline runs). Instead of each experiment calling the runner inline —
//! re-simulating shared cells and pinning everything to one core — an
//! experiment now *declares* its grid as a [`Plan`] (a deduplicated set of
//! `Cell × seed` work items) and hands it to a [`CellExecutor`], which
//!
//! 1. drops items whose results are already in its [`CellCache`]
//!    (memoized on `(benchmark, policy, threads, seed, scale)`), and
//! 2. fans the remainder out across OS threads ([`parallel_map`], built on
//!    `std::thread::scope` — no dependencies, per the offline policy).
//!
//! Every cell's discrete-event run is a pure function of
//! `(cell, seed, scale)` — seeded via [`sim_seed`], sharing no state with
//! any other cell — so parallel execution is *bit-identical* to serial:
//! results land in the cache keyed by their coordinates, and assembly
//! order is dictated by the experiment code, never by thread completion
//! order. The conformance replay fixtures and the executor equivalence
//! test (`crates/harness/tests/executor.rs`) pin this.
//!
//! The cache exposes [`CellExecutor::hits`]/[`CellExecutor::misses`]
//! counters, where a *miss* is an actual simulation performed. "Each
//! unique cell is simulated exactly once per process" is therefore a
//! testable claim — see `memoization_accounting` in the executor tests —
//! not an aspiration.

use std::collections::HashMap;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use seer_runtime::RunMetrics;

use crate::runner::{run_once, Cell, CellResult, HarnessConfig};

/// The memoization key: every coordinate a cell's metrics depend on.
///
/// `scale` is carried as its IEEE-754 bit pattern so the key is `Eq + Hash`
/// without tolerance games; two scales memoize together exactly when they
/// are the same `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// Workload model.
    pub benchmark: seer_stamp::Benchmark,
    /// Scheduler variant.
    pub policy: crate::policy::PolicyKind,
    /// Simulated threads.
    pub threads: usize,
    /// Harness seed (the driver seed is derived via [`sim_seed`]).
    pub seed: u64,
    /// Workload scale factor, as raw bits.
    scale_bits: u64,
}

impl CellKey {
    /// Builds the key for one `(cell, seed, scale)` work item.
    pub fn new(cell: Cell, seed: u64, scale: f64) -> Self {
        Self {
            benchmark: cell.benchmark,
            policy: cell.policy,
            threads: cell.threads,
            seed,
            scale_bits: scale.to_bits(),
        }
    }

    /// The cell coordinates (without seed/scale).
    pub fn cell(&self) -> Cell {
        Cell {
            benchmark: self.benchmark,
            policy: self.policy,
            threads: self.threads,
        }
    }

    /// The workload scale factor.
    pub fn scale(&self) -> f64 {
        f64::from_bits(self.scale_bits)
    }
}

/// A declarative, deduplicated set of `Cell × seed` work items.
///
/// Experiments build a `Plan` up front (usually via [`Plan::add_grid`]),
/// then hand it to [`CellExecutor::execute`]. Duplicate insertions are
/// dropped at build time, so overlapping grids (e.g. Table 3 re-listing
/// every Figure 3 cell) cost nothing even before the cache is consulted.
#[derive(Debug, Default, Clone)]
pub struct Plan {
    items: Vec<CellKey>,
    seen: HashSet<CellKey>,
}

impl Plan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one `(cell, seed)` item at an explicit scale. Returns `true`
    /// if the item was new.
    pub fn add_one(&mut self, cell: Cell, seed: u64, scale: f64) -> bool {
        let key = CellKey::new(cell, seed, scale);
        let fresh = self.seen.insert(key);
        if fresh {
            self.items.push(key);
        }
        fresh
    }

    /// Adds `cell` under `cfg`: one item per seed `0..cfg.seeds` at
    /// `cfg.scale` (the expansion [`crate::runner::run_cell`] averages
    /// over).
    pub fn add(&mut self, cell: Cell, cfg: &HarnessConfig) {
        for seed in 0..cfg.seeds {
            self.add_one(cell, seed, cfg.scale);
        }
    }

    /// Adds the full `benchmarks × policies × threads` grid under `cfg`.
    pub fn add_grid(
        &mut self,
        benchmarks: &[seer_stamp::Benchmark],
        policies: &[crate::policy::PolicyKind],
        threads: &[usize],
        cfg: &HarnessConfig,
    ) {
        for &benchmark in benchmarks {
            for &policy in policies {
                for &t in threads {
                    self.add(
                        Cell {
                            benchmark,
                            policy,
                            threads: t,
                        },
                        cfg,
                    );
                }
            }
        }
    }

    /// Number of unique work items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the plan holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The unique items, in insertion order.
    pub fn items(&self) -> &[CellKey] {
        &self.items
    }
}

/// Applies `f` to every item of `items` on up to `jobs` OS threads,
/// returning results in input order (never completion order).
///
/// Work is handed out through a shared atomic cursor, so threads stay busy
/// regardless of per-item cost skew. `jobs <= 1` (or a single item) runs
/// the plain serial loop — byte-for-byte the `--jobs 1` path, which the
/// equivalence tests compare the parallel path against. A panic on any
/// worker propagates out of the enclosing `std::thread::scope`.
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

/// The parallel, memoizing executor behind every figure, table, bench and
/// sweep: the workspace's one way to turn a [`Plan`] into metrics.
///
/// Results are cached per [`CellKey`] for the lifetime of the executor, so
/// any number of experiments sharing one executor simulate each unique
/// cell exactly once. The executor is `Sync`; its workers only ever write
/// distinct keys, and readers assemble results by key, which is why
/// `--jobs N` is bit-identical to `--jobs 1` for every N.
pub struct CellExecutor {
    cfg: HarnessConfig,
    cache: Mutex<HashMap<CellKey, RunMetrics>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CellExecutor {
    /// An executor with an empty cache over `cfg` (which fixes the default
    /// seeds/scale for [`Plan::add`] expansion and `jobs` for fan-out).
    pub fn new(cfg: HarnessConfig) -> Self {
        Self {
            cfg,
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The executor's harness configuration.
    pub fn config(&self) -> &HarnessConfig {
        &self.cfg
    }

    /// Simulates every not-yet-cached item of `plan`, fanning out across
    /// `cfg.jobs` OS threads. Safe to call repeatedly and with
    /// overlapping plans; already-cached items are counted as hits and
    /// skipped.
    pub fn execute(&self, plan: &Plan) {
        let todo: Vec<CellKey> = {
            let cache = self.cache.lock().expect("cell cache poisoned");
            plan.items()
                .iter()
                .filter(|key| !cache.contains_key(key))
                .copied()
                .collect()
        };
        self.hits
            .fetch_add((plan.len() - todo.len()) as u64, Ordering::Relaxed);
        if todo.is_empty() {
            return;
        }
        self.misses.fetch_add(todo.len() as u64, Ordering::Relaxed);
        let results = parallel_map(&todo, self.cfg.jobs, |key| {
            run_once(key.cell(), key.seed, key.scale())
        });
        let mut cache = self.cache.lock().expect("cell cache poisoned");
        for (key, metrics) in todo.into_iter().zip(results) {
            cache.insert(key, metrics);
        }
    }

    /// Raw metrics of one `(cell, seed)` run at an explicit scale,
    /// simulating on a cache miss (serially — batch work belongs in a
    /// [`Plan`]).
    pub fn metrics_at(&self, cell: Cell, seed: u64, scale: f64) -> RunMetrics {
        let key = CellKey::new(cell, seed, scale);
        if let Some(m) = self
            .cache
            .lock()
            .expect("cell cache poisoned")
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return m.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let metrics = run_once(cell, seed, scale);
        self.cache
            .lock()
            .expect("cell cache poisoned")
            .insert(key, metrics.clone());
        metrics
    }

    /// Raw metrics of one `(cell, seed)` run at the executor's scale.
    pub fn metrics(&self, cell: Cell, seed: u64) -> RunMetrics {
        self.metrics_at(cell, seed, self.cfg.scale)
    }

    /// Seed-averaged measurements of `cell` over the executor's
    /// `cfg.seeds` at `cfg.scale` — the memoized equivalent of
    /// [`crate::runner::run_cell`].
    pub fn cell(&self, cell: Cell) -> CellResult {
        let runs: Vec<RunMetrics> = (0..self.cfg.seeds)
            .map(|seed| self.metrics(cell, seed))
            .collect();
        CellResult::average(&runs)
    }

    /// Cache reads that were served without simulating.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Simulations actually performed (the duplicate-work counter: after
    /// any sequence of experiments this equals the number of unique
    /// `(cell, seed, scale)` items they collectively declared).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for CellExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellExecutor")
            .field("cfg", &self.cfg)
            .field("cached", &self.cache.lock().map(|c| c.len()).unwrap_or(0))
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use seer_stamp::Benchmark;

    fn cell(threads: usize) -> Cell {
        Cell {
            benchmark: Benchmark::Ssca2,
            policy: PolicyKind::Rtm,
            threads,
        }
    }

    #[test]
    fn plan_deduplicates_items() {
        let cfg = HarnessConfig {
            seeds: 2,
            scale: 0.1,
            jobs: 1,
        };
        let mut plan = Plan::new();
        plan.add(cell(2), &cfg);
        plan.add(cell(2), &cfg); // exact duplicate
        plan.add(cell(4), &cfg);
        assert_eq!(plan.len(), 4); // 2 cells × 2 seeds
        assert!(plan.add_one(cell(2), 7, 0.1));
        assert!(!plan.add_one(cell(2), 7, 0.1));
        assert_eq!(plan.len(), 5);
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..37).collect();
        let serial = parallel_map(&items, 1, |&x| x * x);
        let parallel = parallel_map(&items, 4, |&x| x * x);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[5], 25);
    }

    #[test]
    fn executor_counts_hits_and_misses() {
        let cfg = HarnessConfig {
            seeds: 2,
            scale: 0.1,
            jobs: 2,
        };
        let exec = CellExecutor::new(cfg);
        let mut plan = Plan::new();
        plan.add(cell(2), &cfg);
        exec.execute(&plan);
        assert_eq!(exec.misses(), 2);
        assert_eq!(exec.hits(), 0);
        // Re-executing the same plan simulates nothing.
        exec.execute(&plan);
        assert_eq!(exec.misses(), 2);
        assert_eq!(exec.hits(), 2);
        // Assembly over the cached seeds is all hits.
        let r = exec.cell(cell(2));
        assert!(r.speedup > 0.0);
        assert_eq!(exec.misses(), 2);
        assert_eq!(exec.hits(), 4);
    }

    #[test]
    fn cached_metrics_equal_a_fresh_run() {
        let cfg = HarnessConfig {
            seeds: 1,
            scale: 0.1,
            jobs: 2,
        };
        let exec = CellExecutor::new(cfg);
        let mut plan = Plan::new();
        plan.add(cell(4), &cfg);
        exec.execute(&plan);
        let cached = exec.metrics(cell(4), 0);
        let fresh = run_once(cell(4), 0, 0.1);
        assert_eq!(cached.trace_hash, fresh.trace_hash);
        assert_eq!(cached.makespan, fresh.makespan);
        assert_eq!(cached.commits, fresh.commits);
    }
}
