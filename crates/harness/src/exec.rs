//! Declarative experiment plans and the parallel, memoizing cell executor.
//!
//! The paper's evaluation (Figs. 3–5, Table 3, the §5.3 ablations) is a
//! grid of *independent, deterministic* simulation cells, and several
//! artefacts consume overlapping subsets of that grid (Table 3 re-reads
//! every Figure 3 cell; Figure 4 and Figure 5 share the profile-only
//! baseline runs). Instead of each experiment calling the runner inline,
//! an experiment *declares* its grid as a [`Plan`] (a deduplicated set of
//! `Cell × seed` work items) and hands it to a [`CellExecutor`].
//!
//! Since PR 7 the machinery behind the executor — deduplicating plans,
//! `parallel_map` fan-out, the memo cache with hit/miss counters, the
//! disk store and the supervision layer — lives in `seer-store`'s generic
//! [`Executor`]; this module is the *cell-shaped* instantiation: it picks
//! `K = CellKey`, `V = RunMetrics`, supplies the run function (the
//! runner's `execute_cell`), and keeps the harness-flavoured plan sugar
//! (`add`/`add_grid` expanding a `HarnessConfig`) and assembly helpers
//! (`metrics`/`cell`).
//!
//! Every cell's discrete-event run is a pure function of
//! `(cell, seed, scale)` — seeded via [`sim_seed`], sharing no state with
//! any other cell — so parallel execution is *bit-identical* to serial,
//! and so is a disk-warmed or resumed run. The conformance replay
//! fixtures and the executor equivalence test
//! (`crates/harness/tests/executor.rs`) pin this.
//!
//! [`sim_seed`]: crate::runner::sim_seed

use std::sync::Arc;

use seer_runtime::RunMetrics;
use seer_store::{ExecReport, Executor, Json, RemoteResolver, Store, SupervisorConfig, ToJson};

use crate::runner::{execute_cell, Cell, CellResult, HarnessConfig};

pub use seer_store::parallel_map;

/// The memoization key: every coordinate a cell's metrics depend on.
///
/// `scale` is carried as its IEEE-754 bit pattern so the key is `Eq + Hash`
/// without tolerance games; two scales memoize together exactly when they
/// are the same `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// Workload model.
    pub benchmark: seer_stamp::Benchmark,
    /// Scheduler variant.
    pub policy: crate::policy::PolicyKind,
    /// Simulated threads.
    pub threads: usize,
    /// Harness seed (the driver seed is derived via
    /// [`crate::runner::sim_seed`]).
    pub seed: u64,
    /// Workload scale factor, as raw bits.
    scale_bits: u64,
}

impl CellKey {
    /// Builds the key for one `(cell, seed, scale)` work item.
    pub fn new(cell: Cell, seed: u64, scale: f64) -> Self {
        Self {
            benchmark: cell.benchmark,
            policy: cell.policy,
            threads: cell.threads,
            seed,
            scale_bits: scale.to_bits(),
        }
    }

    /// The cell coordinates (without seed/scale).
    pub fn cell(&self) -> Cell {
        Cell {
            benchmark: self.benchmark,
            policy: self.policy,
            threads: self.threads,
        }
    }

    /// The workload scale factor.
    pub fn scale(&self) -> f64 {
        f64::from_bits(self.scale_bits)
    }
}

impl seer_store::StoreKey for CellKey {
    const KIND: &'static str = "cell";

    fn key_id(&self) -> String {
        // Scale goes in as raw bits: the store must distinguish exactly
        // the scales the memo cache distinguishes.
        // `spec()` (not `name()`): the parameterized synth benchmark must
        // key distinct block counts to distinct store entries. For every
        // fixed member spec == name, so existing keys are untouched.
        format!(
            "{}/{}/t{}/s{}/x{:016x}",
            self.benchmark.spec(),
            self.policy.spec(),
            self.threads,
            self.seed,
            self.scale_bits
        )
    }

    fn key_json(&self) -> Json {
        Json::object([
            ("benchmark", self.benchmark.spec().to_json()),
            ("policy", self.policy.spec().to_json()),
            ("threads", self.threads.to_json()),
            ("seed", self.seed.to_json()),
            ("scale", self.scale().to_json()),
        ])
    }
}

/// A declarative, deduplicated set of `Cell × seed` work items.
///
/// Experiments build a `Plan` up front (usually via [`Plan::add_grid`]),
/// then hand it to [`CellExecutor::execute`]. Duplicate insertions are
/// dropped at build time, so overlapping grids (e.g. Table 3 re-listing
/// every Figure 3 cell) cost nothing even before the cache is consulted.
#[derive(Debug, Default, Clone)]
pub struct Plan {
    inner: seer_store::Plan<CellKey>,
}

impl Plan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one `(cell, seed)` item at an explicit scale. Returns `true`
    /// if the item was new.
    pub fn add_one(&mut self, cell: Cell, seed: u64, scale: f64) -> bool {
        self.inner.add(CellKey::new(cell, seed, scale))
    }

    /// Adds `cell` under `cfg`: one item per seed `0..cfg.seeds` at
    /// `cfg.scale` (the expansion [`crate::runner::run_cell`] averages
    /// over).
    pub fn add(&mut self, cell: Cell, cfg: &HarnessConfig) {
        for seed in 0..cfg.seeds {
            self.add_one(cell, seed, cfg.scale);
        }
    }

    /// Adds the full `benchmarks × policies × threads` grid under `cfg`.
    pub fn add_grid(
        &mut self,
        benchmarks: &[seer_stamp::Benchmark],
        policies: &[crate::policy::PolicyKind],
        threads: &[usize],
        cfg: &HarnessConfig,
    ) {
        for &benchmark in benchmarks {
            for &policy in policies {
                for &t in threads {
                    self.add(
                        Cell {
                            benchmark,
                            policy,
                            threads: t,
                        },
                        cfg,
                    );
                }
            }
        }
    }

    /// Number of unique work items.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the plan holds no items.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// The unique items, in insertion order.
    pub fn items(&self) -> &[CellKey] {
        self.inner.items()
    }

    /// The underlying generic plan.
    pub fn as_generic(&self) -> &seer_store::Plan<CellKey> {
        &self.inner
    }
}

/// The parallel, memoizing executor behind every figure, table, bench and
/// sweep: the workspace's one way to turn a [`Plan`] into metrics.
///
/// A thin instantiation of `seer-store`'s generic [`Executor`]: results
/// are memoized per [`CellKey`] for the lifetime of the executor, served
/// from an attached disk [`Store`] across processes, and computed under
/// supervision (retry/deadline/panic isolation) when planned. The
/// executor is `Sync`; its workers only ever write distinct keys, and
/// readers assemble results by key, which is why `--jobs N` is
/// bit-identical to `--jobs 1` for every N.
#[derive(Debug)]
pub struct CellExecutor {
    cfg: HarnessConfig,
    inner: Executor<CellKey, RunMetrics>,
}

impl CellExecutor {
    /// An executor with an empty cache over `cfg` (which fixes the default
    /// seeds/scale for [`Plan::add`] expansion and `jobs` for fan-out).
    /// No disk store; supervision from the environment knobs.
    pub fn new(cfg: HarnessConfig) -> Self {
        Self::with_options(cfg, None, SupervisorConfig::from_env())
    }

    /// [`CellExecutor::new`] plus a disk store: planned results load from
    /// `store` before simulating and persist to it after.
    pub fn with_store(cfg: HarnessConfig, store: Store) -> Self {
        Self::with_options(cfg, Some(store), SupervisorConfig::from_env())
    }

    /// Fully explicit constructor.
    pub fn with_options(
        cfg: HarnessConfig,
        store: Option<Store>,
        supervisor: SupervisorConfig,
    ) -> Self {
        let mut inner = Executor::new(cfg.jobs, |key: CellKey| {
            execute_cell(key.cell(), key.seed, key.scale(), None)
        })
        .with_supervisor(supervisor);
        if let Some(store) = store {
            inner = inner.with_store(store);
        }
        Self { cfg, inner }
    }

    /// Attaches a remote resolver (e.g. `seer-remote`'s worker pool):
    /// planned cells that miss the memo cache and the disk store are
    /// offered to `remote` before being simulated locally. Remote
    /// results persist to the attached store exactly like local ones.
    pub fn with_remote(mut self, remote: Arc<dyn RemoteResolver<CellKey, RunMetrics>>) -> Self {
        self.inner = self.inner.with_remote(remote);
        self
    }

    /// The executor's harness configuration.
    pub fn config(&self) -> &HarnessConfig {
        &self.cfg
    }

    /// The attached disk store, if any.
    pub fn store(&self) -> Option<&Store> {
        self.inner.store()
    }

    /// Resolves every item of `plan` — memo cache, then disk store, then
    /// supervised simulation fanned out across `cfg.jobs` OS threads —
    /// and returns the coverage report. Safe to call repeatedly and with
    /// overlapping plans; a poisoned cell lands in
    /// [`ExecReport::failed`] instead of aborting the process.
    pub fn execute(&self, plan: &Plan) -> ExecReport<CellKey> {
        self.inner.execute(&plan.inner)
    }

    /// Raw metrics of one `(cell, seed)` run at an explicit scale,
    /// simulating on a cache miss (serially — batch work belongs in a
    /// [`Plan`]).
    pub fn metrics_at(&self, cell: Cell, seed: u64, scale: f64) -> RunMetrics {
        self.inner.get(CellKey::new(cell, seed, scale))
    }

    /// The memoized metrics of one item, without computing anything: the
    /// non-panicking read used to assemble partial reports around failed
    /// cells.
    pub fn cached(&self, cell: Cell, seed: u64, scale: f64) -> Option<RunMetrics> {
        self.inner.cached(&CellKey::new(cell, seed, scale))
    }

    /// Raw metrics of one `(cell, seed)` run at the executor's scale.
    pub fn metrics(&self, cell: Cell, seed: u64) -> RunMetrics {
        self.metrics_at(cell, seed, self.cfg.scale)
    }

    /// Seed-averaged measurements of `cell` over the executor's
    /// `cfg.seeds` at `cfg.scale` — the memoized equivalent of
    /// [`crate::runner::run_cell`].
    pub fn cell(&self, cell: Cell) -> CellResult {
        let runs: Vec<RunMetrics> = (0..self.cfg.seeds)
            .map(|seed| self.metrics(cell, seed))
            .collect();
        CellResult::average(&runs)
    }

    /// Memo-cache reads that were served without simulating.
    pub fn hits(&self) -> u64 {
        self.inner.hits()
    }

    /// Simulations actually performed (the duplicate-work counter: after
    /// any sequence of experiments this equals the number of unique
    /// `(cell, seed, scale)` items they collectively declared, minus
    /// anything the disk store already had).
    pub fn misses(&self) -> u64 {
        self.inner.misses()
    }

    /// Results served from the disk store instead of simulating.
    pub fn disk_hits(&self) -> u64 {
        self.inner.disk_hits()
    }

    /// Results computed by remote workers instead of locally.
    pub fn remote_hits(&self) -> u64 {
        self.inner.remote_hits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use seer_stamp::Benchmark;
    use seer_store::StoreKey;

    fn cell(threads: usize) -> Cell {
        Cell {
            benchmark: Benchmark::Ssca2,
            policy: PolicyKind::Rtm,
            threads,
        }
    }

    #[test]
    fn plan_deduplicates_items() {
        let cfg = HarnessConfig {
            seeds: 2,
            scale: 0.1,
            jobs: 1,
        };
        let mut plan = Plan::new();
        plan.add(cell(2), &cfg);
        plan.add(cell(2), &cfg); // exact duplicate
        plan.add(cell(4), &cfg);
        assert_eq!(plan.len(), 4); // 2 cells × 2 seeds
        assert!(plan.add_one(cell(2), 7, 0.1));
        assert!(!plan.add_one(cell(2), 7, 0.1));
        assert_eq!(plan.len(), 5);
    }

    #[test]
    fn executor_counts_hits_and_misses() {
        let cfg = HarnessConfig {
            seeds: 2,
            scale: 0.1,
            jobs: 2,
        };
        let exec = CellExecutor::new(cfg);
        let mut plan = Plan::new();
        plan.add(cell(2), &cfg);
        exec.execute(&plan);
        assert_eq!(exec.misses(), 2);
        assert_eq!(exec.hits(), 0);
        // Re-executing the same plan simulates nothing.
        exec.execute(&plan);
        assert_eq!(exec.misses(), 2);
        assert_eq!(exec.hits(), 2);
        // Assembly over the cached seeds is all hits.
        let r = exec.cell(cell(2));
        assert!(r.speedup > 0.0);
        assert_eq!(exec.misses(), 2);
        assert_eq!(exec.hits(), 4);
        // No store attached: nothing can be a disk hit.
        assert_eq!(exec.disk_hits(), 0);
    }

    #[test]
    fn cached_metrics_equal_a_fresh_run() {
        let cfg = HarnessConfig {
            seeds: 1,
            scale: 0.1,
            jobs: 2,
        };
        let exec = CellExecutor::new(cfg);
        let mut plan = Plan::new();
        plan.add(cell(4), &cfg);
        exec.execute(&plan);
        let cached = exec.metrics(cell(4), 0);
        let fresh = execute_cell(cell(4), 0, 0.1, None);
        assert_eq!(cached.trace_hash, fresh.trace_hash);
        assert_eq!(cached.makespan, fresh.makespan);
        assert_eq!(cached.commits, fresh.commits);
    }

    #[test]
    fn cell_key_ids_are_unique_across_coordinates() {
        let a = CellKey::new(cell(2), 0, 0.1);
        let variants = [
            CellKey::new(cell(4), 0, 0.1),
            CellKey::new(cell(2), 1, 0.1),
            CellKey::new(cell(2), 0, 0.2),
            CellKey::new(
                Cell {
                    benchmark: Benchmark::Ssca2,
                    policy: PolicyKind::Seer,
                    threads: 2,
                },
                0,
                0.1,
            ),
        ];
        for v in &variants {
            assert_ne!(a.key_id(), v.key_id(), "{v:?}");
        }
    }
}
