//! Text rendering of the experiment results: ASCII series for the figures
//! and aligned tables, plus optional JSON export for downstream plotting.

use std::fmt::Write as _;

use crate::json::{Json, ToJson};

/// A named series of `(x, y)` points (one curve of a figure).
#[derive(Debug, Clone)]
pub struct Series {
    /// Curve label (e.g. a policy name).
    pub label: String,
    /// `(threads, speedup)` points.
    pub points: Vec<(usize, f64)>,
}

impl ToJson for Series {
    fn to_json(&self) -> Json {
        Json::object([
            ("label", self.label.to_json()),
            ("points", self.points.to_json()),
        ])
    }
}

/// One panel of a figure: several series over a shared x-axis.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Panel title (e.g. a benchmark name).
    pub title: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Panel {
    /// Renders the panel as an aligned text table: one row per x value,
    /// one column per series.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "--- {} ---", self.title);
        let _ = write!(out, "{:>8}", "threads");
        for s in &self.series {
            let _ = write!(out, "{:>12}", s.label);
        }
        let _ = writeln!(out);
        let xs: Vec<usize> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|p| p.0).collect())
            .unwrap_or_default();
        for (i, x) in xs.iter().enumerate() {
            let _ = write!(out, "{x:>8}");
            for s in &self.series {
                match s.points.get(i) {
                    Some(&(_, y)) => {
                        let _ = write!(out, "{y:>12.3}");
                    }
                    None => {
                        let _ = write!(out, "{:>12}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

impl ToJson for Panel {
    fn to_json(&self) -> Json {
        Json::object([
            ("title", self.title.to_json()),
            ("series", self.series.to_json()),
        ])
    }
}

/// A labelled table of percentage rows (Table 3 style).
#[derive(Debug, Clone)]
pub struct PercentTable {
    /// Table title.
    pub title: String,
    /// Column headers (e.g. thread counts).
    pub columns: Vec<String>,
    /// `(row label, values)` — values are fractions rendered as percent.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl PercentTable {
    /// Renders the table with percentages rounded to integers, as in the
    /// paper's Table 3.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "--- {} ---", self.title);
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain([12])
            .max()
            .unwrap_or(12);
        let _ = write!(out, "{:<label_w$}", "");
        for c in &self.columns {
            let _ = write!(out, "{c:>8}");
        }
        let _ = writeln!(out);
        for (label, values) in &self.rows {
            let _ = write!(out, "{label:<label_w$}");
            for v in values {
                let _ = write!(out, "{:>8.0}", v * 100.0);
            }
            let _ = writeln!(out);
        }
        out
    }
}

impl ToJson for PercentTable {
    fn to_json(&self) -> Json {
        Json::object([
            ("title", self.title.to_json()),
            ("columns", self.columns.to_json()),
            ("rows", self.rows.to_json()),
        ])
    }
}

/// Writes `value` as pretty JSON to the path named by the
/// `SEER_REPORT_JSON` environment variable, if set. Returns whether a file
/// was written. Lets plotting scripts consume exact numbers without
/// scraping the text output.
pub fn maybe_write_json<T: ToJson>(value: &T) -> std::io::Result<bool> {
    match std::env::var("SEER_REPORT_JSON") {
        Ok(path) if !path.is_empty() => {
            let json = value.to_json().to_string_pretty();
            std::fs::write(&path, json)?;
            Ok(true)
        }
        _ => Ok(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_renders_aligned_rows() {
        let p = Panel {
            title: "genome".into(),
            series: vec![
                Series {
                    label: "RTM".into(),
                    points: vec![(1, 0.9), (2, 1.5)],
                },
                Series {
                    label: "Seer".into(),
                    points: vec![(1, 0.88), (2, 1.62)],
                },
            ],
        };
        let text = p.render();
        assert!(text.contains("genome"));
        assert!(text.contains("RTM"));
        assert!(text.contains("1.500"));
        assert!(text.contains("1.620"));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn percent_table_rounds() {
        let t = PercentTable {
            title: "modes".into(),
            columns: vec!["2t".into(), "4t".into()],
            rows: vec![("HTM no locks".into(), vec![0.756, 0.52])],
        };
        let text = t.render();
        assert!(text.contains("76"));
        assert!(text.contains("52"));
    }

    #[test]
    fn json_export_skipped_without_env() {
        let p = Panel {
            title: "x".into(),
            series: vec![],
        };
        // Not set in the test environment.
        std::env::remove_var("SEER_REPORT_JSON");
        assert!(!maybe_write_json(&p).unwrap());
    }
}
