//! Dependency-free JSON serialization for report export.
//!
//! The workspace builds with no network access, so it cannot use
//! `serde`/`serde_json`. The export surface is small (a handful of report
//! structs written once per experiment run), so a tiny tree type plus a
//! `ToJson` trait is enough; field names match what `serde` would have
//! produced, so downstream plotting scripts are unaffected.

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer (serialized without a decimal point).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Float; non-finite values serialize as `null` (JSON has no NaN).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for objects.
    pub fn object(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Serializes with 2-space indentation (matches
    /// `serde_json::to_string_pretty`'s layout closely enough for humans
    /// and exactly enough for parsers).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Num(f) => {
                if f.is_finite() {
                    // `{f}` is Rust's shortest round-trip float formatting,
                    // and always includes enough precision to reparse.
                    if f.fract() == 0.0 && f.abs() < 1e15 {
                        // Match serde_json: floats keep a decimal point.
                        out.push_str(&format!("{f:.1}"));
                    } else {
                        out.push_str(&format!("{f}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] tree (the shim's `serde::Serialize`).
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::UInt(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        Json::Int(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string_pretty(), "null");
        assert_eq!(Json::Bool(true).to_string_pretty(), "true");
        assert_eq!(Json::UInt(42).to_string_pretty(), "42");
        assert_eq!(Json::Num(1.5).to_string_pretty(), "1.5");
        assert_eq!(Json::Num(2.0).to_string_pretty(), "2.0");
        assert_eq!(Json::Num(f64::NAN).to_string_pretty(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::Str("a\"b\\c\nd".into()).to_string_pretty(),
            r#""a\"b\\c\nd""#
        );
    }

    #[test]
    fn structure_renders_pretty() {
        let v = Json::object([
            ("name", "x".to_json()),
            ("points", vec![(1usize, 0.5f64)].to_json()),
            ("empty", Json::Array(vec![])),
        ]);
        let text = v.to_string_pretty();
        assert_eq!(
            text,
            "{\n  \"name\": \"x\",\n  \"points\": [\n    [\n      1,\n      0.5\n    ]\n  ],\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn option_maps_to_null() {
        assert_eq!(None::<f64>.to_json(), Json::Null);
        assert_eq!(Some(3.0f64).to_json(), Json::Num(3.0));
    }
}
