//! Extra experiment: convergence speed of Seer's probabilistic inference.
//!
//! Prints, per benchmark at 8 threads, when the inferred locking scheme
//! last changed (as virtual time and as a fraction of the run), and how
//! many recomputations ran. The paper's §5.3 notes that its "relatively
//! aggressive" monitoring rates exist because STAMP runs are short — this
//! quantifies how much of a run the inference actually needs.

use seer_harness::{convergence, env_config, maybe_write_json};

fn main() {
    let cfg = env_config();
    eprintln!("convergence: scale={} jobs={}", cfg.scale, cfg.jobs);
    let results = convergence(8, cfg.scale);
    println!(
        "{:<16}{:>16}{:>14}{:>12}{:>10}",
        "benchmark", "converged@cycle", "makespan", "fraction", "updates"
    );
    for r in &results {
        let (at, frac) = match (r.converged_at, r.converged_fraction) {
            (Some(a), Some(f)) => (a.to_string(), format!("{:.0}%", f * 100.0)),
            _ => ("never locked".to_string(), "-".to_string()),
        };
        println!("{:<16}{:>16}{:>14}{:>12}{:>10}", r.benchmark, at, r.makespan, frac, r.updates);
    }
    if maybe_write_json(&results).expect("writing JSON report") {
        eprintln!("convergence: JSON written to $SEER_REPORT_JSON");
    }
}
