//! Regenerates the §5.3 core-locks-only ablation: geometric-mean speedup
//! of Seer with only core locks enabled, relative to profile-only Seer.
//! The paper reports +9% at 6 threads and +22% at 8 threads.

use seer_harness::{core_locks_only, env_config, maybe_write_json, CellExecutor};

fn main() {
    let exec = CellExecutor::new(env_config());
    let cfg = exec.config();
    eprintln!("ablation_core_locks: seeds={} scale={} jobs={}", cfg.seeds, cfg.scale, cfg.jobs);
    let panel = core_locks_only(&exec, &[2, 4, 6, 8]);
    print!("{}", panel.render());
    eprintln!(
        "ablation_core_locks: {} cells simulated, {} cache hits",
        exec.misses(),
        exec.hits()
    );
    if maybe_write_json(&panel).expect("writing JSON report") {
        eprintln!("ablation_core_locks: JSON written to $SEER_REPORT_JSON");
    }
}
