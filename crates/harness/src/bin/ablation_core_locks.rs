//! Regenerates the §5.3 core-locks-only ablation: geometric-mean speedup
//! of Seer with only core locks enabled, relative to profile-only Seer.
//! The paper reports +9% at 6 threads and +22% at 8 threads.

use seer_harness::{core_locks_only, env_config, maybe_write_json};

fn main() {
    let cfg = env_config();
    eprintln!("ablation_core_locks: seeds={} scale={}", cfg.seeds, cfg.scale);
    let panel = core_locks_only(&cfg, &[2, 4, 6, 8]);
    print!("{}", panel.render());
    if maybe_write_json(&panel).expect("writing JSON report") {
        eprintln!("ablation_core_locks: JSON written to $SEER_REPORT_JSON");
    }
}
