//! Regenerates Figure 5: cumulative contribution of each Seer mechanism
//! (tx locks, core locks, HTM lock acquisition, hill climbing), shown as
//! speedup relative to the profile-only variant.

use seer_harness::{env_config, figure5, maybe_write_json, THREADS_TABLE};

fn main() {
    let cfg = env_config();
    eprintln!("fig5: seeds={} scale={}", cfg.seeds, cfg.scale);
    let panels = figure5(&cfg, &THREADS_TABLE);
    for p in &panels {
        print!("{}", p.render());
        println!();
    }
    if maybe_write_json(&panels).expect("writing JSON report") {
        eprintln!("fig5: JSON written to $SEER_REPORT_JSON");
    }
}
