//! Regenerates Figure 5: cumulative contribution of each Seer mechanism
//! (tx locks, core locks, HTM lock acquisition, hill climbing), shown as
//! speedup relative to the profile-only variant.

use seer_harness::{env_config, figure5, maybe_write_json, CellExecutor, THREADS_TABLE};

fn main() {
    let exec = CellExecutor::new(env_config());
    let cfg = exec.config();
    eprintln!("fig5: seeds={} scale={} jobs={}", cfg.seeds, cfg.scale, cfg.jobs);
    let panels = figure5(&exec, &THREADS_TABLE);
    for p in &panels {
        print!("{}", p.render());
        println!();
    }
    eprintln!("fig5: {} cells simulated, {} cache hits", exec.misses(), exec.hits());
    if maybe_write_json(&panels).expect("writing JSON report") {
        eprintln!("fig5: JSON written to $SEER_REPORT_JSON");
    }
}
