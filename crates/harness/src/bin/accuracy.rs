//! Extra experiment: how accurate is Seer's probabilistic inference?
//!
//! The simulator records the true killer of every conflict abort — an
//! oracle no real HTM provides. This binary compares Seer's inferred
//! serialization pairs against that ground truth (pairs responsible for
//! at least 5% of a run's kills), per benchmark at 8 threads.

use seer_harness::{env_config, inference_accuracy, maybe_write_json};

fn main() {
    let cfg = env_config();
    eprintln!("accuracy: scale={} jobs={}", cfg.scale, cfg.jobs);
    let results = inference_accuracy(8, cfg.scale, 0.05);
    println!("{:<16}{:>10}{:>10}{:>10}{:>8}", "benchmark", "precision", "recall", "inferred", "truth");
    for r in &results {
        println!(
            "{:<16}{:>10.2}{:>10.2}{:>10}{:>8}",
            r.benchmark, r.precision, r.recall, r.inferred, r.truth
        );
    }
    if maybe_write_json(&results).expect("writing JSON report") {
        eprintln!("accuracy: JSON written to $SEER_REPORT_JSON");
    }
}
