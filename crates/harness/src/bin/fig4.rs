//! Regenerates Figure 4: the overhead of Seer's monitoring, inference and
//! self-tuning with every lock acquisition disabled, relative to RTM.

use seer_harness::{env_config, figure4, maybe_write_json, THREADS_FULL};

fn main() {
    let cfg = env_config();
    eprintln!("fig4: seeds={} scale={}", cfg.seeds, cfg.scale);
    let panel = figure4(&cfg, &THREADS_FULL);
    print!("{}", panel.render());
    println!();
    println!("Values below 1.0 are pure instrumentation overhead; the paper");
    println!("reports a mean slowdown below 5% and at most 8%.");
    if maybe_write_json(&panel).expect("writing JSON report") {
        eprintln!("fig4: JSON written to $SEER_REPORT_JSON");
    }
}
