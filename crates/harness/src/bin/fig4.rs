//! Regenerates Figure 4: the overhead of Seer's monitoring, inference and
//! self-tuning with every lock acquisition disabled, relative to RTM.

use seer_harness::{env_config, figure4, maybe_write_json, CellExecutor, THREADS_FULL};

fn main() {
    let exec = CellExecutor::new(env_config());
    let cfg = exec.config();
    eprintln!("fig4: seeds={} scale={} jobs={}", cfg.seeds, cfg.scale, cfg.jobs);
    let panel = figure4(&exec, &THREADS_FULL);
    print!("{}", panel.render());
    println!();
    println!("Values below 1.0 are pure instrumentation overhead; the paper");
    println!("reports a mean slowdown below 5% and at most 8%.");
    eprintln!("fig4: {} cells simulated, {} cache hits", exec.misses(), exec.hits());
    if maybe_write_json(&panel).expect("writing JSON report") {
        eprintln!("fig4: JSON written to $SEER_REPORT_JSON");
    }
}
