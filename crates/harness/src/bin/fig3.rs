//! Regenerates Figure 3: speedup of HLE/RTM/SCM/Seer over sequential
//! execution, per STAMP benchmark (panels a-h) and geometric mean (i).

use seer_harness::{env_config, figure3, maybe_write_json, THREADS_FULL};

fn main() {
    let cfg = env_config();
    eprintln!("fig3: seeds={} scale={} (set SEER_SEEDS / SEER_SCALE to adjust)", cfg.seeds, cfg.scale);
    let panels = figure3(&cfg, &THREADS_FULL);
    for p in &panels {
        print!("{}", p.render());
        println!();
    }
    if maybe_write_json(&panels).expect("writing JSON report") {
        eprintln!("fig3: JSON written to $SEER_REPORT_JSON");
    }
}
