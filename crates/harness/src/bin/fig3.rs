//! Regenerates Figure 3: speedup of HLE/RTM/SCM/Seer over sequential
//! execution, per STAMP benchmark (panels a-h) and geometric mean (i).

use seer_harness::{env_config, figure3, maybe_write_json, CellExecutor, THREADS_FULL};

fn main() {
    let exec = CellExecutor::new(env_config());
    let cfg = exec.config();
    eprintln!(
        "fig3: seeds={} scale={} jobs={} (set SEER_SEEDS / SEER_SCALE / SEER_JOBS to adjust)",
        cfg.seeds, cfg.scale, cfg.jobs
    );
    let panels = figure3(&exec, &THREADS_FULL);
    for p in &panels {
        print!("{}", p.render());
        println!();
    }
    eprintln!("fig3: {} cells simulated, {} cache hits", exec.misses(), exec.hits());
    if maybe_write_json(&panels).expect("writing JSON report") {
        eprintln!("fig3: JSON written to $SEER_REPORT_JSON");
    }
}
