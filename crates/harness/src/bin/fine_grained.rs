//! Extra experiment: the paper's §6 future-work direction — locks keyed by
//! (atomic block × data structure) instead of atomic block alone, via
//! `seer_stamp::RefinedModel`. Prints plain-vs-refined Seer speedups and
//! the size of the inferred conflict relation at 8 threads.

use seer_harness::{env_config, fine_grained, maybe_write_json};

fn main() {
    let cfg = env_config();
    eprintln!("fine_grained: seeds={} scale={} jobs={}", cfg.seeds, cfg.scale, cfg.jobs);
    let results = fine_grained(8, cfg.scale, cfg.seeds);
    println!(
        "{:<16}{:>10}{:>10}{:>14}{:>15}",
        "benchmark", "plain", "refined", "plain pairs", "refined pairs"
    );
    for r in &results {
        println!(
            "{:<16}{:>10.2}{:>10.2}{:>14}{:>15}",
            r.benchmark, r.plain, r.refined, r.plain_pairs, r.refined_pairs
        );
    }
    println!("\nRefinement buys precision (pairs name structures, not whole blocks)");
    println!("at the cost of slower convergence (statistics spread over more cells).");
    if maybe_write_json(&results).expect("writing JSON report") {
        eprintln!("fine_grained: JSON written to $SEER_REPORT_JSON");
    }
}
