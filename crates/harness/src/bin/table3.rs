//! Regenerates Table 3: breakdown of committed-transaction modes per
//! scheduler at 2/4/6/8 threads, averaged across STAMP, plus the paper's
//! §5.2 fine-granularity statistic for Seer's transaction locks.

use seer_harness::{env_config, maybe_write_json, table3, CellExecutor, THREADS_TABLE};

fn main() {
    let exec = CellExecutor::new(env_config());
    let cfg = exec.config();
    eprintln!("table3: seeds={} scale={} jobs={}", cfg.seeds, cfg.scale, cfg.jobs);
    let (tables, lock_fraction) = table3(&exec, &THREADS_TABLE);
    for t in &tables {
        print!("{}", t.render());
        println!();
    }
    if let Some(f) = lock_fraction {
        println!(
            "Seer fine-granularity statistic (§5.2): when transaction locks are\n\
             acquired, the median fraction of the available transaction locks\n\
             taken is {:.0}% (the paper reports < 23% in 50% of the cases).",
            f * 100.0
        );
    }
    eprintln!("table3: {} cells simulated, {} cache hits", exec.misses(), exec.hits());
    if maybe_write_json(&tables).expect("writing JSON report") {
        eprintln!("table3: JSON written to $SEER_REPORT_JSON");
    }
}
