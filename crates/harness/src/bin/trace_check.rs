//! Schema checker for decision-provenance JSONL traces (CI gate).
//!
//! Validates every line of a trace file produced by `seer run --trace`
//! (or `seer_harness::write_trace_jsonl`) against the schema documented
//! in `DESIGN.md` §10: known record type, required fields present with
//! the right JSON types, enum-valued fields restricted to their
//! documented labels. Exits non-zero on the first violation, printing
//! the offending line number and reason; on success prints a per-type
//! record count summary.
//!
//! Usage: `trace_check <trace.jsonl>`

use std::process::ExitCode;

use seer_harness::Json;

/// Lifecycle record types and their extra required fields beyond the
/// common `type`/`at`/`thread` triple, as `(name, kind)` pairs.
const LIFECYCLE_SCHEMAS: &[(&str, &[(&str, FieldKind)])] = &[
    ("attempt-begin", &[("block", FieldKind::UInt), ("attempt", FieldKind::UInt)]),
    (
        "abort",
        &[
            ("block", FieldKind::UInt),
            ("cause", FieldKind::AbortCause),
            ("attempts_left", FieldKind::UInt),
        ],
    ),
    ("lock-wait", &[("lock", FieldKind::LockLabel), ("holder", FieldKind::UIntOrNull)]),
    ("locks-acquired", &[("locks", FieldKind::LockArray)]),
    ("sgl-fallback", &[("block", FieldKind::UInt)]),
    ("htm-commit", &[("block", FieldKind::UInt), ("attempts_used", FieldKind::UInt)]),
    ("fallback-commit", &[("block", FieldKind::UInt)]),
];

const ABORT_CAUSES: &[&str] = &["conflict", "capacity", "explicit", "other"];
const VERDICTS: &[&str] = &["serialize", "reject-th1", "reject-th2", "reject-both"];

#[derive(Clone, Copy)]
enum FieldKind {
    UInt,
    UIntOrNull,
    AbortCause,
    LockLabel,
    LockArray,
}

fn check_lock_label(s: &str) -> bool {
    s == "sgl"
        || s == "aux"
        || s.strip_prefix("core:").is_some_and(|n| n.parse::<u64>().is_ok())
        || s.strip_prefix("tx:").is_some_and(|n| n.parse::<u64>().is_ok())
}

fn check_field(rec: &Json, name: &str, kind: FieldKind) -> Result<(), String> {
    let v = rec.get(name).ok_or_else(|| format!("missing field {name:?}"))?;
    let ok = match kind {
        FieldKind::UInt => v.as_u64().is_some(),
        FieldKind::UIntOrNull => v.as_u64().is_some() || matches!(v, Json::Null),
        FieldKind::AbortCause => v.as_str().is_some_and(|s| ABORT_CAUSES.contains(&s)),
        FieldKind::LockLabel => v.as_str().is_some_and(check_lock_label),
        FieldKind::LockArray => v
            .as_array()
            .is_some_and(|a| a.iter().all(|l| l.as_str().is_some_and(check_lock_label))),
    };
    if ok {
        Ok(())
    } else {
        Err(format!("field {name:?} has invalid value"))
    }
}

fn check_inference(rec: &Json) -> Result<(), String> {
    for name in ["at", "round", "total_execs"] {
        check_field(rec, name, FieldKind::UInt)?;
    }
    let digest = rec
        .get("stats_digest")
        .and_then(|d| d.as_str())
        .ok_or("missing field \"stats_digest\"")?;
    if !digest.starts_with("0x") || u64::from_str_radix(&digest[2..], 16).is_err() {
        return Err(format!("stats_digest {digest:?} is not a hex literal"));
    }
    for name in ["th1", "th2"] {
        if rec.get(name).and_then(|v| v.as_f64()).is_none() {
            return Err(format!("field {name:?} is not a number"));
        }
    }
    let rows = rec
        .get("rows")
        .and_then(|r| r.as_array())
        .ok_or("field \"rows\" is not an array")?;
    for row in rows {
        check_field(row, "x", FieldKind::UInt)?;
        for name in ["eta", "sigma2", "cutoff"] {
            if row.get(name).and_then(|v| v.as_f64()).is_none() {
                return Err(format!("row field {name:?} is not a number"));
            }
        }
        if !matches!(row.get("discriminative"), Some(Json::Bool(_))) {
            return Err("row field \"discriminative\" is not a bool".to_string());
        }
        let pairs = row
            .get("pairs")
            .and_then(|p| p.as_array())
            .ok_or("row field \"pairs\" is not an array")?;
        for pair in pairs {
            check_field(pair, "y", FieldKind::UInt)?;
            for name in ["conditional", "conjunctive"] {
                if pair.get(name).and_then(|v| v.as_f64()).is_none() {
                    return Err(format!("pair field {name:?} is not a number"));
                }
            }
            let verdict = pair
                .get("verdict")
                .and_then(|v| v.as_str())
                .ok_or("pair field \"verdict\" is not a string")?;
            if !VERDICTS.contains(&verdict) {
                return Err(format!("unknown verdict {verdict:?}"));
            }
        }
    }
    Ok(())
}

fn check_record(rec: &Json) -> Result<&'static str, String> {
    let ty = rec
        .get("type")
        .and_then(|t| t.as_str())
        .ok_or("missing or non-string \"type\" field")?;
    if ty == "inference" {
        check_inference(rec)?;
        return Ok("inference");
    }
    let (name, fields) = LIFECYCLE_SCHEMAS
        .iter()
        .find(|(name, _)| *name == ty)
        .ok_or_else(|| format!("unknown record type {ty:?}"))?;
    check_field(rec, "at", FieldKind::UInt)?;
    check_field(rec, "thread", FieldKind::UInt)?;
    for (field, kind) in *fields {
        check_field(rec, field, *kind)?;
    }
    Ok(name)
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: trace_check <trace.jsonl>");
        return ExitCode::FAILURE;
    };
    let content = match std::fs::read_to_string(&path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("trace_check: cannot read {path:?}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut counts: Vec<(&'static str, u64)> = Vec::new();
    let mut last_at = 0u64;
    for (lineno, line) in content.lines().enumerate() {
        let lineno = lineno + 1;
        let rec = match Json::parse(line) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{path}:{lineno}: not valid JSON: {e}");
                return ExitCode::FAILURE;
            }
        };
        let ty = match check_record(&rec) {
            Ok(ty) => ty,
            Err(e) => {
                eprintln!("{path}:{lineno}: {e}");
                return ExitCode::FAILURE;
            }
        };
        // The exporter merges both streams chronologically.
        let at = rec.get("at").and_then(|a| a.as_u64()).unwrap();
        if at < last_at {
            eprintln!("{path}:{lineno}: timestamp {at} goes backwards (previous {last_at})");
            return ExitCode::FAILURE;
        }
        last_at = at;
        match counts.iter_mut().find(|(name, _)| *name == ty) {
            Some((_, n)) => *n += 1,
            None => counts.push((ty, 1)),
        }
    }
    let total: u64 = counts.iter().map(|(_, n)| n).sum();
    if total == 0 {
        eprintln!("trace_check: {path}: no records");
        return ExitCode::FAILURE;
    }
    println!("trace_check: {path}: {total} records OK");
    for (name, n) in &counts {
        println!("  {name:<16} {n}");
    }
    ExitCode::SUCCESS
}
