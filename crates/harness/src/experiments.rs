//! The paper's experiments as reusable functions, one per table/figure.
//!
//! Each function *declares* its grid as a [`Plan`], hands it to the shared
//! [`CellExecutor`] (which deduplicates, memoizes, and fans work out across
//! `cfg.jobs` OS threads), then assembles the figure from cached results;
//! the `src/bin/*` binaries render them. Tests and the Criterion benches
//! call the same functions at reduced scale, so every number in
//! `EXPERIMENTS.md` is regenerable from exactly one place — and figures
//! sharing cells (Table 3 re-reads every Figure 3 cell; Figures 4/5 share
//! the profile-only baselines) simulate each unique cell exactly once per
//! executor.

use seer_stamp::Benchmark;

use crate::exec::{parallel_map, CellExecutor, Plan};
use crate::json::{Json, ToJson};
use crate::policy::PolicyKind;
use crate::report::{Panel, PercentTable, Series};
use crate::runner::{default_jobs, execute_cell, geometric_mean, Cell};

/// Thread counts swept by Figure 3 / Figure 4.
pub const THREADS_FULL: [usize; 8] = [1, 2, 3, 4, 5, 6, 7, 8];
/// Thread counts reported by Table 3 / Figure 5.
pub const THREADS_TABLE: [usize; 4] = [2, 4, 6, 8];

fn cell(benchmark: Benchmark, policy: PolicyKind, threads: usize) -> Cell {
    Cell {
        benchmark,
        policy,
        threads,
    }
}

/// Figure 3: speedup of HLE/RTM/SCM/Seer over sequential, per benchmark
/// (panels a–h) plus the geometric-mean panel (i).
pub fn figure3(exec: &CellExecutor, threads: &[usize]) -> Vec<Panel> {
    let mut plan = Plan::new();
    plan.add_grid(&Benchmark::STAMP, &PolicyKind::FIGURE3, threads, exec.config());
    exec.execute(&plan);

    let mut panels = Vec::new();
    // Per-policy, per-thread speedups across benchmarks, for the geo-mean.
    let mut all: Vec<Vec<Vec<f64>>> =
        vec![vec![Vec::new(); threads.len()]; PolicyKind::FIGURE3.len()];
    for &benchmark in &Benchmark::STAMP {
        let mut series = Vec::new();
        for (pi, &policy) in PolicyKind::FIGURE3.iter().enumerate() {
            let mut points = Vec::new();
            for (ti, &t) in threads.iter().enumerate() {
                let r = exec.cell(cell(benchmark, policy, t));
                points.push((t, r.speedup));
                all[pi][ti].push(r.speedup);
            }
            series.push(Series {
                label: policy.label().to_string(),
                points,
            });
        }
        panels.push(Panel {
            title: benchmark.name().to_string(),
            series,
        });
    }
    let geo_series = PolicyKind::FIGURE3
        .iter()
        .enumerate()
        .map(|(pi, &policy)| Series {
            label: policy.label().to_string(),
            points: threads
                .iter()
                .enumerate()
                .map(|(ti, &t)| (t, geometric_mean(&all[pi][ti])))
                .collect(),
        })
        .collect();
    panels.push(Panel {
        title: "geometric mean in STAMP".to_string(),
        series: geo_series,
    });
    panels
}

/// Table 3: breakdown of committed-transaction modes per policy at the
/// reported thread counts, averaged across the STAMP benchmarks. Returns
/// one table per policy, plus (as the paper's §5.2 text reports) the mean
/// per-run median fraction of transaction locks Seer acquires.
pub fn table3(exec: &CellExecutor, threads: &[usize]) -> (Vec<PercentTable>, Option<f64>) {
    use seer_runtime::TxMode;
    let mut plan = Plan::new();
    plan.add_grid(&Benchmark::STAMP, &PolicyKind::FIGURE3, threads, exec.config());
    exec.execute(&plan);

    let mut tables = Vec::new();
    let mut seer_lock_fractions = Vec::new();
    for &policy in &PolicyKind::FIGURE3 {
        let mut rows: Vec<(String, Vec<f64>)> = TxMode::ALL
            .iter()
            .map(|m| (m.label().to_string(), Vec::new()))
            .collect();
        for &t in threads {
            let mut mode_acc = [0.0f64; 6];
            for &benchmark in &Benchmark::STAMP {
                let r = exec.cell(cell(benchmark, policy, t));
                for (acc, f) in mode_acc.iter_mut().zip(r.mode_fractions) {
                    *acc += f;
                }
                if policy == PolicyKind::Seer {
                    if let Some(f) = r.median_tx_lock_fraction {
                        seer_lock_fractions.push(f);
                    }
                }
            }
            for i in 0..6 {
                rows[i].1.push(mode_acc[i] / Benchmark::STAMP.len() as f64);
            }
        }
        // The paper's Table 3 only prints rows a variant can populate.
        let rows = rows
            .into_iter()
            .filter(|(_, values)| values.iter().any(|&v| v >= 0.0005))
            .collect();
        tables.push(PercentTable {
            title: policy.label().to_string(),
            columns: threads.iter().map(|t| format!("{t}t")).collect(),
            rows,
        });
    }
    let lock_fraction = if seer_lock_fractions.is_empty() {
        None
    } else {
        Some(seer_lock_fractions.iter().sum::<f64>() / seer_lock_fractions.len() as f64)
    };
    (tables, lock_fraction)
}

/// Figure 4: geometric-mean speedup of profile-only Seer relative to RTM,
/// per thread count — the cost of monitoring + inference + self-tuning
/// without any scheduling benefit. Includes the low-contention hash map as
/// an extra series (§5.3 reports ≤4% overhead there).
pub fn figure4(exec: &CellExecutor, threads: &[usize]) -> Panel {
    let mut benchmarks = Benchmark::STAMP.to_vec();
    benchmarks.push(Benchmark::HashmapLow);
    let mut plan = Plan::new();
    plan.add_grid(
        &benchmarks,
        &[PolicyKind::Rtm, PolicyKind::SeerProfileOnly],
        threads,
        exec.config(),
    );
    exec.execute(&plan);

    let mut stamp_points = Vec::new();
    let mut hashmap_points = Vec::new();
    for &t in threads {
        let mut ratios = Vec::new();
        for &benchmark in &Benchmark::STAMP {
            let rtm = exec.cell(cell(benchmark, PolicyKind::Rtm, t));
            let prof = exec.cell(cell(benchmark, PolicyKind::SeerProfileOnly, t));
            ratios.push(prof.speedup / rtm.speedup);
        }
        stamp_points.push((t, geometric_mean(&ratios)));

        let rtm = exec.cell(cell(Benchmark::HashmapLow, PolicyKind::Rtm, t));
        let prof = exec.cell(cell(Benchmark::HashmapLow, PolicyKind::SeerProfileOnly, t));
        hashmap_points.push((t, prof.speedup / rtm.speedup));
    }
    Panel {
        title: "Seer(profile-only) relative to RTM".to_string(),
        series: vec![
            Series {
                label: "STAMP geo-mean".to_string(),
                points: stamp_points,
            },
            Series {
                label: "hashmap-low".to_string(),
                points: hashmap_points,
            },
        ],
    }
}

/// Figure 5: cumulative contribution of each Seer mechanism — speedup of
/// each variant relative to the profile-only baseline, per benchmark and
/// thread count, plus the geometric-mean panel.
pub fn figure5(exec: &CellExecutor, threads: &[usize]) -> Vec<Panel> {
    let mut plan = Plan::new();
    plan.add_grid(&Benchmark::STAMP, &PolicyKind::FIGURE5, threads, exec.config());
    exec.execute(&plan);

    let mut panels = Vec::new();
    let variants = &PolicyKind::FIGURE5[1..]; // baseline is the divisor
    let mut all: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); threads.len()]; variants.len()];
    for &benchmark in &Benchmark::STAMP {
        let base: Vec<f64> = threads
            .iter()
            .map(|&t| exec.cell(cell(benchmark, PolicyKind::SeerProfileOnly, t)).speedup)
            .collect();
        let mut series = Vec::new();
        for (vi, &policy) in variants.iter().enumerate() {
            let mut points = Vec::new();
            for (ti, &t) in threads.iter().enumerate() {
                let r = exec.cell(cell(benchmark, policy, t));
                let rel = r.speedup / base[ti];
                points.push((t, rel));
                all[vi][ti].push(rel);
            }
            series.push(Series {
                label: policy.label().to_string(),
                points,
            });
        }
        panels.push(Panel {
            title: benchmark.name().to_string(),
            series,
        });
    }
    let geo = variants
        .iter()
        .enumerate()
        .map(|(vi, &policy)| Series {
            label: policy.label().to_string(),
            points: threads
                .iter()
                .enumerate()
                .map(|(ti, &t)| (t, geometric_mean(&all[vi][ti])))
                .collect(),
        })
        .collect();
    panels.push(Panel {
        title: "geo-mean".to_string(),
        series: geo,
    });
    panels
}

/// §5.3 core-locks-only ablation: geometric-mean speedup of
/// core-locks-only Seer relative to profile-only Seer (the paper reports
/// +9% at 6 threads and +22% at 8).
pub fn core_locks_only(exec: &CellExecutor, threads: &[usize]) -> Panel {
    let mut plan = Plan::new();
    plan.add_grid(
        &Benchmark::STAMP,
        &[PolicyKind::SeerProfileOnly, PolicyKind::SeerCoreLocksOnly],
        threads,
        exec.config(),
    );
    exec.execute(&plan);

    let mut points = Vec::new();
    for &t in threads {
        let mut ratios = Vec::new();
        for &benchmark in &Benchmark::STAMP {
            let base = exec.cell(cell(benchmark, PolicyKind::SeerProfileOnly, t));
            let core = exec.cell(cell(benchmark, PolicyKind::SeerCoreLocksOnly, t));
            ratios.push(core.speedup / base.speedup);
        }
        points.push((t, geometric_mean(&ratios)));
    }
    Panel {
        title: "core-locks-only relative to profile-only".to_string(),
        series: vec![Series {
            label: "geo-mean".to_string(),
            points,
        }],
    }
}

/// Inference-accuracy scores for one benchmark at one thread count.
#[derive(Debug, Clone)]
pub struct AccuracyResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Fraction of inferred pairs that are true conflicts (per ground
    /// truth).
    pub precision: f64,
    /// Fraction of significant true conflicts that were inferred.
    pub recall: f64,
    /// Number of pairs Seer serialized.
    pub inferred: usize,
    /// Number of significant pairs in the ground truth.
    pub truth: usize,
}

impl ToJson for AccuracyResult {
    fn to_json(&self) -> Json {
        Json::object([
            ("benchmark", self.benchmark.to_json()),
            ("precision", self.precision.to_json()),
            ("recall", self.recall.to_json()),
            ("inferred", self.inferred.to_json()),
            ("truth", self.truth.to_json()),
        ])
    }
}

/// Extra experiment (not in the paper, enabled by the simulator's oracle):
/// score Seer's inferred conflict relation against the ground-truth kill
/// matrix. A true pair is one responsible for ≥ `significance` of the
/// victim block's recorded kills. Benchmarks fan out across `SEER_JOBS`
/// threads (these runs need post-run scheduler state, so they bypass the
/// cell cache).
pub fn inference_accuracy(threads: usize, scale: f64, significance: f64) -> Vec<AccuracyResult> {
    use seer::{Seer, SeerConfig};
    use seer_runtime::{run, DriverConfig, Workload};

    parallel_map(&Benchmark::STAMP, default_jobs(), |&benchmark| {
        let mut workload = benchmark.instantiate_scaled(threads, scale);
        let blocks = workload.num_blocks();
        let mut sched = Seer::new(SeerConfig::full(), threads, blocks);
        let metrics = run(&mut workload, &mut sched, &DriverConfig::paper_machine(threads, 7));
        sched.force_update();

        // Symmetrized ground truth: a pair is significant if its kills (in
        // either direction) reach `significance` of the total.
        let total_kills = metrics.ground_truth.total().max(1);
        let min_kills = ((total_kills as f64) * significance).ceil() as u64;
        let mut truth: Vec<(usize, usize)> = Vec::new();
        for v in 0..blocks {
            for k in v..blocks {
                let kills = metrics.ground_truth.get(v, k)
                    + if v == k { 0 } else { metrics.ground_truth.get(k, v) };
                if kills >= min_kills {
                    truth.push((v, k));
                }
            }
        }
        let mut inferred: Vec<(usize, usize)> = sched
            .inferred_pairs()
            .into_iter()
            .map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
            .collect();
        inferred.sort_unstable();
        inferred.dedup();

        let hits = inferred.iter().filter(|p| truth.contains(p)).count();
        let precision = if inferred.is_empty() {
            1.0
        } else {
            hits as f64 / inferred.len() as f64
        };
        let recall = if truth.is_empty() {
            1.0
        } else {
            hits as f64 / truth.len() as f64
        };
        AccuracyResult {
            benchmark: benchmark.name().to_string(),
            precision,
            recall,
            inferred: inferred.len(),
            truth: truth.len(),
        }
    })
}

/// One row of the fine-grained (structure-refined) extension experiment.
#[derive(Debug, Clone)]
pub struct FineGrainedResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Speedup of plain (per-atomic-block) Seer.
    pub plain: f64,
    /// Speedup of structure-refined Seer.
    pub refined: f64,
    /// Serialized pairs in the plain lock table.
    pub plain_pairs: usize,
    /// Serialized pairs in the refined lock table.
    pub refined_pairs: usize,
}

impl ToJson for FineGrainedResult {
    fn to_json(&self) -> Json {
        Json::object([
            ("benchmark", self.benchmark.to_json()),
            ("plain", self.plain.to_json()),
            ("refined", self.refined.to_json()),
            ("plain_pairs", self.plain_pairs.to_json()),
            ("refined_pairs", self.refined_pairs.to_json()),
        ])
    }
}

/// Future-work extension experiment (paper §6): Seer with block-granular
/// locks vs Seer with (block × data-structure)-granular locks, obtained by
/// refining block ids with `seer_stamp::RefinedModel`. Benchmarks fan out
/// across `SEER_JOBS` threads.
pub fn fine_grained(threads: usize, scale: f64, seeds: u64) -> Vec<FineGrainedResult> {
    use seer::{Seer, SeerConfig};
    use seer_runtime::{run, DriverConfig, Workload};
    use seer_stamp::RefinedModel;

    const STRUCTURES: usize = 4;
    parallel_map(&Benchmark::STAMP, default_jobs(), |&benchmark| {
        let mut plain_speedup = 0.0;
        let mut refined_speedup = 0.0;
        let mut plain_pairs = 0usize;
        let mut refined_pairs = 0usize;
        for seed in 0..seeds {
            let cfg = DriverConfig::paper_machine(threads, 0xF17E + seed * 4099);

            let mut w = benchmark.instantiate_scaled(threads, scale);
            let blocks = w.num_blocks();
            let mut sched = Seer::new(SeerConfig::full(), threads, blocks);
            let m = run(&mut w, &mut sched, &cfg);
            plain_speedup += m.speedup() / seeds as f64;
            plain_pairs = plain_pairs.max(sched.inferred_pairs().len());

            let mut w = RefinedModel::new(benchmark.instantiate_scaled(threads, scale), STRUCTURES);
            let blocks = w.num_blocks();
            let mut sched = Seer::new(SeerConfig::full(), threads, blocks);
            let m = run(&mut w, &mut sched, &cfg);
            refined_speedup += m.speedup() / seeds as f64;
            refined_pairs = refined_pairs.max(sched.inferred_pairs().len());
        }
        FineGrainedResult {
            benchmark: benchmark.name().to_string(),
            plain: plain_speedup,
            refined: refined_speedup,
            plain_pairs,
            refined_pairs,
        }
    })
}

/// Convergence of the probabilistic inference for one benchmark.
#[derive(Debug, Clone)]
pub struct ConvergenceResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Virtual time of the last lock-scheme *change*, if any.
    pub converged_at: Option<u64>,
    /// Total run length (makespan), for normalization.
    pub makespan: u64,
    /// Fraction of the run spent before convergence (None = never locked).
    pub converged_fraction: Option<f64>,
    /// Number of recomputations performed in-run.
    pub updates: u64,
}

impl ToJson for ConvergenceResult {
    fn to_json(&self) -> Json {
        Json::object([
            ("benchmark", self.benchmark.to_json()),
            ("converged_at", self.converged_at.to_json()),
            ("makespan", self.makespan.to_json()),
            ("converged_fraction", self.converged_fraction.to_json()),
            ("updates", self.updates.to_json()),
        ])
    }
}

/// Extra experiment: how quickly does Seer's locking scheme converge?
/// The paper motivates its "relatively aggressive monitoring/optimization
/// rates" by STAMP's short runs (§5.3); this measures the resulting
/// convergence point directly. Benchmarks fan out across `SEER_JOBS`
/// threads.
pub fn convergence(threads: usize, scale: f64) -> Vec<ConvergenceResult> {
    use seer::{Seer, SeerConfig};
    use seer_runtime::{run, DriverConfig, Workload};

    parallel_map(&Benchmark::STAMP, default_jobs(), |&benchmark| {
        let mut workload = benchmark.instantiate_scaled(threads, scale);
        let blocks = workload.num_blocks();
        let mut sched = Seer::new(SeerConfig::full(), threads, blocks);
        let m = run(&mut workload, &mut sched, &DriverConfig::paper_machine(threads, 31));
        let converged_at = sched.converged_at();
        ConvergenceResult {
            benchmark: benchmark.name().to_string(),
            converged_at,
            makespan: m.makespan,
            converged_fraction: converged_at.map(|t| t as f64 / m.makespan.max(1) as f64),
            updates: sched.counters().updates,
        }
    })
}

/// Quick single-cell speedup at harness seed 0 (used by benches and
/// tests).
pub fn quick_speedup(benchmark: Benchmark, policy: PolicyKind, threads: usize, scale: f64) -> f64 {
    execute_cell(cell(benchmark, policy, threads), 0, scale, None).speedup()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::HarnessConfig;

    fn tiny() -> CellExecutor {
        CellExecutor::new(HarnessConfig {
            seeds: 1,
            scale: 0.08,
            jobs: 2,
        })
    }

    #[test]
    fn figure3_has_nine_panels() {
        let panels = figure3(&tiny(), &[2, 4]);
        assert_eq!(panels.len(), 9);
        assert_eq!(panels[8].title, "geometric mean in STAMP");
        for p in &panels {
            assert_eq!(p.series.len(), 4);
            for s in &p.series {
                assert_eq!(s.points.len(), 2);
                assert!(s.points.iter().all(|&(_, y)| y > 0.0));
            }
        }
    }

    #[test]
    fn table3_covers_policies_and_threads() {
        let (tables, _) = table3(&tiny(), &[4]);
        assert_eq!(tables.len(), 4);
        for t in &tables {
            assert_eq!(t.columns, vec!["4t"]);
            // Percentages per column sum to ~100.
            let col_total: f64 = t.rows.iter().map(|(_, v)| v[0]).sum();
            assert!((col_total - 1.0).abs() < 1e-6, "{} sums to {col_total}", t.title);
        }
    }

    #[test]
    fn figure4_produces_ratio_series() {
        let p = figure4(&tiny(), &[2]);
        assert_eq!(p.series.len(), 2);
        let (_, r) = p.series[0].points[0];
        assert!(r > 0.5 && r < 1.5, "overhead ratio implausible: {r}");
    }

    #[test]
    fn accuracy_scores_are_probabilities() {
        for a in inference_accuracy(4, 0.08, 0.05) {
            assert!((0.0..=1.0).contains(&a.precision), "{a:?}");
            assert!((0.0..=1.0).contains(&a.recall), "{a:?}");
        }
    }
}
