//! Named scheduler configurations used by the experiments.

use seer::{Seer, SeerConfig, SeerParams};
use seer_baselines::{Ats, Hle, Rtm, Scm};
use seer_runtime::Scheduler;

/// A searched set of Seer scheduling knobs, bit-packed so the enclosing
/// [`PolicyKind`] stays `Copy + Eq + Hash` (floats are carried as their
/// IEEE-754 bit patterns, which [`f64::to_bits`] makes total-ordered for
/// the finite values the tuner produces).
///
/// Round-trips losslessly through the textual policy spec (see
/// [`PolicyKind::spec`]): Rust's `f64` `Display` is shortest-round-trip,
/// so `format!("{v}")` parses back to the identical bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TunedParams {
    update_period_execs: u64,
    climb_period_execs: u64,
    /// `0` encodes "never decay" (`None` in [`SeerParams`]).
    decay_every_updates: u64,
    min_sigma_bits: u64,
    th1_bits: u64,
    th2_bits: u64,
}

impl TunedParams {
    /// Packs `params` for embedding in a [`PolicyKind::SeerTuned`].
    ///
    /// # Panics
    /// If any float knob is non-finite, a period is zero, or a decay of
    /// `Some(0)` sneaks in — all states the validated `ParamSpace` can
    /// never produce.
    pub fn from_params(params: SeerParams) -> Self {
        assert!(params.update_period_execs > 0, "update period must be positive");
        assert!(params.climb_period_execs > 0, "climb period must be positive");
        assert!(params.decay_every_updates != Some(0), "decay period must be positive");
        assert!(
            params.min_sigma.is_finite() && params.th1.is_finite() && params.th2.is_finite(),
            "tuned knobs must be finite"
        );
        Self {
            update_period_execs: params.update_period_execs,
            climb_period_execs: params.climb_period_execs,
            decay_every_updates: params.decay_every_updates.unwrap_or(0),
            min_sigma_bits: params.min_sigma.to_bits(),
            th1_bits: params.th1.to_bits(),
            th2_bits: params.th2.to_bits(),
        }
    }

    /// Unpacks back into the pure-data knob struct.
    pub fn params(self) -> SeerParams {
        SeerParams {
            update_period_execs: self.update_period_execs,
            climb_period_execs: self.climb_period_execs,
            decay_every_updates: match self.decay_every_updates {
                0 => None,
                n => Some(n),
            },
            min_sigma: f64::from_bits(self.min_sigma_bits),
            th1: f64::from_bits(self.th1_bits),
            th2: f64::from_bits(self.th2_bits),
        }
    }

    /// The canonical textual form: every knob, fixed order, shortest
    /// round-trip float rendering. Stable under parse → spec.
    fn spec(self) -> String {
        let p = self.params();
        let decay = match p.decay_every_updates {
            None => "off".to_string(),
            Some(n) => n.to_string(),
        };
        format!(
            "seer@window={},climb={},decay={},min-sigma={},th1={},th2={}",
            p.update_period_execs, p.climb_period_execs, decay, p.min_sigma, p.th1, p.th2
        )
    }

    /// Parses the `key=value` list after `seer@`. Missing keys take the
    /// paper defaults; unknown keys or out-of-range values are errors.
    fn parse_spec(body: &str, original: &str) -> Result<Self, UnknownPolicy> {
        let err = || UnknownPolicy(original.to_string());
        let mut p = SeerParams::default();
        for part in body.split(',') {
            let (key, value) = part.split_once('=').ok_or_else(err)?;
            match key.trim() {
                "window" => {
                    p.update_period_execs = value.parse().map_err(|_| err())?;
                    if p.update_period_execs == 0 {
                        return Err(err());
                    }
                }
                "climb" => {
                    p.climb_period_execs = value.parse().map_err(|_| err())?;
                    if p.climb_period_execs == 0 {
                        return Err(err());
                    }
                }
                "decay" => {
                    p.decay_every_updates = match value.trim() {
                        "off" => None,
                        n => match n.parse().map_err(|_| err())? {
                            0 => return Err(err()),
                            n => Some(n),
                        },
                    };
                }
                "min-sigma" => {
                    p.min_sigma = value.parse().map_err(|_| err())?;
                    if !p.min_sigma.is_finite() || p.min_sigma < 0.0 {
                        return Err(err());
                    }
                }
                "th1" => {
                    p.th1 = value.parse().map_err(|_| err())?;
                    if !(0.0..=1.0).contains(&p.th1) {
                        return Err(err());
                    }
                }
                "th2" => {
                    p.th2 = value.parse().map_err(|_| err())?;
                    if !(0.0..=1.0).contains(&p.th2) {
                        return Err(err());
                    }
                }
                _ => return Err(err()),
            }
        }
        Ok(Self::from_params(p))
    }
}

/// Every scheduler variant the evaluation section exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Hardware lock elision (Figure 3 baseline).
    Hle,
    /// Software retry + wait-on-SGL (Figure 3 baseline).
    Rtm,
    /// Software-assisted conflict management (Figure 3 baseline).
    Scm,
    /// Adaptive transaction scheduling (extra series; Table 1).
    Ats,
    /// Full Seer.
    Seer,
    /// Seer with all monitoring but no lock acquisition (Figure 4).
    SeerProfileOnly,
    /// Figure 5 cumulative variant: + transaction locks.
    SeerPlusTxLocks,
    /// Figure 5 cumulative variant: + core locks.
    SeerPlusCoreLocks,
    /// Figure 5 cumulative variant: + HTM multi-CAS lock acquisition.
    SeerPlusHtmLocks,
    /// Figure 5 cumulative variant: + hill climbing (== full Seer).
    SeerPlusHillClimbing,
    /// §5.3 ablation: core locks only.
    SeerCoreLocksOnly,
    /// Full Seer with searched scheduling knobs (produced by `seer tune`;
    /// not part of [`PolicyKind::ALL`] — the paper matrices only sweep
    /// the named variants).
    SeerTuned(TunedParams),
}

impl PolicyKind {
    /// Every policy variant, in declaration order (used by exhaustive
    /// sweeps such as the conformance replay matrix).
    pub const ALL: [PolicyKind; 11] = [
        PolicyKind::Hle,
        PolicyKind::Rtm,
        PolicyKind::Scm,
        PolicyKind::Ats,
        PolicyKind::Seer,
        PolicyKind::SeerProfileOnly,
        PolicyKind::SeerPlusTxLocks,
        PolicyKind::SeerPlusCoreLocks,
        PolicyKind::SeerPlusHtmLocks,
        PolicyKind::SeerPlusHillClimbing,
        PolicyKind::SeerCoreLocksOnly,
    ];

    /// The four curves of Figure 3, in the paper's legend order.
    pub const FIGURE3: [PolicyKind; 4] = [
        PolicyKind::Hle,
        PolicyKind::Rtm,
        PolicyKind::Scm,
        PolicyKind::Seer,
    ];

    /// The cumulative variants of Figure 5, in presentation order. The
    /// profile-only variant is the figure's baseline (speedup 1.0).
    pub const FIGURE5: [PolicyKind; 5] = [
        PolicyKind::SeerProfileOnly,
        PolicyKind::SeerPlusTxLocks,
        PolicyKind::SeerPlusCoreLocks,
        PolicyKind::SeerPlusHtmLocks,
        PolicyKind::SeerPlusHillClimbing,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Hle => "HLE",
            PolicyKind::Rtm => "RTM",
            PolicyKind::Scm => "SCM",
            PolicyKind::Ats => "ATS",
            PolicyKind::Seer => "Seer",
            PolicyKind::SeerProfileOnly => "Seer(profile-only)",
            PolicyKind::SeerPlusTxLocks => "+ tx-locks",
            PolicyKind::SeerPlusCoreLocks => "+ core-locks",
            PolicyKind::SeerPlusHtmLocks => "+ htm locks",
            PolicyKind::SeerPlusHillClimbing => "+ hill climbing",
            PolicyKind::SeerCoreLocksOnly => "Seer(core-locks-only)",
            PolicyKind::SeerTuned(_) => "Seer(tuned)",
        }
    }

    /// Stable CLI name; round-trips through [`FromStr`](std::str::FromStr)
    /// for every variant in [`PolicyKind::ALL`].
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Hle => "hle",
            PolicyKind::Rtm => "rtm",
            PolicyKind::Scm => "scm",
            PolicyKind::Ats => "ats",
            PolicyKind::Seer => "seer",
            PolicyKind::SeerProfileOnly => "seer-profile-only",
            PolicyKind::SeerPlusTxLocks => "seer-plus-tx-locks",
            PolicyKind::SeerPlusCoreLocks => "seer-plus-core-locks",
            PolicyKind::SeerPlusHtmLocks => "seer-plus-htm-locks",
            PolicyKind::SeerPlusHillClimbing => "seer-plus-hill-climbing",
            PolicyKind::SeerCoreLocksOnly => "seer-core-locks-only",
            PolicyKind::SeerTuned(_) => "seer-tuned",
        }
    }

    /// The full textual spec of this policy: equal to [`Self::name`] for
    /// every named variant, and a parameterized `seer@key=value,...`
    /// string for [`PolicyKind::SeerTuned`]. Always parses back to `self`
    /// through [`FromStr`](std::str::FromStr), which is what lets tuned
    /// policies travel through store keys and the remote wire protocol
    /// without any new message kinds.
    pub fn spec(self) -> String {
        match self {
            PolicyKind::SeerTuned(t) => t.spec(),
            named => named.name().to_string(),
        }
    }

    /// One-line description for `seer list`.
    pub fn describe(self) -> &'static str {
        match self {
            PolicyKind::Hle => "hardware lock elision (no scheduling)",
            PolicyKind::Rtm => "software retry + wait-on-fallback-lock",
            PolicyKind::Scm => "software-assisted conflict management (aux lock)",
            PolicyKind::Ats => "adaptive transaction scheduling (contention factor)",
            PolicyKind::Seer => "full Seer (probabilistic scheduling)",
            PolicyKind::SeerProfileOnly => "Seer monitoring without lock acquisition",
            PolicyKind::SeerPlusTxLocks => "Figure 5 cumulative: + transaction locks",
            PolicyKind::SeerPlusCoreLocks => "Figure 5 cumulative: + core locks",
            PolicyKind::SeerPlusHtmLocks => "Figure 5 cumulative: + HTM multi-CAS locks",
            PolicyKind::SeerPlusHillClimbing => "Figure 5 cumulative: + hill climbing (= full Seer)",
            PolicyKind::SeerCoreLocksOnly => "Seer with only per-core locks (§5.3 ablation)",
            PolicyKind::SeerTuned(_) => "full Seer with searched knobs (see `seer tune`)",
        }
    }

    /// Instantiates the scheduler for a run with `threads` threads over a
    /// program with `blocks` atomic blocks.
    pub fn build(self, threads: usize, blocks: usize) -> Box<dyn Scheduler> {
        match self {
            PolicyKind::Hle => Box::new(Hle::default()),
            PolicyKind::Rtm => Box::new(Rtm::default()),
            PolicyKind::Scm => Box::new(Scm::default()),
            PolicyKind::Ats => Box::new(Ats::new(threads)),
            PolicyKind::Seer => Box::new(Seer::new(SeerConfig::full(), threads, blocks)),
            PolicyKind::SeerProfileOnly => {
                Box::new(Seer::new(SeerConfig::profile_only(), threads, blocks))
            }
            PolicyKind::SeerPlusTxLocks => {
                Box::new(Seer::new(SeerConfig::plus_tx_locks(), threads, blocks))
            }
            PolicyKind::SeerPlusCoreLocks => {
                Box::new(Seer::new(SeerConfig::plus_core_locks(), threads, blocks))
            }
            PolicyKind::SeerPlusHtmLocks => {
                Box::new(Seer::new(SeerConfig::plus_htm_locks(), threads, blocks))
            }
            PolicyKind::SeerPlusHillClimbing => {
                Box::new(Seer::new(SeerConfig::plus_hill_climbing(), threads, blocks))
            }
            PolicyKind::SeerCoreLocksOnly => {
                Box::new(Seer::new(SeerConfig::core_locks_only(), threads, blocks))
            }
            PolicyKind::SeerTuned(t) => {
                Box::new(Seer::new(SeerConfig::with_params(t.params()), threads, blocks))
            }
        }
    }
}

/// Error returned when a policy name does not match any
/// [`PolicyKind::name`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownPolicy(pub String);

impl std::fmt::Display for UnknownPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown policy {:?} (see `seer list`)", self.0)
    }
}

impl std::error::Error for UnknownPolicy {}

impl std::str::FromStr for PolicyKind {
    type Err = UnknownPolicy;

    /// Parses a [`PolicyKind::name`] case-insensitively, or a full
    /// [`PolicyKind::spec`] — `seer@window=…,climb=…,decay=…,min-sigma=…,
    /// th1=…,th2=…` (each key optional, defaulting to the paper value) —
    /// into a [`PolicyKind::SeerTuned`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        if let Some(body) = lower.strip_prefix("seer@") {
            return TunedParams::parse_spec(body, s).map(PolicyKind::SeerTuned);
        }
        PolicyKind::ALL
            .into_iter()
            .find(|p| p.name() == lower)
            .ok_or_else(|| UnknownPolicy(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_members() {
        let labels: Vec<_> = PolicyKind::FIGURE3.iter().map(|p| p.label()).collect();
        assert_eq!(labels, vec!["HLE", "RTM", "SCM", "Seer"]);
    }

    #[test]
    fn all_policies_build() {
        for p in PolicyKind::ALL {
            let s = p.build(8, 5);
            assert!(s.attempt_budget() > 0, "{} has no budget", p.label());
        }
    }

    #[test]
    fn every_policy_name_round_trips() {
        for p in PolicyKind::ALL {
            assert_eq!(p.name().parse::<PolicyKind>().unwrap(), p, "{}", p.name());
            // Case-insensitive, as the CLI has always accepted.
            let upper = p.name().to_ascii_uppercase();
            assert_eq!(upper.parse::<PolicyKind>().unwrap(), p);
        }
        assert!("nope".parse::<PolicyKind>().is_err());
        let err = "Nope".parse::<PolicyKind>().unwrap_err();
        assert_eq!(err.0, "Nope");
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = PolicyKind::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PolicyKind::ALL.len());
    }

    #[test]
    fn spec_equals_name_for_named_variants() {
        for p in PolicyKind::ALL {
            assert_eq!(p.spec(), p.name());
        }
    }

    #[test]
    fn tuned_spec_round_trips_bit_exactly() {
        let params = seer::SeerParams {
            update_period_execs: 137,
            climb_period_execs: 850,
            decay_every_updates: Some(16),
            min_sigma: 0.012_345_678_901_234_5,
            th1: 0.1 + 0.2, // deliberately not representable "nicely"
            th2: 0.8375,
        };
        let p = PolicyKind::SeerTuned(TunedParams::from_params(params));
        assert_eq!(p.name(), "seer-tuned");
        let spec = p.spec();
        assert!(spec.starts_with("seer@window=137,climb=850,decay=16,"), "{spec}");
        let back: PolicyKind = spec.parse().unwrap();
        assert_eq!(back, p, "shortest-round-trip floats must survive the spec");
        // And the canonical form is a fixed point of parse → spec.
        assert_eq!(back.spec(), spec);
    }

    #[test]
    fn tuned_spec_defaults_missing_keys_to_paper_values() {
        let p: PolicyKind = "seer@decay=32".parse().unwrap();
        let PolicyKind::SeerTuned(t) = p else {
            panic!("expected a tuned policy")
        };
        let expected = seer::SeerParams {
            decay_every_updates: Some(32),
            ..seer::SeerParams::default()
        };
        assert_eq!(t.params(), expected);
        // `decay=off` is the explicit paper behaviour.
        let off: PolicyKind = "seer@decay=off".parse().unwrap();
        let PolicyKind::SeerTuned(t) = off else {
            panic!("expected a tuned policy")
        };
        assert_eq!(t.params(), seer::SeerParams::default());
    }

    #[test]
    fn malformed_tuned_specs_are_rejected() {
        for bad in [
            "seer@",
            "seer@window",
            "seer@window=0",
            "seer@climb=0",
            "seer@decay=0",
            "seer@th1=1.5",
            "seer@th2=-0.1",
            "seer@min-sigma=nan",
            "seer@min-sigma=inf",
            "seer@bogus=1",
            "seer@window=abc",
        ] {
            let err = bad.parse::<PolicyKind>().unwrap_err();
            assert_eq!(err.0, bad, "{bad} must be rejected");
        }
    }

    #[test]
    fn tuned_policy_builds_a_scheduler() {
        let p: PolicyKind = "seer@window=50,th1=0.2".parse().unwrap();
        let s = p.build(4, 3);
        assert!(s.attempt_budget() > 0);
        assert_eq!(p.label(), "Seer(tuned)");
    }

    #[test]
    fn tuned_with_default_params_matches_full_seer_config() {
        let t = TunedParams::from_params(seer::SeerParams::default());
        assert_eq!(
            seer::SeerConfig::with_params(t.params()),
            seer::SeerConfig::full()
        );
    }
}
