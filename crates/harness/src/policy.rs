//! Named scheduler configurations used by the experiments.

use seer::{Seer, SeerConfig};
use seer_baselines::{Ats, Hle, Rtm, Scm};
use seer_runtime::Scheduler;

/// Every scheduler variant the evaluation section exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Hardware lock elision (Figure 3 baseline).
    Hle,
    /// Software retry + wait-on-SGL (Figure 3 baseline).
    Rtm,
    /// Software-assisted conflict management (Figure 3 baseline).
    Scm,
    /// Adaptive transaction scheduling (extra series; Table 1).
    Ats,
    /// Full Seer.
    Seer,
    /// Seer with all monitoring but no lock acquisition (Figure 4).
    SeerProfileOnly,
    /// Figure 5 cumulative variant: + transaction locks.
    SeerPlusTxLocks,
    /// Figure 5 cumulative variant: + core locks.
    SeerPlusCoreLocks,
    /// Figure 5 cumulative variant: + HTM multi-CAS lock acquisition.
    SeerPlusHtmLocks,
    /// Figure 5 cumulative variant: + hill climbing (== full Seer).
    SeerPlusHillClimbing,
    /// §5.3 ablation: core locks only.
    SeerCoreLocksOnly,
}

impl PolicyKind {
    /// Every policy variant, in declaration order (used by exhaustive
    /// sweeps such as the conformance replay matrix).
    pub const ALL: [PolicyKind; 11] = [
        PolicyKind::Hle,
        PolicyKind::Rtm,
        PolicyKind::Scm,
        PolicyKind::Ats,
        PolicyKind::Seer,
        PolicyKind::SeerProfileOnly,
        PolicyKind::SeerPlusTxLocks,
        PolicyKind::SeerPlusCoreLocks,
        PolicyKind::SeerPlusHtmLocks,
        PolicyKind::SeerPlusHillClimbing,
        PolicyKind::SeerCoreLocksOnly,
    ];

    /// The four curves of Figure 3, in the paper's legend order.
    pub const FIGURE3: [PolicyKind; 4] = [
        PolicyKind::Hle,
        PolicyKind::Rtm,
        PolicyKind::Scm,
        PolicyKind::Seer,
    ];

    /// The cumulative variants of Figure 5, in presentation order. The
    /// profile-only variant is the figure's baseline (speedup 1.0).
    pub const FIGURE5: [PolicyKind; 5] = [
        PolicyKind::SeerProfileOnly,
        PolicyKind::SeerPlusTxLocks,
        PolicyKind::SeerPlusCoreLocks,
        PolicyKind::SeerPlusHtmLocks,
        PolicyKind::SeerPlusHillClimbing,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Hle => "HLE",
            PolicyKind::Rtm => "RTM",
            PolicyKind::Scm => "SCM",
            PolicyKind::Ats => "ATS",
            PolicyKind::Seer => "Seer",
            PolicyKind::SeerProfileOnly => "Seer(profile-only)",
            PolicyKind::SeerPlusTxLocks => "+ tx-locks",
            PolicyKind::SeerPlusCoreLocks => "+ core-locks",
            PolicyKind::SeerPlusHtmLocks => "+ htm locks",
            PolicyKind::SeerPlusHillClimbing => "+ hill climbing",
            PolicyKind::SeerCoreLocksOnly => "Seer(core-locks-only)",
        }
    }

    /// Instantiates the scheduler for a run with `threads` threads over a
    /// program with `blocks` atomic blocks.
    pub fn build(self, threads: usize, blocks: usize) -> Box<dyn Scheduler> {
        match self {
            PolicyKind::Hle => Box::new(Hle::default()),
            PolicyKind::Rtm => Box::new(Rtm::default()),
            PolicyKind::Scm => Box::new(Scm::default()),
            PolicyKind::Ats => Box::new(Ats::new(threads)),
            PolicyKind::Seer => Box::new(Seer::new(SeerConfig::full(), threads, blocks)),
            PolicyKind::SeerProfileOnly => {
                Box::new(Seer::new(SeerConfig::profile_only(), threads, blocks))
            }
            PolicyKind::SeerPlusTxLocks => {
                Box::new(Seer::new(SeerConfig::plus_tx_locks(), threads, blocks))
            }
            PolicyKind::SeerPlusCoreLocks => {
                Box::new(Seer::new(SeerConfig::plus_core_locks(), threads, blocks))
            }
            PolicyKind::SeerPlusHtmLocks => {
                Box::new(Seer::new(SeerConfig::plus_htm_locks(), threads, blocks))
            }
            PolicyKind::SeerPlusHillClimbing => {
                Box::new(Seer::new(SeerConfig::plus_hill_climbing(), threads, blocks))
            }
            PolicyKind::SeerCoreLocksOnly => {
                Box::new(Seer::new(SeerConfig::core_locks_only(), threads, blocks))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_members() {
        let labels: Vec<_> = PolicyKind::FIGURE3.iter().map(|p| p.label()).collect();
        assert_eq!(labels, vec!["HLE", "RTM", "SCM", "Seer"]);
    }

    #[test]
    fn all_policies_build() {
        for p in [
            PolicyKind::Hle,
            PolicyKind::Rtm,
            PolicyKind::Scm,
            PolicyKind::Ats,
            PolicyKind::Seer,
            PolicyKind::SeerProfileOnly,
            PolicyKind::SeerPlusTxLocks,
            PolicyKind::SeerPlusCoreLocks,
            PolicyKind::SeerPlusHtmLocks,
            PolicyKind::SeerPlusHillClimbing,
            PolicyKind::SeerCoreLocksOnly,
        ] {
            let s = p.build(8, 5);
            assert!(s.attempt_budget() > 0, "{} has no budget", p.label());
        }
    }
}
