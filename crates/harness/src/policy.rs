//! Named scheduler configurations used by the experiments.

use seer::{Seer, SeerConfig};
use seer_baselines::{Ats, Hle, Rtm, Scm};
use seer_runtime::Scheduler;

/// Every scheduler variant the evaluation section exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Hardware lock elision (Figure 3 baseline).
    Hle,
    /// Software retry + wait-on-SGL (Figure 3 baseline).
    Rtm,
    /// Software-assisted conflict management (Figure 3 baseline).
    Scm,
    /// Adaptive transaction scheduling (extra series; Table 1).
    Ats,
    /// Full Seer.
    Seer,
    /// Seer with all monitoring but no lock acquisition (Figure 4).
    SeerProfileOnly,
    /// Figure 5 cumulative variant: + transaction locks.
    SeerPlusTxLocks,
    /// Figure 5 cumulative variant: + core locks.
    SeerPlusCoreLocks,
    /// Figure 5 cumulative variant: + HTM multi-CAS lock acquisition.
    SeerPlusHtmLocks,
    /// Figure 5 cumulative variant: + hill climbing (== full Seer).
    SeerPlusHillClimbing,
    /// §5.3 ablation: core locks only.
    SeerCoreLocksOnly,
}

impl PolicyKind {
    /// Every policy variant, in declaration order (used by exhaustive
    /// sweeps such as the conformance replay matrix).
    pub const ALL: [PolicyKind; 11] = [
        PolicyKind::Hle,
        PolicyKind::Rtm,
        PolicyKind::Scm,
        PolicyKind::Ats,
        PolicyKind::Seer,
        PolicyKind::SeerProfileOnly,
        PolicyKind::SeerPlusTxLocks,
        PolicyKind::SeerPlusCoreLocks,
        PolicyKind::SeerPlusHtmLocks,
        PolicyKind::SeerPlusHillClimbing,
        PolicyKind::SeerCoreLocksOnly,
    ];

    /// The four curves of Figure 3, in the paper's legend order.
    pub const FIGURE3: [PolicyKind; 4] = [
        PolicyKind::Hle,
        PolicyKind::Rtm,
        PolicyKind::Scm,
        PolicyKind::Seer,
    ];

    /// The cumulative variants of Figure 5, in presentation order. The
    /// profile-only variant is the figure's baseline (speedup 1.0).
    pub const FIGURE5: [PolicyKind; 5] = [
        PolicyKind::SeerProfileOnly,
        PolicyKind::SeerPlusTxLocks,
        PolicyKind::SeerPlusCoreLocks,
        PolicyKind::SeerPlusHtmLocks,
        PolicyKind::SeerPlusHillClimbing,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Hle => "HLE",
            PolicyKind::Rtm => "RTM",
            PolicyKind::Scm => "SCM",
            PolicyKind::Ats => "ATS",
            PolicyKind::Seer => "Seer",
            PolicyKind::SeerProfileOnly => "Seer(profile-only)",
            PolicyKind::SeerPlusTxLocks => "+ tx-locks",
            PolicyKind::SeerPlusCoreLocks => "+ core-locks",
            PolicyKind::SeerPlusHtmLocks => "+ htm locks",
            PolicyKind::SeerPlusHillClimbing => "+ hill climbing",
            PolicyKind::SeerCoreLocksOnly => "Seer(core-locks-only)",
        }
    }

    /// Stable CLI name; round-trips through [`FromStr`](std::str::FromStr)
    /// for every variant in [`PolicyKind::ALL`].
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Hle => "hle",
            PolicyKind::Rtm => "rtm",
            PolicyKind::Scm => "scm",
            PolicyKind::Ats => "ats",
            PolicyKind::Seer => "seer",
            PolicyKind::SeerProfileOnly => "seer-profile-only",
            PolicyKind::SeerPlusTxLocks => "seer-plus-tx-locks",
            PolicyKind::SeerPlusCoreLocks => "seer-plus-core-locks",
            PolicyKind::SeerPlusHtmLocks => "seer-plus-htm-locks",
            PolicyKind::SeerPlusHillClimbing => "seer-plus-hill-climbing",
            PolicyKind::SeerCoreLocksOnly => "seer-core-locks-only",
        }
    }

    /// One-line description for `seer list`.
    pub fn describe(self) -> &'static str {
        match self {
            PolicyKind::Hle => "hardware lock elision (no scheduling)",
            PolicyKind::Rtm => "software retry + wait-on-fallback-lock",
            PolicyKind::Scm => "software-assisted conflict management (aux lock)",
            PolicyKind::Ats => "adaptive transaction scheduling (contention factor)",
            PolicyKind::Seer => "full Seer (probabilistic scheduling)",
            PolicyKind::SeerProfileOnly => "Seer monitoring without lock acquisition",
            PolicyKind::SeerPlusTxLocks => "Figure 5 cumulative: + transaction locks",
            PolicyKind::SeerPlusCoreLocks => "Figure 5 cumulative: + core locks",
            PolicyKind::SeerPlusHtmLocks => "Figure 5 cumulative: + HTM multi-CAS locks",
            PolicyKind::SeerPlusHillClimbing => "Figure 5 cumulative: + hill climbing (= full Seer)",
            PolicyKind::SeerCoreLocksOnly => "Seer with only per-core locks (§5.3 ablation)",
        }
    }

    /// Instantiates the scheduler for a run with `threads` threads over a
    /// program with `blocks` atomic blocks.
    pub fn build(self, threads: usize, blocks: usize) -> Box<dyn Scheduler> {
        match self {
            PolicyKind::Hle => Box::new(Hle::default()),
            PolicyKind::Rtm => Box::new(Rtm::default()),
            PolicyKind::Scm => Box::new(Scm::default()),
            PolicyKind::Ats => Box::new(Ats::new(threads)),
            PolicyKind::Seer => Box::new(Seer::new(SeerConfig::full(), threads, blocks)),
            PolicyKind::SeerProfileOnly => {
                Box::new(Seer::new(SeerConfig::profile_only(), threads, blocks))
            }
            PolicyKind::SeerPlusTxLocks => {
                Box::new(Seer::new(SeerConfig::plus_tx_locks(), threads, blocks))
            }
            PolicyKind::SeerPlusCoreLocks => {
                Box::new(Seer::new(SeerConfig::plus_core_locks(), threads, blocks))
            }
            PolicyKind::SeerPlusHtmLocks => {
                Box::new(Seer::new(SeerConfig::plus_htm_locks(), threads, blocks))
            }
            PolicyKind::SeerPlusHillClimbing => {
                Box::new(Seer::new(SeerConfig::plus_hill_climbing(), threads, blocks))
            }
            PolicyKind::SeerCoreLocksOnly => {
                Box::new(Seer::new(SeerConfig::core_locks_only(), threads, blocks))
            }
        }
    }
}

/// Error returned when a policy name does not match any
/// [`PolicyKind::name`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownPolicy(pub String);

impl std::fmt::Display for UnknownPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown policy {:?} (see `seer list`)", self.0)
    }
}

impl std::error::Error for UnknownPolicy {}

impl std::str::FromStr for PolicyKind {
    type Err = UnknownPolicy;

    /// Parses a [`PolicyKind::name`], case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        PolicyKind::ALL
            .into_iter()
            .find(|p| p.name() == lower)
            .ok_or_else(|| UnknownPolicy(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_members() {
        let labels: Vec<_> = PolicyKind::FIGURE3.iter().map(|p| p.label()).collect();
        assert_eq!(labels, vec!["HLE", "RTM", "SCM", "Seer"]);
    }

    #[test]
    fn all_policies_build() {
        for p in PolicyKind::ALL {
            let s = p.build(8, 5);
            assert!(s.attempt_budget() > 0, "{} has no budget", p.label());
        }
    }

    #[test]
    fn every_policy_name_round_trips() {
        for p in PolicyKind::ALL {
            assert_eq!(p.name().parse::<PolicyKind>().unwrap(), p, "{}", p.name());
            // Case-insensitive, as the CLI has always accepted.
            let upper = p.name().to_ascii_uppercase();
            assert_eq!(upper.parse::<PolicyKind>().unwrap(), p);
        }
        assert!("nope".parse::<PolicyKind>().is_err());
        let err = "Nope".parse::<PolicyKind>().unwrap_err();
        assert_eq!(err.0, "Nope");
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = PolicyKind::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PolicyKind::ALL.len());
    }
}
