//! RTM: software-controlled retry with lemming-effect avoidance — the
//! paper's second baseline (§5.1).
//!
//! The retry logic is in software: a fixed budget of hardware attempts
//! (5, as Intel used for STAMP \[27\]) and, before every attempt, a wait
//! while the single-global fall-back lock is taken, so transactions do not
//! burn their budget subscribing to a held lock. As the paper notes, the
//! single-lock fall-back makes this "analogous in spirit to the ATS
//! scheduler": concurrency is either fully allowed or fully serialized.

use seer_htm::XStatus;
use seer_runtime::{AbortDecision, Gate, LockId, SchedEnv, Scheduler};
use seer_sim::ThreadId;

/// The RTM baseline scheduler.
#[derive(Debug, Clone)]
pub struct Rtm {
    budget: u32,
    give_up_on_capacity: bool,
}

impl Default for Rtm {
    fn default() -> Self {
        Self::new(5)
    }
}

impl Rtm {
    /// RTM with a software attempt budget (the paper uses 5) that retries
    /// every abort kind, matching the paper's description.
    pub fn new(budget: u32) -> Self {
        assert!(budget > 0);
        Self {
            budget,
            give_up_on_capacity: false,
        }
    }

    /// Intel's recommended retry policy: a capacity abort (no `_XABORT_RETRY`
    /// hint) falls back immediately instead of burning the remaining
    /// budget on a footprint that will overflow again. Provided as an
    /// ablation knob (`DESIGN.md` §6); the paper's evaluation retries
    /// unconditionally.
    pub fn respecting_retry_hint(budget: u32) -> Self {
        Self {
            give_up_on_capacity: true,
            ..Self::new(budget)
        }
    }
}

impl Scheduler for Rtm {
    fn name(&self) -> &'static str {
        "RTM"
    }

    fn attempt_budget(&self) -> u32 {
        self.budget
    }

    fn pre_attempt_gates(
        &mut self,
        _thread: ThreadId,
        _block: usize,
        _attempts_left: u32,
        _env: &mut SchedEnv<'_>,
    ) -> Vec<Gate> {
        vec![Gate::WaitWhileLocked(LockId::Sgl)]
    }

    fn on_abort(
        &mut self,
        _thread: ThreadId,
        _block: usize,
        status: XStatus,
        _attempts_left: u32,
        _env: &mut SchedEnv<'_>,
    ) -> AbortDecision {
        if self.give_up_on_capacity && status.is_capacity() {
            AbortDecision::Fallback
        } else {
            AbortDecision::Retry { gates: Vec::new() }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seer_runtime::LockBank;
    use seer_sim::{SimRng, Topology};

    #[test]
    fn retry_hint_policy_gives_up_on_capacity() {
        let mut r = Rtm::respecting_retry_hint(5);
        let bank = LockBank::new(4, 2);
        let mut rng = SimRng::new(0);
        let mut sink = seer_runtime::NullTraceSink;
        let mut env = SchedEnv {
            now: 0,
            locks: &bank,
            topology: Topology::haswell_e3(),
            rng: &mut rng,
            trace: &mut sink,
        };
        assert_eq!(
            r.on_abort(0, 0, XStatus::capacity(), 4, &mut env),
            AbortDecision::Fallback
        );
        assert_eq!(
            r.on_abort(0, 0, XStatus::conflict(), 4, &mut env),
            AbortDecision::Retry { gates: vec![] }
        );
        // The paper's default retries capacity too.
        let mut r = Rtm::default();
        assert_eq!(
            r.on_abort(0, 0, XStatus::capacity(), 4, &mut env),
            AbortDecision::Retry { gates: vec![] }
        );
    }

    #[test]
    fn waits_on_sgl_before_every_attempt() {
        let mut r = Rtm::default();
        assert_eq!(r.attempt_budget(), 5);
        let bank = LockBank::new(4, 2);
        let mut rng = SimRng::new(0);
        let mut sink = seer_runtime::NullTraceSink;
        let mut env = SchedEnv {
            now: 0,
            locks: &bank,
            topology: Topology::haswell_e3(),
            rng: &mut rng,
            trace: &mut sink,
        };
        for left in (1..=5).rev() {
            let gates = r.pre_attempt_gates(0, 0, left, &mut env);
            assert_eq!(gates, vec![Gate::WaitWhileLocked(LockId::Sgl)]);
        }
    }
}
