//! SCM: Software-assisted Conflict Management (Afek, Levy, Morrison,
//! PODC'14) — the paper's third baseline (§5.1).
//!
//! On abort, a transaction acquires a single *auxiliary* lock and retries
//! in hardware while holding it, so all previously-aborted transactions
//! serialize among themselves instead of repeatedly aborting and piling
//! onto the global fall-back lock. Fresh (never-aborted) transactions keep
//! running concurrently. The auxiliary lock reduces fall-back activations
//! dramatically (paper Table 3: ≤5% SGL) but, being a single lock, it
//! serializes *all* restarting transactions regardless of whether they
//! actually conflict — the coarseness Seer's per-block locks remove.

use seer_htm::XStatus;
use seer_runtime::{AbortDecision, Gate, LockId, SchedEnv, Scheduler};
use seer_sim::ThreadId;

/// The SCM baseline scheduler.
#[derive(Debug, Clone)]
pub struct Scm {
    budget: u32,
}

impl Default for Scm {
    fn default() -> Self {
        Self::new(5)
    }
}

impl Scm {
    /// SCM with a hardware attempt budget (the paper uses 5).
    pub fn new(budget: u32) -> Self {
        assert!(budget > 0);
        Self { budget }
    }
}

impl Scheduler for Scm {
    fn name(&self) -> &'static str {
        "SCM"
    }

    fn attempt_budget(&self) -> u32 {
        self.budget
    }

    fn pre_attempt_gates(
        &mut self,
        _thread: ThreadId,
        _block: usize,
        _attempts_left: u32,
        _env: &mut SchedEnv<'_>,
    ) -> Vec<Gate> {
        vec![Gate::WaitWhileLocked(LockId::Sgl)]
    }

    fn on_abort(
        &mut self,
        thread: ThreadId,
        _block: usize,
        _status: XStatus,
        _attempts_left: u32,
        env: &mut SchedEnv<'_>,
    ) -> AbortDecision {
        if env.locks.is_held_by(LockId::Aux, thread) {
            // Already serialized behind the auxiliary lock; keep retrying
            // (the driver's budget still bounds total attempts).
            AbortDecision::Retry { gates: Vec::new() }
        } else {
            AbortDecision::Retry {
                gates: vec![Gate::Acquire(LockId::Aux)],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seer_runtime::LockBank;
    use seer_sim::{SimRng, Topology};

    fn env_with<'a>(bank: &'a LockBank, rng: &'a mut SimRng) -> SchedEnv<'a> {
        SchedEnv {
            now: 0,
            locks: bank,
            topology: Topology::haswell_e3(),
            rng,
            // Zero-sized, so the leak is free.
            trace: Box::leak(Box::new(seer_runtime::NullTraceSink)),
        }
    }

    #[test]
    fn first_abort_acquires_aux() {
        let mut s = Scm::default();
        let bank = LockBank::new(4, 2);
        let mut rng = SimRng::new(0);
        let mut env = env_with(&bank, &mut rng);
        match s.on_abort(1, 0, XStatus::conflict(), 4, &mut env) {
            AbortDecision::Retry { gates } => {
                assert_eq!(gates, vec![Gate::Acquire(LockId::Aux)]);
            }
            AbortDecision::Fallback => panic!("SCM retries under aux"),
        }
    }

    #[test]
    fn subsequent_aborts_keep_holding_aux() {
        let mut s = Scm::default();
        let mut bank = LockBank::new(4, 2);
        assert!(bank.get_mut(LockId::Aux).try_acquire(1, 0));
        let mut rng = SimRng::new(0);
        let mut env = env_with(&bank, &mut rng);
        match s.on_abort(1, 0, XStatus::conflict(), 3, &mut env) {
            AbortDecision::Retry { gates } => assert!(gates.is_empty()),
            AbortDecision::Fallback => panic!(),
        }
    }
}
