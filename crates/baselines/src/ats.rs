//! ATS: Adaptive Transaction Scheduling (Yoo & Lee, SPAA'08).
//!
//! The only prior scheduler that, like Seer, tolerates *imprecise* abort
//! information (paper Table 1): each thread maintains a *contention
//! intensity* updated on commits and aborts, and when it exceeds a
//! threshold the transaction is executed serialized — here, directly under
//! the single-global lock, which is how the paper characterizes ATS-style
//! behaviour for commodity HTM ("it alternates between serializing all
//! transactions or letting them all execute concurrently", §2).
//!
//! ATS is not one of the four curves in the paper's Figure 3 (the paper
//! argues RTM's wait-on-SGL fall-back is already "analogous in spirit"),
//! but it is implemented here both for completeness of Table 1 and as an
//! extra comparison series the harness can enable.

use seer_htm::XStatus;
use seer_runtime::{AbortDecision, Gate, LockId, SchedEnv, Scheduler};
use seer_sim::ThreadId;

/// The ATS baseline scheduler.
#[derive(Debug, Clone)]
pub struct Ats {
    budget: u32,
    alpha: f64,
    threshold: f64,
    intensity: Vec<f64>,
}

impl Ats {
    /// ATS for `threads` threads with the original paper's default
    /// weighting (`alpha = 0.3`) and serialization threshold (`0.5`).
    pub fn new(threads: usize) -> Self {
        Self::with_params(threads, 5, 0.3, 0.5)
    }

    /// Fully parameterized constructor.
    ///
    /// # Panics
    /// If `alpha` or `threshold` fall outside `(0, 1]` / `[0, 1]`.
    pub fn with_params(threads: usize, budget: u32, alpha: f64, threshold: f64) -> Self {
        assert!(budget > 0);
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        assert!((0.0..=1.0).contains(&threshold), "threshold in [0,1]");
        Self {
            budget,
            alpha,
            threshold,
            intensity: vec![0.0; threads],
        }
    }

    /// Current contention intensity of `thread` (exposed for tests).
    pub fn intensity(&self, thread: ThreadId) -> f64 {
        self.intensity[thread]
    }

    fn update(&mut self, thread: ThreadId, event: f64) {
        let ci = &mut self.intensity[thread];
        *ci = self.alpha * event + (1.0 - self.alpha) * *ci;
    }
}

impl Scheduler for Ats {
    fn name(&self) -> &'static str {
        "ATS"
    }

    fn attempt_budget(&self) -> u32 {
        self.budget
    }

    fn pre_tx_fallback(
        &mut self,
        thread: ThreadId,
        _block: usize,
        _env: &mut SchedEnv<'_>,
    ) -> bool {
        self.intensity[thread] > self.threshold
    }

    fn pre_attempt_gates(
        &mut self,
        _thread: ThreadId,
        _block: usize,
        _attempts_left: u32,
        _env: &mut SchedEnv<'_>,
    ) -> Vec<Gate> {
        vec![Gate::WaitWhileLocked(LockId::Sgl)]
    }

    fn on_abort(
        &mut self,
        thread: ThreadId,
        _block: usize,
        _status: XStatus,
        _attempts_left: u32,
        _env: &mut SchedEnv<'_>,
    ) -> AbortDecision {
        self.update(thread, 1.0);
        AbortDecision::Retry { gates: Vec::new() }
    }

    fn on_htm_commit(&mut self, thread: ThreadId, _block: usize, _env: &mut SchedEnv<'_>) {
        self.update(thread, 0.0);
    }

    fn on_fallback_commit(&mut self, thread: ThreadId, _block: usize, _env: &mut SchedEnv<'_>) {
        // A serialized execution always succeeds; it cools the intensity so
        // the thread eventually returns to optimistic execution.
        self.update(thread, 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seer_runtime::LockBank;
    use seer_sim::{SimRng, Topology};

    fn env_with<'a>(bank: &'a LockBank, rng: &'a mut SimRng) -> SchedEnv<'a> {
        SchedEnv {
            now: 0,
            locks: bank,
            topology: Topology::haswell_e3(),
            rng,
            // Zero-sized, so the leak is free.
            trace: Box::leak(Box::new(seer_runtime::NullTraceSink)),
        }
    }

    #[test]
    fn intensity_rises_on_aborts_and_decays_on_commits() {
        let mut a = Ats::new(2);
        let bank = LockBank::new(4, 2);
        let mut rng = SimRng::new(0);
        let mut env = env_with(&bank, &mut rng);
        assert_eq!(a.intensity(0), 0.0);
        for _ in 0..6 {
            a.on_abort(0, 0, XStatus::conflict(), 4, &mut env);
        }
        assert!(a.intensity(0) > 0.8);
        assert!(a.pre_tx_fallback(0, 0, &mut env));
        for _ in 0..6 {
            a.on_htm_commit(0, 0, &mut env);
        }
        assert!(a.intensity(0) < 0.2);
        assert!(!a.pre_tx_fallback(0, 0, &mut env));
    }

    #[test]
    fn per_thread_isolation() {
        let mut a = Ats::new(2);
        let bank = LockBank::new(4, 2);
        let mut rng = SimRng::new(0);
        let mut env = env_with(&bank, &mut rng);
        a.on_abort(0, 0, XStatus::conflict(), 4, &mut env);
        assert!(a.intensity(0) > 0.0);
        assert_eq!(a.intensity(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_rejected() {
        Ats::with_params(1, 5, 0.0, 0.5);
    }
}
