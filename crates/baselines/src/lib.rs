//! # seer-baselines — the schedulers Seer is evaluated against
//!
//! The paper's §5.1 compares Seer with three alternatives usable on
//! commodity best-effort HTM, all implemented here against the
//! `seer-runtime` scheduler interface:
//!
//! * [`Hle`] — hardware lock elision: a tiny hardware retry budget, no
//!   waiting, no contention management; suffers the lemming effect.
//! * [`Rtm`] — software retry (budget 5) that waits while the fall-back
//!   lock is held before re-attempting.
//! * [`Scm`] — software-assisted conflict management: aborted transactions
//!   serialize behind one auxiliary lock and retry in hardware.
//! * [`Ats`] — adaptive transaction scheduling via a per-thread contention
//!   intensity (extra series; see its module docs).
//!
//! Integration tests at the bottom of this crate check the *behavioural
//! signatures* the paper reports for each baseline (lemming collapse of
//! HLE, SCM's low fall-back rate, etc.).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ats;
pub mod hle;
pub mod rtm;
pub mod scm;

pub use ats::Ats;
pub use hle::Hle;
pub use rtm::Rtm;
pub use scm::Scm;
