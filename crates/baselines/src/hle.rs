//! HLE: hardware lock elision, the paper's first baseline (§5.1).
//!
//! Models Intel's HLE as used on STAMP ("executed as having 1 lock to
//! elide"): the hardware retries a transaction a small,
//! implementation-dependent number of times with **no scheduling and no
//! contention management** — in particular it does *not* wait for the
//! elided lock to be free before re-attempting, which is what produces the
//! *lemming effect* (Dice et al. \[6\]): once one thread falls back to the
//! real lock, every concurrent transaction aborts on the lock-line
//! subscription, exhausts its small budget, and piles onto the lock too.

use seer_runtime::{Scheduler, SchedEnv};
use seer_sim::ThreadId;

/// The HLE baseline scheduler.
#[derive(Debug, Clone)]
pub struct Hle {
    budget: u32,
}

impl Default for Hle {
    fn default() -> Self {
        Self::new(2)
    }
}

impl Hle {
    /// HLE with the given hardware retry budget (default 2, modelling the
    /// processor's internal, implementation-dependent retry policy).
    pub fn new(budget: u32) -> Self {
        assert!(budget > 0);
        Self { budget }
    }
}

impl Scheduler for Hle {
    fn name(&self) -> &'static str {
        "HLE"
    }

    fn attempt_budget(&self) -> u32 {
        self.budget
    }

    // No gates, no waiting, no decisions: pure hardware retry. All other
    // callbacks keep their default (no-op / plain retry) behaviour.
    fn on_tx_start(&mut self, _thread: ThreadId, _block: usize, _env: &mut SchedEnv<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use seer_runtime::scheduler::AbortDecision;
    use seer_runtime::LockBank;
    use seer_htm::XStatus;
    use seer_sim::{SimRng, Topology};

    #[test]
    fn never_waits_on_the_global_lock() {
        let mut h = Hle::default();
        let bank = LockBank::new(4, 2);
        let mut rng = SimRng::new(0);
        let mut sink = seer_runtime::NullTraceSink;
        let mut env = SchedEnv {
            now: 0,
            locks: &bank,
            topology: Topology::haswell_e3(),
            rng: &mut rng,
            trace: &mut sink,
        };
        assert!(h.pre_attempt_gates(0, 0, 2, &mut env).is_empty());
        match h.on_abort(0, 0, XStatus::conflict(), 1, &mut env) {
            AbortDecision::Retry { gates } => assert!(gates.is_empty()),
            AbortDecision::Fallback => panic!("HLE lets the budget decide"),
        }
    }

    #[test]
    fn small_default_budget() {
        assert_eq!(Hle::default().attempt_budget(), 2);
        assert_eq!(Hle::new(3).attempt_budget(), 3);
    }
}
