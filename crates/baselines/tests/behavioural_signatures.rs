//! Behavioural signatures of the baselines, checked end-to-end on the
//! simulator. These mirror the qualitative claims of the paper's §5.1–5.2:
//!
//! * HLE collapses to the global lock under contention (lemming effect),
//!   far more than RTM at equal thread counts.
//! * SCM activates the SGL fall-back much less often than RTM but commits
//!   a significant share of transactions under the auxiliary lock.
//! * ATS serializes when contention is high and stays optimistic when low.

use seer_baselines::{Ats, Hle, Rtm, Scm};
use seer_runtime::synthetic::{BlockSpec, SyntheticSpec, SyntheticWorkload};
use seer_runtime::{run, DriverConfig, RunMetrics, Scheduler, TxMode};

fn contended_spec(txs: usize) -> SyntheticSpec {
    SyntheticSpec {
        name: "contended".to_string(),
        blocks: vec![BlockSpec {
            accesses: 24,
            write_fraction: 0.3,
            hot_region: 0,
            hot_lines: 64,
            hot_probability: 0.25,
            zipf_theta: 0.8,
            spacing: (8, 20),
            ..BlockSpec::default()
        }],
        txs_per_thread: txs,
        think: (80, 160),
    }
}

fn low_contention_spec(txs: usize) -> SyntheticSpec {
    SyntheticSpec::low_contention_hashmap(txs)
}

fn run_with(sched: &mut dyn Scheduler, spec: SyntheticSpec, threads: usize, seed: u64) -> RunMetrics {
    let mut w = SyntheticWorkload::new(spec, threads);
    let mut cfg = DriverConfig::paper_machine(threads, seed);
    cfg.costs.async_abort_per_cycle = 0.0;
    run(&mut w, sched, &cfg)
}

#[test]
fn hle_lemming_effect_dwarfs_rtm_fallback() {
    let threads = 8;
    let mut hle = Hle::default();
    let m_hle = run_with(&mut hle, contended_spec(150), threads, 1);
    let mut rtm = Rtm::default();
    let m_rtm = run_with(&mut rtm, contended_spec(150), threads, 1);

    assert_eq!(m_hle.commits, m_rtm.commits);
    let f_hle = m_hle.fallback_fraction();
    let f_rtm = m_rtm.fallback_fraction();
    assert!(
        f_hle > 1.5 * f_rtm,
        "HLE should fall back far more: hle={f_hle:.3} rtm={f_rtm:.3}"
    );
    assert!(f_hle > 0.2, "HLE under contention must lemming: {f_hle:.3}");
}

#[test]
fn scm_trades_sgl_for_aux_lock() {
    let threads = 8;
    let mut rtm = Rtm::default();
    let m_rtm = run_with(&mut rtm, contended_spec(150), threads, 2);
    let mut scm = Scm::default();
    let m_scm = run_with(&mut scm, contended_spec(150), threads, 2);

    assert!(
        m_scm.fallback_fraction() < m_rtm.fallback_fraction(),
        "SCM should use the SGL less: scm={:.3} rtm={:.3}",
        m_scm.fallback_fraction(),
        m_rtm.fallback_fraction()
    );
    assert!(
        m_scm.modes.get(TxMode::HtmAuxLock) > 0,
        "SCM must commit transactions under the auxiliary lock"
    );
    // RTM never uses the aux lock.
    assert_eq!(m_rtm.modes.get(TxMode::HtmAuxLock), 0);
}

#[test]
fn ats_serializes_under_contention_only() {
    let threads = 8;
    let mut ats_hot = Ats::new(threads);
    let m_hot = run_with(&mut ats_hot, contended_spec(120), threads, 3);
    let mut ats_cold = Ats::new(threads);
    let m_cold = run_with(&mut ats_cold, low_contention_spec(120), threads, 3);

    assert!(
        m_hot.fallback_fraction() > 0.05,
        "contended ATS should serialize some: {:.3}",
        m_hot.fallback_fraction()
    );
    assert!(
        m_cold.fallback_fraction() < 0.02,
        "uncontended ATS should stay optimistic: {:.3}",
        m_cold.fallback_fraction()
    );
}

#[test]
fn all_baselines_complete_all_work_deterministically() {
    let threads = 6;
    let total = (threads * 80) as u64;
    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Hle::default()),
        Box::new(Rtm::default()),
        Box::new(Scm::default()),
        Box::new(Ats::new(threads)),
    ];
    for s in &mut schedulers {
        let a = run_with(s.as_mut(), contended_spec(80), threads, 9);
        assert_eq!(a.commits, total, "{} lost transactions", s.name());
        assert!(!a.truncated);
    }
    // Determinism: same seed, same scheduler type => identical metrics.
    let mut s1 = Rtm::default();
    let mut s2 = Rtm::default();
    let a = run_with(&mut s1, contended_spec(80), threads, 9);
    let b = run_with(&mut s2, contended_spec(80), threads, 9);
    assert_eq!(a.commits, b.commits);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.aborts.total(), b.aborts.total());
}

#[test]
fn rtm_beats_hle_under_contention() {
    let threads = 8;
    let mut hle = Hle::default();
    let m_hle = run_with(&mut hle, contended_spec(150), threads, 5);
    let mut rtm = Rtm::default();
    let m_rtm = run_with(&mut rtm, contended_spec(150), threads, 5);
    assert!(
        m_rtm.speedup() > m_hle.speedup(),
        "RTM should outperform HLE: rtm={:.3} hle={:.3}",
        m_rtm.speedup(),
        m_hle.speedup()
    );
}
