//! Property tests for the shard codec and the store's corruption defence.
//!
//! The store's contract is *never trust, never crash*: any byte sequence
//! on disk — truncated, bit-flipped, overwritten with garbage — must read
//! as a cache miss (with the bad shard quarantined), and a value that was
//! saved intact must come back byte-for-byte. These properties drive both
//! halves with random values and random corruptions.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use seer_store::{Json, Persist, Store, StoreKey, ToJson};

/// A value exercising every JSON node kind the real payloads use:
/// unsigned/signed integers, a dyadic float (round-trips exactly), a
/// string with quoting hazards, a numeric array, and a bool.
#[derive(Debug, Clone, PartialEq)]
struct Blob {
    id: u64,
    delta: i64,
    name: String,
    values: Vec<u64>,
    ratio: f64,
    flag: bool,
}

impl Persist for Blob {
    fn to_store_json(&self) -> Json {
        Json::object([
            ("id", self.id.to_json()),
            ("delta", self.delta.to_json()),
            ("name", self.name.to_json()),
            (
                "values",
                Json::Array(self.values.iter().map(|v| v.to_json()).collect()),
            ),
            ("ratio", self.ratio.to_json()),
            ("flag", self.flag.to_json()),
        ])
    }

    fn from_store_json(json: &Json) -> Result<Self, String> {
        let field = |name: &str| {
            json.get(name)
                .ok_or_else(|| format!("missing field {name:?}"))
        };
        let delta = match field("delta")? {
            Json::Int(i) => *i,
            Json::UInt(u) if *u <= i64::MAX as u64 => *u as i64,
            _ => return Err("delta is not an i64".to_string()),
        };
        Ok(Blob {
            id: field("id")?.as_u64().ok_or("id is not a u64")?,
            delta,
            name: field("name")?
                .as_str()
                .ok_or("name is not a string")?
                .to_string(),
            values: field("values")?
                .as_array()
                .ok_or("values is not an array")?
                .iter()
                .map(|v| v.as_u64().ok_or_else(|| "bad element".to_string()))
                .collect::<Result<_, _>>()?,
            ratio: field("ratio")?.as_f64().ok_or("ratio is not a number")?,
            flag: field("flag")?.as_bool().ok_or("flag is not a bool")?,
        })
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct BlobKey(u64);

impl StoreKey for BlobKey {
    const KIND: &'static str = "blob";

    fn key_id(&self) -> String {
        format!("blob/{}", self.0)
    }

    fn key_json(&self) -> Json {
        Json::object([("id", self.0.to_json())])
    }
}

fn blob_strategy() -> impl Strategy<Value = Blob> {
    (
        any::<u64>(),
        any::<i64>(),
        // Printable ASCII, quotes and backslashes included.
        prop::collection::vec(0x20u8..0x7f, 0..24),
        prop::collection::vec(any::<u64>(), 0..8),
        -(1i64 << 40)..(1i64 << 40),
        any::<bool>(),
    )
        .prop_map(|(id, delta, name_bytes, values, num, flag)| Blob {
            id,
            delta,
            name: name_bytes.into_iter().map(char::from).collect(),
            values,
            // Dyadic rational: exactly representable, so the shortest
            // round-trip float formatting must reproduce it bit-for-bit.
            ratio: num as f64 / 1024.0,
            flag,
        })
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "seer-store-props-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed),
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever was saved comes back equal — through the actual disk
    /// bytes, not just the JSON tree.
    #[test]
    fn saved_values_round_trip(blob in blob_strategy(), key in any::<u64>()) {
        let root = temp_root("roundtrip");
        let store = Store::open(&root);
        let key = BlobKey(key);
        store.save(&key, &blob);
        let back: Blob = store.load(&key).expect("fresh shard must load");
        prop_assert_eq!(&back, &blob);
        prop_assert_eq!(back.ratio.to_bits(), blob.ratio.to_bits());
        let _ = std::fs::remove_dir_all(&root);
    }

    /// A single flipped byte anywhere in the shard: the load must come
    /// back as a miss (quarantine), never a panic and never a wrong value;
    /// and the slot must be immediately usable again.
    #[test]
    fn corrupted_shards_quarantine_and_recompute(
        blob in blob_strategy(),
        pos_seed in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let root = temp_root("corrupt");
        let store = Store::open(&root);
        let key = BlobKey(7);
        store.save(&key, &blob);
        let path = store.shard_path(&key);
        let mut bytes = std::fs::read(&path).expect("shard exists");
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= xor;
        std::fs::write(&path, &bytes).expect("write corrupted shard");

        match store.load::<_, Blob>(&key) {
            // Flip detected: shard quarantined, slot reads cold.
            None => {
                prop_assert!(!path.exists(), "corrupt shard must be moved aside");
                prop_assert!(store.load::<_, Blob>(&key).is_none());
                // The recompute path: save fresh, load clean.
                store.save(&key, &blob);
                let back: Blob = store.load(&key).expect("recomputed shard loads");
                prop_assert_eq!(back, blob);
            }
            // A byte flip inside a string literal can keep the JSON well
            // formed — but then the checksum pins the value bytes, so a
            // successful load must mean the flip landed somewhere
            // non-semantic (it cannot: every byte is significant in
            // compact JSON) or restored the original. Only equality is
            // acceptable.
            Some(back) => prop_assert_eq!(back, blob),
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Truncation at every possible length: always a miss, never a panic.
    #[test]
    fn truncated_shards_never_panic(blob in blob_strategy(), cut_seed in any::<u64>()) {
        let root = temp_root("truncate");
        let store = Store::open(&root);
        let key = BlobKey(11);
        store.save(&key, &blob);
        let path = store.shard_path(&key);
        let bytes = std::fs::read(&path).expect("shard exists");
        // Shards end with a cosmetic newline; cut strictly inside the
        // semantic bytes so the truncation always removes real content.
        let cut = (cut_seed % (bytes.len() as u64 - 1)) as usize;
        std::fs::write(&path, &bytes[..cut]).expect("truncate shard");
        prop_assert!(store.load::<_, Blob>(&key).is_none());
        prop_assert_eq!(store.stats().quarantined, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Garbage that was never a shard — random bytes under the right
    /// filename — is a quarantined miss too.
    #[test]
    fn arbitrary_garbage_is_a_miss(noise in prop::collection::vec(any::<u8>(), 0..256)) {
        let root = temp_root("garbage");
        let store = Store::open(&root);
        let key = BlobKey(13);
        let path = store.shard_path(&key);
        std::fs::create_dir_all(path.parent().unwrap()).expect("mkdir");
        std::fs::write(&path, &noise).expect("write noise");
        prop_assert!(store.load::<_, Blob>(&key).is_none());
        let _ = std::fs::remove_dir_all(&root);
    }
}
