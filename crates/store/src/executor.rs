//! The one generic plan/memoize/fan-out/supervise engine.
//!
//! PR 2 built a memoizing parallel executor for harness cells; PR 4
//! copied the pattern for scenarios. This module is the deduplication:
//! a [`Plan<K>`] is a deduplicated, insertion-ordered set of keys, and an
//! [`Executor<K, V>`] turns plans into values through four layers, in
//! order:
//!
//! 1. **memo cache** — per-key results for the executor's lifetime
//!    (counted by [`Executor::hits`]),
//! 2. **disk store** — shards from previous processes, if a [`Store`] is
//!    attached (counted by [`Executor::disk_hits`]),
//! 3. **remote compute** — a [`RemoteResolver`] (normally `seer-remote`'s
//!    worker pool), if attached (counted by [`Executor::remote_hits`]);
//!    an unreachable or dying pool falls through to the next stage,
//! 4. **supervised compute** — the run function under retry/deadline/
//!    panic isolation (successes counted by [`Executor::misses`]),
//! 5. **failure accounting** — items that kept failing end up in the
//!    [`ExecReport`], so a sweep degrades into a partial report instead
//!    of aborting.
//!
//! Determinism: the run function is a pure function of the key, results
//! land in the cache keyed by their coordinates, and assembly order is
//! dictated by the caller — so any fan-out width, warm or cold store,
//! remote or local compute, first run or resume, produces bit-identical
//! values. The conformance suite pins this against the committed
//! trace-hash fixtures, with remote compute covered by
//! `crates/conformance/tests/remote.rs`.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::persist::{Persist, StoreKey};
use crate::store::Store;
use crate::supervisor::{supervise, RunFailure, SupervisorConfig};

/// What a plan key must be able to do (everything the cache, the fan-out
/// and the supervisor's detached threads need). Blanket-implemented.
pub trait PlanKey: Clone + Eq + Hash + Send + Sync + std::fmt::Debug + 'static {}

impl<T: Clone + Eq + Hash + Send + Sync + std::fmt::Debug + 'static> PlanKey for T {}

/// A declarative, deduplicated set of work items in insertion order.
#[derive(Debug, Clone)]
pub struct Plan<K: PlanKey> {
    items: Vec<K>,
    seen: HashSet<K>,
}

impl<K: PlanKey> Default for Plan<K> {
    fn default() -> Self {
        Self {
            items: Vec::new(),
            seen: HashSet::new(),
        }
    }
}

impl<K: PlanKey> Plan<K> {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one item; returns `true` if it was new.
    pub fn add(&mut self, key: K) -> bool {
        let fresh = self.seen.insert(key.clone());
        if fresh {
            self.items.push(key);
        }
        fresh
    }

    /// Number of unique work items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the plan holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The unique items, in insertion order.
    pub fn items(&self) -> &[K] {
        &self.items
    }
}

/// Applies `f` to every item of `items` on up to `jobs` OS threads,
/// returning results in input order (never completion order).
///
/// Work is handed out through a shared atomic cursor, so threads stay busy
/// regardless of per-item cost skew. `jobs <= 1` (or a single item) runs
/// the plain serial loop — byte-for-byte the `--jobs 1` path, which the
/// equivalence tests compare the parallel path against. A panic on any
/// worker propagates out of the enclosing `std::thread::scope`.
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

/// What a [`RemoteResolver`] did with one work item.
#[derive(Debug, Clone)]
pub enum RemoteOutcome<V> {
    /// A worker computed the value (checksum-verified by the resolver).
    Computed(V),
    /// No worker could take the item (pool exhausted, all workers dead,
    /// connection storms): the executor falls through to local compute.
    Unavailable,
    /// A worker ran the item and reported the computation itself failed
    /// (e.g. the simulation panicked). The executor falls through to
    /// *local* supervised compute: a deterministic failure reproduces
    /// locally with full retry/attempt accounting, and a worker-side
    /// environment flake gets a second chance.
    Failed(String),
}

/// The remote stage of the executor's resolution order: something that
/// may be able to compute `K → V` on another process or machine.
///
/// Implementations must preserve the executor's determinism contract: a
/// `Computed` value must be bit-identical to what the local run function
/// would produce for the same key (the worker runs the same pure
/// function on the same kernel, and the pool verifies fingerprints at
/// handshake and checksums per result).
pub trait RemoteResolver<K, V>: Send + Sync {
    /// Tries to resolve `key` remotely. Must never panic and never
    /// block forever — degrade to [`RemoteOutcome::Unavailable`] instead.
    fn resolve_remote(&self, key: &K) -> RemoteOutcome<V>;
}

/// One item the supervisor gave up on.
#[derive(Debug, Clone)]
pub struct FailedItem<K> {
    /// The work item's key.
    pub key: K,
    /// The last failure observed.
    pub failure: RunFailure,
    /// Attempts consumed (1 + retries).
    pub attempts: u32,
}

/// Coverage accounting for one [`Executor::execute`] call: where every
/// planned item's result came from, and which items have none.
#[derive(Debug, Clone, Default)]
pub struct ExecReport<K> {
    /// Unique items in the executed plan.
    pub planned: usize,
    /// Items already in the memo cache.
    pub memo_hits: u64,
    /// Items served from the disk store.
    pub disk_hits: u64,
    /// Items computed by remote workers this call.
    pub remote_hits: u64,
    /// Items computed locally (successfully) this call.
    pub computed: u64,
    /// Items the supervisor gave up on — the coverage gap.
    pub failed: Vec<FailedItem<K>>,
}

impl<K> ExecReport<K> {
    /// True when every planned item has a result.
    pub fn complete(&self) -> bool {
        self.failed.is_empty()
    }

    /// Planned items that have a result (`planned - failed`).
    pub fn covered(&self) -> usize {
        self.planned - self.failed.len()
    }
}

enum Source<V> {
    Disk(V),
    Remote(V),
    Computed(V),
    Failed(RunFailure, u32),
}

/// The generic parallel, memoizing, disk-warmed, supervised executor.
///
/// `CellExecutor` (harness) and `ScenarioExecutor` (scenario engine) are
/// thin instantiations: they choose `K`/`V`, provide the run function,
/// and keep their domain-specific plan-building and assembly sugar.
pub struct Executor<K: PlanKey + StoreKey, V> {
    jobs: usize,
    run: Arc<dyn Fn(K) -> V + Send + Sync>,
    cache: Mutex<HashMap<K, V>>,
    hits: AtomicU64,
    misses: AtomicU64,
    disk_hits: AtomicU64,
    remote_hits: AtomicU64,
    store: Option<Store>,
    remote: Option<Arc<dyn RemoteResolver<K, V>>>,
    supervisor: SupervisorConfig,
}

impl<K, V> Executor<K, V>
where
    K: PlanKey + StoreKey,
    V: Persist + Clone + Send + 'static,
{
    /// An executor fanning uncached work out across `jobs` OS threads,
    /// computing values with `run` — which must be a pure function of the
    /// key. No store, environment-default supervision.
    pub fn new(jobs: usize, run: impl Fn(K) -> V + Send + Sync + 'static) -> Self {
        Self {
            jobs: jobs.max(1),
            run: Arc::new(run),
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            remote_hits: AtomicU64::new(0),
            store: None,
            remote: None,
            supervisor: SupervisorConfig::from_env(),
        }
    }

    /// Attaches a disk store: results load from it before computing and
    /// save to it after.
    pub fn with_store(mut self, store: Store) -> Self {
        self.store = Some(store);
        self
    }

    /// Attaches a remote resolution stage, consulted after the disk
    /// store and before local compute. Remote results persist to the
    /// attached store exactly like locally computed ones, so a killed
    /// coordinator resumes from the same shards either way.
    pub fn with_remote(mut self, remote: Arc<dyn RemoteResolver<K, V>>) -> Self {
        self.remote = Some(remote);
        self
    }

    /// Overrides the supervision config (tests want fail-fast; the CLI
    /// wants the environment knobs).
    pub fn with_supervisor(mut self, cfg: SupervisorConfig) -> Self {
        self.supervisor = cfg;
        self
    }

    /// The fan-out width.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The attached store, if any.
    pub fn store(&self) -> Option<&Store> {
        self.store.as_ref()
    }

    /// Resolves every item of `plan` — memo cache, then disk, then
    /// supervised compute — and returns the coverage report. Safe to call
    /// repeatedly and with overlapping plans. Never panics on a poisoned
    /// item: it lands in [`ExecReport::failed`] instead.
    pub fn execute(&self, plan: &Plan<K>) -> ExecReport<K> {
        let todo: Vec<K> = {
            let cache = self.cache.lock().expect("executor cache poisoned");
            plan.items()
                .iter()
                .filter(|key| !cache.contains_key(*key))
                .cloned()
                .collect()
        };
        let memo_hits = (plan.len() - todo.len()) as u64;
        self.hits.fetch_add(memo_hits, Ordering::Relaxed);
        let mut report = ExecReport {
            planned: plan.len(),
            memo_hits,
            disk_hits: 0,
            remote_hits: 0,
            computed: 0,
            failed: Vec::new(),
        };
        if todo.is_empty() {
            return report;
        }
        let results = parallel_map(&todo, self.jobs, |key| self.resolve(key));
        let mut cache = self.cache.lock().expect("executor cache poisoned");
        for (key, outcome) in todo.into_iter().zip(results) {
            match outcome {
                Source::Disk(v) => {
                    report.disk_hits += 1;
                    cache.insert(key, v);
                }
                Source::Remote(v) => {
                    report.remote_hits += 1;
                    cache.insert(key, v);
                }
                Source::Computed(v) => {
                    report.computed += 1;
                    cache.insert(key, v);
                }
                Source::Failed(failure, attempts) => report.failed.push(FailedItem {
                    key,
                    failure,
                    attempts,
                }),
            }
        }
        report
    }

    fn resolve(&self, key: &K) -> Source<V> {
        if let Some(store) = &self.store {
            if let Some(v) = store.load::<K, V>(key) {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                return Source::Disk(v);
            }
        }
        if let Some(remote) = &self.remote {
            match remote.resolve_remote(key) {
                RemoteOutcome::Computed(v) => {
                    self.remote_hits.fetch_add(1, Ordering::Relaxed);
                    if let Some(store) = &self.store {
                        store.save(key, &v);
                    }
                    return Source::Remote(v);
                }
                // Both degradations fall through to local compute: the
                // sweep must finish with whatever capacity is left, and
                // a deterministic failure will reproduce under the
                // supervisor with proper attempt accounting.
                RemoteOutcome::Unavailable | RemoteOutcome::Failed(_) => {}
            }
        }
        let run = self.run.clone();
        let k = key.clone();
        match supervise(&self.supervisor, move || run(k.clone())) {
            Ok(v) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                if let Some(store) = &self.store {
                    store.save(key, &v);
                }
                Source::Computed(v)
            }
            Err((failure, attempts)) => Source::Failed(failure, attempts),
        }
    }

    /// The value for one key: memo cache, then disk, then an *inline,
    /// unsupervised* computation (serial assembly path — batch work
    /// belongs in a [`Plan`], and a panic here propagates like any other
    /// programming error).
    pub fn get(&self, key: K) -> V {
        if let Some(v) = self
            .cache
            .lock()
            .expect("executor cache poisoned")
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        if let Some(store) = &self.store {
            if let Some(v) = store.load::<K, V>(&key) {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                self.cache
                    .lock()
                    .expect("executor cache poisoned")
                    .insert(key, v.clone());
                return v;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = (self.run)(key.clone());
        if let Some(store) = &self.store {
            store.save(&key, &v);
        }
        self.cache
            .lock()
            .expect("executor cache poisoned")
            .insert(key, v.clone());
        v
    }

    /// The memoized value for `key`, if present (no compute, no disk).
    pub fn cached(&self, key: &K) -> Option<V> {
        self.cache
            .lock()
            .expect("executor cache poisoned")
            .get(key)
            .cloned()
    }

    /// Memo-cache reads served without simulating.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Computations actually performed (after any sequence of plans this
    /// equals the number of unique keys resolved neither by the memo
    /// cache nor by the disk store).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Results served from the disk store instead of computing.
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// Results computed by remote workers instead of locally.
    pub fn remote_hits(&self) -> u64 {
        self.remote_hits.load(Ordering::Relaxed)
    }

    /// Number of memoized results.
    pub fn cached_len(&self) -> usize {
        self.cache.lock().expect("executor cache poisoned").len()
    }
}

impl<K: PlanKey + StoreKey, V> std::fmt::Debug for Executor<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("jobs", &self.jobs)
            .field("cached", &self.cache.lock().map(|c| c.len()).unwrap_or(0))
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .field("disk_hits", &self.disk_hits.load(Ordering::Relaxed))
            .field("remote_hits", &self.remote_hits.load(Ordering::Relaxed))
            .field("store", &self.store)
            .field("remote", &self.remote.as_ref().map(|_| "attached"))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{Json, ToJson};

    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    struct NumKey(u64);

    impl StoreKey for NumKey {
        const KIND: &'static str = "num";
        fn key_id(&self) -> String {
            format!("n{}", self.0)
        }
        fn key_json(&self) -> Json {
            Json::object([("n", self.0.to_json())])
        }
    }

    impl Persist for u64 {
        fn to_store_json(&self) -> Json {
            Json::object([("value", self.to_json())])
        }
        fn from_store_json(json: &Json) -> Result<Self, String> {
            json.get("value")
                .and_then(|v| v.as_u64())
                .ok_or_else(|| "missing value".to_string())
        }
    }

    fn plan(range: std::ops::Range<u64>) -> Plan<NumKey> {
        let mut p = Plan::new();
        for n in range {
            p.add(NumKey(n));
        }
        p
    }

    fn squarer(jobs: usize) -> Executor<NumKey, u64> {
        Executor::new(jobs, |k: NumKey| k.0 * k.0)
            .with_supervisor(SupervisorConfig::fail_fast())
    }

    #[test]
    fn plan_deduplicates() {
        let mut p = Plan::new();
        assert!(p.is_empty());
        assert!(p.add(NumKey(1)));
        assert!(!p.add(NumKey(1)));
        assert!(p.add(NumKey(2)));
        assert_eq!(p.len(), 2);
        assert_eq!(p.items(), &[NumKey(1), NumKey(2)]);
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..37).collect();
        let serial = parallel_map(&items, 1, |&x| x * x);
        let parallel = parallel_map(&items, 4, |&x| x * x);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[5], 25);
    }

    #[test]
    fn executor_counts_hits_and_misses() {
        let exec = squarer(2);
        let p = plan(0..4);
        let report = exec.execute(&p);
        assert_eq!(report.planned, 4);
        assert_eq!(report.computed, 4);
        assert!(report.complete());
        assert_eq!(exec.misses(), 4);
        assert_eq!(exec.hits(), 0);
        let report = exec.execute(&p);
        assert_eq!(report.memo_hits, 4);
        assert_eq!(report.computed, 0);
        assert_eq!(exec.misses(), 4);
        assert_eq!(exec.hits(), 4);
        assert_eq!(exec.get(NumKey(3)), 9);
        assert_eq!(exec.hits(), 5);
    }

    #[test]
    fn poisoned_item_degrades_into_partial_report() {
        let exec: Executor<NumKey, u64> = Executor::new(2, |k: NumKey| {
            if k.0 == 2 {
                panic!("poisoned cell {k:?}");
            }
            k.0
        })
        .with_supervisor(SupervisorConfig::fail_fast());
        let report = exec.execute(&plan(0..4));
        assert!(!report.complete());
        assert_eq!(report.computed, 3);
        assert_eq!(report.covered(), 3);
        assert_eq!(report.failed.len(), 1);
        assert_eq!(report.failed[0].key, NumKey(2));
        assert!(matches!(report.failed[0].failure, RunFailure::Panicked(_)));
        // The healthy items are all there.
        assert_eq!(exec.cached(&NumKey(1)), Some(1));
        assert_eq!(exec.cached(&NumKey(2)), None);
    }

    /// A scripted remote stage: answers for even keys, reports key 5 as
    /// failed, and is unavailable for everything else.
    struct FakeRemote {
        served: AtomicU64,
    }

    impl RemoteResolver<NumKey, u64> for FakeRemote {
        fn resolve_remote(&self, key: &NumKey) -> RemoteOutcome<u64> {
            if key.0 == 5 {
                RemoteOutcome::Failed("worker saw the simulation panic".into())
            } else if key.0.is_multiple_of(2) {
                self.served.fetch_add(1, Ordering::Relaxed);
                RemoteOutcome::Computed(key.0 * key.0)
            } else {
                RemoteOutcome::Unavailable
            }
        }
    }

    #[test]
    fn remote_stage_resolves_between_disk_and_local() {
        let remote = Arc::new(FakeRemote {
            served: AtomicU64::new(0),
        });
        let exec = squarer(2).with_remote(remote.clone());
        let report = exec.execute(&plan(0..6));
        assert!(report.complete(), "{report:?}");
        // Evens (0, 2, 4) remote; odds (1, 3) and the remote-failed 5
        // fall through to local compute.
        assert_eq!(report.remote_hits, 3, "{report:?}");
        assert_eq!(report.computed, 3, "{report:?}");
        assert_eq!(exec.remote_hits(), 3);
        assert_eq!(exec.misses(), 3);
        assert_eq!(remote.served.load(Ordering::Relaxed), 3);
        // Values identical regardless of which stage produced them.
        for n in 0..6 {
            assert_eq!(exec.cached(&NumKey(n)), Some(n * n), "key {n}");
        }
        // Second pass: all memoized, remote untouched.
        let report = exec.execute(&plan(0..6));
        assert_eq!(report.memo_hits, 6);
        assert_eq!(report.remote_hits, 0);
        assert_eq!(remote.served.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn remote_results_persist_to_the_attached_store() {
        let root = std::env::temp_dir().join(format!(
            "seer-store-remote-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let remote = Arc::new(FakeRemote {
            served: AtomicU64::new(0),
        });
        let first = squarer(2)
            .with_store(Store::open(&root))
            .with_remote(remote.clone());
        let report = first.execute(&plan(0..4));
        assert_eq!(report.remote_hits, 2, "{report:?}");
        drop(first);

        // A warm restart serves everything — remote results included —
        // from disk, dispatching nothing.
        let second = squarer(2)
            .with_store(Store::open(&root))
            .with_remote(remote.clone());
        let report = second.execute(&plan(0..4));
        assert_eq!(report.disk_hits, 4, "{report:?}");
        assert_eq!(report.remote_hits, 0, "{report:?}");
        assert_eq!(remote.served.load(Ordering::Relaxed), 2, "no new dispatches");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn disk_store_warms_a_second_executor() {
        let root = std::env::temp_dir().join(format!(
            "seer-store-exec-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);

        let cold = squarer(2).with_store(Store::open(&root));
        let report = cold.execute(&plan(0..5));
        assert_eq!(report.computed, 5);
        assert_eq!(report.disk_hits, 0);

        // A fresh executor over the same store computes nothing.
        let warm = squarer(2).with_store(Store::open(&root));
        let report = warm.execute(&plan(0..5));
        assert_eq!(report.computed, 0);
        assert_eq!(report.disk_hits, 5);
        assert_eq!(warm.misses(), 0);
        assert_eq!(warm.disk_hits(), 5);
        for n in 0..5 {
            assert_eq!(warm.get(NumKey(n)), n * n);
        }

        // get() also reaches through to disk for unplanned keys.
        let warm2 = squarer(1).with_store(Store::open(&root));
        assert_eq!(warm2.get(NumKey(4)), 16);
        assert_eq!(warm2.disk_hits(), 1);
        assert_eq!(warm2.misses(), 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn resume_after_partial_failure_completes_the_plan() {
        let root = std::env::temp_dir().join(format!(
            "seer-store-resume-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);

        // First process: one poisoned item, the rest persist.
        let crashy: Executor<NumKey, u64> = Executor::new(2, |k: NumKey| {
            if k.0 == 1 {
                panic!("injected failure");
            }
            k.0 * 10
        })
        .with_supervisor(SupervisorConfig::fail_fast())
        .with_store(Store::open(&root));
        let report = crashy.execute(&plan(0..4));
        assert_eq!(report.failed.len(), 1);
        assert_eq!(report.computed, 3);

        // Resumed process (bug fixed): only the gap is computed.
        let resumed = Executor::new(2, |k: NumKey| k.0 * 10)
            .with_supervisor(SupervisorConfig::fail_fast())
            .with_store(Store::open(&root));
        let report = resumed.execute(&plan(0..4));
        assert!(report.complete());
        assert_eq!(report.disk_hits, 3);
        assert_eq!(report.computed, 1);
        let _ = std::fs::remove_dir_all(&root);
    }
}
