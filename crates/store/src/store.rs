//! The content-addressed, on-disk result store.
//!
//! One result = one shard file. A shard is a pretty-printed JSON object:
//!
//! ```json
//! {
//!   "schema": "seer-store-v1",
//!   "kind": "cell",
//!   "fingerprint": "v0.1.0+k1",
//!   "key": { ... },
//!   "key_id": "ssca2/rtm/t4/s0/x3fb47ae147ae147b",
//!   "checksum": "0xabc...",
//!   "value": { ... }
//! }
//! ```
//!
//! * **Content addressing.** The filename is
//!   `{kind}-{fnv1a(kind / key_id / fingerprint):016x}.json`, so a lookup
//!   is one `read`, no index file to corrupt. The embedded `key_id` is
//!   compared on load, so a (vanishingly unlikely) filename hash
//!   collision reads as a miss, never as the wrong result.
//! * **Atomicity.** Writes go to a same-directory temp file first and are
//!   `rename(2)`d into place, so a crash mid-write can only ever leave a
//!   stray temp file — never a half-written shard under the real name.
//! * **Integrity.** `checksum` is FNV-1a 64 over the *compact* encoding
//!   of `value`. Any shard that fails to read, parse, match its key, or
//!   verify is **quarantined** (renamed to `*.quarantined`, kept for
//!   post-mortem) and reported as a miss; the executor recomputes and the
//!   next save writes a fresh shard. Corruption is a performance event,
//!   not a correctness event.
//! * **Fingerprinting.** [`kernel_fingerprint`] folds the workspace
//!   version and a manually-bumped kernel revision into every shard name
//!   and body. Results computed by an older kernel simply stop matching —
//!   a warm start can never smuggle stale physics into a new build.
//! * **Degradation.** An unwritable store directory warns once (the
//!   `trace_export` warn-once discipline) and silently disables
//!   persistence for the rest of the process: every sweep still runs and
//!   prints its report, it just stops being warm next time.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Once;

use crate::json::Json;
use crate::persist::{fnv1a, Persist, StoreKey};

/// Manually bumped whenever the simulation kernel's *output* changes
/// (i.e. whenever the replay fixtures would need a re-bless). Stored
/// shards from other revisions are ignored, never trusted.
const KERNEL_REV: u32 = 1;

/// Shard schema tag; bump on incompatible shard-format changes.
const SCHEMA: &str = "seer-store-v1";

/// The kernel-version fingerprint baked into every shard.
pub fn kernel_fingerprint() -> String {
    format!("v{}+k{KERNEL_REV}", env!("CARGO_PKG_VERSION"))
}

/// Counters describing what a store did over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Shards served (verified and decoded).
    pub loads: u64,
    /// Shards written.
    pub saves: u64,
    /// Shards found corrupt and quarantined.
    pub quarantined: u64,
}

/// A content-addressed result store rooted at one directory.
///
/// Cheap to clone conceptually but deliberately not `Clone`: executors
/// own their store, and counters describe that one store's life.
pub struct Store {
    root: PathBuf,
    fingerprint: String,
    disabled: AtomicBool,
    warned: Once,
    loads: AtomicU64,
    saves: AtomicU64,
    quarantined: AtomicU64,
}

impl Store {
    /// Opens (lazily — no I/O yet) a store rooted at `root`. The
    /// directory is created on first save; a missing directory is just a
    /// cold store.
    pub fn open(root: impl Into<PathBuf>) -> Self {
        Self {
            root: root.into(),
            fingerprint: kernel_fingerprint(),
            disabled: AtomicBool::new(false),
            warned: Once::new(),
            loads: AtomicU64::new(0),
            saves: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The fingerprint this store reads/writes under.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// Lifetime counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            loads: self.loads.load(Ordering::Relaxed),
            saves: self.saves.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }

    /// True once persistence has been turned off by an I/O failure.
    pub fn is_disabled(&self) -> bool {
        self.disabled.load(Ordering::Relaxed)
    }

    /// The shard path for `key` under the current fingerprint.
    pub fn shard_path<K: StoreKey>(&self, key: &K) -> PathBuf {
        let id = format!("{} / {} / {}", K::KIND, key.key_id(), self.fingerprint);
        self.root
            .join(format!("{}-{:016x}.json", K::KIND, fnv1a(id.as_bytes())))
    }

    /// Loads the stored value for `key`, or `None` on a cold miss *or any
    /// kind of damage* — unreadable, unparsable, wrong key, checksum
    /// mismatch, undecodable value. Damaged shards are quarantined so the
    /// evidence survives and the next save does not fight a corpse.
    pub fn load<K: StoreKey, V: Persist>(&self, key: &K) -> Option<V> {
        if self.is_disabled() {
            return None;
        }
        let path = self.shard_path(key);
        let raw = match std::fs::read(&path) {
            Ok(raw) => raw,
            // A missing shard is the ordinary cold miss. Any other read
            // error means the file exists but cannot be trusted.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(e) => {
                self.quarantine(&path, &format!("unreadable shard: {e}"));
                return None;
            }
        };
        let bytes = match String::from_utf8(raw) {
            Ok(text) => text,
            Err(_) => {
                self.quarantine(&path, "shard is not valid UTF-8");
                return None;
            }
        };
        match self.decode(key, &bytes) {
            Ok(value) => {
                self.loads.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            Err(why) => {
                self.quarantine(&path, &why);
                None
            }
        }
    }

    fn decode<K: StoreKey, V: Persist>(&self, key: &K, bytes: &str) -> Result<V, String> {
        let shard = Json::parse(bytes).map_err(|e| format!("unparsable shard: {e}"))?;
        let expect = |name: &str, want: &str| -> Result<(), String> {
            let got = shard
                .get(name)
                .and_then(|v| v.as_str())
                .ok_or_else(|| format!("shard missing {name:?}"))?;
            if got == want {
                Ok(())
            } else {
                Err(format!("shard {name} {got:?} != expected {want:?}"))
            }
        };
        expect("schema", SCHEMA)?;
        expect("kind", K::KIND)?;
        expect("fingerprint", &self.fingerprint)?;
        expect("key_id", &key.key_id())?;
        let value = shard.get("value").ok_or("shard missing \"value\"")?;
        let recorded = shard
            .get("checksum")
            .and_then(|v| v.as_str())
            .ok_or("shard missing \"checksum\"")?;
        let actual = format!("{:#018x}", fnv1a(value.to_string_compact().as_bytes()));
        if recorded != actual {
            return Err(format!("checksum mismatch: recorded {recorded}, actual {actual}"));
        }
        V::from_store_json(value).map_err(|e| format!("undecodable value: {e}"))
    }

    /// Writes the shard for `(key, value)` atomically. All I/O errors
    /// warn once and disable the store; execution continues without
    /// persistence.
    pub fn save<K: StoreKey, V: Persist>(&self, key: &K, value: &V) {
        if self.is_disabled() {
            return;
        }
        let value_json = value.to_store_json();
        let checksum = format!("{:#018x}", fnv1a(value_json.to_string_compact().as_bytes()));
        let shard = Json::object([
            ("schema", Json::Str(SCHEMA.to_string())),
            ("kind", Json::Str(K::KIND.to_string())),
            ("fingerprint", Json::Str(self.fingerprint.clone())),
            ("key", key.key_json()),
            ("key_id", Json::Str(key.key_id())),
            ("checksum", Json::Str(checksum)),
            ("value", value_json),
        ]);
        let mut text = shard.to_string_pretty();
        text.push('\n');
        let path = self.shard_path(key);
        if let Err(e) = self.write_atomic(&path, &text) {
            self.disable(&format!("cannot write shard {}: {e}", path.display()));
            return;
        }
        self.saves.fetch_add(1, Ordering::Relaxed);
    }

    fn write_atomic(&self, path: &Path, text: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.root)?;
        // Same directory as the final name, so the rename cannot cross a
        // filesystem boundary; pid-suffixed so concurrent processes
        // warming the same store never clobber each other's temp files.
        let tmp = path.with_extension(format!("tmp{}", std::process::id()));
        std::fs::write(&tmp, text)?;
        match std::fs::rename(&tmp, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    fn quarantine(&self, path: &Path, why: &str) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        // Collision-safe: a shard can be damaged again after a recompute
        // healed it (flaky disk, repeated in-place corruption), and the
        // evidence from the earlier incident must survive. First incident
        // gets `.json.quarantined`, later ones numbered suffixes.
        let mut target = path.with_extension("json.quarantined");
        let mut n = 0u32;
        while target.exists() && n < 1000 {
            n += 1;
            target = path.with_extension(format!("json.quarantined.{n}"));
        }
        let moved = std::fs::rename(path, &target).is_ok();
        eprintln!(
            "warning: quarantined damaged shard {} ({why}); {}",
            path.display(),
            if moved {
                "recomputing"
            } else {
                "could not move it aside; recomputing anyway"
            }
        );
    }

    fn disable(&self, why: &str) {
        self.disabled.store(true, Ordering::Relaxed);
        self.warned.call_once(|| {
            eprintln!(
                "warning: result store at {} disabled for the rest of this run ({why}); \
                 results will not be persisted",
                self.root.display()
            );
        });
    }
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("root", &self.root)
            .field("fingerprint", &self.fingerprint)
            .field("disabled", &self.is_disabled())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::ToJson;

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct TestKey(String);

    impl StoreKey for TestKey {
        const KIND: &'static str = "test";
        fn key_id(&self) -> String {
            self.0.clone()
        }
        fn key_json(&self) -> Json {
            Json::object([("name", Json::Str(self.0.clone()))])
        }
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct TestValue(u64);

    impl Persist for TestValue {
        fn to_store_json(&self) -> Json {
            Json::object([("n", self.0.to_json())])
        }
        fn from_store_json(json: &Json) -> Result<Self, String> {
            json.get("n")
                .and_then(|v| v.as_u64())
                .map(TestValue)
                .ok_or_else(|| "missing n".to_string())
        }
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "seer-store-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trip() {
        let root = temp_root("roundtrip");
        let store = Store::open(&root);
        let key = TestKey("alpha".into());
        assert_eq!(store.load::<_, TestValue>(&key), None, "cold store misses");
        store.save(&key, &TestValue(7));
        assert_eq!(store.load(&key), Some(TestValue(7)));
        assert_eq!(store.stats().saves, 1);
        assert_eq!(store.stats().loads, 1);
        assert_eq!(store.stats().quarantined, 0);

        // A second store over the same directory is warm.
        let warm = Store::open(&root);
        assert_eq!(warm.load(&key), Some(TestValue(7)));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn keys_do_not_collide() {
        let root = temp_root("keys");
        let store = Store::open(&root);
        store.save(&TestKey("a".into()), &TestValue(1));
        store.save(&TestKey("b".into()), &TestValue(2));
        assert_eq!(store.load(&TestKey("a".into())), Some(TestValue(1)));
        assert_eq!(store.load(&TestKey("b".into())), Some(TestValue(2)));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_shard_is_quarantined_and_misses() {
        let root = temp_root("corrupt");
        let store = Store::open(&root);
        let key = TestKey("victim".into());
        store.save(&key, &TestValue(9));
        let path = store.shard_path(&key);

        // Flip a byte inside the value payload: parses, but fails the
        // checksum.
        let mut bytes = std::fs::read_to_string(&path).unwrap();
        bytes = bytes.replace("\"n\": 9", "\"n\": 8");
        std::fs::write(&path, bytes).unwrap();

        assert_eq!(store.load::<_, TestValue>(&key), None);
        assert_eq!(store.stats().quarantined, 1);
        assert!(!path.exists(), "damaged shard moved aside");
        assert!(path.with_extension("json.quarantined").exists());

        // Recompute-and-save heals the slot.
        store.save(&key, &TestValue(9));
        assert_eq!(store.load(&key), Some(TestValue(9)));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn repeated_corruption_keeps_every_quarantined_copy() {
        let root = temp_root("requarantine");
        let store = Store::open(&root);
        let key = TestKey("victim".into());
        let path = store.shard_path(&key);

        // Corrupt → quarantine → heal, twice over. The second quarantine
        // must not clobber the first incident's evidence.
        for round in 0..2 {
            store.save(&key, &TestValue(9));
            let mut bytes = std::fs::read_to_string(&path).unwrap();
            bytes = bytes.replace("\"n\": 9", &format!("\"n\": {round}"));
            std::fs::write(&path, bytes).unwrap();
            assert_eq!(store.load::<_, TestValue>(&key), None, "round {round}");
        }
        assert_eq!(store.stats().quarantined, 2);
        let first = path.with_extension("json.quarantined");
        let second = path.with_extension("json.quarantined.1");
        assert!(first.exists(), "first incident preserved");
        assert!(second.exists(), "second incident gets a numbered suffix");
        // Distinct payloads prove neither overwrote the other.
        assert_ne!(
            std::fs::read_to_string(&first).unwrap(),
            std::fs::read_to_string(&second).unwrap()
        );
        // The slot itself is healthy again after a save.
        store.save(&key, &TestValue(9));
        assert_eq!(store.load(&key), Some(TestValue(9)));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn truncated_shard_is_quarantined() {
        let root = temp_root("truncated");
        let store = Store::open(&root);
        let key = TestKey("t".into());
        store.save(&key, &TestValue(3));
        let path = store.shard_path(&key);
        let bytes = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(store.load::<_, TestValue>(&key), None);
        assert_eq!(store.stats().quarantined, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn fingerprint_mismatch_reads_as_cold() {
        let root = temp_root("fingerprint");
        let store = Store::open(&root);
        let key = TestKey("f".into());
        store.save(&key, &TestValue(4));
        let mut other = Store::open(&root);
        other.fingerprint = "v9.9.9+k999".to_string();
        // Different fingerprint → different shard name → plain miss, no
        // quarantine (the old shard is someone else's valid result).
        assert_eq!(other.load::<_, TestValue>(&key), None);
        assert_eq!(other.stats().quarantined, 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn unwritable_root_warns_once_and_disables() {
        // A root that cannot be a directory: a file sits in its place.
        let root = temp_root("unwritable");
        std::fs::create_dir_all(root.parent().unwrap()).unwrap();
        std::fs::write(&root, "not a directory").unwrap();
        let store = Store::open(&root);
        let key = TestKey("x".into());
        store.save(&key, &TestValue(1));
        assert!(store.is_disabled());
        assert_eq!(store.stats().saves, 0);
        // Still a store API-wise: loads just miss.
        assert_eq!(store.load::<_, TestValue>(&key), None);
        let _ = std::fs::remove_file(&root);
    }
}
