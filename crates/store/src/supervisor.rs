//! Per-item supervision: retry, deadline, and panic isolation.
//!
//! The executor wraps every computed plan item in [`supervise`], which
//! implements a small state machine:
//!
//! ```text
//!          ┌────────────── backoff · attempts left ──────────────┐
//!          ▼                                                     │
//!   RUN ──ok──▶ DONE          RUN ──panic / timeout──▶ FAILED ───┤
//!                                                                │
//!                              attempts exhausted ──▶ give up (reported)
//! ```
//!
//! * **Panic isolation** — the work runs under `catch_unwind`, so a
//!   poisoned cell (a tripped safety valve, a violated invariant) becomes
//!   a [`RunFailure::Panicked`] with the panic message, not a process
//!   abort. The default panic hook still prints, which is deliberate:
//!   the cell's stack trace is the evidence.
//! * **Deadline** — with a wall-clock limit configured, each attempt runs
//!   on its own OS thread and the supervisor waits with a timeout. On
//!   expiry the runaway thread is *detached* (a pure simulation holds no
//!   locks anyone else needs; it finishes into the void and its result is
//!   discarded) and the attempt counts as [`RunFailure::TimedOut`]. The
//!   simulated-cycle budget is enforced inside the kernel itself — the
//!   driver's event safety valve truncates the run, the runner panics on
//!   `truncated`, and that panic lands here as a `Panicked` failure.
//! * **Retry** — deterministic simulations fail deterministically, so
//!   retries exist for the *environment* (a timeout on an overloaded CI
//!   box, a transient resource failure), bounded by `SEER_RETRIES` with
//!   exponential backoff.
//!
//! Determinism: supervision never touches the simulation's inputs. A
//! retried run has identical coordinates, so its result is bit-identical
//! to a first-try success; timeouts and retries can change *whether* a
//! result is obtained, never *which* result.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Once;
use std::time::Duration;

/// Why a supervised attempt (and eventually a whole item) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunFailure {
    /// The work panicked; carries the panic payload rendered as text.
    Panicked(String),
    /// The work exceeded the configured wall-clock deadline.
    TimedOut {
        /// The deadline that was exceeded.
        limit: Duration,
    },
}

impl std::fmt::Display for RunFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunFailure::Panicked(msg) => write!(f, "panicked: {msg}"),
            RunFailure::TimedOut { limit } => {
                write!(f, "timed out after {} ms", limit.as_millis())
            }
        }
    }
}

/// Supervision knobs, normally read from the environment once per
/// executor ([`SupervisorConfig::from_env`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Extra attempts after the first failure (`SEER_RETRIES`, default 1;
    /// 0 = fail fast).
    pub retries: u32,
    /// Wall-clock deadline per attempt (`SEER_CELL_TIMEOUT_MS`, default
    /// none — simulations are bounded by the kernel's cycle budget).
    pub timeout: Option<Duration>,
    /// Base backoff before the first retry; doubles per further retry.
    pub backoff: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            retries: 1,
            timeout: None,
            backoff: Duration::from_millis(10),
        }
    }
}

impl SupervisorConfig {
    /// Reads `SEER_RETRIES` and `SEER_CELL_TIMEOUT_MS`, warning once per
    /// process on unparsable values (the harness's env discipline).
    pub fn from_env() -> Self {
        static RETRIES_WARNED: Once = Once::new();
        static TIMEOUT_WARNED: Once = Once::new();
        let mut cfg = Self::default();
        if let Ok(raw) = std::env::var("SEER_RETRIES") {
            match raw.parse::<u32>() {
                Ok(n) => cfg.retries = n,
                Err(_) => RETRIES_WARNED.call_once(|| {
                    eprintln!(
                        "warning: ignoring invalid SEER_RETRIES={raw:?} \
                         (expected a non-negative integer); using default {}",
                        cfg.retries
                    );
                }),
            }
        }
        if let Ok(raw) = std::env::var("SEER_CELL_TIMEOUT_MS") {
            match raw.parse::<u64>() {
                Ok(ms) if ms > 0 => cfg.timeout = Some(Duration::from_millis(ms)),
                _ => TIMEOUT_WARNED.call_once(|| {
                    eprintln!(
                        "warning: ignoring invalid SEER_CELL_TIMEOUT_MS={raw:?} \
                         (expected a positive integer of milliseconds); \
                         running without a deadline"
                    );
                }),
            }
        }
        cfg
    }

    /// A config that fails fast: no retries, no deadline. Used by tests
    /// that want a poisoned cell to surface immediately.
    pub fn fail_fast() -> Self {
        Self {
            retries: 0,
            timeout: None,
            backoff: Duration::ZERO,
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn attempt<V, F>(cfg: &SupervisorConfig, work: &F) -> Result<V, RunFailure>
where
    V: Send + 'static,
    F: Fn() -> V + Clone + Send + 'static,
{
    match cfg.timeout {
        None => catch_unwind(AssertUnwindSafe(work))
            .map_err(|payload| RunFailure::Panicked(panic_message(payload))),
        Some(limit) => {
            let (tx, rx) = mpsc::channel();
            let work = work.clone();
            std::thread::spawn(move || {
                let outcome = catch_unwind(AssertUnwindSafe(&work))
                    .map_err(|payload| RunFailure::Panicked(panic_message(payload)));
                // The receiver may be gone (deadline passed); that is the
                // detach path and the result is deliberately discarded.
                let _ = tx.send(outcome);
            });
            match rx.recv_timeout(limit) {
                Ok(outcome) => outcome,
                Err(_) => Err(RunFailure::TimedOut { limit }),
            }
        }
    }
}

/// Runs `work` under `cfg`: up to `1 + retries` attempts with exponential
/// backoff between them. Returns the value, or the *last* failure plus
/// the number of attempts consumed.
pub fn supervise<V, F>(cfg: &SupervisorConfig, work: F) -> Result<V, (RunFailure, u32)>
where
    V: Send + 'static,
    F: Fn() -> V + Clone + Send + 'static,
{
    let attempts = 1 + cfg.retries;
    let mut last = None;
    for round in 0..attempts {
        if round > 0 && !cfg.backoff.is_zero() {
            std::thread::sleep(cfg.backoff * 2u32.pow(round - 1));
        }
        match attempt(cfg, &work) {
            Ok(v) => return Ok(v),
            Err(failure) => last = Some(failure),
        }
    }
    Err((last.expect("at least one attempt ran"), attempts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn success_is_transparent() {
        let cfg = SupervisorConfig::fail_fast();
        assert_eq!(supervise(&cfg, || 41 + 1), Ok(42));
    }

    #[test]
    fn panic_is_contained_and_reported() {
        let cfg = SupervisorConfig::fail_fast();
        let result: Result<(), _> = supervise(&cfg, || panic!("cell poisoned: boom"));
        let (failure, attempts) = result.unwrap_err();
        assert_eq!(attempts, 1);
        match failure {
            RunFailure::Panicked(msg) => assert!(msg.contains("boom"), "{msg}"),
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn retries_are_bounded_and_counted() {
        let cfg = SupervisorConfig {
            retries: 2,
            timeout: None,
            backoff: Duration::ZERO,
        };
        let calls = Arc::new(AtomicU32::new(0));
        let seen = calls.clone();
        let result: Result<(), _> = supervise(&cfg, move || {
            seen.fetch_add(1, Ordering::SeqCst);
            panic!("always fails")
        });
        let (_, attempts) = result.unwrap_err();
        assert_eq!(attempts, 3);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn transient_failure_recovers_on_retry() {
        let cfg = SupervisorConfig {
            retries: 1,
            timeout: None,
            backoff: Duration::ZERO,
        };
        let calls = Arc::new(AtomicU32::new(0));
        let seen = calls.clone();
        let result = supervise(&cfg, move || {
            if seen.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient")
            }
            7u64
        });
        assert_eq!(result, Ok(7));
    }

    #[test]
    fn deadline_detaches_a_runaway() {
        let cfg = SupervisorConfig {
            retries: 0,
            timeout: Some(Duration::from_millis(20)),
            backoff: Duration::ZERO,
        };
        let result: Result<(), _> = supervise(&cfg, || {
            std::thread::sleep(Duration::from_millis(500));
        });
        let (failure, _) = result.unwrap_err();
        assert!(matches!(failure, RunFailure::TimedOut { .. }), "{failure:?}");
    }

    #[test]
    fn deadline_passes_fast_work_through() {
        let cfg = SupervisorConfig {
            retries: 0,
            timeout: Some(Duration::from_secs(30)),
            backoff: Duration::ZERO,
        };
        assert_eq!(supervise(&cfg, || 5u8), Ok(5));
    }
}
