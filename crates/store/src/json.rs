//! Dependency-free JSON serialization (and parsing) for report export.
//!
//! The workspace builds with no network access, so it cannot use
//! `serde`/`serde_json`. The export surface is small (a handful of report
//! structs written once per experiment run, plus the trace JSONL
//! streams), so a tiny tree type plus a `ToJson` trait is enough; field
//! names match what `serde` would have produced, so downstream plotting
//! scripts are unaffected. The parser ([`Json::parse`]) exists for the
//! `trace_check` schema validator, which must re-read exported JSONL.

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer (serialized without a decimal point).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Float; non-finite values serialize as `null` (JSON has no NaN).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for objects.
    pub fn object(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Serializes with 2-space indentation (matches
    /// `serde_json::to_string_pretty`'s layout closely enough for humans
    /// and exactly enough for parsers).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Serializes on one line with no whitespace — the JSONL form (one
    /// record per line requires the record itself to be newline-free).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
            // Scalars render identically in both forms.
            scalar => scalar.write(out, 0),
        }
    }

    /// Member lookup on an object; `None` on missing keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one (accepts `Int` ≥ 0).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(u) => Some(u),
            Json::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as a float (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Num(f) => Some(f),
            Json::UInt(u) => Some(u as f64),
            Json::Int(i) => Some(i as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON document, rejecting trailing garbage.
    ///
    /// Supports everything this module's serializer emits (which is all of
    /// standard JSON); numbers parse as `UInt`/`Int` when integral and
    /// within range, `Num` otherwise.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Num(f) => {
                if f.is_finite() {
                    // `{f}` is Rust's shortest round-trip float formatting,
                    // and always includes enough precision to reparse.
                    if f.fract() == 0.0 && f.abs() < 1e15 {
                        // Match serde_json: floats keep a decimal point.
                        out.push_str(&format!("{f:.1}"));
                    } else {
                        out.push_str(&format!("{f}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Unpaired surrogates are replaced, which is
                            // fine: the serializer never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad number")?;
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] tree (the shim's `serde::Serialize`).
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::UInt(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        Json::Int(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string_pretty(), "null");
        assert_eq!(Json::Bool(true).to_string_pretty(), "true");
        assert_eq!(Json::UInt(42).to_string_pretty(), "42");
        assert_eq!(Json::Num(1.5).to_string_pretty(), "1.5");
        assert_eq!(Json::Num(2.0).to_string_pretty(), "2.0");
        assert_eq!(Json::Num(f64::NAN).to_string_pretty(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::Str("a\"b\\c\nd".into()).to_string_pretty(),
            r#""a\"b\\c\nd""#
        );
    }

    #[test]
    fn structure_renders_pretty() {
        let v = Json::object([
            ("name", "x".to_json()),
            ("points", vec![(1usize, 0.5f64)].to_json()),
            ("empty", Json::Array(vec![])),
        ]);
        let text = v.to_string_pretty();
        assert_eq!(
            text,
            "{\n  \"name\": \"x\",\n  \"points\": [\n    [\n      1,\n      0.5\n    ]\n  ],\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn option_maps_to_null() {
        assert_eq!(None::<f64>.to_json(), Json::Null);
        assert_eq!(Some(3.0f64).to_json(), Json::Num(3.0));
    }

    #[test]
    fn compact_form_is_single_line() {
        let v = Json::object([
            ("name", "x\ny".to_json()),
            ("points", vec![(1usize, 0.5f64)].to_json()),
            ("empty", Json::Array(vec![])),
        ]);
        let text = v.to_string_compact();
        assert_eq!(text, r#"{"name":"x\ny","points":[[1,0.5]],"empty":[]}"#);
        assert!(!text.contains('\n'));
    }

    #[test]
    fn parse_round_trips_both_forms() {
        let v = Json::object([
            ("b", Json::Bool(false)),
            ("n", Json::Null),
            ("i", Json::Int(-3)),
            ("u", Json::UInt(18_446_744_073_709_551_615)),
            ("f", Json::Num(0.125)),
            ("s", "esc \"\\\n\t".to_json()),
            ("a", Json::Array(vec![Json::UInt(1), Json::Num(2.5)])),
            ("o", Json::object([("k", Json::UInt(9))])),
        ]);
        assert_eq!(Json::parse(&v.to_string_compact()).unwrap(), v);
        assert_eq!(Json::parse(&v.to_string_pretty()).unwrap(), v);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err(), "trailing garbage");
    }

    #[test]
    fn parse_number_variants() {
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("2.0").unwrap(), Json::Num(2.0));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
    }

    #[test]
    fn accessors_navigate() {
        let v = Json::parse(r#"{"a":{"b":[1,true,"x",2.5]}}"#).unwrap();
        let arr = v.get("a").unwrap().get("b").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_bool(), Some(true));
        assert_eq!(arr[2].as_str(), Some("x"));
        assert_eq!(arr[3].as_f64(), Some(2.5));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("a"), None);
    }
}
