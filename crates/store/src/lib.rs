//! # seer-store — durable results and crash-safe execution
//!
//! Every simulation in the workspace is a pure function of its
//! coordinates, which makes results *cacheable across processes*, not
//! just within one. This crate provides the three layers that exploit
//! that (DESIGN.md §13):
//!
//! * [`json`] — the workspace's dependency-free JSON tree (moved here
//!   from the harness so persistence does not depend on it).
//! * [`Store`] — a content-addressed shard-per-result store on disk:
//!   atomic temp-file+rename writes, FNV-1a per-shard checksums, and
//!   corruption detection that *quarantines* bad shards and recomputes
//!   instead of crashing. Keyed by `(key, kernel fingerprint)` so stale
//!   results from an older kernel can never warm a newer run.
//! * [`Executor`] — the one generic plan/memoize/fan-out engine behind
//!   both the harness's `CellExecutor` and the scenario engine's
//!   `ScenarioExecutor`, extended with disk warm-start
//!   ([`Executor::disk_hits`]) and a [`supervisor`]: bounded retry with
//!   exponential backoff, optional wall-clock deadline per item, and
//!   `catch_unwind` isolation so one poisoned cell degrades into an
//!   explicit entry of the [`ExecReport`] rather than aborting the sweep.
//!
//! Determinism is non-negotiable: a disk-warmed or resumed run must be
//! byte-identical to a cold one. The shard format therefore stores every
//! field of the result losslessly (floats round-trip via the JSON
//! module's shortest-round-trip formatting), and the conformance suite
//! replays the committed trace-hash fixtures against a warmed store.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod executor;
pub mod json;
pub mod persist;
pub mod store;
pub mod supervisor;

pub use executor::{
    parallel_map, ExecReport, Executor, FailedItem, Plan, PlanKey, RemoteOutcome, RemoteResolver,
};
pub use json::{Json, ToJson};
pub use persist::{fnv1a, Persist, StoreKey};
pub use store::{kernel_fingerprint, Store, StoreStats};
pub use supervisor::{supervise, RunFailure, SupervisorConfig};
