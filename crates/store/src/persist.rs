//! Persistence traits and the lossless `RunMetrics` shard codec.
//!
//! A type goes into the store by implementing two small traits:
//!
//! * [`StoreKey`] — the identity of a result: a shard *kind* namespace
//!   plus a stable textual id the store content-addresses on.
//! * [`Persist`] — a lossless JSON round-trip. "Lossless" is load-bearing:
//!   a disk-warmed executor must hand back values bit-identical to a
//!   fresh simulation, so every counter, histogram bucket and float must
//!   survive the trip exactly (floats do — the JSON module formats them
//!   shortest-round-trip).
//!
//! `RunMetrics` is implemented here (this crate depends on the runtime);
//! scenario outcomes implement [`Persist`] in `seer-scenario`, next to
//! the types they serialize.

use seer_runtime::{ConflictGroundTruth, ModeCounts, RunMetrics, TxMode};
use seer_sim::CycleHistogram;

use crate::json::{Json, ToJson};

/// FNV-1a 64-bit hash — the workspace's one content-hash primitive
/// (trace hashes, stats digests, and now shard names and checksums).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// The identity of a storable result.
pub trait StoreKey {
    /// Shard namespace (`"cell"`, `"scenario"`); keeps unrelated result
    /// types from ever colliding in one store directory.
    const KIND: &'static str;

    /// A stable, unique textual identity for this key. The store hashes
    /// `kind / key_id / fingerprint` into the shard filename, so two keys
    /// with equal ids *are* the same result.
    fn key_id(&self) -> String;

    /// The key as JSON, embedded in the shard for human inspection and
    /// load-time verification (a filename hash collision is detected by
    /// comparing this, not trusted to never happen).
    fn key_json(&self) -> Json;
}

/// Lossless JSON round-trip for stored values.
pub trait Persist: Sized {
    /// Serializes the value. Must be deterministic: the shard checksum is
    /// computed over the compact form of exactly this tree.
    fn to_store_json(&self) -> Json;

    /// Parses a value back, rejecting anything malformed with a
    /// diagnostic (the store turns errors into quarantine + recompute,
    /// never a panic).
    fn from_store_json(json: &Json) -> Result<Self, String>;
}

fn field<'a>(json: &'a Json, name: &str) -> Result<&'a Json, String> {
    json.get(name).ok_or_else(|| format!("missing field {name:?}"))
}

fn u64_field(json: &Json, name: &str) -> Result<u64, String> {
    field(json, name)?
        .as_u64()
        .ok_or_else(|| format!("field {name:?} is not a u64"))
}

fn bool_field(json: &Json, name: &str) -> Result<bool, String> {
    field(json, name)?
        .as_bool()
        .ok_or_else(|| format!("field {name:?} is not a bool"))
}

fn u64_array(json: &Json, name: &str) -> Result<Vec<u64>, String> {
    field(json, name)?
        .as_array()
        .ok_or_else(|| format!("field {name:?} is not an array"))?
        .iter()
        .map(|v| v.as_u64().ok_or_else(|| format!("{name:?} holds a non-u64")))
        .collect()
}

fn histogram_json(h: &CycleHistogram) -> Json {
    Json::object([
        ("buckets", Json::Array(h.buckets().iter().map(|&b| b.to_json()).collect())),
        ("count", h.count().to_json()),
        ("total", h.total().to_json()),
        ("max", h.max().to_json()),
    ])
}

fn histogram_from_json(json: &Json) -> Result<CycleHistogram, String> {
    let raw = u64_array(json, "buckets")?;
    let buckets: [u64; 65] = raw
        .try_into()
        .map_err(|v: Vec<u64>| format!("histogram has {} buckets, expected 65", v.len()))?;
    Ok(CycleHistogram::from_raw(
        buckets,
        u64_field(json, "count")?,
        u64_field(json, "total")?,
        u64_field(json, "max")?,
    ))
}

impl Persist for RunMetrics {
    fn to_store_json(&self) -> Json {
        let mode_counts: Vec<Json> = TxMode::ALL
            .iter()
            .map(|&m| self.modes.get(m).to_json())
            .collect();
        Json::object([
            ("commits", self.commits.to_json()),
            ("modes", Json::Array(mode_counts)),
            (
                "aborts",
                Json::object([
                    ("conflict", self.aborts.conflict.to_json()),
                    ("capacity", self.aborts.capacity.to_json()),
                    ("explicit", self.aborts.explicit.to_json()),
                    ("other", self.aborts.other.to_json()),
                ]),
            ),
            ("htm_attempts", self.htm_attempts.to_json()),
            ("fallbacks", self.fallbacks.to_json()),
            (
                "attempts_histogram",
                Json::Array(self.attempts_histogram.iter().map(|&n| n.to_json()).collect()),
            ),
            ("wait_cycles", self.wait_cycles.to_json()),
            ("wait_histogram", histogram_json(&self.wait_histogram)),
            ("makespan", self.makespan.to_json()),
            ("sequential_cycles", self.sequential_cycles.to_json()),
            (
                "tx_lock_acquisitions",
                Json::Array(
                    self.tx_lock_acquisitions
                        .iter()
                        .map(|&n| u64::from(n).to_json())
                        .collect(),
                ),
            ),
            ("tx_locks_available", self.tx_locks_available.to_json()),
            (
                "ground_truth",
                Json::object([
                    ("blocks", self.ground_truth.blocks().to_json()),
                    (
                        "kills",
                        Json::Array(self.ground_truth.kills().iter().map(|&k| k.to_json()).collect()),
                    ),
                ]),
            ),
            ("truncated", self.truncated.to_json()),
            ("events", self.events.to_json()),
            ("trace_hash", self.trace_hash.to_json()),
        ])
    }

    fn from_store_json(json: &Json) -> Result<Self, String> {
        let mode_raw = u64_array(json, "modes")?;
        if mode_raw.len() != TxMode::ALL.len() {
            return Err(format!("modes has {} entries, expected 6", mode_raw.len()));
        }
        let mut mode_counts = [0u64; 6];
        mode_counts.copy_from_slice(&mode_raw);
        let modes = ModeCounts::from_counts(mode_counts);
        let aborts_json = field(json, "aborts")?;
        let gt_json = field(json, "ground_truth")?;
        let blocks = u64_field(gt_json, "blocks")? as usize;
        let kills = u64_array(gt_json, "kills")?;
        let ground_truth = ConflictGroundTruth::from_raw(blocks, kills)
            .map_err(|e| format!("ground_truth: {e}"))?;
        let tx_lock_acquisitions = u64_array(json, "tx_lock_acquisitions")?
            .into_iter()
            .map(|n| u32::try_from(n).map_err(|_| "tx_lock_acquisitions overflow".to_string()))
            .collect::<Result<Vec<u32>, String>>()?;
        Ok(RunMetrics {
            commits: u64_field(json, "commits")?,
            modes,
            aborts: seer_runtime::AbortCounts {
                conflict: u64_field(aborts_json, "conflict")?,
                capacity: u64_field(aborts_json, "capacity")?,
                explicit: u64_field(aborts_json, "explicit")?,
                other: u64_field(aborts_json, "other")?,
            },
            htm_attempts: u64_field(json, "htm_attempts")?,
            fallbacks: u64_field(json, "fallbacks")?,
            attempts_histogram: u64_array(json, "attempts_histogram")?,
            wait_cycles: u64_field(json, "wait_cycles")?,
            wait_histogram: histogram_from_json(field(json, "wait_histogram")?)?,
            makespan: u64_field(json, "makespan")?,
            sequential_cycles: u64_field(json, "sequential_cycles")?,
            tx_lock_acquisitions,
            tx_locks_available: u64_field(json, "tx_locks_available")? as usize,
            ground_truth,
            truncated: bool_field(json, "truncated")?,
            events: u64_field(json, "events")?,
            trace_hash: u64_field(json, "trace_hash")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn run_metrics_round_trip_is_lossless() {
        let mut m = RunMetrics::new(3, 5, 7);
        m.commits = 42;
        m.modes.record(TxMode::HtmNoLocks);
        m.modes.record(TxMode::SglFallback);
        m.aborts.conflict = 9;
        m.aborts.capacity = 1;
        m.htm_attempts = 50;
        m.fallbacks = 1;
        m.attempts_histogram = vec![30, 10, 1, 0, 0, 1];
        m.wait_cycles = 1234;
        m.wait_histogram.record(0);
        m.wait_histogram.record(700);
        m.wait_histogram.record(u64::MAX / 3);
        m.makespan = 99_999;
        m.sequential_cycles = 300_000;
        m.tx_lock_acquisitions = vec![1, 3, 2];
        m.ground_truth.record(0, 2);
        m.ground_truth.record(2, 1);
        m.events = 4096;
        m.trace_hash = 0xdead_beef_cafe_f00d;

        let json = m.to_store_json();
        let back = RunMetrics::from_store_json(&json).expect("round trip");
        assert_eq!(format!("{m:?}"), format!("{back:?}"));
        // And through the actual byte serialization too.
        let reparsed = Json::parse(&json.to_string_compact()).expect("parse");
        let back2 = RunMetrics::from_store_json(&reparsed).expect("round trip via bytes");
        assert_eq!(format!("{m:?}"), format!("{back2:?}"));
    }

    #[test]
    fn malformed_shard_is_an_error_not_a_panic() {
        let m = RunMetrics::new(1, 3, 0);
        let mut json = m.to_store_json();
        if let Json::Object(fields) = &mut json {
            fields.retain(|(k, _)| k != "makespan");
        }
        assert!(RunMetrics::from_store_json(&json).is_err());
        assert!(RunMetrics::from_store_json(&Json::Null).is_err());
        assert!(RunMetrics::from_store_json(&Json::parse("{\"modes\":[1,2]}").unwrap()).is_err());
    }
}
