//! The `seer serve` worker daemon.
//!
//! A worker is deliberately dumb: it holds no queue, no store, and no
//! state beyond the connection it is answering. The coordinator owns
//! scheduling, retry, and persistence; the worker's entire contract is
//! *"given coordinates, compute the value those coordinates determine"*.
//! That is what makes the distributed sweep trivially deterministic —
//! a worker cannot influence results, only produce or fail to produce
//! them, and every produced value is checksummed and re-verified by the
//! coordinator before it is trusted.
//!
//! Per connection (one OS thread each):
//!
//! 1. expect `hello`, reject on protocol-version or kernel-fingerprint
//!    mismatch (a worker built from a different kernel would compute
//!    different bytes), echo `hello` on match;
//! 2. loop: read `work`, compute it on a helper thread under
//!    `catch_unwind`, stream `heartbeat` frames every
//!    [`HEARTBEAT_INTERVAL`](crate::proto::HEARTBEAT_INTERVAL) while the
//!    computation runs, then send `done {checksum, value}` or
//!    `failed {error}`.
//!
//! Panics inside a cell (e.g. the driver's event safety valve) become
//! `failed` frames, mirroring the local supervisor's `catch_unwind`
//! isolation: a poisoned work item degrades into an explicit failure,
//! never a dead worker.

use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::thread;

use seer_harness::{execute_cell, Cell, PolicyKind};
use seer_scenario::{library, RunRequest};
use seer_stamp::Benchmark;
use seer_store::{kernel_fingerprint, Json, Persist};

use crate::proto::{
    read_frame, write_frame, Message, ProtoError, WorkItem, HEARTBEAT_INTERVAL, PROTOCOL_VERSION,
};

/// Binds `addr` (use port 0 for an ephemeral port) and returns the
/// listener without serving yet, so callers can report the resolved
/// address before blocking.
pub fn bind(addr: &str) -> std::io::Result<TcpListener> {
    TcpListener::bind(addr)
}

/// Serves connections on `listener` forever (or until accept fails
/// hard). Each connection gets its own thread; a connection-level
/// protocol error kills that connection only.
pub fn serve(listener: TcpListener) -> std::io::Result<()> {
    for conn in listener.incoming() {
        match conn {
            Ok(stream) => {
                thread::spawn(move || {
                    // Connection teardown (peer gone, protocol abuse) is
                    // the peer's problem; the daemon just moves on.
                    let _ = handle_connection(stream);
                });
            }
            Err(e) => eprintln!("serve: warning: accept failed: {e}"),
        }
    }
    Ok(())
}

fn handle_connection(mut stream: TcpStream) -> Result<(), ProtoError> {
    let fingerprint = kernel_fingerprint();
    match read_frame(&mut stream)? {
        Message::Hello {
            protocol,
            fingerprint: theirs,
        } => {
            if protocol != PROTOCOL_VERSION {
                let message = format!(
                    "protocol mismatch: coordinator speaks v{protocol}, worker speaks v{PROTOCOL_VERSION}"
                );
                write_frame(&mut stream, &Message::Error { message }).map_err(ProtoError::Io)?;
                return Ok(());
            }
            if theirs != fingerprint {
                let message = format!(
                    "kernel fingerprint mismatch: coordinator {theirs}, worker {fingerprint}"
                );
                write_frame(&mut stream, &Message::Error { message }).map_err(ProtoError::Io)?;
                return Ok(());
            }
            write_frame(
                &mut stream,
                &Message::Hello {
                    protocol: PROTOCOL_VERSION,
                    fingerprint,
                },
            )
            .map_err(ProtoError::Io)?;
        }
        other => {
            let message = format!("expected hello, got {other:?}");
            write_frame(&mut stream, &Message::Error { message }).map_err(ProtoError::Io)?;
            return Ok(());
        }
    }
    loop {
        match read_frame(&mut stream) {
            Ok(Message::Work { id, item }) => run_work(&mut stream, id, item)?,
            Ok(other) => {
                let message = format!("expected work, got {other:?}");
                write_frame(&mut stream, &Message::Error { message }).map_err(ProtoError::Io)?;
                return Ok(());
            }
            Err(ProtoError::Closed) => return Ok(()),
            Err(e) => return Err(e),
        }
    }
}

/// Computes one work item on a helper thread, heartbeating on the
/// connection while it runs, then reports `done` or `failed`.
fn run_work(stream: &mut TcpStream, id: u64, item: WorkItem) -> Result<(), ProtoError> {
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        let _ = tx.send(compute(item));
    });
    loop {
        match rx.recv_timeout(HEARTBEAT_INTERVAL) {
            Ok(Ok(value)) => {
                let checksum = crate::proto::value_checksum(&value);
                return write_frame(
                    stream,
                    &Message::Done {
                        id,
                        checksum,
                        value,
                    },
                )
                .map_err(ProtoError::Io);
            }
            Ok(Err(error)) => {
                return write_frame(stream, &Message::Failed { id, error }).map_err(ProtoError::Io)
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                write_frame(stream, &Message::Heartbeat { id }).map_err(ProtoError::Io)?;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // The helper thread died without sending — a double
                // panic inside catch_unwind, which should be impossible;
                // report rather than hang.
                return write_frame(
                    stream,
                    &Message::Failed {
                        id,
                        error: "worker compute thread vanished".into(),
                    },
                )
                .map_err(ProtoError::Io);
            }
        }
    }
}

/// Resolves a [`Benchmark`] from its wire name (`Benchmark::name`).
pub fn benchmark_by_name(name: &str) -> Option<Benchmark> {
    Benchmark::STAMP
        .into_iter()
        .chain([Benchmark::HashmapLow, Benchmark::Labyrinth])
        .find(|b| b.name() == name)
}

/// Executes one work item to its `Persist`-encoded value. Unknown
/// coordinates and panics become `Err` strings (→ `failed` frames).
pub fn compute(item: WorkItem) -> Result<Json, String> {
    match item {
        WorkItem::Cell {
            benchmark,
            policy,
            threads,
            seed,
            scale_bits,
        } => {
            let benchmark = benchmark_by_name(&benchmark)
                .ok_or_else(|| format!("unknown benchmark {benchmark:?}"))?;
            let policy: PolicyKind = policy
                .parse()
                .map_err(|e| format!("unknown policy: {e}"))?;
            let cell = Cell {
                benchmark,
                policy,
                threads,
            };
            let scale = f64::from_bits(scale_bits);
            let metrics = catch_unwind(AssertUnwindSafe(|| execute_cell(cell, seed, scale, None)))
                .map_err(|p| format!("panicked: {}", panic_text(&p)))?;
            Ok(metrics.to_store_json())
        }
        WorkItem::Scenario {
            scenario,
            policy,
            seed,
        } => {
            let spec = library::builtin(&scenario)
                .ok_or_else(|| format!("unknown scenario {scenario:?}"))?;
            let policy: PolicyKind = policy
                .parse()
                .map_err(|e| format!("unknown policy: {e}"))?;
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                RunRequest::scenario(&spec).policy(policy).seed(seed).run()
            }))
            .map_err(|p| format!("panicked: {}", panic_text(&p)))?;
            Ok(outcome.to_store_json())
        }
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_names_round_trip_through_the_wire_form() {
        for b in Benchmark::STAMP
            .into_iter()
            .chain([Benchmark::HashmapLow, Benchmark::Labyrinth])
        {
            assert_eq!(benchmark_by_name(b.name()), Some(b));
        }
        assert_eq!(benchmark_by_name("no-such-benchmark"), None);
    }

    #[test]
    fn unknown_coordinates_fail_cleanly() {
        let err = compute(WorkItem::Cell {
            benchmark: "genome".into(),
            policy: "not-a-policy".into(),
            threads: 2,
            seed: 0,
            scale_bits: 0.05f64.to_bits(),
        })
        .unwrap_err();
        assert!(err.contains("unknown policy"), "{err}");
        let err = compute(WorkItem::Scenario {
            scenario: "no-such-scenario".into(),
            policy: "seer".into(),
            seed: 0,
        })
        .unwrap_err();
        assert!(err.contains("unknown scenario"), "{err}");
    }

    #[test]
    fn cell_compute_matches_a_direct_local_run() {
        let cell = Cell {
            benchmark: Benchmark::Genome,
            policy: PolicyKind::Rtm,
            threads: 2,
        };
        let local = execute_cell(cell, 0, 0.05, None).to_store_json();
        let wire = compute(WorkItem::Cell {
            benchmark: "genome".into(),
            policy: "rtm".into(),
            threads: 2,
            seed: 0,
            scale_bits: 0.05f64.to_bits(),
        })
        .unwrap();
        assert_eq!(wire.to_string_compact(), local.to_string_compact());
    }
}
