//! The coordinator's worker pool — the `Executor`'s remote stage.
//!
//! [`WorkerPool`] implements [`RemoteResolver`] for both key kinds the
//! workspace executes (`CellKey` → `RunMetrics`, `ScenarioKey` →
//! `ScenarioOutcome`), so attaching one to an `Executor` slots remote
//! dispatch between the disk store and local compute: memo → disk →
//! **remote** → local. Everything a worker returns is persisted to the
//! same shard store as a local result would be, so a distributed sweep
//! warms exactly the cache a serial one does.
//!
//! Fault model (the chaos suite exercises all of it):
//!
//! * **Per-worker window.** Each worker gets up to `window` concurrent
//!   connections, each carrying one in-flight item; calls beyond the
//!   budget wait on a condvar until a slot frees or a worker dies.
//! * **Heartbeat deadline.** Sockets carry a read timeout of
//!   `heartbeat_timeout` (default 50× the worker's 100 ms heartbeat
//!   interval); a worker that goes silent past it — stalled, SIGKILLed,
//!   partitioned — is declared dead, its in-flight item is retried on
//!   another worker, and nothing is lost.
//! * **Checksum verification.** `done` values are re-hashed (FNV-1a over
//!   the compact encoding, the store's own convention) and a mismatch is
//!   treated as a dead worker, not a usable result.
//! * **Graceful degradation.** When every worker is dead or unreachable
//!   the pool returns [`RemoteOutcome::Unavailable`] and warns exactly
//!   once; the executor then falls through to supervised local compute,
//!   so a sweep *completes correctly with zero workers* — just slower.
//!
//! Determinism: the pool changes only *where* a value is computed, never
//! *what* it is. Workers refuse mismatched kernel fingerprints at
//! handshake, values are pure functions of their keys, and the
//! conformance suite replays the committed trace-hash fixtures through a
//! two-worker pool byte-for-byte.

use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, Once};
use std::time::Duration;

use seer_harness::CellKey;
use seer_runtime::RunMetrics;
use seer_scenario::{ScenarioKey, ScenarioOutcome};
use seer_store::{kernel_fingerprint, Json, Persist, RemoteOutcome, RemoteResolver};

use crate::proto::{
    read_frame, value_checksum, write_frame, Message, ProtoError, WorkItem, PROTOCOL_VERSION,
};

/// Tuning for the coordinator side of the wire.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Max concurrent in-flight items (connections) per worker.
    pub window: usize,
    /// Max silence on a connection before the worker is declared dead.
    /// Workers heartbeat every ~100 ms while computing, so this is a
    /// generous multiple of the expected gap.
    pub heartbeat_timeout: Duration,
    /// Max time to wait for a TCP connect + handshake to a worker.
    pub connect_timeout: Duration,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            window: 2,
            heartbeat_timeout: Duration::from_millis(5000),
            connect_timeout: Duration::from_millis(2000),
        }
    }
}

impl PoolConfig {
    /// Reads overrides from `SEER_REMOTE_WINDOW` and
    /// `SEER_REMOTE_TIMEOUT_MS`, warning once per unparsable value
    /// (same discipline as `SupervisorConfig::from_env`).
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Ok(raw) = std::env::var("SEER_REMOTE_WINDOW") {
            match raw.parse::<usize>() {
                Ok(n) if n > 0 => cfg.window = n,
                _ => warn_once_env("SEER_REMOTE_WINDOW", &raw),
            }
        }
        if let Ok(raw) = std::env::var("SEER_REMOTE_TIMEOUT_MS") {
            match raw.parse::<u64>() {
                Ok(ms) if ms > 0 => cfg.heartbeat_timeout = Duration::from_millis(ms),
                _ => warn_once_env("SEER_REMOTE_TIMEOUT_MS", &raw),
            }
        }
        cfg
    }
}

fn warn_once_env(var: &str, raw: &str) {
    static WARN: Once = Once::new();
    WARN.call_once(|| {
        eprintln!("seer: warning: ignoring unparsable {var}={raw:?}");
    });
}

/// Counters describing what the pool has done so far. All monotonic;
/// snapshot via [`WorkerPool::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Work items sent to a worker (retries count again).
    pub dispatched: u64,
    /// Items that came back `done` with a verified checksum.
    pub completed: u64,
    /// Items that came back `failed` (the computation itself failed).
    pub failed: u64,
    /// Items re-sent to another worker after their worker died.
    pub retried: u64,
    /// Workers declared dead (unreachable, timed out, or corrupting).
    pub workers_lost: u64,
}

/// One configured worker endpoint with its connection slots.
struct Worker {
    addr: String,
    /// Idle, handshaken connections ready for a work item.
    idle: Mutex<VecDeque<Conn>>,
    /// Connections created (idle + in flight); bounded by `window`.
    created: AtomicUsize,
    alive: AtomicBool,
}

/// One handshaken connection. Reads are buffered; frames are written to
/// the raw stream (they are single `write_all`s).
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

enum Attempt {
    /// Verified value.
    Done(Json),
    /// The worker computed and said no; do not retry elsewhere — the
    /// computation is deterministic, so another worker would fail too.
    Failed(String),
    /// The *worker* failed (died, timed out, corrupted); retry elsewhere.
    WorkerLost(String),
}

/// A fixed set of workers behind the [`RemoteResolver`] interface.
pub struct WorkerPool {
    workers: Vec<Worker>,
    cfg: PoolConfig,
    rr: AtomicUsize,
    /// Lock + condvar used only for waiting when all live workers are
    /// saturated; slot bookkeeping itself is in the per-worker atomics.
    slot_lock: Mutex<()>,
    slot_free: Condvar,
    dispatched: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    retried: AtomicU64,
    workers_lost: AtomicU64,
    degraded: Once,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("addrs", &self.addrs())
            .field("alive", &self.alive_workers())
            .field("stats", &self.stats())
            .finish()
    }
}

impl WorkerPool {
    /// Builds a pool over `addrs` and eagerly probes each worker with a
    /// connect + handshake, so startup problems (down, wrong build)
    /// surface as warnings immediately rather than mid-sweep. A pool
    /// where every probe failed is still usable — it degrades to
    /// `Unavailable` on first dispatch.
    pub fn connect(addrs: &[String], cfg: PoolConfig) -> WorkerPool {
        let pool = WorkerPool {
            workers: addrs
                .iter()
                .map(|addr| Worker {
                    addr: addr.clone(),
                    idle: Mutex::new(VecDeque::new()),
                    created: AtomicUsize::new(0),
                    alive: AtomicBool::new(true),
                })
                .collect(),
            cfg,
            rr: AtomicUsize::new(0),
            slot_lock: Mutex::new(()),
            slot_free: Condvar::new(),
            dispatched: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            workers_lost: AtomicU64::new(0),
            degraded: Once::new(),
        };
        for w in &pool.workers {
            match pool.open_conn(w) {
                Ok(conn) => {
                    w.idle.lock().unwrap().push_back(conn);
                }
                Err(why) => pool.mark_dead(w, &why),
            }
        }
        pool
    }

    /// Worker addresses, in configuration order.
    pub fn addrs(&self) -> Vec<String> {
        self.workers.iter().map(|w| w.addr.clone()).collect()
    }

    /// Workers still considered alive.
    pub fn alive_workers(&self) -> usize {
        self.workers
            .iter()
            .filter(|w| w.alive.load(Ordering::Acquire))
            .count()
    }

    /// Total in-flight capacity across live workers — what a caller
    /// should size its fan-out to.
    pub fn capacity(&self) -> usize {
        self.alive_workers() * self.cfg.window
    }

    /// Snapshot of the pool's counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            dispatched: self.dispatched.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            workers_lost: self.workers_lost.load(Ordering::Relaxed),
        }
    }

    /// Sends one item to some live worker and waits for its result,
    /// retrying on other workers if the first dies mid-flight. Returns
    /// the raw `Persist` JSON; the typed [`RemoteResolver`] impls decode
    /// it.
    pub fn dispatch(&self, item: &WorkItem) -> RemoteOutcome<Json> {
        let mut attempts = 0u64;
        loop {
            let n = self.workers.len();
            if n == 0 {
                return self.degrade();
            }
            let start = self.rr.fetch_add(1, Ordering::Relaxed);
            let mut any_alive = false;
            for i in 0..n {
                let w = &self.workers[(start + i) % n];
                if !w.alive.load(Ordering::Acquire) {
                    continue;
                }
                any_alive = true;
                let Some(conn) = self.acquire(w) else {
                    continue; // saturated or just died; try the next one
                };
                self.dispatched.fetch_add(1, Ordering::Relaxed);
                if attempts > 0 {
                    self.retried.fetch_add(1, Ordering::Relaxed);
                }
                attempts += 1;
                match self.request(w, conn, item) {
                    Attempt::Done(value) => {
                        self.completed.fetch_add(1, Ordering::Relaxed);
                        return RemoteOutcome::Computed(value);
                    }
                    Attempt::Failed(error) => {
                        self.failed.fetch_add(1, Ordering::Relaxed);
                        return RemoteOutcome::Failed(error);
                    }
                    Attempt::WorkerLost(why) => {
                        self.mark_dead(w, &why);
                        // fall through: try the remaining workers, or
                        // re-enter the outer loop to re-scan.
                    }
                }
            }
            if !any_alive {
                return self.degrade();
            }
            // Every live worker is saturated: wait for a slot (or a
            // death) and re-scan. The timeout guards against a lost
            // notify racing a death.
            let guard = self.slot_lock.lock().unwrap();
            let _unused = self
                .slot_free
                .wait_timeout(guard, Duration::from_millis(50))
                .unwrap();
        }
    }

    /// Pops an idle connection or opens a new one within the window.
    fn acquire(&self, w: &Worker) -> Option<Conn> {
        if let Some(conn) = w.idle.lock().unwrap().pop_front() {
            return Some(conn);
        }
        // Reserve a slot before connecting so concurrent callers cannot
        // overshoot the window.
        let prev = w.created.fetch_add(1, Ordering::AcqRel);
        if prev >= self.cfg.window {
            w.created.fetch_sub(1, Ordering::AcqRel);
            return None;
        }
        match self.open_conn(w) {
            Ok(conn) => Some(conn),
            Err(why) => {
                w.created.fetch_sub(1, Ordering::AcqRel);
                self.mark_dead(w, &why);
                None
            }
        }
    }

    /// Returns a healthy connection to the idle set and wakes a waiter.
    fn release(&self, w: &Worker, conn: Conn) {
        w.idle.lock().unwrap().push_back(conn);
        self.slot_free.notify_all();
    }

    /// Drops a connection (its slot frees) and wakes a waiter.
    fn discard(&self, w: &Worker, conn: Conn) {
        drop(conn);
        w.created.fetch_sub(1, Ordering::AcqRel);
        self.slot_free.notify_all();
    }

    /// TCP connect + hello handshake, with timeouts throughout.
    fn open_conn(&self, w: &Worker) -> Result<Conn, String> {
        let addr = w
            .addr
            .to_socket_addrs()
            .map_err(|e| format!("bad address: {e}"))?
            .next()
            .ok_or("address resolved to nothing")?;
        let stream = TcpStream::connect_timeout(&addr, self.cfg.connect_timeout)
            .map_err(|e| format!("connect failed: {e}"))?;
        stream
            .set_read_timeout(Some(self.cfg.heartbeat_timeout))
            .map_err(|e| format!("set_read_timeout failed: {e}"))?;
        stream.set_nodelay(true).ok();
        let mut writer = stream
            .try_clone()
            .map_err(|e| format!("clone failed: {e}"))?;
        let mut reader = BufReader::new(stream);
        write_frame(
            &mut writer,
            &Message::Hello {
                protocol: PROTOCOL_VERSION,
                fingerprint: kernel_fingerprint(),
            },
        )
        .map_err(|e| format!("handshake write failed: {e}"))?;
        match read_frame(&mut reader) {
            Ok(Message::Hello { protocol, .. }) if protocol == PROTOCOL_VERSION => Ok(Conn {
                reader,
                writer,
                next_id: 0,
            }),
            Ok(Message::Error { message }) => Err(format!("worker rejected handshake: {message}")),
            Ok(other) => Err(format!("unexpected handshake reply: {other:?}")),
            Err(e) => Err(format!("handshake read failed: {e}")),
        }
    }

    /// One request/response exchange on one connection.
    fn request(&self, w: &Worker, mut conn: Conn, item: &WorkItem) -> Attempt {
        let id = conn.next_id;
        conn.next_id += 1;
        if let Err(e) = write_frame(
            &mut conn.writer,
            &Message::Work {
                id,
                item: item.clone(),
            },
        ) {
            self.discard(w, conn);
            return Attempt::WorkerLost(format!("work write failed: {e}"));
        }
        loop {
            match read_frame(&mut conn.reader) {
                Ok(Message::Heartbeat { id: hb }) if hb == id => continue,
                Ok(Message::Done {
                    id: did,
                    checksum,
                    value,
                }) if did == id => {
                    if value_checksum(&value) != checksum {
                        self.discard(w, conn);
                        return Attempt::WorkerLost("done frame failed checksum".into());
                    }
                    self.release(w, conn);
                    return Attempt::Done(value);
                }
                Ok(Message::Failed { id: fid, error }) if fid == id => {
                    self.release(w, conn);
                    return Attempt::Failed(error);
                }
                Ok(Message::Error { message }) => {
                    self.discard(w, conn);
                    return Attempt::WorkerLost(format!("worker protocol error: {message}"));
                }
                Ok(other) => {
                    self.discard(w, conn);
                    return Attempt::WorkerLost(format!("unexpected frame: {other:?}"));
                }
                Err(ProtoError::Io(e))
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    self.discard(w, conn);
                    return Attempt::WorkerLost(format!(
                        "no heartbeat within {:?}",
                        self.cfg.heartbeat_timeout
                    ));
                }
                Err(e) => {
                    self.discard(w, conn);
                    return Attempt::WorkerLost(format!("read failed: {e}"));
                }
            }
        }
    }

    /// Marks a worker dead (idempotent), dropping its idle connections.
    fn mark_dead(&self, w: &Worker, why: &str) {
        if w.alive.swap(false, Ordering::AcqRel) {
            self.workers_lost.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "seer: warning: lost worker {}: {why}; re-dispatching its work",
                w.addr
            );
        }
        w.idle.lock().unwrap().clear();
        self.slot_free.notify_all();
    }

    /// All workers dead: warn once and hand the item back to the
    /// executor's local stage.
    fn degrade(&self) -> RemoteOutcome<Json> {
        self.degraded.call_once(|| {
            eprintln!(
                "seer: warning: no reachable workers ({}); continuing with local compute",
                self.addrs().join(", ")
            );
        });
        RemoteOutcome::Unavailable
    }

    fn resolve_decoded<V: Persist>(&self, item: &WorkItem) -> RemoteOutcome<V> {
        match self.dispatch(item) {
            RemoteOutcome::Computed(json) => match V::from_store_json(&json) {
                Ok(value) => RemoteOutcome::Computed(value),
                Err(e) => {
                    // A checksummed frame that fails to decode means the
                    // worker runs a different (yet fingerprint-equal)
                    // codec — treat like unavailability, compute locally.
                    eprintln!("seer: warning: undecodable remote value ({e}); computing locally");
                    RemoteOutcome::Unavailable
                }
            },
            RemoteOutcome::Unavailable => RemoteOutcome::Unavailable,
            RemoteOutcome::Failed(e) => RemoteOutcome::Failed(e),
        }
    }
}

impl RemoteResolver<CellKey, RunMetrics> for WorkerPool {
    fn resolve_remote(&self, key: &CellKey) -> RemoteOutcome<RunMetrics> {
        self.resolve_decoded(&WorkItem::Cell {
            benchmark: key.benchmark.name().to_string(),
            policy: key.policy.spec(),
            threads: key.threads,
            seed: key.seed,
            scale_bits: key.scale().to_bits(),
        })
    }
}

impl RemoteResolver<ScenarioKey, ScenarioOutcome> for WorkerPool {
    fn resolve_remote(&self, key: &ScenarioKey) -> RemoteOutcome<ScenarioOutcome> {
        self.resolve_decoded(&WorkItem::Scenario {
            scenario: key.scenario.clone(),
            policy: key.policy.spec(),
            seed: key.seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_pool_with_no_reachable_workers_degrades_instead_of_erroring() {
        // Port 1 is essentially never listening; connect fails fast.
        let pool = WorkerPool::connect(
            &["127.0.0.1:1".to_string()],
            PoolConfig {
                connect_timeout: Duration::from_millis(200),
                ..PoolConfig::default()
            },
        );
        assert_eq!(pool.alive_workers(), 0);
        assert_eq!(pool.capacity(), 0);
        let out = pool.dispatch(&WorkItem::Scenario {
            scenario: "x".into(),
            policy: "seer".into(),
            seed: 0,
        });
        assert!(matches!(out, RemoteOutcome::Unavailable));
        assert_eq!(pool.stats().workers_lost, 1);
        assert_eq!(pool.stats().dispatched, 0);
    }
}
