//! # seer-remote — distributed sweep execution
//!
//! Fans the workspace's embarrassingly parallel work — harness cells and
//! scenario runs — across worker processes, without giving up one byte
//! of the determinism contract. Three pieces (DESIGN.md §14):
//!
//! * [`proto`] — a length-prefixed JSON wire protocol built on the
//!   store's dependency-free JSON tree. Total decoding: any corrupt
//!   byte stream is a typed error, never a panic.
//! * [`serve`] — the `seer serve` worker daemon: stateless, one thread
//!   per connection, kernel-fingerprint handshake, heartbeats while
//!   computing, `catch_unwind` isolation per work item.
//! * [`pool`] — the coordinator's [`WorkerPool`], which plugs into
//!   `seer_store::Executor` as the remote resolution stage (memo → disk
//!   → remote → local) with per-worker in-flight windows, heartbeat
//!   deadlines, retry-on-another-worker, and warn-once degradation to
//!   local compute when every worker is gone.
//!
//! The headline property — pinned by `crates/conformance/tests/remote.rs`
//! and the chaos suite — is that a sweep fanned over N workers (even N
//! workers being killed mid-flight) re-derives exactly the bytes a
//! serial local run produces, and lands them in the same shard store.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod pool;
pub mod proto;
pub mod serve;

pub use pool::{PoolConfig, PoolStats, WorkerPool};
pub use proto::{
    encode_frame, read_frame, value_checksum, write_frame, Message, ProtoError, WorkItem,
    HEARTBEAT_INTERVAL, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
pub use serve::{bind, compute, serve};
