//! The length-prefixed JSON wire protocol between coordinator and worker.
//!
//! A **frame** is a 4-byte big-endian length followed by exactly that many
//! bytes of compact JSON (one [`Message`], no newlines). The length covers
//! the JSON bytes only and is capped at [`MAX_FRAME_LEN`]; a corrupt or
//! hostile prefix therefore errors cleanly instead of allocating the moon.
//! The JSON payload reuses the workspace's dependency-free [`Json`] tree
//! (`seer_store::json`), so the protocol inherits the store's exact float
//! round-tripping — the same property that makes disk shards lossless
//! makes wire values lossless.
//!
//! Message flow (one connection = one in-flight work slot):
//!
//! ```text
//! coordinator                         worker
//!     │ ── hello {protocol, fingerprint} ─▶ │   (reject on mismatch)
//!     │ ◀─ hello {protocol, fingerprint} ── │
//!     │ ── work {id, item} ───────────────▶ │
//!     │ ◀─ heartbeat {id} ───────────────── │   (every ~100 ms while computing)
//!     │ ◀─ done {id, checksum, value} ───── │   (or failed {id, error})
//!     │ ── work {id+1, item} ─────────────▶ │   ...
//! ```
//!
//! Decoding is *total*: any byte sequence — truncated frames, bit flips,
//! garbage lengths, well-formed JSON of the wrong shape — produces a
//! [`ProtoError`], never a panic. `crates/remote/tests/proto_props.rs`
//! sweeps corruptions at every offset to pin that.

use std::io::{Read, Write};
use std::time::Duration;

use seer_store::{fnv1a, Json, ToJson};

/// Bumped on any incompatible change to frames or message shapes; the
/// hello handshake rejects mismatches before any work is exchanged.
pub const PROTOCOL_VERSION: u64 = 1;

/// Upper bound on a frame's JSON payload. The largest real payload (a
/// `done` carrying a full `ScenarioOutcome`) is a few hundred KiB; a
/// length prefix beyond this bound is treated as corruption.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// How often a worker emits `heartbeat` frames while computing.
pub const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(100);

/// Why a frame could not be read or understood.
#[derive(Debug)]
pub enum ProtoError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// An I/O failure (includes read timeouts and mid-frame EOF).
    Io(std::io::Error),
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    TooLarge(u64),
    /// The payload is not valid JSON, or is JSON of the wrong shape.
    Malformed(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Closed => write!(f, "connection closed"),
            ProtoError::Io(e) => write!(f, "i/o error: {e}"),
            ProtoError::TooLarge(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            ProtoError::Malformed(why) => write!(f, "malformed frame: {why}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// One unit of remote work, as it travels on the wire. Coordinates are
/// carried as the *names* the whole workspace round-trips already
/// (`Benchmark::name`, `PolicyKind::name`, built-in scenario names), and
/// the workload scale travels as raw IEEE-754 bits — the store-key
/// discipline, so a remote result is addressed exactly like a local one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkItem {
    /// One harness cell: a `(benchmark, policy, threads, seed, scale)`
    /// simulation.
    Cell {
        /// Benchmark name (`Benchmark::name`).
        benchmark: String,
        /// Policy name (`PolicyKind::name`).
        policy: String,
        /// Simulated threads.
        threads: usize,
        /// Harness seed.
        seed: u64,
        /// Workload scale factor, as raw `f64` bits.
        scale_bits: u64,
    },
    /// One built-in scenario run.
    Scenario {
        /// Built-in scenario name.
        scenario: String,
        /// Policy name.
        policy: String,
        /// Harness seed.
        seed: u64,
    },
}

impl WorkItem {
    fn to_json(&self) -> Json {
        match self {
            WorkItem::Cell {
                benchmark,
                policy,
                threads,
                seed,
                scale_bits,
            } => Json::object([
                ("kind", "cell".to_json()),
                ("benchmark", benchmark.to_json()),
                ("policy", policy.to_json()),
                ("threads", threads.to_json()),
                ("seed", seed.to_json()),
                ("scale_bits", scale_bits.to_json()),
            ]),
            WorkItem::Scenario {
                scenario,
                policy,
                seed,
            } => Json::object([
                ("kind", "scenario".to_json()),
                ("scenario", scenario.to_json()),
                ("policy", policy.to_json()),
                ("seed", seed.to_json()),
            ]),
        }
    }

    fn from_json(json: &Json) -> Result<Self, String> {
        match str_field(json, "kind")?.as_str() {
            "cell" => Ok(WorkItem::Cell {
                benchmark: str_field(json, "benchmark")?,
                policy: str_field(json, "policy")?,
                threads: u64_field(json, "threads")? as usize,
                seed: u64_field(json, "seed")?,
                scale_bits: u64_field(json, "scale_bits")?,
            }),
            "scenario" => Ok(WorkItem::Scenario {
                scenario: str_field(json, "scenario")?,
                policy: str_field(json, "policy")?,
                seed: u64_field(json, "seed")?,
            }),
            other => Err(format!("unknown work kind {other:?}")),
        }
    }
}

/// Every frame kind the protocol exchanges.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Handshake, sent by the coordinator on connect and echoed by the
    /// worker. Both the protocol version and the kernel fingerprint
    /// (`seer_store::kernel_fingerprint`) must match exactly: a worker
    /// built from a different kernel would compute *different bytes* for
    /// the same key, and determinism is the headline claim.
    Hello {
        /// [`PROTOCOL_VERSION`] of the sender.
        protocol: u64,
        /// Kernel fingerprint of the sender's build.
        fingerprint: String,
    },
    /// A work assignment.
    Work {
        /// Connection-local request id; responses echo it.
        id: u64,
        /// The work.
        item: WorkItem,
    },
    /// Liveness signal while a work item is computing.
    Heartbeat {
        /// Id of the in-flight work item.
        id: u64,
    },
    /// Successful completion.
    Done {
        /// Id of the completed work item.
        id: u64,
        /// FNV-1a 64 over the compact encoding of `value` — the same
        /// checksum the disk store records, verified by the coordinator
        /// before the value is trusted.
        checksum: u64,
        /// The `Persist`-encoded result.
        value: Json,
    },
    /// The computation itself failed on the worker (panic, unknown
    /// coordinates). The connection stays usable.
    Failed {
        /// Id of the failed work item.
        id: u64,
        /// Human-oriented failure description.
        error: String,
    },
    /// Protocol-level failure (handshake rejection, unparsable frame);
    /// the sender closes the connection after this.
    Error {
        /// What went wrong.
        message: String,
    },
}

impl Message {
    /// The message as a JSON tree (the frame payload).
    pub fn to_json(&self) -> Json {
        match self {
            Message::Hello {
                protocol,
                fingerprint,
            } => Json::object([
                ("type", "hello".to_json()),
                ("protocol", protocol.to_json()),
                ("fingerprint", fingerprint.to_json()),
            ]),
            Message::Work { id, item } => Json::object([
                ("type", "work".to_json()),
                ("id", id.to_json()),
                ("item", item.to_json()),
            ]),
            Message::Heartbeat { id } => Json::object([
                ("type", "heartbeat".to_json()),
                ("id", id.to_json()),
            ]),
            Message::Done {
                id,
                checksum,
                value,
            } => Json::object([
                ("type", "done".to_json()),
                ("id", id.to_json()),
                ("checksum", checksum.to_json()),
                ("value", value.clone()),
            ]),
            Message::Failed { id, error } => Json::object([
                ("type", "failed".to_json()),
                ("id", id.to_json()),
                ("error", error.to_json()),
            ]),
            Message::Error { message } => Json::object([
                ("type", "error".to_json()),
                ("message", message.to_json()),
            ]),
        }
    }

    /// Parses a message from a JSON tree, rejecting anything malformed
    /// with a diagnostic (never a panic).
    pub fn from_json(json: &Json) -> Result<Self, String> {
        match str_field(json, "type")?.as_str() {
            "hello" => Ok(Message::Hello {
                protocol: u64_field(json, "protocol")?,
                fingerprint: str_field(json, "fingerprint")?,
            }),
            "work" => Ok(Message::Work {
                id: u64_field(json, "id")?,
                item: WorkItem::from_json(
                    json.get("item").ok_or("work frame missing \"item\"")?,
                )?,
            }),
            "heartbeat" => Ok(Message::Heartbeat {
                id: u64_field(json, "id")?,
            }),
            "done" => Ok(Message::Done {
                id: u64_field(json, "id")?,
                checksum: u64_field(json, "checksum")?,
                value: json
                    .get("value")
                    .cloned()
                    .ok_or("done frame missing \"value\"")?,
            }),
            "failed" => Ok(Message::Failed {
                id: u64_field(json, "id")?,
                error: str_field(json, "error")?,
            }),
            "error" => Ok(Message::Error {
                message: str_field(json, "message")?,
            }),
            other => Err(format!("unknown message type {other:?}")),
        }
    }
}

fn str_field(json: &Json, name: &str) -> Result<String, String> {
    Ok(json
        .get(name)
        .ok_or_else(|| format!("missing field {name:?}"))?
        .as_str()
        .ok_or_else(|| format!("field {name:?} is not a string"))?
        .to_string())
}

fn u64_field(json: &Json, name: &str) -> Result<u64, String> {
    json.get(name)
        .ok_or_else(|| format!("missing field {name:?}"))?
        .as_u64()
        .ok_or_else(|| format!("field {name:?} is not a u64"))
}

/// The checksum a `done` frame must carry for `value` — FNV-1a 64 over
/// the compact encoding, exactly as the disk store records it.
pub fn value_checksum(value: &Json) -> u64 {
    fnv1a(value.to_string_compact().as_bytes())
}

/// Encodes `msg` as one frame (length prefix + compact JSON).
pub fn encode_frame(msg: &Message) -> Vec<u8> {
    let payload = msg.to_json().to_string_compact();
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload.as_bytes());
    out
}

/// Writes one frame and flushes.
pub fn write_frame<W: Write>(w: &mut W, msg: &Message) -> std::io::Result<()> {
    w.write_all(&encode_frame(msg))?;
    w.flush()
}

/// Reads one frame. A clean EOF *between* frames is [`ProtoError::Closed`];
/// everything else that can go wrong — short reads, oversized lengths,
/// non-UTF-8, bad JSON, wrong shapes — is a typed error, never a panic.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Message, ProtoError> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf[..1]) {
        Ok(0) => return Err(ProtoError::Closed),
        Ok(_) => {}
        Err(e) => return Err(ProtoError::Io(e)),
    }
    r.read_exact(&mut len_buf[1..]).map_err(ProtoError::Io)?;
    let len = u32::from_be_bytes(len_buf) as u64;
    if len as usize > MAX_FRAME_LEN {
        return Err(ProtoError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(ProtoError::Io)?;
    let text = String::from_utf8(payload)
        .map_err(|_| ProtoError::Malformed("payload is not valid UTF-8".into()))?;
    let json = Json::parse(&text).map_err(|e| ProtoError::Malformed(format!("bad JSON: {e}")))?;
    Message::from_json(&json).map_err(ProtoError::Malformed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn round_trip(msg: Message) {
        let bytes = encode_frame(&msg);
        let back = read_frame(&mut Cursor::new(&bytes)).expect("decodes");
        assert_eq!(back, msg);
    }

    #[test]
    fn every_message_kind_round_trips() {
        round_trip(Message::Hello {
            protocol: PROTOCOL_VERSION,
            fingerprint: "v0.1.0+k1".into(),
        });
        round_trip(Message::Work {
            id: 7,
            item: WorkItem::Cell {
                benchmark: "genome".into(),
                policy: "seer".into(),
                threads: 4,
                seed: 0,
                scale_bits: 0.08f64.to_bits(),
            },
        });
        round_trip(Message::Work {
            id: 8,
            item: WorkItem::Scenario {
                scenario: "churn-storm".into(),
                policy: "rtm".into(),
                seed: 1,
            },
        });
        round_trip(Message::Heartbeat { id: 9 });
        let value = Json::object([("n", 42u64.to_json())]);
        round_trip(Message::Done {
            id: 10,
            checksum: value_checksum(&value),
            value,
        });
        round_trip(Message::Failed {
            id: 11,
            error: "panicked: boom".into(),
        });
        round_trip(Message::Error {
            message: "fingerprint mismatch".into(),
        });
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocating() {
        let mut bytes = vec![0xff, 0xff, 0xff, 0xff];
        bytes.extend_from_slice(b"{}");
        match read_frame(&mut Cursor::new(&bytes)) {
            Err(ProtoError::TooLarge(n)) => assert_eq!(n, 0xffff_ffff),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn empty_stream_reads_as_closed() {
        assert!(matches!(
            read_frame(&mut Cursor::new(&[])),
            Err(ProtoError::Closed)
        ));
    }
}
