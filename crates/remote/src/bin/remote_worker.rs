//! Standalone worker binary for the chaos suite (and anyone who wants a
//! worker without the full CLI). Equivalent to `seer serve --addr`.
//!
//! Prints `serve: listening on {addr}` (with the *resolved* port, so
//! `--addr 127.0.0.1:0` is usable) to stdout and flushes before
//! serving; test harnesses parse that line to learn the port.

use std::io::Write;

fn main() {
    let mut addr = "127.0.0.1:0".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => {
                    eprintln!("remote_worker: --addr needs a value");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("remote_worker: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let listener = match seer_remote::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("remote_worker: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    let local = listener.local_addr().expect("listener has a local addr");
    println!("serve: listening on {local}");
    std::io::stdout().flush().ok();
    if let Err(e) = seer_remote::serve(listener) {
        eprintln!("remote_worker: serve failed: {e}");
        std::process::exit(1);
    }
}
