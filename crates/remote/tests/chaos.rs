//! Chaos suite: real worker *processes*, real faults, zero result drift.
//!
//! Spawns `remote_worker` binaries (the same serve loop behind `seer
//! serve`), points a coordinator pool at them, and then misbehaves:
//! SIGKILL one worker mid-sweep, SIGSTOP another past the heartbeat
//! deadline, and — separately — run with no reachable worker at all.
//! The hard assertions are *results-identity* ones, deliberately immune
//! to timing: whatever the faults, the sweep must complete with 100%
//! coverage and every value must be byte-identical to a serial local
//! run. The counter assertions (workers declared lost, work retried)
//! only check directions that the fault script makes inevitable.

#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use seer_harness::{CellExecutor, HarnessConfig, Plan, PolicyKind};
use seer_remote::{PoolConfig, WorkerPool};
use seer_stamp::Benchmark;
use seer_store::Persist;

/// A spawned worker process and the address it bound.
struct WorkerProc {
    child: Child,
    addr: String,
}

impl WorkerProc {
    /// Spawns the worker binary on an ephemeral port and parses the
    /// `serve: listening on ADDR` line it prints before serving.
    fn spawn() -> WorkerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_remote_worker"))
            .args(["--addr", "127.0.0.1:0"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("worker binary spawns");
        let stdout = child.stdout.take().expect("stdout is piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("worker announces its address");
        let addr = line
            .trim()
            .strip_prefix("serve: listening on ")
            .unwrap_or_else(|| panic!("unexpected announce line {line:?}"))
            .to_string();
        WorkerProc { child, addr }
    }

    fn pid(&self) -> u32 {
        self.child.id()
    }

    /// SIGKILL — the worker vanishes without any protocol goodbye.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// SIGSTOP — the worker freezes mid-whatever: the TCP connection
    /// stays open but heartbeats stop, which only the coordinator's
    /// read deadline can detect.
    fn stall(&self) {
        let status = Command::new("kill")
            .args(["-STOP", &self.pid().to_string()])
            .status()
            .expect("kill -STOP runs");
        assert!(status.success(), "SIGSTOP failed");
    }
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        // SIGKILL works on stopped processes too, so no SIGCONT needed.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Aggressive-but-safe coordinator tuning for the tests: workers
/// heartbeat every ~100 ms, so 900 ms of silence means stalled.
fn test_pool_config() -> PoolConfig {
    PoolConfig {
        window: 2,
        heartbeat_timeout: Duration::from_millis(900),
        connect_timeout: Duration::from_millis(1000),
    }
}

/// The chaos workload: enough independent cells that faults injected
/// mid-sweep are guaranteed to leave work for the survivors.
fn chaos_plan(cfg: &HarnessConfig) -> Plan {
    let mut plan = Plan::new();
    plan.add_grid(
        &[Benchmark::HashmapLow, Benchmark::Ssca2],
        &[PolicyKind::Rtm, PolicyKind::Seer],
        &[1, 2],
        cfg,
    );
    plan
}

fn chaos_cfg(jobs: usize) -> HarnessConfig {
    HarnessConfig {
        seeds: 3,
        scale: 0.1,
        jobs,
    }
}

/// Every key of `plan`, resolved on `exec`, must be byte-identical to
/// the serial local reference.
fn assert_results_match_local(exec: &CellExecutor, plan: &Plan) {
    let reference = CellExecutor::new(chaos_cfg(1));
    for key in plan.items() {
        let distributed = exec
            .cached(key.cell(), key.seed, key.scale())
            .unwrap_or_else(|| panic!("missing result for {key:?}"));
        let local = reference.metrics_at(key.cell(), key.seed, key.scale());
        assert_eq!(
            distributed.to_store_json().to_string_compact(),
            local.to_store_json().to_string_compact(),
            "distributed result drifted for {key:?}"
        );
    }
}

/// SIGKILL one worker and SIGSTOP another mid-sweep: the coordinator
/// must notice both (dead socket / silent socket), re-dispatch their
/// work, finish on the survivor, and produce results field-for-field
/// identical to a serial local run.
///
/// The sweep is driven in two phases on one pool so the fault window is
/// deterministic, not a race against the sweep finishing early. Phase A
/// proves all three workers serve work. The faults land between phases,
/// but their *detection* is mid-cell either way: phase B work is written
/// to the killed worker's open-looking socket (dead on read) and to the
/// stalled worker (accepted, then silence past the heartbeat deadline).
/// With `jobs == capacity(3 workers)` and the healthy worker's window
/// holding only 2 slots, at least four phase-B dispatchers are forced
/// onto the faulty pair — both losses and the re-dispatch are
/// guaranteed, whatever the timing.
#[test]
fn killed_and_stalled_workers_do_not_lose_or_corrupt_work() {
    let mut w0 = WorkerProc::spawn();
    let w1 = WorkerProc::spawn();
    let w2 = WorkerProc::spawn();
    let pool = Arc::new(WorkerPool::connect(
        &[w0.addr.clone(), w1.addr.clone(), w2.addr.clone()],
        test_pool_config(),
    ));
    assert_eq!(pool.alive_workers(), 3, "all workers must handshake");

    let cfg = chaos_cfg(pool.capacity());
    let exec = CellExecutor::new(cfg).with_remote(pool.clone());
    let plan = chaos_plan(&cfg);
    assert_eq!(plan.len(), 24);

    // Phase A: the first chunk of the plan (seed 0 of every cell) warms
    // all three workers.
    let mut phase_a = Plan::new();
    for key in plan.items().iter().filter(|k| k.seed == 0) {
        phase_a.add_one(key.cell(), key.seed, key.scale());
    }
    assert_eq!(phase_a.len(), 8);
    let report_a = exec.execute(&phase_a);
    assert!(report_a.complete(), "phase A failed: {report_a:?}");
    assert!(pool.stats().completed >= 8, "{:?}", pool.stats());

    // The faults: one worker vanishes without a goodbye, another
    // freezes with its sockets open (only heartbeat silence gives it
    // away).
    w0.kill();
    w1.stall();

    // Phase B: the rest of the plan (16 fresh keys). Re-executing the
    // *full* plan also proves phase-A results stay memoized.
    let report_b = exec.execute(&plan);
    assert!(report_b.complete(), "failures recorded: {report_b:?}");
    assert_eq!(report_b.planned, 24);
    assert_eq!(report_b.memo_hits, 8);
    assert_eq!(
        report_b.memo_hits + report_b.disk_hits + report_b.remote_hits + report_b.computed,
        24
    );

    // Both misbehaving workers were declared lost, their work was
    // re-dispatched, and the sweep went on.
    let stats = pool.stats();
    assert_eq!(stats.workers_lost, 2, "{stats:?}");
    assert_eq!(pool.alive_workers(), 1);
    assert!(stats.retried >= 1, "lost work must be re-dispatched: {stats:?}");
    assert!(
        stats.completed >= report_b.remote_hits,
        "every remote hit came from a verified completion: {stats:?}"
    );

    // The headline: byte-identical to a serial local run, every cell.
    assert_results_match_local(&exec, &plan);
    drop(w2);
}

/// With every worker dead before the sweep starts, the pool degrades
/// (warn-once) and the executor computes everything locally — complete
/// coverage, identical bytes, zero remote hits.
#[test]
fn zero_reachable_workers_degrades_to_a_complete_local_sweep() {
    // Spawn and immediately kill, so the addresses are real but dead.
    let mut w0 = WorkerProc::spawn();
    let mut w1 = WorkerProc::spawn();
    let addrs = [w0.addr.clone(), w1.addr.clone()];
    w0.kill();
    w1.kill();

    let pool = Arc::new(WorkerPool::connect(&addrs, test_pool_config()));
    assert_eq!(pool.alive_workers(), 0);

    let cfg = chaos_cfg(2);
    let exec = CellExecutor::new(cfg).with_remote(pool.clone());
    let plan = chaos_plan(&cfg);
    let report = exec.execute(&plan);

    assert!(report.complete(), "failures recorded: {report:?}");
    assert_eq!(report.remote_hits, 0);
    assert_eq!(report.computed, plan.len() as u64);
    assert_eq!(pool.stats().dispatched, 0, "no work goes to dead workers");
    assert_results_match_local(&exec, &plan);
}

/// A worker SIGKILLed *between* sweeps: the second sweep re-dispatches
/// everything to the survivor and still matches the first byte-for-byte
/// (same keys → same values, wherever they were computed).
#[test]
fn a_worker_lost_between_sweeps_changes_nothing_but_placement() {
    let mut w0 = WorkerProc::spawn();
    let w1 = WorkerProc::spawn();
    let pool = Arc::new(WorkerPool::connect(
        &[w0.addr.clone(), w1.addr.clone()],
        test_pool_config(),
    ));
    assert_eq!(pool.alive_workers(), 2);

    let cfg = HarnessConfig {
        seeds: 1,
        scale: 0.1,
        jobs: pool.capacity(),
    };
    let mut plan_a = Plan::new();
    plan_a.add_grid(&[Benchmark::HashmapLow], &[PolicyKind::Rtm], &[1, 2], &cfg);

    let exec_a = CellExecutor::new(cfg).with_remote(pool.clone());
    let report_a = exec_a.execute(&plan_a);
    assert!(report_a.complete());

    w0.kill();

    // Fresh executor (cold memo) over the same plan, one worker down.
    let exec_b = CellExecutor::new(cfg).with_remote(pool.clone());
    let report_b = exec_b.execute(&plan_a);
    assert!(report_b.complete());
    assert_results_match_local(&exec_b, &plan_a);
    drop(w1);
}
