//! Property tests for the wire protocol's framing and message codec.
//!
//! The decoder's contract mirrors the store's (*never trust, never
//! crash*): any byte sequence — a frame round-tripped intact, truncated
//! at any offset, bit-flipped anywhere, or prefixed with a hostile
//! length — must either decode to a message or return a typed
//! [`ProtoError`]. No input may panic, and no oversized length prefix
//! may allocate.

use std::io::Cursor;

use proptest::prelude::*;
use seer_remote::{
    encode_frame, read_frame, value_checksum, Message, ProtoError, WorkItem, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};
use seer_store::{Json, ToJson};

/// Printable ASCII including quoting hazards (`"`, `\`).
fn text() -> impl Strategy<Value = String> {
    prop::collection::vec(0x20u8..0x7f, 0..24)
        .prop_map(|bytes| bytes.into_iter().map(char::from).collect())
}

fn work_item() -> impl Strategy<Value = WorkItem> {
    (
        any::<u8>(),
        text(),
        text(),
        0usize..=8,
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(sel, name, policy, threads, seed, scale_bits)| {
            if sel % 2 == 0 {
                WorkItem::Cell {
                    benchmark: name,
                    policy,
                    threads,
                    seed,
                    scale_bits,
                }
            } else {
                WorkItem::Scenario {
                    scenario: name,
                    policy,
                    seed,
                }
            }
        })
}

/// A `done` value exercising every JSON node kind real payloads carry.
fn value() -> impl Strategy<Value = Json> {
    (
        any::<u64>(),
        -(1i64 << 40)..(1i64 << 40),
        text(),
        prop::collection::vec(any::<u64>(), 0..6),
        any::<bool>(),
    )
        .prop_map(|(n, num, s, arr, b)| {
            Json::object([
                ("n", n.to_json()),
                // Dyadic rational: float formatting round-trips exactly.
                ("ratio", (num as f64 / 1024.0).to_json()),
                ("s", s.to_json()),
                (
                    "arr",
                    Json::Array(arr.into_iter().map(|v| v.to_json()).collect()),
                ),
                ("b", b.to_json()),
            ])
        })
}

fn message() -> impl Strategy<Value = Message> {
    (any::<u8>(), any::<u64>(), any::<u64>(), text(), work_item(), value()).prop_map(
        |(sel, id, n, s, item, v)| match sel % 6 {
            0 => Message::Hello {
                protocol: n,
                fingerprint: s,
            },
            1 => Message::Work { id, item },
            2 => Message::Heartbeat { id },
            3 => Message::Done {
                id,
                checksum: value_checksum(&v),
                value: v,
            },
            4 => Message::Failed { id, error: s },
            _ => Message::Error { message: s },
        },
    )
}

fn decode(bytes: &[u8]) -> Result<Message, ProtoError> {
    read_frame(&mut Cursor::new(bytes))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every message kind round-trips through the actual frame bytes.
    #[test]
    fn frames_round_trip(msg in message()) {
        let bytes = encode_frame(&msg);
        prop_assert_eq!(decode(&bytes).expect("intact frame decodes"), msg);
    }

    /// Strict truncation at any offset is a clean error: the length
    /// prefix claims more bytes than remain, so decoding can never
    /// succeed — and must never panic.
    #[test]
    fn truncations_error_cleanly(msg in message(), cut_seed in any::<u64>()) {
        let bytes = encode_frame(&msg);
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(decode(&bytes[..cut]).is_err(), "truncated to {cut} bytes");
    }

    /// A random bit flip anywhere in the frame never panics. If the
    /// mangled frame still decodes, the decoded message must itself
    /// re-encode and round-trip (i.e. it is a *valid* message, not a
    /// half-parsed one).
    #[test]
    fn bit_flips_never_panic(msg in message(), pos_seed in any::<u64>(), bit in 0u8..8) {
        let mut bytes = encode_frame(&msg);
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        if let Ok(decoded) = decode(&bytes) {
            let reencoded = encode_frame(&decoded);
            prop_assert_eq!(decode(&reencoded).expect("re-encoded frame decodes"), decoded);
        }
    }

    /// Any length prefix over the cap is rejected as `TooLarge` before a
    /// single payload byte is read (or allocated).
    #[test]
    fn oversized_length_prefixes_are_rejected(extra in any::<u32>(), noise in any::<u64>()) {
        let len = (MAX_FRAME_LEN as u64 + 1 + extra as u64).min(u32::MAX as u64) as u32;
        let mut bytes = len.to_be_bytes().to_vec();
        bytes.extend_from_slice(&noise.to_be_bytes());
        match decode(&bytes) {
            Err(ProtoError::TooLarge(n)) => prop_assert_eq!(n, len as u64),
            other => panic!("expected TooLarge({len}), got {other:?}"),
        }
    }
}

/// Exhaustive corruption sweep over one representative frame: every
/// truncation length and every single-bit flip at every offset, plus an
/// oversized length prefix spliced in at each of the four prefix bytes.
/// Deterministic (no sampling), so the "never panics, errors are typed"
/// claim holds at literally every offset.
#[test]
fn corruption_sweep_at_every_offset() {
    let msg = Message::Work {
        id: 42,
        item: WorkItem::Cell {
            benchmark: "genome".into(),
            policy: "seer".into(),
            threads: 4,
            seed: 0,
            scale_bits: 0.08f64.to_bits(),
        },
    };
    let bytes = encode_frame(&msg);

    for cut in 0..bytes.len() {
        assert!(decode(&bytes[..cut]).is_err(), "truncation at {cut}");
    }
    for pos in 0..bytes.len() {
        for bit in 0..8 {
            let mut mangled = bytes.clone();
            mangled[pos] ^= 1 << bit;
            // Must not panic; a surviving decode must be self-consistent.
            if let Ok(decoded) = decode(&mangled) {
                let reencoded = encode_frame(&decoded);
                assert_eq!(
                    decode(&reencoded).expect("re-encoded frame decodes"),
                    decoded,
                    "flip at byte {pos} bit {bit}"
                );
            }
        }
    }
    for prefix_byte in 0..4 {
        let mut mangled = bytes.clone();
        // Force the prefix far over the cap by saturating one byte high
        // enough that the big-endian value exceeds MAX_FRAME_LEN.
        mangled[prefix_byte] = 0xff;
        let claimed = u32::from_be_bytes([mangled[0], mangled[1], mangled[2], mangled[3]]) as u64;
        let out = decode(&mangled);
        if claimed > MAX_FRAME_LEN as u64 {
            assert!(
                matches!(out, Err(ProtoError::TooLarge(n)) if n == claimed),
                "prefix byte {prefix_byte}: {out:?}"
            );
        } else {
            assert!(out.is_err(), "prefix byte {prefix_byte}: {out:?}");
        }
    }
}

/// The handshake constants the two sides compare are stable: a change
/// here must be deliberate (it cuts old coordinators off old workers).
#[test]
#[allow(clippy::assertions_on_constants)]
fn protocol_version_is_pinned() {
    assert_eq!(PROTOCOL_VERSION, 1);
    assert!(MAX_FRAME_LEN >= 1 << 20, "frames must fit real payloads");
}
