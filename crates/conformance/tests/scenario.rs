//! Scenario-engine conformance: the built-in disturbance library must be
//! bit-deterministic (golden trace-hash/report fixtures, serial identical
//! to a 4-way parallel executor), every fault kind must replay cleanly,
//! and the recovery claim itself is pinned — Seer regresses and
//! re-converges where the single-lock reference has nothing to recover.
//!
//! Fixture regeneration after an *intentional* schedule change:
//!
//! ```text
//! SEER_BLESS=1 cargo test -p seer-conformance --test scenario
//! ```
//!
//! With `--features check-invariants` every run here is additionally
//! audited by the driver's invariant checker — under thread churn and
//! under every injected fault.

use seer_conformance::SglOnly;
use seer_harness::{PolicyKind, ToJson};
use seer_scenario::{
    library, FaultKind, FaultSpec, RunRequest, ScenarioExecutor, ScenarioPlan, ScenarioSpec,
};
use seer_stamp::Benchmark;

const FIXTURES: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/scenario_hashes.txt"
);
const SEEDS: u64 = 2;

/// FNV-1a over a serialized report, so a fixture line pins the whole
/// RecoveryReport (scores included), not just the event schedule.
fn fnv(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[test]
fn builtin_library_is_deterministic_and_matches_fixtures() {
    // Same plan through a serial and a 4-way executor: the outcomes must
    // be indistinguishable, and seed-0/1 hashes must match the committed
    // fixtures line for line.
    let mut plan = ScenarioPlan::new();
    plan.add_grid(&library::BUILTIN_NAMES, &[PolicyKind::Seer], SEEDS);
    let serial = ScenarioExecutor::new(1);
    let parallel = ScenarioExecutor::new(4);
    serial.execute(&plan);
    parallel.execute(&plan);

    let mut lines = Vec::new();
    for key in plan.items() {
        let a = serial.outcome(&key.scenario, key.policy, key.seed);
        let b = parallel.outcome(&key.scenario, key.policy, key.seed);
        let a_report = a.report.to_json().to_string_compact();
        let b_report = b.report.to_json().to_string_compact();
        assert_eq!(a.metrics.trace_hash, b.metrics.trace_hash, "{key:?}");
        assert_eq!(a_report, b_report, "{key:?}");
        lines.push(format!(
            "scenario={} policy={} seed={} trace={:#018x} report={:#018x}",
            key.scenario,
            key.policy.name(),
            key.seed,
            a.metrics.trace_hash,
            fnv(&a_report),
        ));
    }
    let computed = lines.join("\n") + "\n";

    if std::env::var_os("SEER_BLESS").is_some() {
        std::fs::write(FIXTURES, &computed).expect("write fixtures");
        return;
    }
    let golden = std::fs::read_to_string(FIXTURES)
        .expect("missing tests/fixtures/scenario_hashes.txt — run with SEER_BLESS=1 to create it");
    let mismatches: Vec<String> = golden
        .lines()
        .zip(computed.lines())
        .filter(|(g, c)| g != c)
        .map(|(g, c)| format!("  golden: {g}\n  actual: {c}"))
        .collect();
    assert!(
        mismatches.is_empty() && golden.lines().count() == computed.lines().count(),
        "scenario schedules or reports drifted from the committed fixtures \
         (intentional? re-bless with SEER_BLESS=1):\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn every_fault_kind_replays_bit_identically() {
    // The built-ins exercise three of the five fault kinds; this spec
    // stacks all five (plus churn) into one run and replays it, so the
    // injector itself — not just the library — is pinned deterministic.
    let mut spec = ScenarioSpec::stationary("all-faults", Benchmark::KmeansHigh, 4, 0.8, 50_000);
    let faults = [
        (80_000, FaultKind::DelayInference { rounds: 2 }),
        (120_000, FaultKind::StallLockHolder { cycles: 40_000 }),
        (160_000, FaultKind::KickThresholds { th1: 0.9, th2: 0.5 }),
        (
            200_000,
            FaultKind::CapacityShrink {
                ways: Some(2),
                read_lines: Some(16),
                restore_after: 60_000,
            },
        ),
        (300_000, FaultKind::WipeStats),
    ];
    for (at, fault) in faults {
        spec.faults.push(FaultSpec { at, fault });
    }
    spec.validate().expect("all-faults spec is well-formed");
    let a = RunRequest::scenario(&spec).policy(PolicyKind::Seer).run();
    let b = RunRequest::scenario(&spec).policy(PolicyKind::Seer).run();
    assert_eq!(a.metrics.trace_hash, b.metrics.trace_hash);
    assert_eq!(a.metrics.commits, b.metrics.commits);
    assert_eq!(
        a.report.to_json().to_string_compact(),
        b.report.to_json().to_string_compact()
    );
}

#[test]
fn seer_regresses_and_recovers_where_the_reference_cannot() {
    // The paper's adaptivity claim, as a conformance check: when the HTM
    // capacity collapses, Seer's throughput craters and climbs back (a
    // deep regression with a finite time-to-reconverge), while the
    // single-lock reference — which never touches the HTM — sees nothing
    // worth recovering from.
    let spec = library::builtin("capacity-cliff").unwrap();
    let seer = RunRequest::scenario(&spec).policy(PolicyKind::Seer).run();
    let mut sgl = SglOnly;
    let reference = RunRequest::scenario(&spec)
        .scheduler(&mut sgl, "reference-sgl-only")
        .run();

    let s = &seer.report.scores[0];
    assert!(
        s.regression_depth > 0.3,
        "Seer must visibly regress on the cliff: {s:?}"
    );
    assert!(
        s.time_to_reconverge.is_some() && seer.report.recovered,
        "Seer must re-converge: {s:?}"
    );
    assert!(
        s.pairs_stable_at.is_some(),
        "Seer's inference must restabilize: {s:?}"
    );

    assert_eq!(reference.metrics.htm_attempts, 0, "SGL-only never attempts HTM");
    let r = &reference.report.scores[0];
    assert!(
        r.regression_depth < 0.05,
        "the capacity fault must be invisible to the reference: {r:?}"
    );
    assert!(r.pairs_stable_at.is_none(), "no inference stream to stabilize");
    assert!(
        seer.report.throughput > reference.report.throughput,
        "even with the cliff, Seer beats full serialization over the run"
    );
}
