//! Property test: every verdict an [`InferenceTrace`] row records agrees
//! with the naive conformance oracle re-deriving the same decision.
//!
//! The traced inference path (`infer_conflict_pairs_traced`) makes its
//! decisions and fills its `RowTrace`/`PairDecision` records from the
//! *same* comparisons — this suite checks that against the independent
//! reference implementation (per-pair recomputation, E[v²]−E[v]² variance,
//! bisection quantile), so a trace that disagrees with the oracle would
//! expose either a decision bug or a provenance-recording bug. As in the
//! differential suite, disagreement is tolerated only within numerical
//! tolerance of a decision boundary.

use proptest::prelude::*;
use seer::inference::{infer_conflict_pairs_traced, MIN_DISCRIMINATIVE_SIGMA};
use seer::Thresholds;
use seer_conformance::{random_stats, reference_decision};
use seer_runtime::trace::RowTrace;
use seer_sim::SimRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// For randomized-but-realizable statistics under randomized
    /// thresholds, every recorded pair verdict equals the oracle's
    /// serialize decision, the recorded probabilities are bit-identical to
    /// the oracle's, and the recorded cutoff/σ² match within the quantile
    /// approximation error.
    #[test]
    fn traced_verdicts_agree_with_reference_oracle(
        seed in 0u64..1_000_000,
        blocks in 2usize..=8,
        threads in 1usize..=8,
        th1 in 0.0f64..0.6,
        th2 in 0.05f64..0.95,
    ) {
        let mut rng = SimRng::new(seed);
        let stats = random_stats(&mut rng, blocks, threads);
        let th = Thresholds { th1, th2 };

        let mut rows: Vec<RowTrace> = Vec::new();
        let pairs = infer_conflict_pairs_traced(&stats, th, Some(&mut |r| rows.push(r)));

        // One row per block, one decision per ordered pair — the
        // self-pair (x, x) included: x‖x is two threads in the same block.
        prop_assert_eq!(rows.len(), blocks);
        for (x, row) in rows.iter().enumerate() {
            prop_assert_eq!(row.x, x);
            prop_assert_eq!(row.pairs.len(), blocks);
            prop_assert_eq!(row.discriminative, row.sigma2.sqrt() >= MIN_DISCRIMINATIVE_SIGMA);
            for pair in &row.pairs {
                let oracle = reference_decision(&stats, x, pair.y, th);
                // Same closed forms over the same integers: exact.
                prop_assert_eq!(pair.conditional, oracle.conditional,
                    "conditional diverged for ({}, {})", x, pair.y);
                prop_assert_eq!(pair.conjunctive, oracle.conjunctive,
                    "conjunctive diverged for ({}, {})", x, pair.y);
                // Different σ/quantile algorithms: approximation-tolerant.
                prop_assert!((row.sigma2.sqrt() - oracle.sigma).abs() < 1e-9,
                    "sigma diverged for row {}: {} vs {}", x, row.sigma2.sqrt(), oracle.sigma);
                prop_assert!((row.cutoff - oracle.cutoff).abs() < 2e-4 * oracle.sigma + 1e-9,
                    "cutoff diverged for row {}: {} vs {}", x, row.cutoff, oracle.cutoff);

                if pair.verdict.serialize() != oracle.serialize {
                    // Legitimate only on a knife edge (differential.rs
                    // tolerances).
                    let on_th1_edge = (oracle.conjunctive - th.th1).abs() < 1e-9;
                    let on_cutoff_edge = (oracle.conditional - oracle.cutoff).abs() < 1e-6;
                    let on_sigma_edge =
                        (oracle.sigma - MIN_DISCRIMINATIVE_SIGMA).abs() < 1e-9;
                    prop_assert!(on_th1_edge || on_cutoff_edge || on_sigma_edge,
                        "verdict {:?} for ({}, {}) disagrees with oracle {:?} away from \
                         any boundary", pair.verdict, x, pair.y, oracle);
                }

                // The verdict decomposition is internally consistent: the
                // serialize bit recomputed from the *recorded* quantities
                // must reproduce the recorded verdict.
                let conjunctive_ok = pair.conjunctive > th.th1;
                let conditional_ok = !row.discriminative || pair.conditional > row.cutoff;
                prop_assert_eq!(pair.verdict.serialize(), conjunctive_ok && conditional_ok,
                    "verdict {:?} inconsistent with its own recorded evidence", pair.verdict);

                // And the pair list is exactly the serialize verdicts.
                prop_assert_eq!(pairs.contains(&(x, pair.y)), pair.verdict.serialize());
            }
        }
    }
}
