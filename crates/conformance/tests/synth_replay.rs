//! Replay conformance for the parameterized many-blocks probe
//! (`synth@blocks=N`): the synthetic workload must be as deterministic as
//! the STAMP members — each cell replays bit-identically, and the seed-0/
//! seed-1 trace hashes are pinned by a committed fixture so the incremental
//! inference engine (which is busiest exactly here, at large block counts)
//! cannot drift the schedule unnoticed.
//!
//! To regenerate after an *intentional* schedule change:
//!
//! ```text
//! SEER_BLESS=1 cargo test -p seer-conformance --test synth_replay
//! ```

use seer_conformance::replay::{fixture_line, replay_cell};
use seer_harness::{default_jobs, parallel_map, Cell, PolicyKind};
use seer_stamp::Benchmark;

const SCALE: f64 = 0.08;
const FIXTURES: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/synth_trace_hashes.txt"
);

/// The synth cell under full Seer — the configuration where the
/// incremental engine does the most work per round.
const CELL: Cell = Cell {
    benchmark: Benchmark::Synth { blocks: 128 },
    policy: PolicyKind::Seer,
    threads: 4,
};

#[test]
fn synth_cell_replays_bit_identically_across_two_seeds() {
    let seeds = [0u64, 1];
    let lines = parallel_map(&seeds, default_jobs(), |&seed| {
        let metrics = replay_cell(CELL, seed, SCALE);
        let violations = metrics.check_conservation();
        assert!(violations.is_empty(), "seed {seed}: {violations:#?}");
        assert!(metrics.commits > 0, "seed {seed}: synth cell did no work");
        fixture_line(CELL, seed, metrics.trace_hash)
    });
    let computed = lines.join("\n") + "\n";

    if std::env::var_os("SEER_BLESS").is_some() {
        std::fs::write(FIXTURES, &computed).expect("write fixtures");
        return;
    }
    let golden = std::fs::read_to_string(FIXTURES).expect(
        "missing tests/fixtures/synth_trace_hashes.txt — run with SEER_BLESS=1 to create it",
    );
    assert_eq!(
        golden, computed,
        "synth schedules drifted from the committed fixtures \
         (intentional? re-bless with SEER_BLESS=1)"
    );
}
