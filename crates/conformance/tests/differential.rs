//! Differential testing: `seer::inference` + `seer::gaussian` against the
//! naive reference oracles, on randomized-but-realizable statistics
//! matrices.
//!
//! The production and reference paths share formulas but not code: the
//! reference recomputes row statistics per pair with a different variance
//! algorithm and finds quantiles by bisection. Floating-point noise between
//! the two is therefore expected *exactly at decision boundaries*, and the
//! comparison accounts for it: a disagreement is only accepted when the
//! pair sits within numerical tolerance of one of the three thresholds
//! (Th1 on the conjunctive probability, the Th2 percentile cut-off, or the
//! minimum discriminative sigma).

use seer::gaussian::{gaussian_percentile, std_normal_cdf};
use seer::inference::{
    conditional_abort_probability, conjunctive_abort_probability, infer_conflict_pairs,
    MIN_DISCRIMINATIVE_SIGMA,
};
use seer::Thresholds;
use seer_conformance::{
    random_stats, reference_decision, reference_gaussian_percentile, stats_violations,
};
use seer_sim::SimRng;
use std::collections::BTreeSet;

const MATRICES: usize = 1500;

#[test]
fn inference_agrees_with_reference_on_randomized_matrices() {
    let mut rng = SimRng::new(0x0C0A_C0DE);
    let mut pairs_checked = 0u64;
    let mut serialized_seen = 0u64;
    let mut boundary_disagreements = 0u64;

    for case in 0..MATRICES {
        let blocks = 2 + rng.below(7) as usize; // 2..=8
        let threads = 2 + rng.below(7) as usize;
        let stats = random_stats(&mut rng, blocks, threads);
        // Realizability is a precondition for the probabilities to mean
        // anything — check it on every generated matrix.
        let violations = stats_violations(&stats, 1);
        assert!(violations.is_empty(), "case {case}: {violations:?}");

        let th = Thresholds {
            th1: rng.unit() * 0.6,
            th2: 0.05 + rng.unit() * 0.9,
        };
        let subject: BTreeSet<(usize, usize)> =
            infer_conflict_pairs(&stats, th).into_iter().collect();

        for x in 0..blocks {
            for y in 0..blocks {
                pairs_checked += 1;
                let oracle = reference_decision(&stats, x, y, th);
                // The point probabilities use the same closed forms on the
                // same integers: they must agree to the last bit.
                assert_eq!(
                    oracle.conditional,
                    conditional_abort_probability(&stats, x, y),
                    "case {case}: conditional P({x}|{y}) diverged"
                );
                assert_eq!(
                    oracle.conjunctive,
                    conjunctive_abort_probability(&stats, x, y),
                    "case {case}: conjunctive P({x}∧{y}) diverged"
                );
                let subject_serializes = subject.contains(&(x, y));
                if oracle.serialize {
                    serialized_seen += 1;
                }
                if subject_serializes != oracle.serialize {
                    // Disagreements are legitimate only on a knife edge.
                    let on_th1_edge = (oracle.conjunctive - th.th1).abs() < 1e-9;
                    let on_cutoff_edge = (oracle.conditional - oracle.cutoff).abs() < 1e-6;
                    let on_sigma_edge = (oracle.sigma - MIN_DISCRIMINATIVE_SIGMA).abs() < 1e-9;
                    assert!(
                        on_th1_edge || on_cutoff_edge || on_sigma_edge,
                        "case {case}, pair ({x},{y}): subject={subject_serializes} \
                         oracle={:?} th={th:?} — disagreement away from any boundary",
                        oracle
                    );
                    boundary_disagreements += 1;
                }
            }
        }
    }

    // The sweep must actually exercise both outcomes to mean anything.
    assert!(pairs_checked >= 1000 * 4, "only {pairs_checked} pairs checked");
    assert!(
        serialized_seen > 500,
        "oracle never serialized enough pairs ({serialized_seen}) — generator too tame"
    );
    assert!(
        boundary_disagreements * 1000 < pairs_checked,
        "{boundary_disagreements} knife-edge disagreements in {pairs_checked} pairs: \
         more than numerical noise"
    );
}

#[test]
fn gaussian_percentile_agrees_with_bisection_oracle() {
    let means = [-0.25, 0.0, 0.2, 0.5, 1.0];
    let variances = [1e-8, 1e-4, 0.01, 0.04, 0.25, 1.0];
    // Straddles both switch points of Acklam's piecewise approximation
    // (p = 0.02425 and its mirror).
    let percentiles = [
        0.001, 0.01, 0.024, 0.025, 0.2, 0.5, 0.8, 0.975, 0.976, 0.99, 0.999,
    ];
    for &mean in &means {
        for &variance in &variances {
            let sigma = f64::sqrt(variance);
            for &p in &percentiles {
                let subject = gaussian_percentile(mean, variance, p);
                let oracle = reference_gaussian_percentile(mean, variance, p);
                // The oracle's residual is the forward CDF's own error
                // (≤1.5e-7 in probability), which maps to ≤ ~5e-5 in z over
                // this percentile range.
                assert!(
                    (subject - oracle).abs() <= 2e-4 * sigma + 1e-12,
                    "percentile({mean}, {variance}, {p}): subject {subject} vs oracle {oracle}"
                );
                // Forward consistency: the subject's cut-off really does
                // sit at the requested mass.
                let z = (subject - mean) / sigma;
                assert!(
                    (std_normal_cdf(z) - p).abs() < 1e-5,
                    "percentile({mean}, {variance}, {p}) maps back to mass {}",
                    std_normal_cdf(z)
                );
            }
        }
    }
}

#[test]
fn degenerate_rows_agree_between_paths() {
    // Zero variance: both paths must return the mean for any percentile.
    for &p in &[0.0, 1e-9, 0.5, 1.0 - 1e-9, 1.0] {
        assert_eq!(gaussian_percentile(0.4, 0.0, p), 0.4);
        assert_eq!(reference_gaussian_percentile(0.4, 0.0, p), 0.4);
    }
    // An empty matrix serializes nothing under either path.
    let stats = random_stats(&mut SimRng::new(1), 4, 0);
    assert!(infer_conflict_pairs(&stats, Thresholds::default()).is_empty());
    assert!(seer_conformance::reference_infer(&stats, Thresholds::default()).is_empty());
}
