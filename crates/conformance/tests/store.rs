//! Persistence conformance: the disk store and the supervised executor
//! must be *invisible* in the results.
//!
//! Three contracts from DESIGN.md §13 are pinned here:
//!
//! 1. **Warm-start determinism** — a sweep served entirely from disk
//!    shards reproduces the committed replay fixtures byte-for-byte.
//!    A store hit is a *claim* about what a simulation would produce;
//!    this test is what makes that claim safe to serve.
//! 2. **Crash recovery** — a sweep killed mid-plan and resumed against
//!    the same store re-uses every completed shard (each shard *is* the
//!    checkpoint) and computes only the gap, landing on results
//!    bit-identical to an uninterrupted run.
//! 3. **Fault degradation** — a poisoned cell becomes a [`FailedItem`]
//!    in a partial report (coverage accounted, siblings persisted), and
//!    a healthy resume fills exactly the hole.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use seer_conformance::replay::fixture_line;
use seer_harness::{
    default_jobs, execute_cell, Cell, CellExecutor, CellKey, HarnessConfig, Plan, PolicyKind,
    Store, SupervisorConfig,
};
use seer_stamp::Benchmark;

const SCALE: f64 = 0.08;
const THREADS: usize = 4;
const FIXTURES: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/trace_hashes.txt"
);

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "seer-conformance-store-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed),
    ))
}

fn config() -> HarnessConfig {
    HarnessConfig {
        seeds: 1,
        scale: SCALE,
        jobs: default_jobs(),
    }
}

/// The full 88-cell fixture matrix (STAMP × every policy), fixture order.
fn fixture_cells() -> Vec<Cell> {
    Benchmark::STAMP
        .into_iter()
        .flat_map(|benchmark| {
            PolicyKind::ALL.into_iter().map(move |policy| Cell {
                benchmark,
                policy,
                threads: THREADS,
            })
        })
        .collect()
}

/// A smaller matrix for the interruption tests (two benchmarks × every
/// policy — still crosses every scheduler code path).
fn small_cells() -> Vec<Cell> {
    [Benchmark::Ssca2, Benchmark::KmeansHigh]
        .into_iter()
        .flat_map(|benchmark| {
            PolicyKind::ALL.into_iter().map(move |policy| Cell {
                benchmark,
                policy,
                threads: THREADS,
            })
        })
        .collect()
}

fn plan_of(cells: &[Cell]) -> Plan {
    let mut plan = Plan::new();
    for &cell in cells {
        plan.add_one(cell, 0, SCALE);
    }
    plan
}

#[test]
fn warm_start_reproduces_the_replay_fixtures() {
    let root = temp_root("warm");
    let cells = fixture_cells();
    let plan = plan_of(&cells);

    // Cold pass: everything simulated, everything persisted.
    let cold = CellExecutor::with_store(config(), Store::open(&root));
    let report = cold.execute(&plan);
    assert!(report.complete(), "cold pass failed: {report:?}");
    assert_eq!(report.computed, cells.len() as u64);
    assert_eq!(report.disk_hits, 0);
    drop(cold);

    // Warm pass in a "new process": fresh executor, empty memo cache,
    // same store directory. Not one simulation may run.
    let warm = CellExecutor::with_store(config(), Store::open(&root));
    let report = warm.execute(&plan);
    assert!(report.complete(), "warm pass failed: {report:?}");
    assert_eq!(
        report.disk_hits,
        cells.len() as u64,
        "a re-run against a warm store must be 100% disk hits: {report:?}"
    );
    assert_eq!(report.computed, 0, "warm pass simulated something");

    // The disk-served results must reproduce the committed fixtures
    // byte-for-byte — the same bar the live replay matrix clears.
    let lines: Vec<String> = cells
        .iter()
        .map(|&cell| {
            let metrics = warm.cached(cell, 0, SCALE).expect("covered cell");
            fixture_line(cell, 0, metrics.trace_hash)
        })
        .collect();
    let computed = lines.join("\n") + "\n";
    let golden = std::fs::read_to_string(FIXTURES).expect("committed fixtures");
    assert_eq!(
        computed, golden,
        "store-warmed results drifted from the committed replay fixtures"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn interrupted_sweep_resumes_bit_identically() {
    let root = temp_root("resume");
    let cells = small_cells();
    let plan = plan_of(&cells);

    // The uninterrupted reference: no store, one executor, full plan.
    let reference = CellExecutor::new(config());
    assert!(reference.execute(&plan).complete());

    // The "crashed" run: a store-backed executor gets through only the
    // first half of the plan before the process dies (dropping the
    // executor loses the memo cache, exactly like a kill would).
    let half = cells.len() / 2;
    let crashed = CellExecutor::with_store(config(), Store::open(&root));
    let report = crashed.execute(&plan_of(&cells[..half]));
    assert!(report.complete());
    drop(crashed);

    // Resume: same store, full plan. Completed shards are the
    // checkpoint — only the gap is simulated.
    let resumed = CellExecutor::with_store(config(), Store::open(&root));
    let report = resumed.execute(&plan);
    assert!(report.complete(), "resume failed: {report:?}");
    assert_eq!(report.disk_hits, half as u64, "{report:?}");
    assert_eq!(report.computed, (cells.len() - half) as u64, "{report:?}");

    // Bit-identical to never having crashed at all.
    for &cell in &cells {
        let a = reference.cached(cell, 0, SCALE).expect("reference covered");
        let b = resumed.cached(cell, 0, SCALE).expect("resume covered");
        assert_eq!(a.trace_hash, b.trace_hash, "{cell:?}");
        assert_eq!(a.makespan, b.makespan, "{cell:?}");
        assert_eq!(a.commits, b.commits, "{cell:?}");
        assert_eq!(a.aborts, b.aborts, "{cell:?}");
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn poisoned_cell_degrades_into_a_partial_report() {
    let root = temp_root("poison");
    let cells = small_cells();
    let keys: Vec<CellKey> = cells
        .iter()
        .map(|&cell| CellKey::new(cell, 0, SCALE))
        .collect();
    let poisoned = keys[0];
    let mut generic_plan = seer_store::Plan::new();
    for &key in &keys {
        generic_plan.add(key);
    }

    // An executor whose run function panics on one cell: the fault is
    // isolated into a FailedItem, the siblings complete and persist.
    let bad = seer_store::Executor::new(default_jobs(), move |key: CellKey| {
        assert!(key != poisoned, "injected fault");
        execute_cell(key.cell(), key.seed, key.scale(), None)
    })
    .with_store(Store::open(&root))
    .with_supervisor(SupervisorConfig::fail_fast());
    let report = bad.execute(&generic_plan);
    assert!(!report.complete());
    assert_eq!(report.failed.len(), 1, "{report:?}");
    assert_eq!(report.failed[0].key, poisoned);
    assert_eq!(report.covered(), keys.len() - 1);
    drop(bad);

    // A healthy resume against the same store computes exactly the hole.
    let healthy = CellExecutor::with_store(config(), Store::open(&root));
    let report = healthy.execute(&plan_of(&cells));
    assert!(report.complete(), "healthy resume failed: {report:?}");
    assert_eq!(report.disk_hits, (keys.len() - 1) as u64, "{report:?}");
    assert_eq!(report.computed, 1, "{report:?}");

    // And the once-poisoned cell now matches a fresh simulation.
    let fixed = healthy.cached(cells[0], 0, SCALE).expect("hole filled");
    let fresh = execute_cell(cells[0], 0, SCALE, None);
    assert_eq!(fixed.trace_hash, fresh.trace_hash);
    let _ = std::fs::remove_dir_all(&root);
}
