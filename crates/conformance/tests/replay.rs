//! Deterministic-replay matrix: every (benchmark × policy) cell runs twice
//! per seed and must produce bit-identical event schedules; seed-0 trace
//! hashes are pinned by the committed fixture file.
//!
//! To regenerate the fixtures after an *intentional* change to event
//! ordering (new RNG stream, reordered scheduling, cost-model change):
//!
//! ```text
//! SEER_BLESS=1 cargo test -p seer-conformance --test replay
//! ```
//!
//! then commit the updated `tests/fixtures/trace_hashes.txt` together with
//! the change that shifted the schedules, explaining why in the message.

use seer_conformance::replay::{fixture_line, replay_cell};
use seer_harness::{default_jobs, parallel_map, Cell, PolicyKind};
use seer_stamp::Benchmark;

const SCALE: f64 = 0.08;
const THREADS: usize = 4;
const FIXTURES: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/trace_hashes.txt"
);

fn matrix() -> Vec<Cell> {
    Benchmark::STAMP
        .into_iter()
        .flat_map(|benchmark| {
            PolicyKind::ALL.into_iter().map(move |policy| Cell {
                benchmark,
                policy,
                threads: THREADS,
            })
        })
        .collect()
}

#[test]
fn every_cell_replays_bit_identically_and_matches_fixtures() {
    // The matrix fans out across SEER_JOBS OS threads (each cell still
    // replays twice, uncached — memoization would defeat the point);
    // parallel_map returns results in matrix order, so the fixture file is
    // byte-identical for any job count.
    let cells = matrix();
    let lines = parallel_map(&cells, default_jobs(), |&cell| {
        let metrics = replay_cell(cell, 0, SCALE);
        let violations = metrics.check_conservation();
        assert!(violations.is_empty(), "{cell:?}: {violations:#?}");
        fixture_line(cell, 0, metrics.trace_hash)
    });
    let computed = lines.join("\n") + "\n";

    if std::env::var_os("SEER_BLESS").is_some() {
        std::fs::write(FIXTURES, &computed).expect("write fixtures");
        return;
    }
    let golden = std::fs::read_to_string(FIXTURES)
        .expect("missing tests/fixtures/trace_hashes.txt — run with SEER_BLESS=1 to create it");
    let mismatches: Vec<String> = golden
        .lines()
        .zip(computed.lines())
        .filter(|(g, c)| g != c)
        .map(|(g, c)| format!("  golden: {g}\n  actual: {c}"))
        .collect();
    assert!(
        mismatches.is_empty() && golden.lines().count() == computed.lines().count(),
        "event schedules drifted from the committed fixtures \
         (intentional? re-bless with SEER_BLESS=1):\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn second_seed_replays_on_the_paper_policies() {
    // A second seed over the Figure 3 policies: catches seed-dependent
    // nondeterminism (e.g. state carried across runs) that a single seed
    // cannot.
    let cells: Vec<Cell> = Benchmark::STAMP
        .into_iter()
        .flat_map(|benchmark| {
            PolicyKind::FIGURE3.into_iter().map(move |policy| Cell {
                benchmark,
                policy,
                threads: THREADS,
            })
        })
        .collect();
    parallel_map(&cells, default_jobs(), |&cell| {
        let m = replay_cell(cell, 1, SCALE);
        assert!(m.commits > 0, "{cell:?} committed nothing");
    });
}

#[test]
fn fixture_seed_derivation_is_pinned() {
    // The committed trace hashes are digests of runs driver-seeded through
    // `seer_harness::sim_seed`; if the derivation moves, every fixture
    // line moves with it, so pin it here next to the fixtures themselves.
    assert_eq!(seer_harness::sim_seed(0), 0x5EE2);
    assert_eq!(seer_harness::sim_seed(2), 0x5EE2 + 2 * 7919);
}

#[test]
fn different_seeds_produce_different_schedules() {
    // The digest must actually discriminate: two seeds of the same cell
    // may not collide (they run different traces).
    let cell = Cell {
        benchmark: Benchmark::KmeansHigh,
        policy: PolicyKind::Seer,
        threads: THREADS,
    };
    let a = replay_cell(cell, 0, SCALE);
    let b = replay_cell(cell, 1, SCALE);
    assert_ne!(a.trace_hash, b.trace_hash);
}
