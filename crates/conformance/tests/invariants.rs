//! Invariant-checking sweep over real workloads.
//!
//! These tests run with or without the `check-invariants` feature; with it
//! enabled (`cargo test -p seer-conformance --features check-invariants`)
//! every event of every run below also passes through the driver's
//! invariant checker — lock-order canonicality, epoch monotonicity, SGL
//! subscription consistency, running conservation — turning the sweep into
//! a structural audit of the whole scheduler zoo.

use seer_harness::{Cell, PolicyKind};
use seer_scenario::RunRequest;
use seer_stamp::Benchmark;

#[test]
fn conservation_laws_hold_across_the_policy_zoo() {
    let cells = [
        (Benchmark::Genome, PolicyKind::Seer),
        (Benchmark::KmeansHigh, PolicyKind::Scm),
        (Benchmark::VacationHigh, PolicyKind::Ats),
        (Benchmark::Ssca2, PolicyKind::Hle),
        (Benchmark::Intruder, PolicyKind::Rtm),
        (Benchmark::Yada, PolicyKind::SeerPlusHillClimbing),
    ];
    for (benchmark, policy) in cells {
        for threads in [2, 8] {
            let m = RunRequest::cell(Cell {
                benchmark,
                policy,
                threads,
            })
            .scale(0.1)
            .run();
            let violations = m.check_conservation();
            assert!(
                violations.is_empty(),
                "{benchmark:?}/{policy:?}/{threads}t: {violations:#?}"
            );
        }
    }
}

/// Proof that the checker is live when the feature is on: a causality
/// violation in the event queue must panic instead of being clamped.
#[cfg(feature = "check-invariants")]
#[test]
fn causality_violations_panic_under_the_feature() {
    let result = std::panic::catch_unwind(|| {
        let mut q = seer_sim::EventQueue::new();
        q.push(100, ());
        q.pop();
        q.push(5, ()); // before the watermark: must panic, not clamp
    });
    assert!(result.is_err(), "checker failed to fire on a causality violation");
}
