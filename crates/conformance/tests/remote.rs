//! Distributed conformance: remote execution must be *invisible* in the
//! results, exactly like the disk store (DESIGN.md §14).
//!
//! The bar is the same one every other execution path clears — the
//! committed replay fixtures. A sweep fanned over two real worker
//! endpoints (in-process serve loops speaking the real TCP protocol)
//! must re-derive all 88 fixture lines byte-for-byte, land every result
//! in the shard store, and make a second pass against that store pure
//! disk — zero remote dispatches, zero simulations.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use seer_conformance::replay::fixture_line;
use seer_harness::{Cell, CellExecutor, HarnessConfig, Plan, PolicyKind, Store};
use seer_remote::{PoolConfig, WorkerPool};
use seer_stamp::Benchmark;

const SCALE: f64 = 0.08;
const THREADS: usize = 4;
const FIXTURES: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/trace_hashes.txt"
);

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "seer-conformance-remote-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed),
    ))
}

/// Starts an in-process worker (the real serve loop on a real TCP
/// socket) and returns its address. The serve thread lives until the
/// test process exits.
fn spawn_worker() -> String {
    let listener = seer_remote::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().expect("resolved address").to_string();
    std::thread::spawn(move || {
        let _ = seer_remote::serve(listener);
    });
    addr
}

/// The full 88-cell fixture matrix (STAMP × every policy), fixture order.
fn fixture_cells() -> Vec<Cell> {
    Benchmark::STAMP
        .into_iter()
        .flat_map(|benchmark| {
            PolicyKind::ALL.into_iter().map(move |policy| Cell {
                benchmark,
                policy,
                threads: THREADS,
            })
        })
        .collect()
}

fn plan_of(cells: &[Cell]) -> Plan {
    let mut plan = Plan::new();
    for &cell in cells {
        plan.add_one(cell, 0, SCALE);
    }
    plan
}

#[test]
fn two_worker_sweep_reproduces_the_replay_fixtures() {
    let root = temp_root("fixtures");
    let cells = fixture_cells();
    let plan = plan_of(&cells);

    let addrs = [spawn_worker(), spawn_worker()];
    let pool = Arc::new(WorkerPool::connect(
        &addrs,
        PoolConfig {
            window: 4,
            ..PoolConfig::default()
        },
    ));
    assert_eq!(pool.alive_workers(), 2, "both workers must handshake");

    // Distributed pass: every cell resolved by a worker, none locally.
    let cfg = HarnessConfig {
        seeds: 1,
        scale: SCALE,
        jobs: pool.capacity(),
    };
    let exec = CellExecutor::with_store(cfg, Store::open(&root)).with_remote(pool.clone());
    let report = exec.execute(&plan);
    assert!(report.complete(), "distributed pass failed: {report:?}");
    assert_eq!(report.remote_hits, cells.len() as u64, "{report:?}");
    assert_eq!(report.computed, 0, "a live worker pool must get all the work");
    let stats = pool.stats();
    assert_eq!(stats.workers_lost, 0, "{stats:?}");
    assert_eq!(stats.completed, cells.len() as u64, "{stats:?}");

    // The headline: byte-for-byte the committed replay fixtures — the
    // exact bar the serial local matrix clears, with no re-bless.
    let lines: Vec<String> = cells
        .iter()
        .map(|&cell| {
            let metrics = exec.cached(cell, 0, SCALE).expect("covered cell");
            fixture_line(cell, 0, metrics.trace_hash)
        })
        .collect();
    let computed = lines.join("\n") + "\n";
    let golden = std::fs::read_to_string(FIXTURES).expect("committed fixtures");
    assert_eq!(
        computed, golden,
        "worker-computed results drifted from the committed replay fixtures"
    );

    // Remote results landed in the same shard store a local run fills:
    // a second pass (fresh executor, cold memo, same pool attached) is
    // pure disk — zero remote dispatches, zero simulations.
    let dispatched_before = pool.stats().dispatched;
    let warm = CellExecutor::with_store(cfg, Store::open(&root)).with_remote(pool.clone());
    let report = warm.execute(&plan);
    assert!(report.complete(), "warm pass failed: {report:?}");
    assert_eq!(report.disk_hits, cells.len() as u64, "{report:?}");
    assert_eq!(report.remote_hits, 0, "{report:?}");
    assert_eq!(report.computed, 0, "{report:?}");
    assert_eq!(
        pool.stats().dispatched,
        dispatched_before,
        "a warm store must not dispatch a single remote item"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// A coordinator whose kernel fingerprint the workers reject (here:
/// simulated by a pool pointed at a plain TCP listener that never
/// handshakes) must degrade to local compute, not wrong results.
#[test]
fn a_silent_endpoint_fails_the_handshake_and_the_sweep_runs_locally() {
    // A listener that accepts and says nothing: the coordinator's
    // handshake read times out and the "worker" is declared dead.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            // Hold the connection open, silently.
            std::mem::forget(conn);
        }
    });

    let pool = Arc::new(WorkerPool::connect(
        &[addr],
        PoolConfig {
            heartbeat_timeout: std::time::Duration::from_millis(300),
            connect_timeout: std::time::Duration::from_millis(300),
            ..PoolConfig::default()
        },
    ));
    assert_eq!(pool.alive_workers(), 0, "a silent endpoint is not a worker");

    let cells = [
        Cell {
            benchmark: Benchmark::Ssca2,
            policy: PolicyKind::Rtm,
            threads: THREADS,
        },
        Cell {
            benchmark: Benchmark::Ssca2,
            policy: PolicyKind::Seer,
            threads: THREADS,
        },
    ];
    let plan = plan_of(&cells);
    let cfg = HarnessConfig {
        seeds: 1,
        scale: SCALE,
        jobs: 2,
    };
    let exec = CellExecutor::new(cfg).with_remote(pool.clone());
    let report = exec.execute(&plan);
    assert!(report.complete(), "local fallback failed: {report:?}");
    assert_eq!(report.computed, cells.len() as u64);
    assert_eq!(report.remote_hits, 0);

    // And the locally computed results still match the fixtures.
    let golden = std::fs::read_to_string(FIXTURES).expect("committed fixtures");
    for &cell in &cells {
        let metrics = exec.cached(cell, 0, SCALE).expect("covered cell");
        let line = fixture_line(cell, 0, metrics.trace_hash);
        assert!(
            golden.contains(&line),
            "locally recomputed line not in fixtures: {line}"
        );
    }
}
