//! Lifecycle-trace conservation: on every cell of the replay matrix, the
//! traced event stream must reconcile *exactly* with the run's aggregate
//! metrics — and the traced run's event-schedule digest must still match
//! the committed golden fixtures (tracing is a sink, not a flag).
//!
//! Together with the replay suite (which runs the same matrix untraced)
//! this pins the acceptance criterion that all golden trace hashes pass
//! unchanged with tracing enabled **and** disabled, with no re-bless.

use seer_harness::{default_jobs, parallel_map, Cell, PolicyKind};
use seer_runtime::trace::AbortCause;
use seer_runtime::{MemoryTraceSink, TxMode};
use seer_scenario::RunRequest;
use seer_stamp::Benchmark;

const SCALE: f64 = 0.08;
const THREADS: usize = 4;
const FIXTURES: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/trace_hashes.txt"
);

fn matrix() -> Vec<Cell> {
    Benchmark::STAMP
        .into_iter()
        .flat_map(|benchmark| {
            PolicyKind::ALL.into_iter().map(move |policy| Cell {
                benchmark,
                policy,
                threads: THREADS,
            })
        })
        .collect()
}

#[test]
fn lifecycle_events_reconcile_with_metrics_on_every_replay_cell() {
    let cells = matrix();
    let lines = parallel_map(&cells, default_jobs(), |&cell| {
        let mut sink = MemoryTraceSink::new();
        let m = RunRequest::cell(cell).scale(SCALE).traced(&mut sink).run();
        let violations = m.check_conservation();
        assert!(violations.is_empty(), "{cell:?}: {violations:#?}");

        // Every hardware attempt begins exactly one trace span.
        assert_eq!(
            sink.count_kind("attempt-begin") as u64,
            m.htm_attempts,
            "{cell:?}: attempt-begin count != htm_attempts"
        );
        // Aborts reconcile per cause, not just in total.
        assert_eq!(
            sink.count_abort_cause(AbortCause::Conflict) as u64,
            m.aborts.conflict,
            "{cell:?}: conflict aborts"
        );
        assert_eq!(
            sink.count_abort_cause(AbortCause::Capacity) as u64,
            m.aborts.capacity,
            "{cell:?}: capacity aborts"
        );
        assert_eq!(
            sink.count_abort_cause(AbortCause::Explicit) as u64,
            m.aborts.explicit,
            "{cell:?}: explicit aborts"
        );
        assert_eq!(
            sink.count_abort_cause(AbortCause::Other) as u64,
            m.aborts.other,
            "{cell:?}: other aborts"
        );
        // Commits split exactly into hardware and fall-back commits.
        let sgl_commits = m.modes.get(TxMode::SglFallback);
        assert_eq!(
            sink.count_kind("htm-commit") as u64,
            m.commits - sgl_commits,
            "{cell:?}: htm-commit count"
        );
        assert_eq!(
            sink.count_kind("fallback-commit") as u64,
            sgl_commits,
            "{cell:?}: fallback-commit count"
        );
        assert_eq!(
            sink.count_kind("sgl-fallback") as u64,
            m.fallbacks,
            "{cell:?}: sgl-fallback count != fallbacks"
        );
        // Every attempt span closes: begins = aborts + hardware commits.
        assert_eq!(
            sink.count_kind("attempt-begin"),
            sink.count_kind("abort") + sink.count_kind("htm-commit"),
            "{cell:?}: unclosed attempt spans"
        );

        seer_conformance::replay::fixture_line(cell, 0, m.trace_hash)
    });

    // The *traced* runs must reproduce the committed (untraced) golden
    // hashes line for line — the sink observed the run without touching it.
    let computed = lines.join("\n") + "\n";
    let golden = std::fs::read_to_string(FIXTURES)
        .expect("missing tests/fixtures/trace_hashes.txt — bless the replay suite first");
    assert!(
        golden == computed,
        "traced runs shifted the event schedule; tracing must be a pure observer:\n{}",
        golden
            .lines()
            .zip(computed.lines())
            .filter(|(g, c)| g != c)
            .map(|(g, c)| format!("  golden: {g}\n  traced: {c}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
