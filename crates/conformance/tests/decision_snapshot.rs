//! Golden snapshot of one cell's decision-provenance JSONL.
//!
//! One STAMP × Seer cell's inference stream (every round's probabilities,
//! Gaussian fit, cutoff and verdicts) serializes to JSONL and must be
//! byte-identical to the committed fixture — across repeated runs, and
//! across executor fan-out widths (the `SEER_JOBS=1` vs `SEER_JOBS=4`
//! regimes): tracing shares the run's determinism guarantee, so parallel
//! collection may not perturb a single byte.
//!
//! To regenerate after an *intentional* change to inference, the trace
//! schema, or JSON serialization:
//!
//! ```text
//! SEER_BLESS=1 cargo test -p seer-conformance --test decision_snapshot
//! ```
//!
//! then commit the updated `tests/fixtures/decision_trace.jsonl` with the
//! change that moved it.

use seer_harness::{parallel_map, trace_jsonl, Cell, PolicyKind};
use seer_runtime::MemoryTraceSink;
use seer_scenario::RunRequest;
use seer_stamp::Benchmark;

// Larger than the replay matrix's 0.08: the snapshot cell must run long
// enough to complete inference rounds, or there is nothing to pin.
const SCALE: f64 = 0.75;
const SEED: u64 = 0;
const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/decision_trace.jsonl"
);

fn cell() -> Cell {
    Cell {
        benchmark: Benchmark::KmeansHigh,
        policy: PolicyKind::Seer,
        threads: 4,
    }
}

/// The cell's decision JSONL: the inference stream alone (lifecycle
/// events are covered by the replay hashes and the lifecycle suite; the
/// snapshot pins the decision provenance).
fn decision_jsonl() -> String {
    let mut sink = MemoryTraceSink::new();
    RunRequest::cell(cell())
        .seed(SEED)
        .scale(SCALE)
        .traced(&mut sink)
        .run();
    let decisions = MemoryTraceSink {
        lifecycle: Vec::new(),
        inference: sink.inference,
    };
    trace_jsonl(&decisions)
}

#[test]
fn decision_jsonl_is_byte_stable_and_matches_fixture() {
    let computed = decision_jsonl();
    assert!(
        !computed.is_empty(),
        "the snapshot cell recorded no inference rounds — it cannot pin anything"
    );

    // Byte-stable across runs in the same process.
    assert_eq!(computed, decision_jsonl(), "repeat run changed the JSONL");

    // Byte-stable across fan-out: four concurrent traced runs (the
    // SEER_JOBS=4 regime) against the serial result.
    let parallel = parallel_map(&[0u64, 1, 2, 3], 4, |_| decision_jsonl());
    for (i, p) in parallel.iter().enumerate() {
        assert_eq!(p, &computed, "parallel run {i} diverged from serial JSONL");
    }

    if std::env::var_os("SEER_BLESS").is_some() {
        std::fs::write(FIXTURE, &computed).expect("write decision fixture");
        return;
    }
    let golden = std::fs::read_to_string(FIXTURE).expect(
        "missing tests/fixtures/decision_trace.jsonl — run with SEER_BLESS=1 to create it",
    );
    assert!(
        golden == computed,
        "decision JSONL drifted from the committed fixture \
         (intentional? re-bless with SEER_BLESS=1); first differing line: {}",
        golden
            .lines()
            .zip(computed.lines())
            .position(|(g, c)| g != c)
            .map(|i| (i + 1).to_string())
            .unwrap_or_else(|| "line counts differ".to_string())
    );
}
