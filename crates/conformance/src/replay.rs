//! Deterministic-replay harness.
//!
//! A simulation run is a pure function of `(workload, scheduler, config,
//! seed)`; nothing in the stack may read wall-clock time, addresses,
//! iteration order of unordered containers, or any other ambient state.
//! [`replay_cell`] enforces that by executing a cell twice and comparing
//! the event-schedule digest ([`seer_sim::EventQueue::trace_hash`])
//! bit-for-bit, along with every aggregate metric. The committed fixture
//! file `tests/fixtures/trace_hashes.txt` then pins the digests across
//! sessions, so an accidental change to event ordering — a reordered
//! `push`, a different tie-break, an extra RNG draw — fails the suite
//! instead of silently shifting every figure.
//!
//! Cells are driver-seeded through [`seer_harness::sim_seed`] — the same
//! derivation the harness executor, benches and CLI use — so the fixtures
//! pin the whole stack's seeding, not a conformance-local copy of it.

use seer_harness::Cell;
use seer_runtime::RunMetrics;
use seer_scenario::RunRequest;

/// Runs `cell` twice with the same seed and asserts bit-identical traces
/// and metrics, returning the (verified) metrics of the first run.
///
/// # Panics
/// If the two runs diverge in any observable way.
pub fn replay_cell(cell: Cell, seed: u64, scale: f64) -> RunMetrics {
    let first = RunRequest::cell(cell).seed(seed).scale(scale).run();
    let second = RunRequest::cell(cell).seed(seed).scale(scale).run();
    assert_eq!(
        first.trace_hash, second.trace_hash,
        "replay diverged for {cell:?} seed {seed}: the event schedules differ"
    );
    assert_eq!(first.commits, second.commits, "commits diverged for {cell:?}");
    assert_eq!(first.makespan, second.makespan, "makespan diverged for {cell:?}");
    assert_eq!(
        first.aborts.total(),
        second.aborts.total(),
        "aborts diverged for {cell:?}"
    );
    assert_eq!(first.modes, second.modes, "mode mix diverged for {cell:?}");
    assert_eq!(
        first.fallbacks, second.fallbacks,
        "fallbacks diverged for {cell:?}"
    );
    assert_eq!(
        first.wait_cycles, second.wait_cycles,
        "wait accounting diverged for {cell:?}"
    );
    first
}

/// One line of the golden fixture file for `cell`.
pub fn fixture_line(cell: Cell, seed: u64, trace_hash: u64) -> String {
    format!(
        "{:?} {:?} t{} s{seed} {trace_hash:#018x}",
        cell.benchmark, cell.policy, cell.threads
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use seer_harness::PolicyKind;
    use seer_stamp::Benchmark;

    #[test]
    fn fixture_line_format_is_stable() {
        let cell = Cell {
            benchmark: Benchmark::Genome,
            policy: PolicyKind::Rtm,
            threads: 4,
        };
        assert_eq!(
            fixture_line(cell, 0, 0xdead_beef),
            "Genome Rtm t4 s0 0x00000000deadbeef"
        );
    }
}
