//! # seer-conformance — the reproduction checking itself
//!
//! Every other crate in this workspace implements something; this one
//! implements nothing twice *on purpose* and compares. It holds the three
//! legs of the conformance layer (see `DESIGN.md`):
//!
//! 1. **Differential oracles** ([`oracle`]) — deliberately naive
//!    re-implementations of the probabilistic inference of Alg. 5
//!    (`P(x aborts | x‖y)`, `P(x aborts ∧ x‖y)`, the Gaussian percentile
//!    cut via bisection instead of Acklam's closed form) that the real
//!    [`seer::inference`] / [`seer::gaussian`] are cross-checked against on
//!    thousands of randomized statistics matrices.
//! 2. **A reference scheduler** ([`refsched::SglOnly`]) — the simplest
//!    policy that can possibly be correct: every transaction straight to
//!    the single global lock. Its metrics are fully predictable, which
//!    makes it an oracle for the driver's accounting.
//! 3. **Deterministic replay** ([`replay`]) — every run is a pure function
//!    of `(workload, scheduler, config, seed)`; the replay harness runs
//!    cells twice and compares the [`seer_sim::EventQueue`] trace hash
//!    bit-for-bit, and the committed fixtures in
//!    `tests/fixtures/trace_hashes.txt` pin the schedules across
//!    refactorings.
//!
//! The runtime-side invariant checker itself lives in `seer-runtime`
//! behind the `check-invariants` feature; enabling this crate's feature of
//! the same name turns it on for the whole suite, so the replay matrix
//! doubles as an invariant-checking sweep.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod oracle;
pub mod refsched;
pub mod replay;

pub use oracle::{
    random_stats, reference_decision, reference_gaussian_percentile, reference_infer,
    reference_std_normal_quantile, stats_violations,
};
pub use refsched::SglOnly;
pub use replay::replay_cell;
