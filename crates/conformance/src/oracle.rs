//! Naive reference implementations of the Alg. 5 inference.
//!
//! Everything here favours obviousness over speed and shares as little
//! code as possible with `seer::inference` / `seer::gaussian`: the row
//! statistics are recomputed from scratch for every pair (O(blocks³) per
//! inference instead of O(blocks²)), the variance uses the E[v²] − E[v]²
//! form instead of the two-pass form, and the normal quantile is found by
//! bisecting the forward CDF instead of Acklam's rational approximation.
//! Agreement between the two paths is therefore evidence, not tautology.

use seer::gaussian::std_normal_cdf;
use seer::inference::MIN_DISCRIMINATIVE_SIGMA;
use seer::stats::{MergedStats, ThreadStats};
use seer::Thresholds;
use seer_runtime::BlockId;
use seer_sim::SimRng;

/// Inverse standard normal CDF by bisection over [`std_normal_cdf`].
///
/// Converges to the approximation's own root, so the residual error is the
/// CDF's (≤ 1.5e-7), not the bisection's.
///
/// # Panics
/// If `p` is outside the open interval `(0, 1)`.
pub fn reference_std_normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile of p={p} outside (0,1)");
    let (mut lo, mut hi) = (-12.0_f64, 12.0_f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if std_normal_cdf(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Reference percentile of `N(mean, variance)`, mirroring the degenerate
/// conventions of [`seer::gaussian::gaussian_percentile`].
pub fn reference_gaussian_percentile(mean: f64, variance: f64, percentile: f64) -> f64 {
    if variance <= 0.0 {
        return mean;
    }
    let p = percentile.clamp(1e-9, 1.0 - 1e-9);
    mean + variance.sqrt() * reference_std_normal_quantile(p)
}

fn conditional(stats: &MergedStats, x: BlockId, y: BlockId) -> f64 {
    let aborts = stats.a(x, y) as f64;
    let commits = stats.c(x, y) as f64;
    if aborts + commits == 0.0 {
        0.0
    } else {
        aborts / (aborts + commits)
    }
}

fn conjunctive(stats: &MergedStats, x: BlockId, y: BlockId) -> f64 {
    let executions = stats.e(x) as f64;
    if executions == 0.0 {
        0.0
    } else {
        stats.a(x, y) as f64 / executions
    }
}

/// Row mean and population variance via E[v²] − E[v]² (clamped at zero),
/// recomputed from the matrices on every call.
fn row_mean_variance(stats: &MergedStats, x: BlockId) -> (f64, f64) {
    let n = stats.blocks();
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for y in 0..n {
        let v = conditional(stats, x, y);
        sum += v;
        sum_sq += v * v;
    }
    let mean = sum / n as f64;
    let variance = (sum_sq / n as f64 - mean * mean).max(0.0);
    (mean, variance)
}

/// Everything the reference computes for one ordered pair `(x, y)`.
#[derive(Debug, Clone, Copy)]
pub struct ReferenceDecision {
    /// Whether the reference serializes the pair.
    pub serialize: bool,
    /// `P(x aborts ∧ x‖y)`.
    pub conjunctive: f64,
    /// `P(x aborts | x‖y)`.
    pub conditional: f64,
    /// The Th2 percentile cut-off for `x`'s row.
    pub cutoff: f64,
    /// Standard deviation of `x`'s row of conditional probabilities.
    pub sigma: f64,
}

/// Reference decision for the ordered pair `(x, y)` under `th`,
/// reproducing Alg. 5 line 72 including the degenerate-row convention of
/// [`MIN_DISCRIMINATIVE_SIGMA`].
pub fn reference_decision(
    stats: &MergedStats,
    x: BlockId,
    y: BlockId,
    th: Thresholds,
) -> ReferenceDecision {
    let (mean, variance) = row_mean_variance(stats, x);
    let sigma = variance.sqrt();
    let cutoff = reference_gaussian_percentile(mean, variance, th.th2);
    let conj = conjunctive(stats, x, y);
    let cond = conditional(stats, x, y);
    let discriminative = sigma >= MIN_DISCRIMINATIVE_SIGMA;
    ReferenceDecision {
        serialize: conj > th.th1 && (!discriminative || cond > cutoff),
        conjunctive: conj,
        conditional: cond,
        cutoff,
        sigma,
    }
}

/// The full reference inference: every ordered pair, decided one at a time.
pub fn reference_infer(stats: &MergedStats, th: Thresholds) -> Vec<(BlockId, BlockId)> {
    let n = stats.blocks();
    let mut pairs = Vec::new();
    for x in 0..n {
        for y in 0..n {
            if reference_decision(stats, x, y, th).serialize {
                pairs.push((x, y));
            }
        }
    }
    pairs
}

/// Violations of the counter conservation laws every realizable
/// statistics matrix must satisfy (empty = consistent):
///
/// * each execution of `x` contributes at most one event to any cell
///   `(x, y)` per concurrently announced block, so
///   `a(x,y) + c(x,y) ≤ e(x) · max_concurrent`;
/// * a block that never executed has an all-zero row.
pub fn stats_violations(stats: &MergedStats, max_concurrent: u64) -> Vec<String> {
    let n = stats.blocks();
    let mut violations = Vec::new();
    for x in 0..n {
        let executions = stats.e(x);
        for y in 0..n {
            let row_sum = stats.a(x, y) + stats.c(x, y);
            if row_sum > executions * max_concurrent {
                violations.push(format!(
                    "cell ({x},{y}): a+c = {row_sum} exceeds e_{x} · {max_concurrent} = {}",
                    executions * max_concurrent
                ));
            }
        }
    }
    violations
}

/// A realizable randomized statistics matrix: `threads` per-thread tables
/// filled through the real `REGISTER-COMMIT` / `REGISTER-ABORT` paths and
/// merged, so every conservation law of [`stats_violations`] holds by
/// construction.
pub fn random_stats(rng: &mut SimRng, blocks: usize, threads: usize) -> MergedStats {
    let mut per_thread: Vec<ThreadStats> = (0..threads).map(|_| ThreadStats::new(blocks)).collect();
    for table in &mut per_thread {
        let events = rng.below(60);
        for _ in 0..events {
            let x = rng.below(blocks as u64) as usize;
            let concurrent: Vec<usize> = (0..blocks).filter(|_| rng.chance(0.35)).collect();
            if rng.chance(0.5) {
                table.register_abort(x, concurrent.into_iter());
            } else {
                table.register_commit(x, concurrent.into_iter());
            }
        }
    }
    let mut merged = MergedStats::new(blocks);
    merged.merge_from(per_thread.iter());
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisection_quantile_known_values() {
        assert!(reference_std_normal_quantile(0.5).abs() < 1e-7);
        assert!((reference_std_normal_quantile(0.975) - 1.959_964).abs() < 1e-4);
        assert!((reference_std_normal_quantile(0.8) - 0.841_621).abs() < 1e-4);
    }

    #[test]
    fn random_stats_are_realizable() {
        let mut rng = SimRng::new(7);
        for _ in 0..50 {
            let blocks = 2 + rng.below(7) as usize;
            let stats = random_stats(&mut rng, blocks, 4);
            // Distinct concurrent blocks per event: the tight bound holds.
            assert!(stats_violations(&stats, 1).is_empty());
        }
    }

    #[test]
    fn stats_violations_detects_fabricated_counts() {
        let mut m = MergedStats::new(2);
        m.abort[1] = 5; // a(0,1) = 5 with e(0) = 0: impossible.
        let v = stats_violations(&m, 1);
        assert_eq!(v.len(), 1, "{v:?}");
    }
}
