//! The reference single-lock scheduler.
//!
//! [`SglOnly`] sends every transaction straight down the fall-back path:
//! no hardware attempts, no scheduler locks, no waiting heuristics. It is
//! the degenerate point of the policy space — global lock around every
//! atomic block — and its metrics are therefore fully predictable:
//!
//! * every commit is [`seer_runtime::TxMode::SglFallback`];
//! * `fallbacks == commits`, `htm_attempts == 0`, zero aborts of any kind;
//! * the conservation laws of `RunMetrics::check_conservation` hold.
//!
//! Running real workloads under it cross-checks the driver's accounting
//! against a policy simple enough to reason about exhaustively, and gives
//! a serialization floor other schedulers can be compared to.

use seer_runtime::{BlockId, SchedEnv, Scheduler};
use seer_sim::ThreadId;

/// Pre-transaction serialization on the single global lock, always.
#[derive(Debug, Default, Clone, Copy)]
pub struct SglOnly;

impl Scheduler for SglOnly {
    fn name(&self) -> &'static str {
        "reference-sgl-only"
    }

    /// The budget is irrelevant (no hardware attempt ever starts) but must
    /// be positive for the driver.
    fn attempt_budget(&self) -> u32 {
        1
    }

    fn pre_tx_fallback(
        &mut self,
        _thread: ThreadId,
        _block: BlockId,
        _env: &mut SchedEnv<'_>,
    ) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seer_runtime::synthetic::{SyntheticSpec, SyntheticWorkload};
    use seer_runtime::{run, DriverConfig, NullScheduler, TxMode};

    fn run_sgl(threads: usize, seed: u64) -> seer_runtime::RunMetrics {
        let spec = SyntheticSpec::low_contention_hashmap(30);
        let mut workload = SyntheticWorkload::new(spec, threads);
        let mut sched = SglOnly;
        run(&mut workload, &mut sched, &DriverConfig::paper_machine(threads, seed))
    }

    #[test]
    fn all_commits_take_the_global_lock() {
        let m = run_sgl(4, 11);
        assert_eq!(m.commits, 120);
        assert_eq!(m.modes.get(TxMode::SglFallback), m.commits);
        assert_eq!(m.fallbacks, m.commits);
        assert_eq!(m.htm_attempts, 0);
        assert_eq!(m.aborts.total(), 0);
        assert_eq!(m.ground_truth.total(), 0);
        let violations = m.check_conservation();
        assert!(violations.is_empty(), "{violations:#?}");
    }

    #[test]
    fn commits_match_an_independent_policy() {
        // Same workload under the null scheduler: the *work done* must be
        // identical even though the execution strategy is opposite.
        let spec = SyntheticSpec::low_contention_hashmap(30);
        let mut workload = SyntheticWorkload::new(spec, 4);
        let mut null = NullScheduler::new(5);
        let htm = run(&mut workload, &mut null, &DriverConfig::paper_machine(4, 11));
        let sgl = run_sgl(4, 11);
        assert_eq!(htm.commits, sgl.commits);
    }

    #[test]
    fn serialization_is_deterministic() {
        let a = run_sgl(8, 3);
        let b = run_sgl(8, 3);
        assert_eq!(a.trace_hash, b.trace_hash);
        assert_eq!(a.makespan, b.makespan);
    }
}
