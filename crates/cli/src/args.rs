//! A small, dependency-free argument parser for the `seer` CLI.
//!
//! Grammar: `seer <command> [--key value]...`. Unknown keys and malformed
//! values are reported with the offending token; `--help` anywhere prints
//! usage. Kept deliberately simple — the CLI has four commands and a
//! handful of typed options.

use std::collections::BTreeMap;

/// Parsed command line: the command word plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The command word (e.g. `run`).
    pub command: String,
    options: BTreeMap<String, String>,
}

/// Parse failure with a human-oriented message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

impl Args {
    /// Parses raw arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ParseError> {
        let mut iter = raw.into_iter().peekable();
        let command = iter
            .next()
            .ok_or_else(|| ParseError("missing command (try `seer help`)".into()))?;
        if command.starts_with('-') {
            return Err(ParseError(format!(
                "expected a command before options, got {command:?}"
            )));
        }
        let mut options = BTreeMap::new();
        while let Some(tok) = iter.next() {
            let Some(key) = tok.strip_prefix("--") else {
                return Err(ParseError(format!("expected --option, got {tok:?}")));
            };
            // Value-free flags: presence is the whole message.
            if key == "help" || key == "resume" {
                options.insert(key.to_string(), "true".into());
                continue;
            }
            let value = iter
                .next()
                .ok_or_else(|| ParseError(format!("--{key} needs a value")))?;
            if options.insert(key.to_string(), value).is_some() {
                return Err(ParseError(format!("--{key} given twice")));
            }
        }
        Ok(Self { command, options })
    }

    /// True when `--help` was passed.
    pub fn wants_help(&self) -> bool {
        self.options.contains_key("help")
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A typed option with a default; malformed values are errors.
    pub fn get_parsed<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
    ) -> Result<T, ParseError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ParseError(format!("--{key} {raw:?} is not a valid value"))),
        }
    }

    /// Rejects options outside the allowed set (catches typos).
    pub fn allow_only(&self, allowed: &[&str]) -> Result<(), ParseError> {
        for key in self.options.keys() {
            if key != "help" && !allowed.contains(&key.as_str()) {
                return Err(ParseError(format!(
                    "unknown option --{key} (allowed: {})",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Result<Args, ParseError> {
        Args::parse(parts.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_and_options() {
        let a = parse(&["run", "--benchmark", "genome", "--threads", "8"]).unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.get("benchmark"), Some("genome"));
        assert_eq!(a.get_parsed("threads", 4usize).unwrap(), 8);
        assert_eq!(a.get_parsed("seed", 7u64).unwrap(), 7);
    }

    #[test]
    fn rejects_missing_command() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--threads", "2"]).is_err());
    }

    #[test]
    fn rejects_dangling_option() {
        let e = parse(&["run", "--threads"]).unwrap_err();
        assert!(e.0.contains("needs a value"));
    }

    #[test]
    fn rejects_duplicates_and_unknowns() {
        assert!(parse(&["run", "--x", "1", "--x", "2"]).is_err());
        let a = parse(&["run", "--bogus", "1"]).unwrap();
        assert!(a.allow_only(&["threads"]).is_err());
        assert!(a.allow_only(&["bogus"]).is_ok());
    }

    #[test]
    fn rejects_malformed_values() {
        let a = parse(&["run", "--threads", "eight"]).unwrap();
        assert!(a.get_parsed("threads", 1usize).is_err());
    }

    #[test]
    fn help_flag_is_value_free() {
        let a = parse(&["run", "--help"]).unwrap();
        assert!(a.wants_help());
    }

    #[test]
    fn resume_flag_is_value_free() {
        let a = parse(&["sweep", "--resume", "--benchmark", "genome"]).unwrap();
        assert_eq!(a.get("resume"), Some("true"));
        assert_eq!(a.get("benchmark"), Some("genome"));
    }
}
