//! The CLI commands: `list`, `run`, `sweep`, `bench`, `inspect`,
//! `explain`, `serve`, and the `scenario` family.

use std::sync::{Arc, Once};

use seer::{Seer, SeerConfig};
use seer_harness::{
    default_jobs, write_chrome_trace, write_trace_jsonl, Cell, CellExecutor, HarnessConfig,
    Plan, PolicyKind, Store,
};
use seer_remote::{PoolConfig, WorkerPool};
use seer_runtime::{run, DriverConfig, MemoryTraceSink, RunMetrics, TxMode, Workload};
use seer_scenario::RunRequest;
use seer_stamp::Benchmark;

use crate::args::{Args, ParseError};

/// The fixed benchmarks the CLI lists (STAMP + the hash-map probe).
/// The parameterized `synth@blocks=N` probe is parsed by spec instead —
/// see [`parse_benchmark`].
fn benchmarks() -> Vec<Benchmark> {
    Benchmark::STAMP
        .into_iter()
        .chain([Benchmark::HashmapLow])
        .collect()
}

/// Parses `--benchmark`: a fixed member's name, `synth`, or
/// `synth@blocks=N`. Labyrinth stays CLI-hidden (it exists to validate
/// the paper's exclusion, not to be run from here).
fn parse_benchmark(name: &str) -> Result<Benchmark, ParseError> {
    Benchmark::from_spec(name)
        .filter(|b| *b != Benchmark::Labyrinth)
        .ok_or_else(|| ParseError(format!("unknown benchmark {name:?} (see `seer list`)")))
}

/// Every [`PolicyKind`] name round-trips through `FromStr`, so the CLI
/// can run all eleven variants — the Figure 5 cumulative ones included.
fn parse_policy(name: &str) -> Result<PolicyKind, ParseError> {
    name.parse::<PolicyKind>()
        .map_err(|e| ParseError(e.to_string()))
}

/// Prints top-level usage.
pub fn print_usage() {
    println!(
        "seer — Seer HTM-scheduler reproduction (SPAA'15)\n\
         \n\
         commands:\n\
         \x20 list                         benchmarks and policies\n\
         \x20 run      one simulated run   --benchmark B --policy P --threads N\n\
         \x20                              [--seed N] [--txs N] [--json true]\n\
         \x20                              [--trace F.jsonl] [--chrome F.json]\n\
         \x20 sweep    thread sweep        --benchmark B [--policies hle,rtm,scm,seer]\n\
         \x20                              [--max-threads N] [--seed N] [--jobs N]\n\
         \x20                              [--store DIR] [--resume] [--workers A1,A2]\n\
         \x20 tune     parameter search    [--driver random|halving|climb] [--budget N]\n\
         \x20          over Seer's knobs   [--objective throughput|robustness|combined]\n\
         \x20          (see DESIGN.md §15) [--space F.json] [--seed N] [--jobs N]\n\
         \x20                              [--json true] [--out TUNE.json]\n\
         \x20                              [--store DIR] [--resume] [--workers A1,A2]\n\
         \x20 serve    worker daemon       [--addr HOST:PORT]   (default 127.0.0.1:0)\n\
         \x20 bench    perf measurement    [--mode smoke|full|inference]\n\
         \x20          (see DESIGN.md §12) [--out BENCH_010.json] [--repeats N]\n\
         \x20                              [--jobs N] [--json true]\n\
         \x20 inspect  Seer's learned state --benchmark B --threads N [--txs N] [--seed N]\n\
         \x20 explain  decision history     --benchmark B --policy P --pair X,Y\n\
         \x20          for one block pair   [--threads N] [--seed N] [--txs N]\n\
         \x20 scenario list                 built-in disturbance scenarios\n\
         \x20 scenario run                  [--name S | --spec F.json] [--policy P]\n\
         \x20          recovery scoring     [--seed N] [--jobs N] [--json true]\n\
         \x20                               [--trace F.jsonl] [--store DIR] [--resume]\n\
         \x20                               [--workers A1,A2]\n\
         \n\
         Persistence: --store DIR attaches an on-disk result store (results load\n\
         before simulating and persist after); --resume is shorthand for\n\
         --store .seer-store. A killed sweep re-run with --resume recomputes only\n\
         the gap and is byte-identical to an uninterrupted run.\n\
         \n\
         Distribution: start workers with `seer serve --addr HOST:PORT`, then pass\n\
         --workers HOST:PORT,... (or set SEER_WORKERS) to fan uncached work out to\n\
         them. Results are identical to a local run and land in the same store;\n\
         dead workers are retried elsewhere and, with none left, the sweep\n\
         finishes locally.\n\
         \n\
         Simulated machine: 4 physical cores x 2 hyper-threads (the paper's\n\
         Haswell Xeon E3-1275); all results are in simulated cycles."
    );
}

/// `seer list`.
pub fn list() {
    println!("benchmarks:");
    for b in benchmarks() {
        println!("  {:<14} ({} txs/thread by default)", b.name(), b.default_txs());
    }
    let synth = Benchmark::Synth { blocks: seer_stamp::synth::DEFAULT_BLOCKS };
    println!(
        "  {:<14} ({} txs/thread by default; many-blocks scaling probe,\n\
         \x20                use synth@blocks=N for N atomic blocks, default {})",
        "synth",
        synth.default_txs(),
        seer_stamp::synth::DEFAULT_BLOCKS
    );
    println!("\npolicies:");
    for p in PolicyKind::ALL {
        println!("  {:<26} {}", p.name(), p.describe());
    }
}

fn metrics_summary(m: &RunMetrics) -> String {
    format!(
        "commits            {}\n\
         speedup            {:.3}x over sequential\n\
         aborts/commit      {:.3} (conflict {}, capacity {}, explicit {}, other {})\n\
         fall-back          {:.1}% of commits\n\
         modes              no-locks {:.1}%, aux {:.1}%, tx {:.1}%, core {:.1}%, tx+core {:.1}%, sgl {:.1}%\n\
         waits              {} parks, mean {:.0} / p95 ~{} / max {} cycles\n\
         makespan           {} cycles (sequential work: {} cycles)",
        m.commits,
        m.speedup(),
        m.abort_ratio(),
        m.aborts.conflict,
        m.aborts.capacity,
        m.aborts.explicit,
        m.aborts.other,
        m.fallback_fraction() * 100.0,
        m.modes.fraction(TxMode::HtmNoLocks) * 100.0,
        m.modes.fraction(TxMode::HtmAuxLock) * 100.0,
        m.modes.fraction(TxMode::HtmTxLocks) * 100.0,
        m.modes.fraction(TxMode::HtmCoreLock) * 100.0,
        m.modes.fraction(TxMode::HtmTxAndCoreLocks) * 100.0,
        m.modes.fraction(TxMode::SglFallback) * 100.0,
        m.wait_histogram.count(),
        m.wait_histogram.mean(),
        m.wait_histogram.quantile(0.95),
        m.wait_histogram.max(),
        m.makespan,
        m.sequential_cycles,
    )
}

/// `seer run`.
pub fn run_one(args: &Args) -> Result<(), ParseError> {
    args.allow_only(&[
        "benchmark", "policy", "threads", "seed", "txs", "json", "trace", "chrome",
    ])?;
    let benchmark = parse_benchmark(args.get("benchmark").unwrap_or("genome"))?;
    let policy = parse_policy(args.get("policy").unwrap_or("seer"))?;
    let threads: usize = args.get_parsed("threads", 8)?;
    let seed: u64 = args.get_parsed("seed", 0)?;
    let txs: usize = args.get_parsed("txs", benchmark.default_txs())?;
    let json: bool = args.get_parsed("json", false)?;
    if threads == 0 || threads > 8 {
        return Err(ParseError("--threads must be 1..=8".into()));
    }

    let scale = txs as f64 / benchmark.default_txs() as f64;
    let cell = Cell {
        benchmark,
        policy,
        threads,
    };
    let trace_path = args.get("trace");
    let chrome_path = args.get("chrome");
    let m = if trace_path.is_some() || chrome_path.is_some() {
        // Tracing is a sink, not a flag: metrics (and trace_hash) are
        // bit-identical to the untraced run below.
        let mut sink = MemoryTraceSink::new();
        let m = RunRequest::cell(cell)
            .seed(seed)
            .scale(scale)
            .traced(&mut sink)
            .run();
        if let Some(path) = trace_path {
            if write_trace_jsonl(path, &sink) {
                eprintln!("trace: JSONL written to {path}");
            }
        }
        if let Some(path) = chrome_path {
            if write_chrome_trace(path, &sink) {
                eprintln!("trace: Chrome trace-event JSON written to {path}");
            }
        }
        m
    } else {
        RunRequest::cell(cell).seed(seed).scale(scale).run()
    };
    if json {
        use seer_harness::{Json, ToJson};
        let out = Json::object([
            ("benchmark", benchmark.spec().to_json()),
            ("policy", policy.label().to_json()),
            ("threads", threads.to_json()),
            ("seed", seed.to_json()),
            ("commits", m.commits.to_json()),
            ("speedup", m.speedup().to_json()),
            ("abort_ratio", m.abort_ratio().to_json()),
            ("fallback_fraction", m.fallback_fraction().to_json()),
            ("makespan_cycles", m.makespan.to_json()),
            ("sequential_cycles", m.sequential_cycles.to_json()),
        ]);
        println!("{}", out.to_string_pretty());
    } else {
        println!("{} under {} with {threads} thread(s), seed {seed}:", benchmark.spec(), policy.label());
        println!("{}", metrics_summary(&m));
    }
    Ok(())
}

/// Satellite behaviour: numeric *tuning* options (`--jobs`, `--repeats`)
/// with an invalid value — unparsable or zero — warn once per process
/// with the expected form and fall back to the default, instead of
/// silently defaulting or aborting a script mid-sweep. (Options that pick
/// *what* runs, like `--mode` or `--threads`, still hard-error: guessing
/// there would silently measure the wrong thing.)
fn positive_or_warn(
    args: &Args,
    key: &str,
    default: usize,
    warned: &'static Once,
) -> usize {
    match args.get(key) {
        None => default,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                warned.call_once(|| {
                    eprintln!(
                        "warning: ignoring invalid --{key} {raw:?} \
                         (usage: --{key} N, a positive integer); using default {default}"
                    );
                });
                default
            }
        },
    }
}

/// `--jobs` with warn-once fallback to [`default_jobs`].
fn jobs_or_warn(args: &Args) -> usize {
    static WARNED: Once = Once::new();
    positive_or_warn(args, "jobs", default_jobs(), &WARNED)
}

/// `--repeats` with warn-once fallback to the mode's default.
fn repeats_or_warn(args: &Args, default: usize) -> usize {
    static WARNED: Once = Once::new();
    positive_or_warn(args, "repeats", default, &WARNED)
}

/// Scale factor `seer sweep` runs at (a full sweep touches up to 88
/// cells; half scale keeps it interactive).
const SWEEP_SCALE: f64 = 0.5;

/// Where `--resume` looks for results when no `--store DIR` is given.
const DEFAULT_STORE_DIR: &str = ".seer-store";

/// Resolves `--store DIR` / `--resume` into a store attachment.
/// `--resume` alone uses [`DEFAULT_STORE_DIR`]. Opening is lazy and an
/// unwritable directory degrades into a warn-once pass-through inside the
/// store, so this never fails and never aborts a sweep mid-run.
fn store_from_args(args: &Args) -> Option<Store> {
    store_dir_from_args(args).map(Store::open)
}

/// The directory behind [`store_from_args`], for commands (like `tune`)
/// that open more than one store view over it.
fn store_dir_from_args(args: &Args) -> Option<&str> {
    match (args.get("store"), args.get("resume")) {
        (Some(dir), _) => Some(dir),
        (None, Some(_)) => Some(DEFAULT_STORE_DIR),
        (None, None) => None,
    }
}

/// Resolves `--workers addr,addr` (or the `SEER_WORKERS` environment
/// variable) into a connected worker pool. Returns `None` when no
/// workers are configured — the sweep then runs purely locally, with no
/// change in output or report format.
fn pool_from_args(args: &Args) -> Option<Arc<WorkerPool>> {
    let raw = args
        .get("workers")
        .map(str::to_string)
        .or_else(|| std::env::var("SEER_WORKERS").ok())?;
    let addrs: Vec<String> = raw
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if addrs.is_empty() {
        return None;
    }
    Some(Arc::new(WorkerPool::connect(&addrs, PoolConfig::from_env())))
}

/// One-line pool summary printed after a distributed run (the chaos
/// suite asserts on sweeps through these counters).
fn print_pool_summary(kind: &str, pool: &WorkerPool) {
    let s = pool.stats();
    eprintln!(
        "{kind}: workers — {} configured, {} alive; {} dispatched, {} completed, {} failed, {} retried, {} lost",
        pool.addrs().len(),
        pool.alive_workers(),
        s.dispatched,
        s.completed,
        s.failed,
        s.retried,
        s.workers_lost,
    );
}

/// `seer serve`: the worker daemon. Binds `--addr` (default
/// `127.0.0.1:0`, an ephemeral port), prints the *resolved* address as
/// `serve: listening on HOST:PORT` (coordinator scripts parse that
/// line), and serves until killed.
pub fn serve(args: &Args) -> Result<(), ParseError> {
    use std::io::Write;

    args.allow_only(&["addr"])?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:0");
    let listener = seer_remote::bind(addr)
        .map_err(|e| ParseError(format!("cannot bind {addr}: {e}")))?;
    let local = listener
        .local_addr()
        .map_err(|e| ParseError(format!("cannot resolve bound address: {e}")))?;
    println!("serve: listening on {local}");
    std::io::stdout().flush().ok();
    seer_remote::serve(listener).map_err(|e| ParseError(format!("serve failed: {e}")))
}

/// `seer sweep`.
pub fn sweep(args: &Args) -> Result<(), ParseError> {
    args.allow_only(&[
        "benchmark", "policies", "max-threads", "seed", "jobs", "store", "resume", "workers",
    ])?;
    let benchmark = parse_benchmark(args.get("benchmark").unwrap_or("genome"))?;
    let max_threads: usize = args.get_parsed("max-threads", 8)?;
    let seed: u64 = args.get_parsed("seed", 0)?;
    if max_threads == 0 || max_threads > 8 {
        return Err(ParseError("--max-threads must be 1..=8".into()));
    }
    let policies: Vec<PolicyKind> = match args.get("policies") {
        None => PolicyKind::FIGURE3.to_vec(),
        Some(list) => list
            .split(',')
            .map(parse_policy)
            .collect::<Result<_, _>>()?,
    };

    // With a worker pool attached, local fan-out must cover the pool's
    // in-flight capacity too, or remote windows sit idle.
    let pool = pool_from_args(args);
    let jobs = match &pool {
        Some(pool) => jobs_or_warn(args).max(pool.capacity()),
        None => jobs_or_warn(args),
    };

    // Declare the whole grid up front and fan it out across `jobs` OS
    // threads; the printed table then assembles from cache in row order
    // (bit-identical to a serial sweep for any --jobs value).
    let cfg = HarnessConfig {
        seeds: 1,
        scale: SWEEP_SCALE,
        jobs,
    };
    let mut exec = match store_from_args(args) {
        Some(store) => CellExecutor::with_store(cfg, store),
        None => CellExecutor::new(cfg),
    };
    if let Some(pool) = &pool {
        exec = exec.with_remote(pool.clone());
    }
    let mut plan = Plan::new();
    for threads in 1..=max_threads {
        for &policy in &policies {
            plan.add_one(
                Cell {
                    benchmark,
                    policy,
                    threads,
                },
                seed,
                SWEEP_SCALE,
            );
        }
    }
    let report = exec.execute(&plan);
    if let Some(pool) = &pool {
        // The remote segment appears only on distributed runs, keeping
        // the local report format (and everything that greps it) stable.
        eprintln!(
            "sweep: {} cell(s) planned — {} memoized, {} from disk, {} remote, {} computed, {} failed",
            report.planned,
            report.memo_hits,
            report.disk_hits,
            report.remote_hits,
            report.computed,
            report.failed.len(),
        );
        print_pool_summary("sweep", pool);
    } else if exec.store().is_some() || !report.complete() {
        eprintln!(
            "sweep: {} cell(s) planned — {} memoized, {} from disk, {} computed, {} failed",
            report.planned,
            report.memo_hits,
            report.disk_hits,
            report.computed,
            report.failed.len(),
        );
    }

    println!("{} — speedup over sequential (seed {seed})", benchmark.spec());
    print!("{:>8}", "threads");
    for p in &policies {
        print!("{:>12}", p.label());
    }
    println!();
    for threads in 1..=max_threads {
        print!("{threads:>8}");
        for &policy in &policies {
            // Assemble from cache only: a failed cell renders as FAILED in
            // a partial table instead of re-panicking on recompute.
            match exec.cached(
                Cell {
                    benchmark,
                    policy,
                    threads,
                },
                seed,
                SWEEP_SCALE,
            ) {
                Some(m) => print!("{:>12.3}", m.speedup()),
                None => print!("{:>12}", "FAILED"),
            }
        }
        println!();
    }
    if !report.complete() {
        for f in &report.failed {
            eprintln!(
                "sweep: FAILED {}/{}/t{} after {} attempt(s): {}",
                f.key.benchmark.spec(),
                f.key.policy.name(),
                f.key.threads,
                f.attempts,
                f.failure,
            );
        }
        return Err(ParseError(format!(
            "{} of {} cell(s) failed; partial results above (re-run with --resume to retry only the gaps)",
            report.failed.len(),
            report.planned,
        )));
    }
    Ok(())
}

/// `seer tune`: deterministic parameter search over Seer's scheduling
/// knobs (DESIGN.md §15). Proposes configurations with the chosen
/// driver, evaluates them through the same executor stack as `sweep`
/// (memo, `--store`/`--resume`, `--jobs`, `--workers`), and prints a
/// ranked leaderboard plus a per-dimension sensitivity table. The
/// result is bit-identical for any `--jobs` value and any worker count.
pub fn tune(args: &Args) -> Result<(), ParseError> {
    use seer_harness::Json;
    use seer_scenario::ScenarioPlan;
    use seer_tune::{objective_by_name, report_json, run_search, DriverKind, ParamSpace};

    args.allow_only(&[
        "space", "driver", "budget", "objective", "seed", "jobs", "json", "out", "store",
        "resume", "workers",
    ])?;
    let space = match args.get("space") {
        None => ParamSpace::default_space(),
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| ParseError(format!("cannot read --space {path:?}: {e}")))?;
            ParamSpace::parse(&text)
                .map_err(|e| ParseError(format!("--space {path:?}: {e}")))?
        }
    };
    let driver: DriverKind = args
        .get("driver")
        .unwrap_or("random")
        .parse()
        .map_err(ParseError)?;
    let budget: u64 = args.get_parsed("budget", 16)?;
    if budget == 0 {
        return Err(ParseError("--budget must be at least 1".into()));
    }
    let seed: u64 = args.get_parsed("seed", 0)?;
    let objective_name = args.get("objective").unwrap_or("combined");
    let objective = objective_by_name(objective_name).ok_or_else(|| {
        ParseError(format!(
            "unknown objective {objective_name:?} (throughput, robustness, combined)"
        ))
    })?;
    let json: bool = args.get_parsed("json", false)?;

    let pool = pool_from_args(args);
    let jobs = match &pool {
        Some(pool) => jobs_or_warn(args).max(pool.capacity()),
        None => jobs_or_warn(args),
    };
    let mut exec = seer_tune::TuneExecutor::with_store_dir(jobs, store_dir_from_args(args));
    if let Some(pool) = &pool {
        exec = exec.with_remote(pool.clone(), pool.clone());
    }

    let outcome = run_search(
        &space,
        driver,
        budget,
        seed,
        objective.as_ref(),
        &exec,
        &mut |what, r| {
            eprintln!(
                "tune: batch {what} — {} run(s), {} memoized, {} from disk, {} remote, {} computed, {} failed",
                r.planned, r.memo_hits, r.disk_hits, r.remote_hits, r.computed, r.failed,
            );
        },
    );

    // The yardstick: the paper-default configuration, evaluated through
    // the same objective at the incumbent's fidelity. One extra batch;
    // its runs memoize and persist like any trial's.
    let mut total = outcome.exec_report.clone();
    let mut default_failures = Vec::new();
    let default_score = outcome
        .best
        .map(|b| outcome.trials[b].fidelity)
        .and_then(|fidelity| {
            let mut cells = Plan::new();
            let mut scenarios = ScenarioPlan::new();
            objective.plan(PolicyKind::Seer, fidelity, &mut cells, &mut scenarios);
            let (r, failures) = exec.execute(&cells, &scenarios);
            total.absorb(&r);
            default_failures = failures;
            objective.score(PolicyKind::Seer, fidelity, &exec)
        });

    // Cumulative coverage, in the sweep-report vocabulary (the CI tune
    // job greps a `--resume` second pass for pure-disk counters here).
    eprintln!(
        "tune: {} run(s) planned — {} memoized, {} from disk, {} remote, {} computed, {} failed",
        total.planned, total.memo_hits, total.disk_hits, total.remote_hits, total.computed,
        total.failed,
    );
    if let Some(pool) = &pool {
        print_pool_summary("tune", pool);
    }

    let doc = report_json(
        &space,
        driver,
        budget,
        seed,
        objective.name(),
        &outcome,
        default_score,
    );
    if let Some(out) = args.get("out") {
        std::fs::write(out, format!("{}\n", doc.to_string_pretty()))
            .map_err(|e| ParseError(format!("cannot write {out:?}: {e}")))?;
    }
    if json {
        println!("{}", doc.to_string_pretty());
    } else {
        println!(
            "{} objective — driver {}, budget {}, seed {} ({} distinct config(s))",
            objective.name(),
            driver.name(),
            budget,
            seed,
            outcome.trials.len(),
        );
        println!("{:>4}  {:>12}  {:>3}  spec", "rank", "score", "fid");
        if let Some(rows) = doc.get("leaderboard").and_then(Json::as_array) {
            for row in rows {
                let rank = row.get("rank").and_then(Json::as_u64).unwrap_or(0);
                let fid = row.get("fidelity").and_then(Json::as_u64).unwrap_or(0);
                let spec = row.get("spec").and_then(Json::as_str).unwrap_or("?");
                match row.get("score").and_then(Json::as_f64) {
                    Some(s) => println!("{rank:>4}  {s:>12.6}  {fid:>3}  {spec}"),
                    None => println!("{rank:>4}  {:>12}  {fid:>3}  {spec}", "FAILED"),
                }
            }
        }
        match (default_score, doc.get("improvement").and_then(Json::as_f64)) {
            (Some(d), Some(r)) => {
                println!("\ndefault (paper constants): {d:.6} — best is {r:.3}x the default");
            }
            (Some(d), None) => println!("\ndefault (paper constants): {d:.6}"),
            (None, _) => println!("\ndefault (paper constants): FAILED"),
        }
        println!("\nsensitivity around the incumbent (objective drop when the knob moves):");
        if let Some(rows) = doc.get("sensitivity").and_then(Json::as_array) {
            for row in rows {
                let dim = row.get("dim").and_then(Json::as_str).unwrap_or("?");
                match row.get("delta").and_then(Json::as_f64) {
                    Some(delta) => {
                        let alt = row
                            .get("best_alternative")
                            .map(Json::to_string_compact)
                            .unwrap_or_else(|| "null".into());
                        println!("  {dim:<12} {delta:>12.6}  (best alternative: {alt})");
                    }
                    None => println!("  {dim:<12} {:>12}", "no varying trial"),
                }
            }
        }
    }

    if !outcome.failures.is_empty() || !default_failures.is_empty() {
        for f in outcome.failures.iter().chain(&default_failures) {
            eprintln!("tune: FAILED {f}");
        }
        return Err(ParseError(format!(
            "{} run(s) failed; the leaderboard above ranks affected trials last \
             (re-run with --resume to retry only the gaps)",
            outcome.failures.len() + default_failures.len(),
        )));
    }
    Ok(())
}

/// `seer bench`: the perf-measurement harness (DESIGN.md §12). Runs the
/// pinned workload matrix and the event-queue microbench, writes the JSON
/// report to `--out`, and prints a summary (or, with `--json true`, the
/// full report).
pub fn bench(args: &Args) -> Result<(), ParseError> {
    use seer_bench::harness::{run_bench, BenchMode};

    args.allow_only(&["mode", "out", "repeats", "jobs", "json"])?;
    let mode_raw = args.get("mode").unwrap_or("smoke");
    let mode = BenchMode::parse(mode_raw).ok_or_else(|| {
        ParseError(format!(
            "--mode must be \"smoke\", \"full\" or \"inference\", got {mode_raw:?}"
        ))
    })?;
    let json: bool = args.get_parsed("json", false)?;
    let out = args.get("out").unwrap_or("BENCH_010.json");
    let repeats = repeats_or_warn(args, mode.default_repeats());
    let jobs = jobs_or_warn(args);

    let report = run_bench(mode, repeats, jobs);
    report
        .write(out)
        .map_err(|e| ParseError(format!("cannot write {out:?}: {e}")))?;

    if json {
        println!("{}", report.to_json().to_string_pretty());
    } else {
        println!(
            "inference round, full recompute vs incremental engine \
             ({repeats} repeat(s), best kept):"
        );
        for i in &report.inference {
            println!(
                "  blocks={:<5} dirty={:<4} {:>10.0} full rounds/s  {:>12.0} incr rounds/s  speedup {:.2}x",
                i.blocks,
                i.dirty_rows,
                i.full_rounds_per_sec,
                i.incremental_rounds_per_sec,
                i.speedup_vs_full
            );
        }
        if !report.queue.is_empty() {
            println!("\nevent queue vs reference BinaryHeap ({repeats} repeat(s), best kept):");
            for q in &report.queue {
                println!(
                    "  n={:<7} {:>12.0} events/s (heap {:>12.0})  speedup {:.2}x",
                    q.n, q.queue_events_per_sec, q.heap_events_per_sec, q.speedup_vs_heap
                );
            }
        }
        if !report.cells.is_empty() {
            println!("\nworkload matrix ({} mode, scale {}):", mode.name(), mode.scale());
            for c in &report.cells {
                println!(
                    "  {:<14} {:<6} {} thread(s)  {:>10} events  {:>12.0} events/s  {:>8.1} ms",
                    c.benchmark, c.policy, c.threads, c.events, c.events_per_sec, c.wall_ms
                );
            }
        }
    }
    eprintln!("bench: report written to {out}");
    Ok(())
}

/// `seer inspect`.
pub fn inspect(args: &Args) -> Result<(), ParseError> {
    args.allow_only(&["benchmark", "threads", "txs", "seed"])?;
    let benchmark = parse_benchmark(args.get("benchmark").unwrap_or("genome"))?;
    let threads: usize = args.get_parsed("threads", 8)?;
    let seed: u64 = args.get_parsed("seed", 0)?;
    if threads == 0 || threads > 8 {
        return Err(ParseError("--threads must be 1..=8".into()));
    }
    let txs: usize = args.get_parsed("txs", benchmark.default_txs())?;

    let mut workload = benchmark.instantiate(threads, txs);
    let blocks = workload.num_blocks();
    let mut sched = Seer::new(SeerConfig::full(), threads, blocks);
    // Same --seed semantics as `seer run`: a harness seed, derived into a
    // driver seed by the one shared derivation.
    let m = run(
        &mut workload,
        &mut sched,
        &DriverConfig::paper_machine(threads, seer_harness::sim_seed(seed)),
    );
    sched.force_update();

    println!("{} under full Seer, {threads} thread(s):\n", benchmark.spec());
    println!("{}\n", metrics_summary(&m));
    println!(
        "thresholds          Th1 = {:.2}, Th2 = {:.2} ({} updates, {} climb steps)",
        sched.thresholds().th1,
        sched.thresholds().th2,
        sched.counters().updates,
        sched.counters().climb_steps
    );
    println!("\ninferred locking scheme:");
    let mut any = false;
    for x in 0..blocks {
        let row = sched.lock_table().row(x);
        if !row.is_empty() {
            let partners: Vec<&str> = row.iter().map(|&y| workload.block_name(y)).collect();
            println!("  {:<18} -> {partners:?}", workload.block_name(x));
            any = true;
        }
    }
    if !any {
        println!("  (empty — no pair crossed the thresholds)");
    }
    println!("\nground truth (simulator oracle; victim <- killer, top 8):");
    let mut pairs: Vec<(u64, usize, usize)> = (0..blocks)
        .flat_map(|v| (0..blocks).map(move |k| (v, k)))
        .map(|(v, k)| (m.ground_truth.get(v, k), v, k))
        .filter(|&(n, _, _)| n > 0)
        .collect();
    pairs.sort_unstable_by_key(|p| std::cmp::Reverse(p.0));
    for (kills, v, k) in pairs.into_iter().take(8) {
        println!(
            "  {:<18} <- {:<18} {kills}",
            workload.block_name(v),
            workload.block_name(k)
        );
    }
    Ok(())
}

/// Parses `--pair X,Y` into block indices.
fn parse_pair(raw: &str) -> Result<(usize, usize), ParseError> {
    let err = || ParseError(format!("--pair {raw:?} is not of the form X,Y (block indices)"));
    let (x, y) = raw.split_once(',').ok_or_else(err)?;
    Ok((
        x.trim().parse().map_err(|_| err())?,
        y.trim().parse().map_err(|_| err())?,
    ))
}

/// The decision history of `(x, y)` for one replayed cell — every
/// inference round's probabilities, fitted Gaussian, Th2 cutoff and
/// verdict reason. Returned as a string so tests can assert on it; the
/// `explain` command prints it.
pub fn explain_text(cell: Cell, seed: u64, scale: f64, x: usize, y: usize) -> String {
    let mut sink = MemoryTraceSink::new();
    let m = RunRequest::cell(cell)
        .seed(seed)
        .scale(scale)
        .traced(&mut sink)
        .run();
    let workload = cell.benchmark.instantiate_scaled(cell.threads, scale);
    let mut out = format!(
        "pair ({x}, {y}) = ({}, {}) — {} under {}, {} thread(s), seed {seed}\n\
         {} commits, {} inference round(s) recorded\n",
        workload.block_name(x),
        workload.block_name(y),
        cell.benchmark.spec(),
        cell.policy.label(),
        cell.threads,
        m.commits,
        sink.inference.len(),
    );
    let mut decided = 0usize;
    for tr in &sink.inference {
        let Some((row, pair)) = tr.decision(x, y) else {
            continue;
        };
        decided += 1;
        out.push_str(&format!(
            "\nround {} at {} cycles (digest {:#018x}, {} execs, Th1={:.2} Th2={:.2})\n\
             \x20 P(abort {x} | {x}||{y})     conditional = {:.4}\n\
             \x20 P(abort {x} ^ {x}||{y})    conjunctive = {:.4}\n\
             \x20 row {x} fit: eta = {:.4}, sigma^2 = {:.6}, Th2 cutoff = {:.4}{}\n\
             \x20 verdict: {} — {}\n",
            tr.round,
            tr.at,
            tr.stats_digest,
            tr.total_execs,
            tr.th1,
            tr.th2,
            pair.conditional,
            pair.conjunctive,
            row.eta,
            row.sigma2,
            row.cutoff,
            if row.discriminative {
                ""
            } else {
                " (non-discriminative: cutoff filter waived)"
            },
            pair.verdict.label(),
            pair.verdict.reason(),
        ));
    }
    if decided == 0 {
        out.push_str(
            "\nno decision recorded for this pair — the policy never ran an \
             inference round covering it\n(only the Seer-family policies infer; \
             try --policy seer)\n",
        );
    } else if let Some(last) = sink
        .inference
        .iter()
        .rev()
        .find_map(|tr| tr.decision(x, y))
    {
        out.push_str(&format!(
            "\nfinal scheme: pair ({x}, {y}) {}serialized\n",
            if last.1.verdict.serialize() { "" } else { "NOT " }
        ));
    }
    out
}

/// `seer explain`.
pub fn explain(args: &Args) -> Result<(), ParseError> {
    args.allow_only(&["benchmark", "policy", "pair", "threads", "seed", "txs"])?;
    let benchmark = parse_benchmark(args.get("benchmark").unwrap_or("genome"))?;
    let policy = parse_policy(args.get("policy").unwrap_or("seer"))?;
    let threads: usize = args.get_parsed("threads", 8)?;
    let seed: u64 = args.get_parsed("seed", 0)?;
    let txs: usize = args.get_parsed("txs", benchmark.default_txs())?;
    if threads == 0 || threads > 8 {
        return Err(ParseError("--threads must be 1..=8".into()));
    }
    let raw_pair = args
        .get("pair")
        .ok_or_else(|| ParseError("explain needs --pair X,Y".into()))?;
    let (x, y) = parse_pair(raw_pair)?;

    let scale = txs as f64 / benchmark.default_txs() as f64;
    let blocks = benchmark.instantiate_scaled(threads, scale).num_blocks();
    if x >= blocks || y >= blocks {
        // Warn once per process (the `SEER_SEEDS`/`SEER_JOBS` style)
        // instead of panicking: an out-of-range pair is a diagnosis typo,
        // not a reason to abort a script driving the CLI.
        static WARNED: Once = Once::new();
        WARNED.call_once(|| {
            eprintln!(
                "warning: pair ({x}, {y}) is out of range for {} \
                 ({blocks} atomic blocks, indices 0..={}); skipping",
                benchmark.spec(),
                blocks - 1
            );
        });
        return Ok(());
    }
    print!(
        "{}",
        explain_text(
            Cell {
                benchmark,
                policy,
                threads,
            },
            seed,
            scale,
            x,
            y,
        )
    );
    Ok(())
}

/// `seer scenario list`.
pub fn scenario_list() {
    println!("built-in scenarios (4 threads, 100k-cycle scoring window):");
    for spec in seer_scenario::library::all() {
        println!(
            "  {:<16} {:<14} {} phase shift(s), {} churn event(s), {} fault(s)",
            spec.name,
            spec.benchmark.name(),
            spec.phases.len() - 1,
            spec.churn.len(),
            spec.faults.len(),
        );
    }
    println!(
        "\nrun one with `seer scenario run --name NAME`, all with `seer scenario run`,\n\
         or a custom JSON spec with `seer scenario run --spec FILE.json`."
    );
}

/// Satellite behaviour: `seer scenario` argument errors that name the
/// wrong scenario (typo, stale script) or hand over a malformed spec warn
/// once per process and list what *is* known, instead of panicking — a
/// sweep driving the CLI should keep going past one bad item.
fn warn_scenario(problem: &str) {
    static WARNED: Once = Once::new();
    WARNED.call_once(|| {
        eprintln!("warning: {problem}; skipping");
        eprintln!(
            "known scenarios: {}",
            seer_scenario::library::BUILTIN_NAMES.join(", ")
        );
    });
}

fn print_recovery(outcome: &seer_scenario::ScenarioOutcome) {
    let r = &outcome.report;
    println!("{} under {}, seed {}:", r.scenario, r.policy, r.seed);
    println!(
        "  commits        {}\n\
         \x20 makespan       {} cycles ({} window(s) of {})\n\
         \x20 throughput     {:.6} commits/cycle\n\
         \x20 steady state   {:+.1}% vs pre-disturbance\n\
         \x20 recovered      {}",
        r.commits,
        r.makespan,
        outcome.windows.windows().len(),
        r.window,
        r.throughput,
        r.steady_state_delta * 100.0,
        if r.recovered { "yes" } else { "NO" },
    );
    println!("  disturbances:");
    for s in &r.scores {
        let reconverge = match s.time_to_reconverge {
            Some(t) => format!("re-converged in {t}"),
            None => "never re-converged".to_string(),
        };
        let pairs = match s.pairs_stable_at {
            Some(at) => format!(", pairs stable at {at}"),
            None => String::new(),
        };
        println!(
            "    {:<16} at {:>8}  depth {:>5.1}%  {reconverge}{pairs}",
            s.label,
            s.at,
            s.regression_depth * 100.0,
        );
    }
    if r.scores.is_empty() {
        println!("    (none fired before the run ended)");
    }
}

/// `seer scenario run`.
pub fn scenario_run(args: &Args) -> Result<(), ParseError> {
    use seer_scenario::{library, ScenarioPlan, ScenarioSpec};

    args.allow_only(&[
        "name", "spec", "policy", "seed", "jobs", "json", "trace", "store", "resume", "workers",
    ])?;
    let policy = parse_policy(args.get("policy").unwrap_or("seer"))?;
    let seed: u64 = args.get_parsed("seed", 0)?;
    let json: bool = args.get_parsed("json", false)?;

    let mut builtin_name: Option<String> = None;
    let spec = match (args.get("name"), args.get("spec")) {
        (Some(_), Some(_)) => {
            return Err(ParseError("--name and --spec are mutually exclusive".into()));
        }
        (Some(name), None) => match library::builtin(name) {
            Some(spec) => {
                builtin_name = Some(name.to_string());
                Some(spec)
            }
            None => {
                warn_scenario(&format!("unknown scenario {name:?}"));
                return Ok(());
            }
        },
        (None, Some(path)) => {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    warn_scenario(&format!("cannot read scenario spec {path:?} ({e})"));
                    return Ok(());
                }
            };
            match ScenarioSpec::parse(&text) {
                Ok(spec) => Some(spec),
                Err(e) => {
                    warn_scenario(&format!("malformed scenario spec {path:?}: {e}"));
                    return Ok(());
                }
            }
        }
        (None, None) => None,
    };

    if let Some(spec) = spec {
        let store = store_from_args(args);
        let outcome = match args.get("trace") {
            Some(path) => {
                if store.is_some() {
                    // A disk hit has no event streams to export, so a
                    // traced run is always live.
                    eprintln!("scenario: --trace requested; running live (store not consulted)");
                }
                if args.get("workers").is_some() || std::env::var("SEER_WORKERS").is_ok() {
                    // Remote workers return values, not event streams.
                    eprintln!("scenario: --trace runs live; workers not consulted");
                }
                let mut sink = MemoryTraceSink::new();
                let outcome = RunRequest::scenario(&spec)
                    .policy(policy)
                    .seed(seed)
                    .traced(&mut sink)
                    .run();
                if write_trace_jsonl(path, &sink) {
                    eprintln!("trace: JSONL written to {path}");
                }
                outcome
            }
            None => match (store, &builtin_name, pool_from_args(args)) {
                (store, Some(name), pool) if store.is_some() || pool.is_some() => {
                    // Built-in by name with a store and/or worker pool:
                    // go through the executor so the result persists
                    // and/or computes remotely.
                    let mut exec = match store {
                        Some(store) => seer_scenario::ScenarioExecutor::with_store(1, store),
                        None => seer_scenario::ScenarioExecutor::new(1),
                    };
                    if let Some(pool) = &pool {
                        exec = exec.with_remote(pool.clone());
                    }
                    let mut plan = ScenarioPlan::new();
                    plan.add(name, policy, seed);
                    let report = exec.execute(&plan);
                    if let Some(pool) = &pool {
                        eprintln!(
                            "scenario: 1 planned — {} from disk, {} remote, {} computed, {} failed",
                            report.disk_hits,
                            report.remote_hits,
                            report.computed,
                            report.failed.len(),
                        );
                        print_pool_summary("scenario", pool);
                    } else {
                        eprintln!(
                            "scenario: 1 planned — {} from disk, {} computed, {} failed",
                            report.disk_hits,
                            report.computed,
                            report.failed.len(),
                        );
                    }
                    match exec.cached(name, policy, seed) {
                        Some(outcome) => outcome,
                        None => {
                            let f = &report.failed[0];
                            return Err(ParseError(format!(
                                "scenario {name:?} failed after {} attempt(s): {}",
                                f.attempts, f.failure
                            )));
                        }
                    }
                }
                (store, name, pool) => {
                    if store.is_some() {
                        eprintln!(
                            "scenario: --spec runs are not persisted (the store keys built-in names); running live"
                        );
                    }
                    if pool.is_some() && name.is_none() {
                        // A file path is not a stable identity, so a
                        // --spec run cannot be described to a worker.
                        eprintln!(
                            "scenario: --workers needs a built-in scenario name; running locally"
                        );
                    }
                    RunRequest::scenario(&spec).policy(policy).seed(seed).run()
                }
            },
        };
        if json {
            use seer_harness::ToJson;
            println!("{}", outcome.report.to_json().to_string_pretty());
        } else {
            print_recovery(&outcome);
        }
        return Ok(());
    }

    // No --name/--spec: the whole built-in library through the memoizing
    // executor, fanned out over --jobs.
    if args.get("trace").is_some() {
        return Err(ParseError("--trace needs a single scenario (--name or --spec)".into()));
    }
    let jobs: usize = args.get_parsed("jobs", default_jobs())?;
    if jobs == 0 {
        return Err(ParseError("--jobs must be at least 1".into()));
    }
    let pool = pool_from_args(args);
    let jobs = match &pool {
        Some(pool) => jobs.max(pool.capacity()),
        None => jobs,
    };
    let mut exec = match store_from_args(args) {
        Some(store) => seer_scenario::ScenarioExecutor::with_store(jobs, store),
        None => seer_scenario::ScenarioExecutor::new(jobs),
    };
    if let Some(pool) = &pool {
        exec = exec.with_remote(pool.clone());
    }
    let mut plan = ScenarioPlan::new();
    for name in library::BUILTIN_NAMES {
        plan.add(name, policy, seed);
    }
    let report = exec.execute(&plan);
    if let Some(pool) = &pool {
        eprintln!(
            "scenario: {} planned — {} memoized, {} from disk, {} remote, {} computed, {} failed",
            report.planned,
            report.memo_hits,
            report.disk_hits,
            report.remote_hits,
            report.computed,
            report.failed.len(),
        );
        print_pool_summary("scenario", pool);
    } else if exec.store().is_some() || !report.complete() {
        eprintln!(
            "scenario: {} planned — {} memoized, {} from disk, {} computed, {} failed",
            report.planned,
            report.memo_hits,
            report.disk_hits,
            report.computed,
            report.failed.len(),
        );
    }
    // Assemble from cache only, so one failed scenario yields a partial
    // report instead of a recompute panic.
    if json {
        use seer_harness::{Json, ToJson};
        let reports: Vec<Json> = library::BUILTIN_NAMES
            .iter()
            .filter_map(|name| exec.cached(name, policy, seed))
            .map(|outcome| outcome.report.to_json())
            .collect();
        println!("{}", Json::Array(reports).to_string_pretty());
    } else {
        let mut first = true;
        for name in library::BUILTIN_NAMES {
            let Some(outcome) = exec.cached(name, policy, seed) else {
                continue;
            };
            if !first {
                println!();
            }
            first = false;
            print_recovery(&outcome);
        }
    }
    if !report.complete() {
        for f in &report.failed {
            eprintln!(
                "scenario: FAILED {}/{} seed {} after {} attempt(s): {}",
                f.key.scenario,
                f.key.policy.name(),
                f.key.seed,
                f.attempts,
                f.failure,
            );
        }
        return Err(ParseError(format!(
            "{} of {} scenario(s) failed; partial results above (re-run with --resume to retry only the gaps)",
            report.failed.len(),
            report.planned,
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str]) -> Args {
        Args::parse(parts.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn benchmark_and_policy_lookup() {
        assert_eq!(parse_benchmark("genome").unwrap().name(), "genome");
        assert_eq!(parse_benchmark("hashmap-low").unwrap().name(), "hashmap-low");
        assert!(parse_benchmark("nope").is_err());
        assert_eq!(parse_policy("SEER").unwrap(), PolicyKind::Seer);
        assert_eq!(parse_policy("hle").unwrap(), PolicyKind::Hle);
        assert!(parse_policy("nope").is_err());
    }

    #[test]
    fn benchmark_lookup_accepts_synth_specs() {
        assert_eq!(
            parse_benchmark("synth").unwrap(),
            Benchmark::Synth { blocks: seer_stamp::synth::DEFAULT_BLOCKS }
        );
        assert_eq!(
            parse_benchmark("synth@blocks=48").unwrap(),
            Benchmark::Synth { blocks: 48 }
        );
        assert!(parse_benchmark("synth@blocks=0").is_err());
        assert!(parse_benchmark("synth@blocks=lots").is_err());
        // Labyrinth is modelled (to validate the paper's exclusion) but
        // deliberately not runnable from the CLI.
        assert!(parse_benchmark("labyrinth").is_err());
    }

    #[test]
    fn cli_names_every_policy_variant() {
        // The Figure 5 cumulative variants included — `seer run`/`sweep`
        // can reproduce every cell of the evaluation.
        for p in PolicyKind::ALL {
            assert_eq!(parse_policy(p.name()).unwrap(), p, "{}", p.name());
        }
        assert_eq!(
            parse_policy("seer-plus-tx-locks").unwrap(),
            PolicyKind::SeerPlusTxLocks
        );
    }

    #[test]
    fn run_command_executes() {
        let a = args(&["run", "--benchmark", "ssca2", "--threads", "2", "--txs", "40"]);
        run_one(&a).expect("run should succeed");
        let a = args(&["run", "--benchmark", "ssca2", "--threads", "2", "--txs", "40", "--json", "true"]);
        run_one(&a).expect("json run should succeed");
    }

    #[test]
    fn run_command_validates_threads() {
        let a = args(&["run", "--threads", "9"]);
        assert!(run_one(&a).is_err());
        let a = args(&["run", "--threads", "0"]);
        assert!(run_one(&a).is_err());
    }

    #[test]
    fn sweep_command_executes_with_policy_list() {
        let a = args(&[
            "sweep",
            "--benchmark",
            "hashmap-low",
            "--policies",
            "rtm,seer",
            "--max-threads",
            "2",
        ]);
        sweep(&a).expect("sweep should succeed");
    }

    #[test]
    fn sweep_command_accepts_jobs() {
        let a = args(&[
            "sweep",
            "--benchmark",
            "hashmap-low",
            "--policies",
            "rtm,seer-plus-tx-locks",
            "--max-threads",
            "2",
            "--jobs",
            "2",
        ]);
        sweep(&a).expect("parallel sweep should succeed");
        // Invalid --jobs warns once and falls back to the default instead
        // of erroring out (satellite fix; was a hard error before).
        let a = args(&[
            "sweep",
            "--benchmark",
            "hashmap-low",
            "--policies",
            "rtm",
            "--max-threads",
            "1",
            "--jobs",
            "0",
        ]);
        sweep(&a).expect("invalid --jobs should warn and default, not error");
    }

    #[test]
    fn tuning_options_warn_and_default_instead_of_failing() {
        // Missing → default; valid → parsed; invalid (zero or garbage) →
        // warn-once + default. The Once means only the first bad value
        // prints, but the fallback applies every time.
        assert_eq!(jobs_or_warn(&args(&["bench"])), default_jobs());
        assert_eq!(jobs_or_warn(&args(&["bench", "--jobs", "3"])), 3);
        assert_eq!(jobs_or_warn(&args(&["bench", "--jobs", "0"])), default_jobs());
        assert_eq!(jobs_or_warn(&args(&["bench", "--jobs", "lots"])), default_jobs());
        assert_eq!(repeats_or_warn(&args(&["bench"]), 2), 2);
        assert_eq!(repeats_or_warn(&args(&["bench", "--repeats", "5"]), 2), 5);
        assert_eq!(repeats_or_warn(&args(&["bench", "--repeats", "-1"]), 2), 2);
        assert_eq!(repeats_or_warn(&args(&["bench", "--repeats", "0"]), 3), 3);
    }

    #[test]
    fn bench_command_validates_arguments() {
        // --mode picks *what* is measured, so an invalid value is a hard
        // error (unlike the tuning options above).
        let a = args(&["bench", "--mode", "warp"]);
        assert!(bench(&a).is_err());
        let a = args(&["bench", "--bogus", "1"]);
        assert!(bench(&a).is_err());
        let a = args(&["bench", "--json", "maybe"]);
        assert!(bench(&a).is_err());
        // The hard error names all three accepted modes.
        let err = bench(&args(&["bench", "--mode", "warp"])).unwrap_err();
        assert!(err.0.contains("inference"), "{}", err.0);
    }

    #[test]
    fn run_command_executes_on_synth_spec() {
        let a = args(&[
            "run", "--benchmark", "synth@blocks=24", "--threads", "2", "--txs", "30",
        ]);
        run_one(&a).expect("synth run should succeed");
    }

    #[test]
    fn inspect_command_executes() {
        let a = args(&["inspect", "--benchmark", "kmeans-high", "--threads", "4", "--txs", "60"]);
        inspect(&a).expect("inspect should succeed");
    }

    #[test]
    fn unknown_options_are_rejected() {
        let a = args(&["run", "--bogus", "1"]);
        assert!(run_one(&a).is_err());
    }

    #[test]
    fn pair_parsing() {
        assert_eq!(parse_pair("3,7").unwrap(), (3, 7));
        assert_eq!(parse_pair("0, 1").unwrap(), (0, 1));
        assert!(parse_pair("3").is_err());
        assert!(parse_pair("a,b").is_err());
        assert!(parse_pair("3,").is_err());
    }

    #[test]
    fn explain_prints_at_least_one_round_with_full_decision_detail() {
        let cell = Cell {
            benchmark: Benchmark::KmeansHigh,
            policy: PolicyKind::Seer,
            threads: 4,
        };
        let text = explain_text(cell, 0, 0.2, 0, 1);
        assert!(text.contains("round 1 at "), "no inference round:\n{text}");
        assert!(text.contains("conditional = "), "{text}");
        assert!(text.contains("conjunctive = "), "{text}");
        assert!(text.contains("eta = "), "{text}");
        assert!(text.contains("sigma^2 = "), "{text}");
        assert!(text.contains("Th2 cutoff = "), "{text}");
        assert!(text.contains("verdict: "), "{text}");
        assert!(text.contains("final scheme: pair (0, 1)"), "{text}");
    }

    #[test]
    fn explain_command_executes_on_known_pair() {
        let a = args(&[
            "explain",
            "--benchmark",
            "kmeans-high",
            "--policy",
            "seer",
            "--pair",
            "0,1",
            "--threads",
            "4",
            "--txs",
            "60",
        ]);
        explain(&a).expect("explain should succeed");
    }

    #[test]
    fn explain_warns_on_out_of_range_pair_instead_of_panicking() {
        let a = args(&[
            "explain",
            "--benchmark",
            "ssca2",
            "--pair",
            "999,0",
            "--threads",
            "2",
            "--txs",
            "40",
        ]);
        // Out-of-range pair: warns once to stderr and returns Ok.
        explain(&a).expect("out-of-range pair must not panic");
        explain(&a).expect("second call hits the Once, still no panic");
    }

    #[test]
    fn explain_requires_pair_and_validates_options() {
        let a = args(&["explain", "--benchmark", "ssca2"]);
        assert!(explain(&a).is_err());
        let a = args(&["explain", "--pair", "nope"]);
        assert!(explain(&a).is_err());
        let a = args(&["explain", "--pair", "0,1", "--threads", "9"]);
        assert!(explain(&a).is_err());
    }

    #[test]
    fn scenario_run_executes_one_builtin_with_json_and_trace() {
        let dir = std::env::temp_dir().join("seer-cli-scenario-test");
        std::fs::create_dir_all(&dir).unwrap();
        let jsonl = dir.join("scenario.jsonl");
        let a = args(&[
            "scenario-run",
            "--name",
            "stats-amnesia",
            "--json",
            "true",
            "--trace",
            jsonl.to_str().unwrap(),
        ]);
        scenario_run(&a).expect("built-in scenario should run");
        let trace = std::fs::read_to_string(&jsonl).unwrap();
        assert!(trace.lines().next().unwrap().starts_with('{'));
    }

    #[test]
    fn scenario_run_accepts_a_spec_file() {
        let dir = std::env::temp_dir().join("seer-cli-scenario-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.json");
        std::fs::write(
            &path,
            r#"{"name":"tiny","benchmark":"ssca2","threads":2,"scale":0.08,
               "window":50000,"faults":[{"at":60000,"kind":"wipe-stats"}]}"#,
        )
        .unwrap();
        let a = args(&["scenario-run", "--spec", path.to_str().unwrap()]);
        scenario_run(&a).expect("custom spec should run");
    }

    #[test]
    fn scenario_run_warns_instead_of_panicking_on_bad_input() {
        // Unknown name: warn-once + list of known scenarios, exit clean.
        let a = args(&["scenario-run", "--name", "meteor-strike"]);
        scenario_run(&a).expect("unknown scenario name must not panic");
        scenario_run(&a).expect("second call hits the Once, still clean");

        // Malformed spec file: same treatment.
        let dir = std::env::temp_dir().join("seer-cli-scenario-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.json");
        std::fs::write(&path, "{\"name\": 42").unwrap();
        let a = args(&["scenario-run", "--spec", path.to_str().unwrap()]);
        scenario_run(&a).expect("malformed spec must not panic");

        // Unreadable spec path too.
        let a = args(&["scenario-run", "--spec", "/no/such/spec.json"]);
        scenario_run(&a).expect("missing spec file must not panic");
    }

    #[test]
    fn scenario_run_validates_option_combinations() {
        let a = args(&["scenario-run", "--name", "phase-flip", "--spec", "x.json"]);
        assert!(scenario_run(&a).is_err(), "--name and --spec are exclusive");
        let a = args(&["scenario-run", "--trace", "x.jsonl"]);
        assert!(scenario_run(&a).is_err(), "--trace needs a single scenario");
        let a = args(&["scenario-run", "--jobs", "0"]);
        assert!(scenario_run(&a).is_err());
        let a = args(&["scenario-run", "--bogus", "1"]);
        assert!(scenario_run(&a).is_err());
    }

    #[test]
    fn scenario_list_prints_every_builtin() {
        // Smoke: must not panic, and the library must be non-empty.
        scenario_list();
        assert!(!seer_scenario::library::BUILTIN_NAMES.is_empty());
    }

    #[test]
    fn run_command_writes_trace_files() {
        let dir = std::env::temp_dir().join("seer-cli-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let jsonl = dir.join("trace.jsonl");
        let chrome = dir.join("trace.json");
        let a = args(&[
            "run",
            "--benchmark",
            "ssca2",
            "--policy",
            "seer",
            "--threads",
            "2",
            "--txs",
            "40",
            "--trace",
            jsonl.to_str().unwrap(),
            "--chrome",
            chrome.to_str().unwrap(),
        ]);
        run_one(&a).expect("traced run should succeed");
        let jsonl_content = std::fs::read_to_string(&jsonl).unwrap();
        assert!(!jsonl_content.is_empty());
        assert!(jsonl_content.lines().next().unwrap().starts_with('{'));
        let chrome_content = std::fs::read_to_string(&chrome).unwrap();
        assert!(chrome_content.contains("traceEvents"));
    }
}
