//! The CLI commands: `list`, `run`, `sweep`, `inspect`.

use seer::{Seer, SeerConfig};
use seer_harness::{run_once, Cell, PolicyKind};
use seer_runtime::{run, DriverConfig, RunMetrics, TxMode, Workload};
use seer_stamp::Benchmark;

use crate::args::{Args, ParseError};

/// All benchmarks the CLI can name (STAMP + the hash-map probe).
fn benchmarks() -> Vec<Benchmark> {
    Benchmark::STAMP
        .into_iter()
        .chain([Benchmark::HashmapLow])
        .collect()
}

fn parse_benchmark(name: &str) -> Result<Benchmark, ParseError> {
    benchmarks()
        .into_iter()
        .find(|b| b.name() == name)
        .ok_or_else(|| ParseError(format!("unknown benchmark {name:?} (see `seer list`)")))
}

fn parse_policy(name: &str) -> Result<PolicyKind, ParseError> {
    let policy = match name.to_ascii_lowercase().as_str() {
        "hle" => PolicyKind::Hle,
        "rtm" => PolicyKind::Rtm,
        "scm" => PolicyKind::Scm,
        "ats" => PolicyKind::Ats,
        "seer" => PolicyKind::Seer,
        "seer-profile-only" => PolicyKind::SeerProfileOnly,
        "seer-core-locks-only" => PolicyKind::SeerCoreLocksOnly,
        _ => {
            return Err(ParseError(format!(
                "unknown policy {name:?} (see `seer list`)"
            )))
        }
    };
    Ok(policy)
}

/// Prints top-level usage.
pub fn print_usage() {
    println!(
        "seer — Seer HTM-scheduler reproduction (SPAA'15)\n\
         \n\
         commands:\n\
         \x20 list                         benchmarks and policies\n\
         \x20 run      one simulated run   --benchmark B --policy P --threads N\n\
         \x20                              [--seed N] [--txs N] [--json true]\n\
         \x20 sweep    thread sweep        --benchmark B [--policies hle,rtm,scm,seer]\n\
         \x20                              [--max-threads N] [--seed N]\n\
         \x20 inspect  Seer's learned state --benchmark B --threads N [--txs N] [--seed N]\n\
         \n\
         Simulated machine: 4 physical cores x 2 hyper-threads (the paper's\n\
         Haswell Xeon E3-1275); all results are in simulated cycles."
    );
}

/// `seer list`.
pub fn list() {
    println!("benchmarks:");
    for b in benchmarks() {
        println!("  {:<14} ({} txs/thread by default)", b.name(), b.default_txs());
    }
    println!("\npolicies:");
    for (name, desc) in [
        ("hle", "hardware lock elision (no scheduling)"),
        ("rtm", "software retry + wait-on-fallback-lock"),
        ("scm", "software-assisted conflict management (aux lock)"),
        ("ats", "adaptive transaction scheduling (contention factor)"),
        ("seer", "full Seer (probabilistic scheduling)"),
        ("seer-profile-only", "Seer monitoring without lock acquisition"),
        ("seer-core-locks-only", "Seer with only per-core locks"),
    ] {
        println!("  {name:<22} {desc}");
    }
}

fn metrics_summary(m: &RunMetrics) -> String {
    format!(
        "commits            {}\n\
         speedup            {:.3}x over sequential\n\
         aborts/commit      {:.3} (conflict {}, capacity {}, explicit {}, other {})\n\
         fall-back          {:.1}% of commits\n\
         modes              no-locks {:.1}%, aux {:.1}%, tx {:.1}%, core {:.1}%, tx+core {:.1}%, sgl {:.1}%\n\
         waits              {} parks, mean {:.0} / p95 ~{} / max {} cycles\n\
         makespan           {} cycles (sequential work: {} cycles)",
        m.commits,
        m.speedup(),
        m.abort_ratio(),
        m.aborts.conflict,
        m.aborts.capacity,
        m.aborts.explicit,
        m.aborts.other,
        m.fallback_fraction() * 100.0,
        m.modes.fraction(TxMode::HtmNoLocks) * 100.0,
        m.modes.fraction(TxMode::HtmAuxLock) * 100.0,
        m.modes.fraction(TxMode::HtmTxLocks) * 100.0,
        m.modes.fraction(TxMode::HtmCoreLock) * 100.0,
        m.modes.fraction(TxMode::HtmTxAndCoreLocks) * 100.0,
        m.modes.fraction(TxMode::SglFallback) * 100.0,
        m.wait_histogram.count(),
        m.wait_histogram.mean(),
        m.wait_histogram.quantile(0.95),
        m.wait_histogram.max(),
        m.makespan,
        m.sequential_cycles,
    )
}

/// `seer run`.
pub fn run_one(args: &Args) -> Result<(), ParseError> {
    args.allow_only(&["benchmark", "policy", "threads", "seed", "txs", "json"])?;
    let benchmark = parse_benchmark(args.get("benchmark").unwrap_or("genome"))?;
    let policy = parse_policy(args.get("policy").unwrap_or("seer"))?;
    let threads: usize = args.get_parsed("threads", 8)?;
    let seed: u64 = args.get_parsed("seed", 0)?;
    let txs: usize = args.get_parsed("txs", benchmark.default_txs())?;
    let json: bool = args.get_parsed("json", false)?;
    if threads == 0 || threads > 8 {
        return Err(ParseError("--threads must be 1..=8".into()));
    }

    let scale = txs as f64 / benchmark.default_txs() as f64;
    let m = run_once(
        Cell {
            benchmark,
            policy,
            threads,
        },
        seed,
        scale,
    );
    if json {
        use seer_harness::{Json, ToJson};
        let out = Json::object([
            ("benchmark", benchmark.name().to_json()),
            ("policy", policy.label().to_json()),
            ("threads", threads.to_json()),
            ("seed", seed.to_json()),
            ("commits", m.commits.to_json()),
            ("speedup", m.speedup().to_json()),
            ("abort_ratio", m.abort_ratio().to_json()),
            ("fallback_fraction", m.fallback_fraction().to_json()),
            ("makespan_cycles", m.makespan.to_json()),
            ("sequential_cycles", m.sequential_cycles.to_json()),
        ]);
        println!("{}", out.to_string_pretty());
    } else {
        println!("{} under {} with {threads} thread(s), seed {seed}:", benchmark.name(), policy.label());
        println!("{}", metrics_summary(&m));
    }
    Ok(())
}

/// `seer sweep`.
pub fn sweep(args: &Args) -> Result<(), ParseError> {
    args.allow_only(&["benchmark", "policies", "max-threads", "seed"])?;
    let benchmark = parse_benchmark(args.get("benchmark").unwrap_or("genome"))?;
    let max_threads: usize = args.get_parsed("max-threads", 8)?;
    let seed: u64 = args.get_parsed("seed", 0)?;
    if max_threads == 0 || max_threads > 8 {
        return Err(ParseError("--max-threads must be 1..=8".into()));
    }
    let policies: Vec<PolicyKind> = match args.get("policies") {
        None => PolicyKind::FIGURE3.to_vec(),
        Some(list) => list
            .split(',')
            .map(parse_policy)
            .collect::<Result<_, _>>()?,
    };

    println!("{} — speedup over sequential (seed {seed})", benchmark.name());
    print!("{:>8}", "threads");
    for p in &policies {
        print!("{:>12}", p.label());
    }
    println!();
    for threads in 1..=max_threads {
        print!("{threads:>8}");
        for &policy in &policies {
            let m = run_once(
                Cell {
                    benchmark,
                    policy,
                    threads,
                },
                seed,
                0.5,
            );
            print!("{:>12.3}", m.speedup());
        }
        println!();
    }
    Ok(())
}

/// `seer inspect`.
pub fn inspect(args: &Args) -> Result<(), ParseError> {
    args.allow_only(&["benchmark", "threads", "txs", "seed"])?;
    let benchmark = parse_benchmark(args.get("benchmark").unwrap_or("genome"))?;
    let threads: usize = args.get_parsed("threads", 8)?;
    let seed: u64 = args.get_parsed("seed", 0)?;
    if threads == 0 || threads > 8 {
        return Err(ParseError("--threads must be 1..=8".into()));
    }
    let txs: usize = args.get_parsed("txs", benchmark.default_txs())?;

    let mut workload = benchmark.instantiate(threads, txs);
    let blocks = workload.num_blocks();
    let mut sched = Seer::new(SeerConfig::full(), threads, blocks);
    let m = run(
        &mut workload,
        &mut sched,
        &DriverConfig::paper_machine(threads, seed),
    );
    sched.force_update();

    println!("{} under full Seer, {threads} thread(s):\n", benchmark.name());
    println!("{}\n", metrics_summary(&m));
    println!(
        "thresholds          Th1 = {:.2}, Th2 = {:.2} ({} updates, {} climb steps)",
        sched.thresholds().th1,
        sched.thresholds().th2,
        sched.counters().updates,
        sched.counters().climb_steps
    );
    println!("\ninferred locking scheme:");
    let mut any = false;
    for x in 0..blocks {
        let row = sched.lock_table().row(x);
        if !row.is_empty() {
            let partners: Vec<&str> = row.iter().map(|&y| workload.block_name(y)).collect();
            println!("  {:<18} -> {partners:?}", workload.block_name(x));
            any = true;
        }
    }
    if !any {
        println!("  (empty — no pair crossed the thresholds)");
    }
    println!("\nground truth (simulator oracle; victim <- killer, top 8):");
    let mut pairs: Vec<(u64, usize, usize)> = (0..blocks)
        .flat_map(|v| (0..blocks).map(move |k| (v, k)))
        .map(|(v, k)| (m.ground_truth.get(v, k), v, k))
        .filter(|&(n, _, _)| n > 0)
        .collect();
    pairs.sort_unstable_by_key(|p| std::cmp::Reverse(p.0));
    for (kills, v, k) in pairs.into_iter().take(8) {
        println!(
            "  {:<18} <- {:<18} {kills}",
            workload.block_name(v),
            workload.block_name(k)
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str]) -> Args {
        Args::parse(parts.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn benchmark_and_policy_lookup() {
        assert_eq!(parse_benchmark("genome").unwrap().name(), "genome");
        assert_eq!(parse_benchmark("hashmap-low").unwrap().name(), "hashmap-low");
        assert!(parse_benchmark("nope").is_err());
        assert_eq!(parse_policy("SEER").unwrap(), PolicyKind::Seer);
        assert_eq!(parse_policy("hle").unwrap(), PolicyKind::Hle);
        assert!(parse_policy("nope").is_err());
    }

    #[test]
    fn run_command_executes() {
        let a = args(&["run", "--benchmark", "ssca2", "--threads", "2", "--txs", "40"]);
        run_one(&a).expect("run should succeed");
        let a = args(&["run", "--benchmark", "ssca2", "--threads", "2", "--txs", "40", "--json", "true"]);
        run_one(&a).expect("json run should succeed");
    }

    #[test]
    fn run_command_validates_threads() {
        let a = args(&["run", "--threads", "9"]);
        assert!(run_one(&a).is_err());
        let a = args(&["run", "--threads", "0"]);
        assert!(run_one(&a).is_err());
    }

    #[test]
    fn sweep_command_executes_with_policy_list() {
        let a = args(&[
            "sweep",
            "--benchmark",
            "hashmap-low",
            "--policies",
            "rtm,seer",
            "--max-threads",
            "2",
        ]);
        sweep(&a).expect("sweep should succeed");
    }

    #[test]
    fn inspect_command_executes() {
        let a = args(&["inspect", "--benchmark", "kmeans-high", "--threads", "4", "--txs", "60"]);
        inspect(&a).expect("inspect should succeed");
    }

    #[test]
    fn unknown_options_are_rejected() {
        let a = args(&["run", "--bogus", "1"]);
        assert!(run_one(&a).is_err());
    }
}
