//! `seer` — command-line front end for the Seer reproduction.
//!
//! ```text
//! seer list                                  # benchmarks and policies
//! seer run    --benchmark genome --policy seer --threads 8 [--seed N] [--txs N] [--json true]
//! seer sweep  --benchmark vacation-high [--policies hle,rtm,scm,seer] [--max-threads 8]
//! seer inspect --benchmark intruder --threads 8 [--txs N]   # Seer's learned state
//! seer explain --benchmark genome --policy seer --pair 0,2  # decision history of one pair
//! ```

mod args;
mod commands;

use args::Args;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(raw) {
        Ok(()) => 0,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("try `seer help`");
            2
        }
    };
    std::process::exit(code);
}

fn run(raw: Vec<String>) -> Result<(), String> {
    if raw.is_empty() {
        commands::print_usage();
        return Ok(());
    }
    let args = Args::parse(raw).map_err(|e| e.to_string())?;
    if args.wants_help() || args.command == "help" {
        commands::print_usage();
        return Ok(());
    }
    match args.command.as_str() {
        "list" => {
            args.allow_only(&[]).map_err(|e| e.to_string())?;
            commands::list();
            Ok(())
        }
        "run" => commands::run_one(&args).map_err(|e| e.to_string()),
        "sweep" => commands::sweep(&args).map_err(|e| e.to_string()),
        "inspect" => commands::inspect(&args).map_err(|e| e.to_string()),
        "explain" => commands::explain(&args).map_err(|e| e.to_string()),
        other => Err(format!("unknown command {other:?}")),
    }
}
