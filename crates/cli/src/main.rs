//! `seer` — command-line front end for the Seer reproduction.
//!
//! ```text
//! seer list                                  # benchmarks and policies
//! seer run    --benchmark genome --policy seer --threads 8 [--seed N] [--txs N] [--json true]
//! seer sweep  --benchmark vacation-high [--policies hle,rtm,scm,seer] [--max-threads 8]
//!             [--store DIR] [--resume]                   # persistent, resumable results
//!             [--workers HOST:PORT,...]                  # distributed execution
//! seer tune   [--driver random|halving|climb] [--budget N] [--objective combined]
//!             [--space F.json] [--seed N] [--jobs N] [--json true] [--out TUNE.json]
//!             [--store DIR] [--resume] [--workers ...]   # parameter search over Seer's knobs
//! seer serve  [--addr HOST:PORT]                         # worker daemon for --workers
//! seer bench  [--mode smoke|full] [--out BENCH_006.json] [--repeats N] [--jobs N] [--json true]
//! seer inspect --benchmark intruder --threads 8 [--txs N]   # Seer's learned state
//! seer explain --benchmark genome --policy seer --pair 0,2  # decision history of one pair
//! seer scenario list                                        # built-in disturbance scenarios
//! seer scenario run [--name churn-storm | --spec F.json] [--policy P] [--seed N]
//!                   [--jobs N] [--json true] [--trace F.jsonl] [--store DIR] [--resume]
//! ```

mod args;
mod commands;

use args::Args;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(raw) {
        Ok(()) => 0,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("try `seer help`");
            2
        }
    };
    std::process::exit(code);
}

/// Folds the two-word `scenario <action>` form into a single
/// `scenario-<action>` command token, keeping the one-positional grammar.
fn fold_scenario_command(raw: &mut Vec<String>) {
    if raw.first().map(String::as_str) == Some("scenario")
        && raw.get(1).is_some_and(|a| !a.starts_with('-'))
    {
        let action = raw.remove(1);
        raw[0] = format!("scenario-{action}");
    }
}

fn run(mut raw: Vec<String>) -> Result<(), String> {
    if raw.is_empty() {
        commands::print_usage();
        return Ok(());
    }
    fold_scenario_command(&mut raw);
    let args = Args::parse(raw).map_err(|e| e.to_string())?;
    if args.wants_help() || args.command == "help" {
        commands::print_usage();
        return Ok(());
    }
    match args.command.as_str() {
        "list" => {
            args.allow_only(&[]).map_err(|e| e.to_string())?;
            commands::list();
            Ok(())
        }
        "run" => commands::run_one(&args).map_err(|e| e.to_string()),
        "sweep" => commands::sweep(&args).map_err(|e| e.to_string()),
        "tune" => commands::tune(&args).map_err(|e| e.to_string()),
        "serve" => commands::serve(&args).map_err(|e| e.to_string()),
        "bench" => commands::bench(&args).map_err(|e| e.to_string()),
        "inspect" => commands::inspect(&args).map_err(|e| e.to_string()),
        "explain" => commands::explain(&args).map_err(|e| e.to_string()),
        "scenario-list" => {
            args.allow_only(&[]).map_err(|e| e.to_string())?;
            commands::scenario_list();
            Ok(())
        }
        "scenario-run" => commands::scenario_run(&args).map_err(|e| e.to_string()),
        "scenario" => Err("scenario needs an action: `seer scenario run` or `seer scenario list`".into()),
        other => Err(format!("unknown command {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::fold_scenario_command;

    fn fold(parts: &[&str]) -> Vec<String> {
        let mut raw: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        fold_scenario_command(&mut raw);
        raw
    }

    #[test]
    fn scenario_actions_fold_into_one_command_token() {
        assert_eq!(fold(&["scenario", "run", "--seed", "1"]), ["scenario-run", "--seed", "1"]);
        assert_eq!(fold(&["scenario", "list"]), ["scenario-list"]);
        // No action (or an option) after `scenario`: left for `run` to report.
        assert_eq!(fold(&["scenario"]), ["scenario"]);
        assert_eq!(fold(&["scenario", "--help"]), ["scenario", "--help"]);
        // Other commands untouched.
        assert_eq!(fold(&["run", "--seed", "1"]), ["run", "--seed", "1"]);
        assert_eq!(fold(&[]), Vec::<String>::new());
    }
}
