//! Structure-granular block refinement — the paper's second future-work
//! direction (§6): "adopting even more fine-grained locking schemes, which
//! associate locks depending on both the atomic block and the identifier
//! of the data structure being manipulated in that atomic block".
//!
//! [`RefinedModel`] wraps any [`Workload`] and rewrites each transaction's
//! block id to a *(block, structure)* pair, where the structure is the
//! dominant shared region in the transaction's own access trace (derived
//! from the address layout — no extra instrumentation, mirroring how a
//! compiler could pass a data-structure handle into the TM library call).
//! Seer itself needs no changes: it simply sees `blocks × structures`
//! atomic blocks and infers a finer conflict relation — e.g. vacation's
//! `update-tables` touching *cars* stops serializing with
//! `make-reservation` instances that only touched *rooms*.
//!
//! The trade-offs the paper anticipates are measurable here: more blocks
//! means a bigger lock table and slower convergence (statistics spread
//! over more cells), in exchange for less false serialization. The
//! `fine_grained` harness binary quantifies both sides.

use seer_runtime::{BlockId, TxRequest, Workload};
use seer_sim::{SimRng, ThreadId};

use crate::model::{PRIVATE_BASE, REGION_STRIDE};

/// A workload adapter that refines block ids by dominant structure.
#[derive(Debug, Clone)]
pub struct RefinedModel<W> {
    inner: W,
    structures: usize,
    name: String,
}

impl<W: Workload> RefinedModel<W> {
    /// Wraps `inner`, splitting each of its blocks into up to `structures`
    /// refined blocks (structure ids beyond the cap fold modulo the cap).
    ///
    /// # Panics
    /// If `structures` is zero.
    pub fn new(inner: W, structures: usize) -> Self {
        assert!(structures > 0, "need at least one structure bucket");
        let name = format!("{}+refined", inner.name());
        Self {
            inner,
            structures,
            name,
        }
    }

    /// Number of structure buckets per base block.
    pub fn structures(&self) -> usize {
        self.structures
    }

    /// The base (unrefined) block id of a refined id.
    pub fn base_block(&self, refined: BlockId) -> BlockId {
        refined / self.structures
    }

    /// The structure bucket of a refined id.
    pub fn structure_of(&self, refined: BlockId) -> usize {
        refined % self.structures
    }

    /// Dominant shared region of a trace (most-accessed region id), or 0
    /// for traces that touch no shared region.
    fn dominant_structure(&self, req: &TxRequest) -> usize {
        let mut counts: Vec<(u64, usize)> = Vec::new();
        for a in &req.accesses {
            if a.line >= PRIVATE_BASE {
                continue;
            }
            let region = a.line / REGION_STRIDE;
            match counts.iter_mut().find(|(r, _)| *r == region) {
                Some((_, n)) => *n += 1,
                None => counts.push((region, 1)),
            }
        }
        counts
            .into_iter()
            .max_by_key(|&(_, n)| n)
            .map(|(r, _)| (r as usize) % self.structures)
            .unwrap_or(0)
    }

    fn refine(&self, req: &mut TxRequest) {
        let structure = self.dominant_structure(req);
        req.block = req.block * self.structures + structure;
    }
}

impl<W: Workload> Workload for RefinedModel<W> {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_blocks(&self) -> usize {
        self.inner.num_blocks() * self.structures
    }

    fn next(&mut self, thread: ThreadId, rng: &mut SimRng) -> Option<TxRequest> {
        let mut req = self.inner.next(thread, rng)?;
        debug_assert!(req.block < self.inner.num_blocks());
        self.refine(&mut req);
        Some(req)
    }

    fn regenerate(&mut self, thread: ThreadId, req: &mut TxRequest, rng: &mut SimRng) {
        // The inner workload expects its own block ids; the refined id is
        // kept stable across retries (the statistics must accumulate on
        // one identity even if a re-probed trace shifts its footprint).
        let refined = req.block;
        req.block = self.base_block(refined);
        self.inner.regenerate(thread, req, rng);
        req.block = refined;
    }

    fn commit(&mut self, thread: ThreadId, req: &TxRequest, rng: &mut SimRng) {
        let mut base = req.clone();
        base.block = self.base_block(req.block);
        self.inner.commit(thread, &base, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;

    #[test]
    fn block_count_multiplies() {
        let m = RefinedModel::new(Benchmark::VacationHigh.instantiate(2, 10), 4);
        assert_eq!(m.num_blocks(), 12);
        assert_eq!(m.structures(), 4);
        assert_eq!(m.base_block(7), 1);
        assert_eq!(m.structure_of(7), 3);
    }

    #[test]
    fn refined_ids_stay_in_range_and_split_by_structure() {
        let mut m = RefinedModel::new(Benchmark::VacationHigh.instantiate(1, 300), 4);
        let mut rng = SimRng::new(1);
        let mut seen = std::collections::HashSet::new();
        while let Some(req) = m.next(0, &mut rng) {
            assert!(req.block < m.num_blocks());
            seen.insert(req.block);
        }
        // make-reservation (base 0) touches four tables; its instances
        // must spread over more than one refined id.
        let reservation_ids: Vec<_> = seen.iter().filter(|&&b| b / 4 == 0).collect();
        assert!(
            reservation_ids.len() > 1,
            "refinement did not split make-reservation: {seen:?}"
        );
    }

    #[test]
    fn regenerate_preserves_refined_id() {
        let mut m = RefinedModel::new(Benchmark::Genome.instantiate(1, 10), 3);
        let mut rng = SimRng::new(2);
        let mut req = m.next(0, &mut rng).unwrap();
        let refined = req.block;
        m.regenerate(0, &mut req, &mut rng);
        assert_eq!(req.block, refined);
        assert!(req.is_well_formed());
    }

    #[test]
    fn private_only_traces_fold_to_structure_zero() {
        // A fabricated request with only private lines refines to bucket 0.
        let m = RefinedModel::new(Benchmark::Genome.instantiate(1, 1), 5);
        let req = TxRequest {
            block: 0,
            accesses: vec![seer_runtime::Access {
                line: PRIVATE_BASE + 10,
                kind: seer_htm::AccessKind::Read,
                offset: 0,
            }],
            duration: 5,
            think: 0,
        };
        assert_eq!(m.dominant_structure(&req), 0);
    }

    #[test]
    #[should_panic(expected = "at least one structure")]
    fn zero_structures_rejected() {
        RefinedModel::new(Benchmark::Genome.instantiate(1, 1), 0);
    }
}
