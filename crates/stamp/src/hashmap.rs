//! Low-contention hash map probe (paper §5.3's overhead sanity check).
//!
//! "Even challenging scenarios, such as a low contention small hash-map
//! (4k elements and 1k buckets) yielded a maximum of 4% overhead." The
//! model: short transactions probing a 1k-bucket table (each bucket a
//! line, ~4 elements per bucket reachable with one extra line read),
//! read-mostly, uniformly spread — almost never conflicting, so any
//! slowdown under Seer is pure instrumentation overhead.

use crate::model::{RegionUse, StampBlock, StampModel};

const BUCKETS: u64 = 0;

/// Default transactions per thread at scale 1.
pub const DEFAULT_TXS: usize = 900;

/// Builds the hash-map probe for `threads` threads.
pub fn model(threads: usize, txs_per_thread: usize) -> StampModel {
    let blocks = vec![
        StampBlock {
            name: "map-get",
            weight: 9.0,
            regions: vec![RegionUse {
                region: BUCKETS,
                lines: 1024,
                theta: 0.0,
                reads: (2, 4),
                writes: (0, 0),
            }],
            private_reads: (2, 6),
            private_writes: (0, 1),
            spacing: (5, 11),
            think: (90, 220),
        },
        StampBlock {
            name: "map-put",
            weight: 1.0,
            regions: vec![RegionUse {
                region: BUCKETS,
                lines: 1024,
                theta: 0.0,
                reads: (2, 4),
                writes: (1, 2),
            }],
            private_reads: (2, 6),
            private_writes: (0, 1),
            spacing: (5, 11),
            think: (90, 220),
        },
    ];
    StampModel::new("hashmap-low", blocks, threads, txs_per_thread)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seer_runtime::{run, DriverConfig, NullScheduler, Workload};
    use seer_sim::SimRng;

    #[test]
    fn rarely_conflicts() {
        let mut m = model(4, 300);
        let mut s = NullScheduler::new(5);
        let mut cfg = DriverConfig::paper_machine(4, 1);
        cfg.costs.async_abort_per_cycle = 0.0;
        let metrics = run(&mut m, &mut s, &cfg);
        assert_eq!(metrics.commits, 1200);
        assert!(
            metrics.abort_ratio() < 0.03,
            "hashmap-low should barely abort: {}",
            metrics.abort_ratio()
        );
    }

    #[test]
    fn reads_dominate() {
        let mut m = model(1, 500);
        let mut rng = SimRng::new(7);
        let (mut reads, mut writes) = (0usize, 0usize);
        while let Some(req) = m.next(0, &mut rng) {
            for a in &req.accesses {
                match a.kind {
                    seer_htm::AccessKind::Read => reads += 1,
                    seer_htm::AccessKind::Write => writes += 1,
                }
            }
        }
        assert!(reads > writes * 5, "reads {reads} writes {writes}");
    }
}
