//! Vacation: an in-memory travel reservation system.
//!
//! Client transactions query and update four red-black-tree tables (cars,
//! flights, rooms, customers). `make-reservation` reads tens of tree nodes
//! across several tables and writes a handful; `delete-customer` and
//! `update-tables` are rarer but write-heavier. The *high* configuration
//! queries more relations per transaction (bigger footprints, more
//! conflicts) than *low*. Conflicts split naturally per table — another
//! sparse conflict graph where fine-grained serialization wins (Fig. 3f/3g
//! show Seer ≈2.2–2.6× vs ≈1.4–1.8× for the baselines at 8 threads).

use crate::model::{RegionUse, StampBlock, StampModel};

const CARS: u64 = 0;
const FLIGHTS: u64 = 1;
const ROOMS: u64 = 2;
const CUSTOMERS: u64 = 3;

/// Default transactions per thread at scale 1.
pub const DEFAULT_TXS: usize = 350;

/// Tree-table region: `theta` models root/upper-level sharing (every
/// traversal passes near the root).
fn table(region: u64, reads: (u64, u64), writes: (u64, u64)) -> RegionUse {
    RegionUse {
        region,
        lines: 512,
        theta: 0.5,
        reads,
        writes,
    }
}

fn vacation(
    name: &str,
    reads_per_table: (u64, u64),
    threads: usize,
    txs_per_thread: usize,
) -> StampModel {
    let blocks = vec![
        StampBlock {
            name: "make-reservation",
            weight: 9.0,
            regions: vec![
                table(CARS, reads_per_table, (0, 1)),
                table(FLIGHTS, reads_per_table, (0, 1)),
                table(ROOMS, reads_per_table, (0, 1)),
                table(CUSTOMERS, (3, 8), (1, 2)),
            ],
            private_reads: (6, 14),
            private_writes: (1, 3),
            spacing: (5, 12),
            think: (100, 260),
        },
        StampBlock {
            name: "delete-customer",
            weight: 1.0,
            regions: vec![table(CUSTOMERS, (8, 18), (2, 5))],
            private_reads: (4, 10),
            private_writes: (1, 2),
            spacing: (5, 12),
            think: (120, 300),
        },
        StampBlock {
            name: "update-tables",
            weight: 1.0,
            regions: vec![
                table(CARS, (4, 10), (2, 5)),
                table(FLIGHTS, (4, 10), (2, 5)),
                table(ROOMS, (4, 10), (2, 5)),
            ],
            private_reads: (4, 10),
            private_writes: (1, 3),
            spacing: (5, 12),
            think: (120, 300),
        },
    ];
    StampModel::new(name, blocks, threads, txs_per_thread)
}

/// High-contention configuration (more relations queried per transaction).
pub fn model_high(threads: usize, txs_per_thread: usize) -> StampModel {
    vacation("vacation-high", (10, 22), threads, txs_per_thread)
}

/// Low-contention configuration.
pub fn model_low(threads: usize, txs_per_thread: usize) -> StampModel {
    vacation("vacation-low", (6, 13), threads, txs_per_thread)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seer_runtime::Workload;
    use seer_sim::SimRng;

    #[test]
    fn high_reads_more_than_low() {
        let mut hi = model_high(1, 150);
        let mut lo = model_low(1, 150);
        let mut rng = SimRng::new(5);
        let avg = |m: &mut StampModel, rng: &mut SimRng| {
            let mut total = 0usize;
            let mut n = 0usize;
            while let Some(req) = m.next(0, rng) {
                if req.block == 0 {
                    total += req.accesses.len();
                    n += 1;
                }
            }
            total as f64 / n as f64
        };
        let hi_avg = avg(&mut hi, &mut rng);
        let lo_avg = avg(&mut lo, &mut rng);
        assert!(
            hi_avg > lo_avg + 10.0,
            "high ({hi_avg:.1}) should dwarf low ({lo_avg:.1})"
        );
    }

    #[test]
    fn three_blocks_as_in_the_application() {
        let m = model_high(2, 10);
        assert_eq!(m.num_blocks(), 3);
        assert_eq!(m.block_name(0), "make-reservation");
    }
}
