//! K-means: iterative clustering with transactional center updates.
//!
//! The single dominant atomic block adds a point's coordinates into its
//! nearest cluster center (a few cache lines of partial sums per center)
//! — short transactions whose conflict probability is governed by the
//! number of centers. STAMP's *high-contention* configuration uses few
//! clusters (hot centers, frequent collisions); *low contention* uses
//! several times more (Fig. 3c vs 3d: ≈3.4× vs ≈5× peak speedups). A
//! second, rarer block updates the global membership-delta counter.

use crate::model::{RegionUse, StampBlock, StampModel};

const CENTERS: u64 = 0;
const DELTA: u64 = 1;

/// Default transactions per thread at scale 1.
pub const DEFAULT_TXS: usize = 700;

/// Lines per cluster center (coordinate partial sums + count).
const LINES_PER_CENTER: u64 = 4;

fn kmeans(name: &str, clusters: u64, threads: usize, txs_per_thread: usize) -> StampModel {
    let blocks = vec![
        StampBlock {
            name: "center-update",
            weight: 12.0,
            regions: vec![RegionUse {
                region: CENTERS,
                lines: clusters * LINES_PER_CENTER,
                theta: 0.4,
                reads: (2, 5),
                writes: (3, 6),
            }],
            private_reads: (6, 16),
            private_writes: (0, 1),
            spacing: (5, 12),
            think: (120, 320),
        },
        StampBlock {
            name: "delta-accumulate",
            weight: 1.0,
            regions: vec![RegionUse {
                region: DELTA,
                lines: 2,
                theta: 0.0,
                reads: (1, 1),
                writes: (1, 1),
            }],
            private_reads: (1, 3),
            private_writes: (0, 0),
            spacing: (4, 8),
            think: (200, 500),
        },
    ];
    StampModel::new(name, blocks, threads, txs_per_thread)
}

/// High-contention configuration (15 clusters, as STAMP's `-m15 -n15`).
pub fn model_high(threads: usize, txs_per_thread: usize) -> StampModel {
    kmeans("kmeans-high", 15, threads, txs_per_thread)
}

/// Low-contention configuration (40 clusters, as STAMP's `-m40 -n40`).
pub fn model_low(threads: usize, txs_per_thread: usize) -> StampModel {
    kmeans("kmeans-low", 40, threads, txs_per_thread)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seer_runtime::Workload;
    use seer_sim::SimRng;

    #[test]
    fn high_has_fewer_center_lines_than_low() {
        let hi = model_high(2, 10);
        let lo = model_low(2, 10);
        let hi_lines = hi.blocks()[0].regions[0].lines;
        let lo_lines = lo.blocks()[0].regions[0].lines;
        assert!(hi_lines < lo_lines);
        assert_eq!(hi_lines, 60);
        assert_eq!(lo_lines, 160);
    }

    #[test]
    fn transactions_are_short() {
        let mut m = model_high(1, 100);
        let mut rng = SimRng::new(3);
        while let Some(req) = m.next(0, &mut rng) {
            assert!(req.accesses.len() <= 30);
            assert!(req.is_well_formed());
        }
    }
}
