//! SSCA2 (kernel only): scalable graph kernel building adjacency arrays.
//!
//! The transactional kernel of SSCA2 appends edges into per-node adjacency
//! arrays — tiny transactions (a couple of reads, one or two writes)
//! scattered across a large graph, so conflicts are rare and the workload
//! scales almost linearly. Its cost is dominated by transaction begin/end
//! overhead, which is why the paper's Figure 3e shows every policy scaling
//! and only modest differences between them (HLE trails once its elided
//! lock serializes).

use crate::model::{RegionUse, StampBlock, StampModel};

const ADJACENCY: u64 = 0;
const INDEX: u64 = 1;

/// Default transactions per thread at scale 1.
pub const DEFAULT_TXS: usize = 1200;

/// Builds the SSCA2 kernel model for `threads` threads.
pub fn model(threads: usize, txs_per_thread: usize) -> StampModel {
    let blocks = vec![
        StampBlock {
            name: "edge-append",
            weight: 8.0,
            regions: vec![RegionUse {
                region: ADJACENCY,
                lines: 65_536,
                theta: 0.05,
                reads: (1, 2),
                writes: (1, 2),
            }],
            private_reads: (2, 6),
            private_writes: (0, 1),
            spacing: (6, 14),
            think: (80, 200),
        },
        StampBlock {
            name: "index-bump",
            weight: 1.0,
            regions: vec![RegionUse {
                region: INDEX,
                lines: 4096,
                theta: 0.1,
                reads: (1, 2),
                writes: (1, 1),
            }],
            private_reads: (0, 2),
            private_writes: (0, 0),
            spacing: (4, 8),
            think: (60, 160),
        },
    ];
    StampModel::new("ssca2", blocks, threads, txs_per_thread)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seer_runtime::Workload;
    use seer_sim::SimRng;

    #[test]
    fn transactions_are_tiny() {
        let mut m = model(1, 200);
        let mut rng = SimRng::new(4);
        while let Some(req) = m.next(0, &mut rng) {
            assert!(req.accesses.len() <= 12, "ssca2 txs must be tiny");
        }
    }

    #[test]
    fn address_space_is_large() {
        let m = model(1, 1);
        assert!(m.blocks()[0].regions[0].lines >= 65_536);
    }
}
