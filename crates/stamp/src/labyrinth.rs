//! Labyrinth: Lee-routing on a 3-D grid — the benchmark the paper
//! *excludes* "as most of its transactions exceed TSX capacity" (§5).
//!
//! The model is included here to *validate that exclusion* on the
//! simulated machine rather than to appear in any figure: a routing
//! transaction copies a whole grid neighbourhood into its read set and
//! writes the full path back, far past the L1-bounded write geometry, so
//! nearly every hardware attempt dies with a capacity abort and nearly
//! every transaction ends on the single-global lock — under *any*
//! scheduler, Seer included (no scheduling decision can shrink a
//! footprint). The `excluded_benchmark_capacity_bound` test pins this.

use crate::model::{RegionUse, StampBlock, StampModel};

const GRID: u64 = 0;
const WORK_LIST: u64 = 1;

/// Default transactions per thread at scale 1 (kept small: each one is
/// enormous).
pub const DEFAULT_TXS: usize = 40;

/// Builds the labyrinth model for `threads` threads.
pub fn model(threads: usize, txs_per_thread: usize) -> StampModel {
    let blocks = vec![
        StampBlock {
            name: "route-path",
            weight: 8.0,
            regions: vec![RegionUse {
                region: GRID,
                lines: 1_048_576,
                theta: 0.0,
                // Expansion reads a large neighbourhood; the traceback
                // writes the chosen path. The write set alone (≥600 lines)
                // overflows the 512-line write geometry even without SMT
                // sharing.
                reads: (800, 1600),
                writes: (600, 1100),
            }],
            private_reads: (40, 90),
            private_writes: (10, 30),
            spacing: (3, 7),
            think: (100, 240),
        },
        StampBlock {
            name: "grab-work",
            weight: 2.0,
            regions: vec![RegionUse {
                region: WORK_LIST,
                lines: 8,
                theta: 0.5,
                reads: (1, 2),
                writes: (1, 2),
            }],
            private_reads: (1, 4),
            private_writes: (0, 1),
            spacing: (4, 9),
            think: (40, 100),
        },
    ];
    StampModel::new("labyrinth", blocks, threads, txs_per_thread)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seer_baselines::Rtm;
    use seer_runtime::{run, DriverConfig};

    #[test]
    fn route_transactions_exceed_write_capacity() {
        // 600+ distinct written lines over 64 sets means an expected set
        // load of ~10 — beyond even the unshared 8-way geometry.
        let m = model(1, 5);
        let writes_min = m.blocks()[0].regions[0].writes.0;
        assert!(writes_min >= 600);
    }

    #[test]
    fn excluded_benchmark_capacity_bound() {
        // RTM (which waits while the fall-back lock is held, so its aborts
        // reflect genuine hardware failures rather than lock subscription).
        // Aggregated over a few seeds: a single run's capacity/conflict
        // split is close enough to parity that per-seed noise could flip
        // the comparison, and the claim is about the workload, not a seed.
        let mut capacity = 0u64;
        let mut conflict = 0u64;
        for seed in 0..3 {
            let mut m = model(4, 12);
            let mut s = Rtm::default();
            let mut cfg = DriverConfig::paper_machine(4, seed);
            cfg.costs.async_abort_per_cycle = 0.0;
            let metrics = run(&mut m, &mut s, &cfg);
            assert_eq!(metrics.commits, 48);
            // The dominant block cannot commit in hardware: the run is
            // carried by the fall-back, exactly why the paper excluded
            // labyrinth.
            assert!(
                metrics.fallback_fraction() > 0.6,
                "labyrinth should live on the SGL: {:.3}",
                metrics.fallback_fraction()
            );
            capacity += metrics.aborts.capacity;
            conflict += metrics.aborts.conflict;
        }
        assert!(
            capacity > conflict,
            "capacity must dominate: cap {capacity} vs conf {conflict}"
        );
    }
}
