//! # seer-stamp — STAMP-like workload models
//!
//! Synthetic equivalents of the STAMP benchmarks the paper evaluates on
//! (§5: genome, intruder, kmeans-high/low, ssca2, vacation-high/low, yada;
//! bayes and labyrinth are excluded exactly as the paper excludes them).
//! Each model reproduces the properties a *scheduler* can observe — the
//! atomic-block structure, per-block footprints, write rates, the conflict
//! topology between blocks, and capacity pressure — rather than the
//! applications' computational semantics; `DESIGN.md` §2 documents why
//! that substitution preserves the evaluation.
//!
//! [`Benchmark`] enumerates the suite; [`Benchmark::instantiate`] builds a
//! ready-to-run [`model::StampModel`] (a `seer_runtime::Workload`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod genome;
pub mod hashmap;
pub mod intruder;
pub mod kmeans;
pub mod labyrinth;
pub mod model;
pub mod refined;
pub mod ssca2;
pub mod synth;
pub mod vacation;
pub mod yada;

pub use model::{RegionUse, StampBlock, StampModel};
pub use refined::RefinedModel;

/// The STAMP benchmark suite as evaluated in the paper, plus the §5.3
/// low-contention hash-map probe.
///
/// ```
/// use seer_runtime::{run, DriverConfig, NullScheduler, Workload};
/// use seer_stamp::Benchmark;
///
/// let mut workload = Benchmark::Ssca2.instantiate(2, 50);
/// let mut sched = NullScheduler::new(5);
/// let metrics = run(&mut workload, &mut sched, &DriverConfig::paper_machine(2, 1));
/// assert_eq!(metrics.commits, 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Gene sequencing (Fig. 3a).
    Genome,
    /// Network intrusion detection (Fig. 3b).
    Intruder,
    /// Clustering, high contention (Fig. 3c).
    KmeansHigh,
    /// Clustering, low contention (Fig. 3d).
    KmeansLow,
    /// Graph kernel (Fig. 3e).
    Ssca2,
    /// Travel reservations, high contention (Fig. 3f).
    VacationHigh,
    /// Travel reservations, low contention (Fig. 3g).
    VacationLow,
    /// Delaunay mesh refinement (Fig. 3h).
    Yada,
    /// Low-contention hash map (§5.3 overhead probe; not part of Fig. 3).
    HashmapLow,
    /// Lee-routing on a grid — *excluded* from the paper's evaluation
    /// "as most of its transactions exceed TSX capacity"; modelled here to
    /// validate that exclusion (see [`labyrinth`]).
    Labyrinth,
    /// Synthetic many-blocks scaling probe with a configurable atomic-block
    /// count (`synth@blocks=N`; not part of the paper's evaluation — see
    /// [`synth`]).
    Synth {
        /// Number of atomic blocks.
        blocks: u16,
    },
}

impl Benchmark {
    /// The eight Figure 3 benchmarks, in the paper's presentation order.
    pub const STAMP: [Benchmark; 8] = [
        Benchmark::Genome,
        Benchmark::Intruder,
        Benchmark::KmeansHigh,
        Benchmark::KmeansLow,
        Benchmark::Ssca2,
        Benchmark::VacationHigh,
        Benchmark::VacationLow,
        Benchmark::Yada,
    ];

    /// Display name matching the paper's figure captions.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Genome => "genome",
            Benchmark::Intruder => "intruder",
            Benchmark::KmeansHigh => "kmeans-high",
            Benchmark::KmeansLow => "kmeans-low",
            Benchmark::Ssca2 => "ssca2",
            Benchmark::VacationHigh => "vacation-high",
            Benchmark::VacationLow => "vacation-low",
            Benchmark::Yada => "yada",
            Benchmark::HashmapLow => "hashmap-low",
            Benchmark::Labyrinth => "labyrinth",
            Benchmark::Synth { .. } => "synth",
        }
    }

    /// Full parameterized spec string: [`Benchmark::name`] for the fixed
    /// members, `synth@blocks=N` for the parameterized probe. Round-trips
    /// through [`Benchmark::from_spec`]; the harness uses it wherever a
    /// benchmark identifies a result (store keys, reports).
    pub fn spec(self) -> String {
        match self {
            Benchmark::Synth { blocks } => format!("synth@blocks={blocks}"),
            named => named.name().to_string(),
        }
    }

    /// Parses a spec string produced by [`Benchmark::spec`] (or typed at a
    /// CLI): a fixed member's name, `synth` (default block count), or
    /// `synth@blocks=N` with `N ≥ 1`.
    pub fn from_spec(s: &str) -> Option<Benchmark> {
        if s == "synth" {
            return Some(Benchmark::Synth { blocks: synth::DEFAULT_BLOCKS });
        }
        if let Some(rest) = s.strip_prefix("synth@blocks=") {
            let blocks: u16 = rest.parse().ok().filter(|&b| b >= 1)?;
            return Some(Benchmark::Synth { blocks });
        }
        Benchmark::STAMP
            .iter()
            .copied()
            .chain([Benchmark::HashmapLow, Benchmark::Labyrinth])
            .find(|b| b.name() == s)
    }

    /// Default transactions per thread (scale 1).
    pub fn default_txs(self) -> usize {
        match self {
            Benchmark::Genome => genome::DEFAULT_TXS,
            Benchmark::Intruder => intruder::DEFAULT_TXS,
            Benchmark::KmeansHigh | Benchmark::KmeansLow => kmeans::DEFAULT_TXS,
            Benchmark::Ssca2 => ssca2::DEFAULT_TXS,
            Benchmark::VacationHigh | Benchmark::VacationLow => vacation::DEFAULT_TXS,
            Benchmark::Yada => yada::DEFAULT_TXS,
            Benchmark::HashmapLow => hashmap::DEFAULT_TXS,
            Benchmark::Labyrinth => labyrinth::DEFAULT_TXS,
            Benchmark::Synth { .. } => synth::DEFAULT_TXS,
        }
    }

    /// Instantiates the model for `threads` threads with `txs_per_thread`
    /// transactions each.
    pub fn instantiate(self, threads: usize, txs_per_thread: usize) -> StampModel {
        match self {
            Benchmark::Genome => genome::model(threads, txs_per_thread),
            Benchmark::Intruder => intruder::model(threads, txs_per_thread),
            Benchmark::KmeansHigh => kmeans::model_high(threads, txs_per_thread),
            Benchmark::KmeansLow => kmeans::model_low(threads, txs_per_thread),
            Benchmark::Ssca2 => ssca2::model(threads, txs_per_thread),
            Benchmark::VacationHigh => vacation::model_high(threads, txs_per_thread),
            Benchmark::VacationLow => vacation::model_low(threads, txs_per_thread),
            Benchmark::Yada => yada::model(threads, txs_per_thread),
            Benchmark::HashmapLow => hashmap::model(threads, txs_per_thread),
            Benchmark::Labyrinth => labyrinth::model(threads, txs_per_thread),
            Benchmark::Synth { blocks } => synth::model(blocks, threads, txs_per_thread),
        }
    }

    /// Instantiates with the default per-thread transaction count.
    pub fn instantiate_default(self, threads: usize) -> StampModel {
        self.instantiate(threads, self.default_txs())
    }

    /// Per-thread transaction count at `scale` (1.0 = the default),
    /// floored at 20 so heavily scaled-down runs still exercise every
    /// atomic block.
    pub fn scaled_txs(self, scale: f64) -> usize {
        ((self.default_txs() as f64 * scale) as usize).max(20)
    }

    /// Instantiates the model at a scale factor on the default
    /// transaction count — the one sizing rule shared by the harness
    /// runner, the experiment extras, and the CLI.
    pub fn instantiate_scaled(self, threads: usize, scale: f64) -> StampModel {
        self.instantiate(threads, self.scaled_txs(scale))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seer_runtime::Workload;

    #[test]
    fn suite_has_eight_figure3_benchmarks() {
        assert_eq!(Benchmark::STAMP.len(), 8);
        let names: Vec<_> = Benchmark::STAMP.iter().map(|b| b.name()).collect();
        assert!(names.contains(&"genome"));
        assert!(names.contains(&"yada"));
        assert!(!names.contains(&"hashmap-low"));
    }

    #[test]
    fn every_benchmark_instantiates() {
        for b in Benchmark::STAMP
            .iter()
            .copied()
            .chain([Benchmark::HashmapLow, Benchmark::Labyrinth])
        {
            let m = b.instantiate_default(8);
            assert_eq!(m.name(), b.name());
            assert!(m.num_blocks() >= 2, "{} too simple", b.name());
        }
        // The parameterized probe carries its spec as the model name.
        let m = Benchmark::Synth { blocks: 48 }.instantiate_default(8);
        assert_eq!(m.name(), "synth@blocks=48");
        assert_eq!(m.num_blocks(), 48);
    }

    #[test]
    fn spec_round_trips_through_from_spec() {
        for b in Benchmark::STAMP
            .iter()
            .copied()
            .chain([Benchmark::HashmapLow, Benchmark::Labyrinth])
            .chain([Benchmark::Synth { blocks: 1 }, Benchmark::Synth { blocks: 256 }])
        {
            assert_eq!(Benchmark::from_spec(&b.spec()), Some(b), "{}", b.spec());
        }
        assert_eq!(
            Benchmark::from_spec("synth"),
            Some(Benchmark::Synth { blocks: synth::DEFAULT_BLOCKS })
        );
        assert_eq!(Benchmark::from_spec("synth@blocks=0"), None);
        assert_eq!(Benchmark::from_spec("synth@blocks=bogus"), None);
        assert_eq!(Benchmark::from_spec("synth@lines=4"), None);
        assert_eq!(Benchmark::from_spec("nope"), None);
    }
}
