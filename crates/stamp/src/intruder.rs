//! Intruder: network packet intrusion detection.
//!
//! Threads pop packet fragments from a shared work queue (a handful of hot
//! lines — the head/tail pointers and the first elements), reassemble flows
//! in a shared map (the decoder), then run detection over the reassembled
//! payload (read-mostly). STAMP characterizes intruder as *very high*
//! contention dominated by the queue: nearly every concurrent pair of
//! `queue-pop` transactions collides. The decoder conflicts with itself at
//! a lower rate, and detection rarely conflicts at all — a three-tier
//! conflict structure Seer can exploit while single-lock schemes thrash
//! (Fig. 3b shows ≈2.5× over the best baseline at 8 threads).

use crate::model::{RegionUse, StampBlock, StampModel};

const QUEUE: u64 = 0;
const DECODER: u64 = 1;
const DETECTOR: u64 = 2;

/// Default transactions per thread at scale 1.
pub const DEFAULT_TXS: usize = 500;

/// Builds the intruder model for `threads` threads.
pub fn model(threads: usize, txs_per_thread: usize) -> StampModel {
    let blocks = vec![
        StampBlock {
            name: "queue-pop",
            weight: 3.0,
            regions: vec![RegionUse {
                region: QUEUE,
                lines: 3,
                theta: 0.0,
                reads: (1, 3),
                writes: (2, 3),
            }],
            private_reads: (3, 8),
            private_writes: (0, 1),
            spacing: (6, 14),
            think: (20, 60),
        },
        StampBlock {
            name: "decode-insert",
            weight: 3.0,
            regions: vec![RegionUse {
                region: DECODER,
                lines: 320,
                theta: 0.5,
                reads: (6, 16),
                writes: (2, 5),
            }],
            private_reads: (4, 10),
            private_writes: (1, 3),
            spacing: (5, 12),
            think: (40, 120),
        },
        StampBlock {
            name: "detect",
            weight: 2.0,
            regions: vec![RegionUse {
                region: DETECTOR,
                lines: 1024,
                theta: 0.1,
                reads: (10, 28),
                writes: (0, 1),
            }],
            private_reads: (8, 20),
            private_writes: (0, 1),
            spacing: (5, 12),
            think: (50, 140),
        },
    ];
    StampModel::new("intruder", blocks, threads, txs_per_thread)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seer_runtime::Workload;
    use seer_sim::SimRng;

    #[test]
    fn three_blocks_as_in_the_application() {
        let m = model(4, 10);
        assert_eq!(m.num_blocks(), 3);
        assert_eq!(m.block_name(0), "queue-pop");
    }

    #[test]
    fn queue_pop_is_short_and_write_heavy() {
        let mut m = model(1, 200);
        let mut rng = SimRng::new(2);
        let mut queue_lens = Vec::new();
        while let Some(req) = m.next(0, &mut rng) {
            if req.block == 0 {
                queue_lens.push(req.accesses.len());
            }
        }
        assert!(!queue_lens.is_empty());
        let max = *queue_lens.iter().max().unwrap();
        assert!(max <= 16, "queue-pop should be tiny, saw {max} accesses");
    }
}
