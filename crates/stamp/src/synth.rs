//! Synthetic many-blocks scaling workload (`synth@blocks=N`).
//!
//! The STAMP models top out at a handful of atomic blocks, so the
//! `O(blocks²)` inference round never shows up in their profiles. This
//! workload exists to open that axis: `N` atomic blocks arranged in
//! conflict *clusters* of eight — blocks within a cluster share one
//! region (and genuinely conflict), blocks in different clusters are
//! disjoint. The conflict relation is therefore block-sparse no matter
//! how large `N` grows, which is exactly the regime where incremental
//! inference pays: between two rounds only the recently executed blocks'
//! rows are dirty.
//!
//! Not part of the paper's evaluation (the paper stops at STAMP); this is
//! a scaling probe in the spirit of its §5.3 overhead analysis.

use crate::model::{RegionUse, StampBlock, StampModel};

/// Default transactions per thread at scale 1.
pub const DEFAULT_TXS: usize = 300;

/// Default atomic-block count when `synth` is named without `@blocks=N`.
pub const DEFAULT_BLOCKS: u16 = 128;

/// Blocks per conflict cluster (blocks sharing one region).
const CLUSTER: u16 = 8;

/// Cycled static display names (block identity is the index; the name is
/// a trace label, and `StampBlock::name` is `&'static str`).
const NAMES: [&str; 8] = [
    "synth-a", "synth-b", "synth-c", "synth-d", "synth-e", "synth-f", "synth-g", "synth-h",
];

/// Builds the `blocks`-block synthetic model for `threads` threads.
///
/// # Panics
/// If `blocks == 0`.
pub fn model(blocks: u16, threads: usize, txs_per_thread: usize) -> StampModel {
    assert!(blocks > 0, "synth needs at least one block");
    let specs = (0..blocks)
        .map(|i| {
            let cluster = u64::from(i / CLUSTER);
            // Odd blocks write more: within a cluster this yields the
            // asymmetric abort profiles the Th2 percentile filter feeds on.
            let writes = if i % 2 == 0 { (1, 2) } else { (2, 4) };
            StampBlock {
                name: NAMES[usize::from(i % CLUSTER)],
                weight: 1.0,
                regions: vec![RegionUse {
                    region: cluster,
                    lines: 96,
                    theta: 0.6,
                    reads: (2, 5),
                    writes,
                }],
                private_reads: (2, 6),
                private_writes: (0, 2),
                spacing: (5, 12),
                think: (60, 160),
            }
        })
        .collect();
    StampModel::new(format!("synth@blocks={blocks}"), specs, threads, txs_per_thread)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seer_runtime::{run, DriverConfig, NullScheduler, Workload};
    use seer_sim::SimRng;

    #[test]
    fn block_count_is_configurable() {
        for n in [1u16, 7, 128, 256] {
            let m = model(n, 2, 10);
            assert_eq!(m.num_blocks(), usize::from(n));
        }
        assert_eq!(model(200, 2, 10).name(), "synth@blocks=200");
    }

    #[test]
    fn clusters_conflict_internally_but_not_across() {
        // Shared lines of blocks 0..8 (cluster 0) and 8..16 (cluster 1)
        // must overlap within a cluster and be disjoint across.
        let mut m = model(16, 1, 400);
        let mut rng = SimRng::new(9);
        let mut lines: Vec<std::collections::HashSet<u64>> = vec![Default::default(); 2];
        while let Some(req) = m.next(0, &mut rng) {
            let cluster = req.block / usize::from(CLUSTER);
            for a in &req.accesses {
                if a.line < crate::model::PRIVATE_BASE {
                    lines[cluster].insert(a.line);
                }
            }
        }
        assert!(!lines[0].is_empty() && !lines[1].is_empty());
        assert!(lines[0].is_disjoint(&lines[1]), "clusters must not conflict");
    }

    #[test]
    fn runs_and_contends_under_null_scheduling() {
        let mut m = model(32, 4, 60);
        let mut s = NullScheduler::new(5);
        let metrics = run(&mut m, &mut s, &DriverConfig::paper_machine(4, 1));
        assert_eq!(metrics.commits, 240);
        assert!(metrics.aborts.total() > 0, "clustered writes should conflict");
    }
}
