//! Genome: gene sequencing by segment deduplication and overlap matching.
//!
//! STAMP's genome has three transactional phases; the dominant atomic
//! blocks are (1) inserting segments into a shared hash set (duplicates
//! collide on buckets), (2) scanning the unique-segment pool, and (3)
//! linking overlapping segments in the string graph. Transactions are
//! moderate-length with meaningful read sets and a few writes; contention
//! concentrates inside each structure, giving a *sparse, per-structure*
//! conflict graph — exactly the shape where Seer's per-block locks beat a
//! single auxiliary lock (the paper reports 2–2.5× gains here, Fig. 3a).

use crate::model::{RegionUse, StampBlock, StampModel};

const HASH: u64 = 0;
const POOL: u64 = 1;
const GRAPH: u64 = 2;

/// Default transactions per thread at scale 1.
pub const DEFAULT_TXS: usize = 400;

/// Builds the genome model for `threads` threads.
pub fn model(threads: usize, txs_per_thread: usize) -> StampModel {
    let blocks = vec![
        StampBlock {
            name: "dedup-insert",
            weight: 4.0,
            regions: vec![RegionUse {
                region: HASH,
                lines: 512,
                theta: 0.6,
                reads: (10, 24),
                writes: (2, 4),
            }],
            private_reads: (6, 14),
            private_writes: (0, 2),
            spacing: (6, 16),
            think: (60, 180),
        },
        StampBlock {
            name: "pool-scan",
            weight: 2.0,
            regions: vec![RegionUse {
                region: POOL,
                lines: 2048,
                theta: 0.2,
                reads: (15, 40),
                writes: (0, 1),
            }],
            private_reads: (4, 10),
            private_writes: (0, 1),
            spacing: (5, 12),
            think: (60, 160),
        },
        StampBlock {
            name: "graph-link",
            weight: 2.0,
            regions: vec![RegionUse {
                region: GRAPH,
                lines: 256,
                theta: 0.6,
                reads: (15, 40),
                writes: (2, 6),
            }],
            private_reads: (6, 12),
            private_writes: (1, 3),
            spacing: (6, 16),
            think: (80, 200),
        },
        StampBlock {
            name: "sequencer-add",
            weight: 1.0,
            regions: vec![RegionUse {
                region: POOL,
                lines: 2048,
                theta: 0.2,
                reads: (4, 10),
                writes: (1, 2),
            }],
            ..StampBlock::default()
        },
        StampBlock {
            name: "overlap-update",
            weight: 1.0,
            regions: vec![RegionUse {
                region: GRAPH,
                lines: 192,
                theta: 0.7,
                reads: (3, 8),
                writes: (1, 2),
            }],
            ..StampBlock::default()
        },
    ];
    StampModel::new("genome", blocks, threads, txs_per_thread)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seer_runtime::Workload;
    use seer_sim::SimRng;

    #[test]
    fn five_blocks_as_in_the_application() {
        let m = model(4, 10);
        assert_eq!(m.num_blocks(), 5);
        assert_eq!(m.block_name(0), "dedup-insert");
    }

    #[test]
    fn produces_valid_traces() {
        let mut m = model(2, 30);
        let mut rng = SimRng::new(1);
        while let Some(req) = m.next(0, &mut rng) {
            assert!(req.is_well_formed());
            assert!(!req.accesses.is_empty());
        }
    }
}
