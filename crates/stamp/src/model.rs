//! Generic STAMP workload model machinery.
//!
//! Each STAMP application is described as a [`StampModel`]: a set of atomic
//! blocks ([`StampBlock`]), each touching one or more shared *regions*
//! ([`RegionUse`], modelling a shared data structure: a hash table, a tree,
//! a work queue, cluster centers, …) plus thread-private filler accesses.
//! The parameters control exactly the properties a scheduler can observe —
//! which pairs of blocks conflict (region overlap and write rates),
//! transaction footprint (capacity pressure), transaction length and
//! inter-transaction think time — and are calibrated per benchmark in the
//! sibling modules to reproduce the contention regimes reported for STAMP
//! (Minh et al., IISWC'08) and the relative scheduler behaviour of the
//! Seer paper's Figure 3. See `DESIGN.md` §2 for the substitution argument.

use seer_htm::AccessKind;
use seer_runtime::{Access, TxRequest, Workload};
use seer_sim::{Cycles, SimRng, ThreadId, ZipfTable};

/// Inclusive integer range used for per-transaction draws.
pub type Range = (u64, u64);

/// One shared data structure touched by an atomic block.
#[derive(Debug, Clone)]
pub struct RegionUse {
    /// Region identifier: blocks referencing the same id share lines and
    /// can conflict. Each id owns a disjoint slice of the address space.
    pub region: u64,
    /// Number of cache lines in the region.
    pub lines: u64,
    /// Zipf exponent of line selection (0 = uniform; higher = hot head).
    pub theta: f64,
    /// Reads into the region per transaction (inclusive range).
    pub reads: Range,
    /// Writes into the region per transaction (inclusive range).
    pub writes: Range,
}

/// One atomic block of a STAMP application.
#[derive(Debug, Clone)]
pub struct StampBlock {
    /// Human-readable name (e.g. `"dedup-insert"`).
    pub name: &'static str,
    /// Relative frequency in the transaction mix.
    pub weight: f64,
    /// Shared structures this block touches.
    pub regions: Vec<RegionUse>,
    /// Thread-private read accesses (buffer scans, locals spilt to memory).
    pub private_reads: Range,
    /// Thread-private write accesses.
    pub private_writes: Range,
    /// Uniform range of cycles between consecutive accesses.
    pub spacing: Range,
    /// Uniform range of non-transactional cycles before the transaction.
    pub think: Range,
}

impl Default for StampBlock {
    fn default() -> Self {
        Self {
            name: "block",
            weight: 1.0,
            regions: Vec::new(),
            private_reads: (4, 10),
            private_writes: (0, 2),
            spacing: (6, 16),
            think: (100, 300),
        }
    }
}

/// A complete STAMP application model.
#[derive(Debug, Clone)]
pub struct StampModel {
    name: String,
    blocks: Vec<StampBlock>,
    weights_cdf: Vec<f64>,
    zipf: Vec<Vec<ZipfTable>>,
    remaining: Vec<usize>,
    private_cursor: Vec<u64>,
}

/// Address-space stride between shared regions (each region id owns one
/// `REGION_STRIDE`-line slice; exported for the granularity-refinement
/// adapter in [`crate::refined`]).
pub const REGION_STRIDE: u64 = 1 << 24;
/// First cache line of the thread-private address space.
pub const PRIVATE_BASE: u64 = 1 << 44;
const PRIVATE_STRIDE: u64 = 1 << 22;
const PRIVATE_WINDOW: u64 = 1 << 16;

impl StampModel {
    /// Builds a model named `name` over `blocks`, giving each of `threads`
    /// threads `txs_per_thread` transactions to execute.
    ///
    /// # Panics
    /// If `blocks` is empty or total weight is non-positive.
    pub fn new(
        name: impl Into<String>,
        blocks: Vec<StampBlock>,
        threads: usize,
        txs_per_thread: usize,
    ) -> Self {
        assert!(!blocks.is_empty(), "a model needs at least one block");
        let total: f64 = blocks.iter().map(|b| b.weight).sum();
        assert!(total > 0.0, "total weight must be positive");
        let mut acc = 0.0;
        let weights_cdf = blocks
            .iter()
            .map(|b| {
                acc += b.weight / total;
                acc
            })
            .collect();
        let zipf = blocks
            .iter()
            .map(|b| {
                b.regions
                    .iter()
                    .map(|r| ZipfTable::new(r.lines.max(1) as usize, r.theta))
                    .collect()
            })
            .collect();
        Self {
            name: name.into(),
            blocks,
            weights_cdf,
            zipf,
            remaining: vec![txs_per_thread; threads],
            private_cursor: (0..threads as u64).map(|t| t * PRIVATE_STRIDE).collect(),
        }
    }

    /// The blocks of this model.
    pub fn blocks(&self) -> &[StampBlock] {
        &self.blocks
    }

    /// Name of block `id`.
    pub fn block_name(&self, id: usize) -> &'static str {
        self.blocks[id].name
    }

    fn pick_block(&self, rng: &mut SimRng) -> usize {
        let u = rng.unit();
        self.weights_cdf
            .partition_point(|&c| c < u)
            .min(self.blocks.len() - 1)
    }

    fn draw(rng: &mut SimRng, range: Range) -> u64 {
        rng.range_inclusive(range.0, range.1)
    }

    fn build_trace(&mut self, thread: ThreadId, block: usize, rng: &mut SimRng) -> TxRequest {
        let spec = &self.blocks[block];
        // Collect the line/kind pairs first, then lay them out in time.
        let mut picks: Vec<(u64, AccessKind)> = Vec::new();
        for (ri, r) in spec.regions.iter().enumerate() {
            let base = r.region * REGION_STRIDE;
            let n_reads = Self::draw(rng, r.reads);
            let n_writes = Self::draw(rng, r.writes);
            for _ in 0..n_reads {
                picks.push((base + rng.zipf(&self.zipf[block][ri]) as u64, AccessKind::Read));
            }
            for _ in 0..n_writes {
                picks.push((base + rng.zipf(&self.zipf[block][ri]) as u64, AccessKind::Write));
            }
        }
        let pr = Self::draw(rng, spec.private_reads);
        let pw = Self::draw(rng, spec.private_writes);
        let cursor = &mut self.private_cursor[thread];
        for i in 0..(pr + pw) {
            *cursor += 1;
            let line = PRIVATE_BASE + thread as u64 * PRIVATE_STRIDE + (*cursor % PRIVATE_WINDOW);
            let kind = if i < pr { AccessKind::Read } else { AccessKind::Write };
            picks.push((line, kind));
        }
        // Deterministic Fisher–Yates shuffle so reads/writes and regions
        // interleave in time the way real code interleaves structures.
        for i in (1..picks.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            picks.swap(i, j);
        }
        let mut accesses = Vec::with_capacity(picks.len());
        let mut offset: Cycles = 0;
        for (line, kind) in picks {
            offset += Self::draw(rng, spec.spacing);
            accesses.push(Access { line, kind, offset });
        }
        let duration = offset + Self::draw(rng, spec.spacing);
        TxRequest {
            block,
            accesses,
            duration,
            think: Self::draw(rng, spec.think),
        }
    }
}

impl Workload for StampModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    fn next(&mut self, thread: ThreadId, rng: &mut SimRng) -> Option<TxRequest> {
        if self.remaining[thread] == 0 {
            return None;
        }
        self.remaining[thread] -= 1;
        let block = self.pick_block(rng);
        Some(self.build_trace(thread, block, rng))
    }

    fn regenerate(&mut self, thread: ThreadId, req: &mut TxRequest, rng: &mut SimRng) {
        let block = req.block;
        let think = req.think;
        *req = self.build_trace(thread, block, rng);
        req.think = think;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_model(threads: usize, txs: usize) -> StampModel {
        StampModel::new(
            "test",
            vec![
                StampBlock {
                    name: "a",
                    weight: 3.0,
                    regions: vec![RegionUse {
                        region: 0,
                        lines: 128,
                        theta: 0.5,
                        reads: (5, 10),
                        writes: (1, 3),
                    }],
                    ..StampBlock::default()
                },
                StampBlock {
                    name: "b",
                    weight: 1.0,
                    regions: vec![RegionUse {
                        region: 1,
                        lines: 64,
                        theta: 0.0,
                        reads: (2, 4),
                        writes: (0, 1),
                    }],
                    ..StampBlock::default()
                },
            ],
            threads,
            txs,
        )
    }

    #[test]
    fn traces_well_formed_and_quota_respected() {
        let mut m = simple_model(2, 50);
        let mut rng = SimRng::new(1);
        let mut count = 0;
        while let Some(req) = m.next(0, &mut rng) {
            assert!(req.is_well_formed());
            assert!(req.block < 2);
            count += 1;
        }
        assert_eq!(count, 50);
        assert!(m.next(0, &mut rng).is_none());
        assert!(m.next(1, &mut rng).is_some());
    }

    #[test]
    fn block_mix_follows_weights() {
        let mut m = simple_model(1, 4000);
        let mut rng = SimRng::new(2);
        let mut counts = [0usize; 2];
        while let Some(req) = m.next(0, &mut rng) {
            counts[req.block] += 1;
        }
        // Weight 3:1 → roughly 3000/1000.
        assert!((2_700..3_300).contains(&counts[0]), "counts {counts:?}");
    }

    #[test]
    fn regions_are_disjoint_between_ids() {
        let mut m = simple_model(1, 200);
        let mut rng = SimRng::new(3);
        let mut region0_lines = std::collections::HashSet::new();
        let mut region1_lines = std::collections::HashSet::new();
        while let Some(req) = m.next(0, &mut rng) {
            for a in &req.accesses {
                if a.line < PRIVATE_BASE {
                    if req.block == 0 {
                        region0_lines.insert(a.line);
                    } else {
                        region1_lines.insert(a.line);
                    }
                }
            }
        }
        assert!(region0_lines.is_disjoint(&region1_lines));
    }

    #[test]
    fn regenerate_preserves_block_and_think() {
        let mut m = simple_model(1, 10);
        let mut rng = SimRng::new(4);
        let mut req = m.next(0, &mut rng).unwrap();
        let (block, think) = (req.block, req.think);
        m.regenerate(0, &mut req, &mut rng);
        assert_eq!(req.block, block);
        assert_eq!(req.think, think);
        assert!(req.is_well_formed());
    }

    #[test]
    fn private_lines_differ_between_threads() {
        let mut m = simple_model(2, 5);
        let mut rng = SimRng::new(5);
        let collect = |m: &mut StampModel, th: usize, rng: &mut SimRng| {
            let mut lines = std::collections::HashSet::new();
            while let Some(req) = m.next(th, rng) {
                for a in &req.accesses {
                    if a.line >= PRIVATE_BASE {
                        lines.insert(a.line);
                    }
                }
            }
            lines
        };
        let l0 = collect(&mut m, 0, &mut rng);
        let l1 = collect(&mut m, 1, &mut rng);
        assert!(l0.is_disjoint(&l1));
    }
}
