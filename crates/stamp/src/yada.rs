//! Yada: Delaunay mesh refinement.
//!
//! Refinement transactions grow a *cavity* around a bad triangle — reading
//! hundreds of mesh elements and rewriting tens of them — plus work-queue
//! operations to fetch the next bad element. The footprints are large
//! enough to stress the HTM's write-set geometry (especially when two
//! hyper-threads share an L1), cavities overlap often, and transactions
//! are long; the paper's Figure 3h shows *every* policy below sequential
//! speed (0.2–1.0), with Seer degrading the least. This is the benchmark
//! that exercises Seer's core locks hardest.

use crate::model::{RegionUse, StampBlock, StampModel};

const MESH: u64 = 0;
const WORK_QUEUE: u64 = 1;

/// Default transactions per thread at scale 1.
pub const DEFAULT_TXS: usize = 120;

/// Builds the yada model for `threads` threads.
pub fn model(threads: usize, txs_per_thread: usize) -> StampModel {
    let blocks = vec![
        StampBlock {
            name: "refine-cavity",
            weight: 6.0,
            regions: vec![RegionUse {
                region: MESH,
                lines: 131_072,
                theta: 0.1,
                reads: (80, 200),
                writes: (100, 210),
            }],
            private_reads: (20, 50),
            private_writes: (10, 25),
            spacing: (4, 9),
            think: (60, 160),
        },
        StampBlock {
            name: "queue-fetch",
            weight: 3.0,
            regions: vec![RegionUse {
                region: WORK_QUEUE,
                lines: 12,
                theta: 0.6,
                reads: (1, 3),
                writes: (1, 2),
            }],
            private_reads: (2, 5),
            private_writes: (0, 1),
            spacing: (4, 9),
            think: (40, 100),
        },
        StampBlock {
            name: "queue-push",
            weight: 2.0,
            regions: vec![RegionUse {
                region: WORK_QUEUE,
                lines: 12,
                theta: 0.6,
                reads: (1, 2),
                writes: (1, 2),
            }],
            private_reads: (1, 4),
            private_writes: (0, 1),
            spacing: (4, 9),
            think: (40, 100),
        },
        StampBlock {
            name: "boundary-fix",
            weight: 1.0,
            regions: vec![RegionUse {
                region: MESH,
                lines: 131_072,
                theta: 0.1,
                reads: (30, 80),
                writes: (10, 25),
            }],
            private_reads: (8, 18),
            private_writes: (2, 6),
            spacing: (4, 9),
            think: (60, 160),
        },
    ];
    StampModel::new("yada", blocks, threads, txs_per_thread)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seer_runtime::Workload;
    use seer_sim::SimRng;

    #[test]
    fn cavity_transactions_are_large() {
        let mut m = model(1, 60);
        let mut rng = SimRng::new(6);
        let mut max_writes = 0usize;
        while let Some(req) = m.next(0, &mut rng) {
            if req.block == 0 {
                let writes = req
                    .accesses
                    .iter()
                    .filter(|a| matches!(a.kind, seer_htm::AccessKind::Write))
                    .count();
                max_writes = max_writes.max(writes);
            }
        }
        // Large enough to overflow a 4-way-shared write geometry sometimes.
        assert!(max_writes > 50, "cavity writes too small: {max_writes}");
    }

    #[test]
    fn four_block_structure() {
        let m = model(2, 10);
        assert_eq!(m.num_blocks(), 4);
        assert_eq!(m.block_name(0), "refine-cavity");
    }
}
