//! Workload characterization tests: each STAMP model must exhibit the
//! statistical signature its real counterpart is known for (footprint
//! sizes, read/write balance, transaction-length ordering, contention
//! regime). These pin the calibration that `EXPERIMENTS.md` depends on.

use seer_baselines::Rtm;
use seer_htm::AccessKind;
use seer_runtime::{run, DriverConfig, RunMetrics, Workload};
use seer_sim::SimRng;
use seer_stamp::Benchmark;

/// Average accesses and write fraction of a model's transaction stream.
fn footprint(b: Benchmark, txs: usize) -> (f64, f64) {
    let mut m = b.instantiate(1, txs);
    let mut rng = SimRng::new(99);
    let (mut total, mut writes, mut n) = (0usize, 0usize, 0usize);
    while let Some(req) = m.next(0, &mut rng) {
        total += req.accesses.len();
        writes += req
            .accesses
            .iter()
            .filter(|a| matches!(a.kind, AccessKind::Write))
            .count();
        n += 1;
    }
    (total as f64 / n as f64, writes as f64 / total as f64)
}

fn contended_run(b: Benchmark, threads: usize) -> RunMetrics {
    let mut w = b.instantiate(threads, (b.default_txs() / 4).max(30));
    let mut s = Rtm::default();
    let mut cfg = DriverConfig::paper_machine(threads, 12);
    cfg.costs.async_abort_per_cycle = 0.0;
    run(&mut w, &mut s, &cfg)
}

#[test]
fn transaction_length_ordering_matches_stamp() {
    // STAMP's published characterization orders mean transaction sizes:
    // ssca2 (tiny) < kmeans < intruder/genome < vacation < yada (huge).
    let (ssca2, _) = footprint(Benchmark::Ssca2, 400);
    let (kmeans, _) = footprint(Benchmark::KmeansHigh, 400);
    let (genome, _) = footprint(Benchmark::Genome, 400);
    let (vacation, _) = footprint(Benchmark::VacationHigh, 400);
    let (yada, _) = footprint(Benchmark::Yada, 100);
    assert!(ssca2 < kmeans, "ssca2 {ssca2:.1} !< kmeans {kmeans:.1}");
    assert!(kmeans < genome, "kmeans {kmeans:.1} !< genome {genome:.1}");
    assert!(genome < vacation, "genome {genome:.1} !< vacation {vacation:.1}");
    assert!(vacation < yada, "vacation {vacation:.1} !< yada {yada:.1}");
    assert!(yada > 150.0, "yada mix must be dominated by large cavities: {yada:.1}");
}

#[test]
fn read_write_balance_per_benchmark() {
    // Vacation is read-dominated (tree lookups); kmeans writes heavily
    // (center updates); yada sits in between but with a large absolute
    // write count.
    let (_, vacation_wf) = footprint(Benchmark::VacationLow, 300);
    let (_, kmeans_wf) = footprint(Benchmark::KmeansHigh, 300);
    assert!(vacation_wf < 0.25, "vacation writes too much: {vacation_wf:.2}");
    assert!(kmeans_wf > 0.2, "kmeans writes too little: {kmeans_wf:.2}");
}

#[test]
fn contention_regimes_at_eight_threads() {
    // ssca2 ~conflict-free; kmeans-high conflict-heavy; the rest between.
    let ssca2 = contended_run(Benchmark::Ssca2, 8);
    assert!(ssca2.abort_ratio() < 0.05, "ssca2 aborts: {}", ssca2.abort_ratio());
    let kmeans = contended_run(Benchmark::KmeansHigh, 8);
    assert!(
        kmeans.abort_ratio() > 0.8,
        "kmeans-high should be hot: {}",
        kmeans.abort_ratio()
    );
    let low = contended_run(Benchmark::KmeansLow, 8);
    assert!(
        low.abort_ratio() < kmeans.abort_ratio(),
        "kmeans-low ({}) must be cooler than high ({})",
        low.abort_ratio(),
        kmeans.abort_ratio()
    );
}

#[test]
fn vacation_high_is_hotter_than_low() {
    let hi = contended_run(Benchmark::VacationHigh, 8);
    let lo = contended_run(Benchmark::VacationLow, 8);
    assert!(
        hi.abort_ratio() > lo.abort_ratio(),
        "vacation-high ({}) must out-contend low ({})",
        hi.abort_ratio(),
        lo.abort_ratio()
    );
}

#[test]
fn yada_capacity_pressure_appears_only_under_smt() {
    let at4 = contended_run(Benchmark::Yada, 4);
    let at8 = contended_run(Benchmark::Yada, 8);
    assert!(
        at8.aborts.capacity > 4 * at4.aborts.capacity.max(1),
        "SMT sharing must multiply capacity aborts: {} -> {}",
        at4.aborts.capacity,
        at8.aborts.capacity
    );
}

#[test]
fn every_model_survives_the_full_policy_matrix_at_two_threads() {
    use seer::{Seer, SeerConfig};
    for b in Benchmark::STAMP
        .into_iter()
        .chain([Benchmark::HashmapLow, Benchmark::Labyrinth])
    {
        let mut w = b.instantiate(2, 25);
        let blocks = w.num_blocks();
        let mut s = Seer::new(SeerConfig::full(), 2, blocks);
        let m = run(&mut w, &mut s, &DriverConfig::paper_machine(2, 77));
        assert_eq!(m.commits, 50, "{}", b.name());
        assert!(!m.truncated, "{}", b.name());
    }
}

#[test]
fn hashmap_low_lives_up_to_its_name() {
    let m = contended_run(Benchmark::HashmapLow, 8);
    assert!(
        m.abort_ratio() < 0.05,
        "hashmap-low should barely abort: {}",
        m.abort_ratio()
    );
    assert_eq!(m.fallbacks, 0);
}
