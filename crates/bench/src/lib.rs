//! # seer-bench — Criterion benchmarks
//!
//! One bench group per paper artefact (the *timed* complement of the
//! `seer-harness` binaries, which print the actual tables/figures), plus
//! microbenchmarks of the hot paths and the ablation benches called out in
//! `DESIGN.md` §5:
//!
//! * `fig3_speedups` — one simulated run per (benchmark, Figure 3 policy);
//! * `table3_modes`, `fig4_overhead`, `fig5_ablation` — the experiment
//!   kernels behind the corresponding harness binaries;
//! * `htm_microbench` — conflict-detection and line-set hot paths;
//! * `inference_microbench` — Alg. 5 lock-scheme computation and Gaussian
//!   percentile math;
//! * `ablations` — conflict-resolution policy, multi-CAS lock acquisition,
//!   and statistics merge period.
//!
//! Run with `cargo bench --workspace`; each bench uses a reduced workload
//! scale so a full sweep stays in the minutes range.

/// Workload scale factor shared by the simulation benches.
pub const BENCH_SCALE: f64 = 0.05;

/// Seeds used by benches (a single seed: Criterion already repeats).
pub const BENCH_SEED: u64 = 0xBE7C;
