//! # seer-bench — Criterion benchmarks
//!
//! One bench group per paper artefact (the *timed* complement of the
//! `seer-harness` binaries, which print the actual tables/figures), plus
//! microbenchmarks of the hot paths and the ablation benches called out in
//! `DESIGN.md` §5:
//!
//! * `fig3_speedups` — one simulated run per (benchmark, Figure 3 policy),
//!   plus the whole Figure 3 plan through the executor at 1 and 4 jobs;
//! * `table3_modes`, `fig4_overhead`, `fig5_ablation` — the experiment
//!   kernels behind the corresponding harness binaries;
//! * `htm_microbench` — conflict-detection and line-set hot paths;
//! * `inference_microbench` — Alg. 5 lock-scheme computation and Gaussian
//!   percentile math;
//! * `ablations` — conflict-resolution policy, multi-CAS lock acquisition,
//!   and statistics merge period.
//!
//! The simulation benches go through the same [`CellExecutor`] surface the
//! harness binaries use, with a **fresh executor per iteration** so every
//! timed run is a cache miss — the quantity of interest is the simulation
//! cost, not the (near-zero) cache-hit cost.
//!
//! Run with `cargo bench --workspace`; each bench uses a reduced workload
//! scale so a full sweep stays in the minutes range.

use seer_harness::{Cell, CellExecutor, HarnessConfig};
use seer_runtime::{RunMetrics, TraceSink};
use seer_scenario::RunRequest;

pub mod harness;

/// Workload scale factor shared by the simulation benches.
pub const BENCH_SCALE: f64 = 0.05;

/// Seeds used by benches (a single seed: Criterion already repeats).
pub const BENCH_SEED: u64 = 0xBE7C;

/// A cold cell executor at the shared bench scale.
pub fn bench_executor(jobs: usize) -> CellExecutor {
    CellExecutor::new(HarnessConfig {
        seeds: 1,
        scale: BENCH_SCALE,
        jobs,
    })
}

/// Simulates one cell at seed 0 through a cold executor (always a cache
/// miss: the timed quantity is the simulation itself).
pub fn simulate_cold(cell: Cell) -> RunMetrics {
    bench_executor(1).metrics(cell, 0)
}

/// The traced twin of [`simulate_cold`]: the same cell, seed and scale
/// with the run's trace streams handed to `sink`. With a
/// `NullTraceSink` this must cost nothing beyond one cached boolean per
/// emission site — the `trace_overhead` bench pins that.
pub fn simulate_cold_traced(cell: Cell, sink: &mut dyn TraceSink) -> RunMetrics {
    RunRequest::cell(cell).scale(BENCH_SCALE).traced(sink).run()
}
