//! The `seer bench` measurement harness: a pinned workload matrix timed
//! deterministically, reported as JSON, and gated in CI against a
//! committed baseline (`BENCH_006.json`).
//!
//! Two kinds of measurement, with different gating rules (DESIGN.md §12):
//!
//! * **Determinism facts** — per-cell event counts and trace hashes. These
//!   are pure functions of `(cell, seed, scale)` and must match the
//!   baseline *exactly*; any drift means the kernel changed behaviour, not
//!   just speed.
//! * **Throughput ratios** — the event-queue microbench times the current
//!   [`seer_sim::EventQueue`] against [`ReferenceHeapQueue`], a `BinaryHeap`
//!   re-implementation of the pre-calendar-queue kernel doing the exact
//!   same per-operation work (watermark clamp, sequence numbering, FNV
//!   trace fold). The `speedup_vs_heap` ratio is machine-independent — both
//!   sides run in the same process on the same host — so it is the number
//!   the CI perf job gates with a tolerance band. Absolute events/sec and
//!   cells/sec are reported for humans but never gated: they move with the
//!   host CPU.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use seer::inference::MIN_DISCRIMINATIVE_SIGMA;
use seer::stats::MergedStats;
use seer::{infer_conflict_pairs_with, InferenceEngine, Thresholds};
use seer_harness::{parallel_map, Cell, Json, PolicyKind, ToJson};
use seer_scenario::RunRequest;
use seer_sim::{Cycles, EventQueue, SimRng};
use seer_stamp::Benchmark;

/// Current report schema version (bumped on breaking layout changes).
pub const SCHEMA_VERSION: u64 = 1;

/// Harness seed for the workload matrix (everything runs at seed 0, like
/// the conformance replay fixtures' first column).
pub const MATRIX_SEED: u64 = 0;

/// Event counts the queue microbench pushes through per (queue, n) pair.
const QUEUE_OPS_SMOKE: usize = 200_000;
const QUEUE_OPS_FULL: usize = 2_000_000;

/// Problem sizes of the queue microbench — mirrors the `sim_microbench`
/// Criterion bench (`event_queue/push_pop`).
///
/// Depths chosen so the measurement is sensitive to *queue* cost: at a
/// few hundred pending events the drain is bound by the serial FNV
/// trace-hash fold both queues share (every cycle of calendar work hides
/// under the hash chain's multiply latency, and the heap's advantage of
/// staying L1-resident caps the observable ratio near 1.5× regardless of
/// implementation). From ~10k events the heap's sift-downs leave L1 and
/// the structural O(log n) vs O(1) difference dominates the signal.
pub const QUEUE_SIZES: [usize; 2] = [10_000, 100_000];

/// How hard `seer bench` works: a quick CI-sized pass, a fuller local
/// one, or the inference-only group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchMode {
    /// CI-sized: small workload scale, few repeats, seconds of wall clock.
    Smoke,
    /// Local: larger scale and more repeats for tighter numbers.
    Full,
    /// Only the full-vs-incremental inference group — the CI perf job's
    /// quick check that the incremental engine still pays for itself. No
    /// queue or cell tables; the report carries only the inference rows.
    Inference,
}

impl BenchMode {
    /// Parses `smoke` / `full` / `inference`.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "smoke" => Some(BenchMode::Smoke),
            "full" => Some(BenchMode::Full),
            "inference" => Some(BenchMode::Inference),
            _ => None,
        }
    }

    /// The mode's report label.
    pub fn name(self) -> &'static str {
        match self {
            BenchMode::Smoke => "smoke",
            BenchMode::Full => "full",
            BenchMode::Inference => "inference",
        }
    }

    /// Workload scale for the cell matrix.
    pub fn scale(self) -> f64 {
        match self {
            BenchMode::Smoke | BenchMode::Inference => 0.05,
            BenchMode::Full => 0.25,
        }
    }

    /// Default timing repeats per measurement (the minimum is kept).
    pub fn default_repeats(self) -> usize {
        match self {
            BenchMode::Smoke | BenchMode::Inference => 2,
            BenchMode::Full => 3,
        }
    }

    fn queue_ops(self) -> usize {
        match self {
            BenchMode::Smoke | BenchMode::Inference => QUEUE_OPS_SMOKE,
            BenchMode::Full => QUEUE_OPS_FULL,
        }
    }

    /// Inference rounds timed per `(blocks, variant)` measurement.
    fn inference_rounds(self) -> usize {
        match self {
            BenchMode::Smoke | BenchMode::Inference => 64,
            BenchMode::Full => 512,
        }
    }
}

/// The pinned workload matrix: 4 benchmarks × 2 policies × 2 thread
/// counts = 16 cells, all at seed 0. Chosen to cover low and high
/// contention, both the null-ish baseline (`rtm`) and the full scheduler
/// (`seer`), and both SMT-free and SMT-saturated thread counts.
pub fn bench_matrix() -> Vec<Cell> {
    let benchmarks = [
        Benchmark::Genome,
        Benchmark::Ssca2,
        Benchmark::KmeansHigh,
        Benchmark::HashmapLow,
    ];
    let policies = [PolicyKind::Rtm, PolicyKind::Seer];
    let thread_counts = [4usize, 8];
    let mut cells = Vec::with_capacity(benchmarks.len() * policies.len() * thread_counts.len());
    for &benchmark in &benchmarks {
        for &policy in &policies {
            for &threads in &thread_counts {
                cells.push(Cell { benchmark, policy, threads });
            }
        }
    }
    cells
}

// ---- reference heap queue ----------------------------------------------

struct HeapEntry<E> {
    time: Cycles,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for HeapEntry<E> {}

impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: earliest event on top of the max-heap.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A `BinaryHeap`-backed event queue doing exactly the per-operation work
/// of the pre-calendar-queue simulation kernel: watermark clamp and
/// sequence numbering on push, watermark update and FNV-1a trace folding
/// on pop. The timing baseline `speedup_vs_heap` is measured against —
/// kept here (not in `seer-sim`) so the kernel carries no dead code.
pub struct ReferenceHeapQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    seq: u64,
    watermark: Cycles,
    trace_hash: u64,
}

impl<E> Default for ReferenceHeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ReferenceHeapQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            watermark: 0,
            trace_hash: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Schedules `payload` at `time` (clamped to the watermark).
    pub fn push(&mut self, time: Cycles, payload: E) {
        let time = time.max(self.watermark);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(HeapEntry { time, seq, payload });
    }

    /// Pops the earliest event, folding it into the trace digest.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        let entry = self.heap.pop()?;
        self.watermark = entry.time;
        for word in [entry.time, entry.seq] {
            for byte in word.to_le_bytes() {
                self.trace_hash ^= u64::from(byte);
                self.trace_hash = self.trace_hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        Some((entry.time, entry.payload))
    }

    /// Digest of every popped `(time, seq)` pair.
    pub fn trace_hash(&self) -> u64 {
        self.trace_hash
    }
}

// ---- measurements ------------------------------------------------------

/// One row of the queue microbench: both queues pushing and draining `n`
/// events with the `sim_microbench` time distribution.
#[derive(Debug, Clone)]
pub struct QueueBench {
    /// Events per push-all/pop-all iteration.
    pub n: usize,
    /// Current kernel queue throughput, in events (pops) per second.
    pub queue_events_per_sec: f64,
    /// Reference `BinaryHeap` queue throughput.
    pub heap_events_per_sec: f64,
    /// `queue_events_per_sec / heap_events_per_sec` — the gated ratio.
    pub speedup_vs_heap: f64,
}

/// One timed cell of the workload matrix.
#[derive(Debug, Clone)]
pub struct CellBench {
    /// Workload name.
    pub benchmark: &'static str,
    /// Policy label.
    pub policy: &'static str,
    /// Simulated threads.
    pub threads: usize,
    /// Harness seed.
    pub seed: u64,
    /// DES events the run dispatched — a determinism fact, gated exactly.
    pub events: u64,
    /// The run's schedule digest — a determinism fact, gated exactly.
    pub trace_hash: u64,
    /// Events per second of the fastest repeat.
    pub events_per_sec: f64,
    /// Wall-clock milliseconds of the fastest repeat.
    pub wall_ms: f64,
}

/// One row of the inference microbench: full-recompute vs incremental
/// decision rounds at one block count under a sparse update stream.
#[derive(Debug, Clone)]
pub struct InferenceBench {
    /// Atomic blocks (`n`; a round covers `n²` pairs).
    pub blocks: usize,
    /// Rows dirtied between consecutive rounds (≤ 10% of `blocks`).
    pub dirty_rows: usize,
    /// Full-recompute rounds per second — the baseline fact, retained so
    /// later reports can see both absolute trajectories.
    pub full_rounds_per_sec: f64,
    /// Incremental-engine rounds per second over the same update stream.
    pub incremental_rounds_per_sec: f64,
    /// `incremental_rounds_per_sec / full_rounds_per_sec` — the gated
    /// ratio (host-independent: both sides run in the same process).
    pub speedup_vs_full: f64,
}

/// A full `seer bench` report.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// The mode the numbers were measured under.
    pub mode: BenchMode,
    /// Queue microbench rows, one per [`QUEUE_SIZES`] entry (empty in
    /// inference mode).
    pub queue: Vec<QueueBench>,
    /// One row per cell of [`bench_matrix`] (empty in inference mode).
    pub cells: Vec<CellBench>,
    /// Inference microbench rows, one per [`INFERENCE_SIZES`] entry.
    pub inference: Vec<InferenceBench>,
}

impl BenchReport {
    /// Serializes the report (schema version [`SCHEMA_VERSION`]).
    pub fn to_json(&self) -> Json {
        let queue: Vec<Json> = self
            .queue
            .iter()
            .map(|q| {
                Json::object([
                    ("n", q.n.to_json()),
                    ("queue_events_per_sec", q.queue_events_per_sec.to_json()),
                    ("heap_events_per_sec", q.heap_events_per_sec.to_json()),
                    ("speedup_vs_heap", q.speedup_vs_heap.to_json()),
                ])
            })
            .collect();
        let cells: Vec<Json> = self
            .cells
            .iter()
            .map(|c| {
                Json::object([
                    ("benchmark", c.benchmark.to_json()),
                    ("policy", c.policy.to_json()),
                    ("threads", c.threads.to_json()),
                    ("seed", c.seed.to_json()),
                    ("events", c.events.to_json()),
                    ("trace_hash", c.trace_hash.to_json()),
                    ("events_per_sec", c.events_per_sec.to_json()),
                    ("wall_ms", c.wall_ms.to_json()),
                ])
            })
            .collect();
        let inference: Vec<Json> = self
            .inference
            .iter()
            .map(|r| {
                Json::object([
                    ("blocks", r.blocks.to_json()),
                    ("dirty_rows", r.dirty_rows.to_json()),
                    ("full_rounds_per_sec", r.full_rounds_per_sec.to_json()),
                    ("incremental_rounds_per_sec", r.incremental_rounds_per_sec.to_json()),
                    ("speedup_vs_full", r.speedup_vs_full.to_json()),
                ])
            })
            .collect();
        let total_events: u64 = self.cells.iter().map(|c| c.events).sum();
        let total_secs: f64 = self.cells.iter().map(|c| c.wall_ms / 1e3).sum();
        let totals = Json::object([
            ("cells", self.cells.len().to_json()),
            ("events", total_events.to_json()),
            ("cells_per_sec", safe_rate(self.cells.len() as f64, total_secs).to_json()),
            ("events_per_sec", safe_rate(total_events as f64, total_secs).to_json()),
        ]);
        Json::object([
            ("schema_version", SCHEMA_VERSION.to_json()),
            ("mode", self.mode.name().to_json()),
            ("queue", Json::Array(queue)),
            ("cells", Json::Array(cells)),
            ("inference", Json::Array(inference)),
            ("totals", totals),
        ])
    }

    /// Writes the pretty-printed report to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        let mut text = self.to_json().to_string_pretty();
        text.push('\n');
        std::fs::write(path, text)
    }
}

fn safe_rate(amount: f64, secs: f64) -> f64 {
    if secs > 0.0 {
        amount / secs
    } else {
        0.0
    }
}

/// Runs the whole harness: queue microbench plus the timed cell matrix
/// (fanned out over `jobs` OS threads; timing happens inside each worker,
/// and only ratios/determinism facts are gated, so parallel noise cannot
/// fail CI).
pub fn run_bench(mode: BenchMode, repeats: usize, jobs: usize) -> BenchReport {
    let inference = inference_microbench(mode, repeats);
    if mode == BenchMode::Inference {
        return BenchReport { mode, queue: Vec::new(), cells: Vec::new(), inference };
    }
    let queue = queue_microbench(mode.queue_ops(), repeats);
    let matrix = bench_matrix();
    let cells = parallel_map(&matrix, jobs, |&cell| time_cell(cell, mode, repeats));
    BenchReport { mode, queue, cells, inference }
}

/// Times one cell: `repeats` identical runs, keeping the fastest.
fn time_cell(cell: Cell, mode: BenchMode, repeats: usize) -> CellBench {
    let mut best = f64::INFINITY;
    let mut events = 0u64;
    let mut trace_hash = 0u64;
    for rep in 0..repeats.max(1) {
        let start = Instant::now();
        let m = RunRequest::cell(cell).seed(MATRIX_SEED).scale(mode.scale()).run();
        let secs = start.elapsed().as_secs_f64();
        best = best.min(secs);
        if rep == 0 {
            events = m.events;
            trace_hash = m.trace_hash;
        } else {
            // Repeats are re-runs of a pure function; any drift here is a
            // determinism bug worth failing loudly on.
            assert_eq!(m.events, events, "event count drifted across repeats: {cell:?}");
            assert_eq!(m.trace_hash, trace_hash, "trace hash drifted across repeats: {cell:?}");
        }
    }
    CellBench {
        benchmark: cell.benchmark.name(),
        policy: cell.policy.name(),
        threads: cell.threads,
        seed: MATRIX_SEED,
        events,
        trace_hash,
        events_per_sec: safe_rate(events as f64, best),
        wall_ms: best * 1e3,
    }
}

/// The queue microbench: push `n` events with the `sim_microbench` time
/// distribution (seeded RNG, times below 2²⁰), drain, repeat to cover
/// `ops` total events; fastest repeat wins. One queue lives across all
/// iterations with virtual time advancing by a full 2²⁰-cycle window per
/// iteration — the steady-state shape of a real simulation, where the
/// kernel constructs its queue once per run and then pushes and pops for
/// millions of cycles. Construction and warm-up allocations therefore
/// amortize out for both queues alike, and the ratio measures sustained
/// push/pop throughput rather than allocator behaviour. Both queues run
/// in the same process, so their ratio is host-independent.
fn queue_microbench(ops: usize, repeats: usize) -> Vec<QueueBench> {
    QUEUE_SIZES
        .iter()
        .map(|&n| {
            let mut rng = SimRng::new(7);
            let times: Vec<Cycles> = (0..n).map(|_| rng.below(1 << 20)).collect();
            let iters = (ops / n).max(1);
            let queue_secs = best_of(repeats, || {
                let mut q = EventQueue::new();
                for iter in 0..iters {
                    let base = (iter as Cycles) << 20;
                    for &t in &times {
                        q.push(base + t, ());
                    }
                    while q.pop().is_some() {}
                }
                std::hint::black_box(q.trace_hash());
            });
            let heap_secs = best_of(repeats, || {
                let mut q = ReferenceHeapQueue::new();
                for iter in 0..iters {
                    let base = (iter as Cycles) << 20;
                    for &t in &times {
                        q.push(base + t, ());
                    }
                    while q.pop().is_some() {}
                }
                std::hint::black_box(q.trace_hash());
            });
            let total = (n * iters) as f64;
            let queue_events_per_sec = safe_rate(total, queue_secs);
            let heap_events_per_sec = safe_rate(total, heap_secs);
            QueueBench {
                n,
                queue_events_per_sec,
                heap_events_per_sec,
                speedup_vs_heap: if heap_events_per_sec > 0.0 {
                    queue_events_per_sec / heap_events_per_sec
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// Block counts of the inference microbench — spanning STAMP-sized rows
/// (where incrementality is mostly assembly overhead) to the many-blocks
/// regime (`synth@blocks=256`) where the `O(n²)` full recompute bites.
pub const INFERENCE_SIZES: [usize; 3] = [16, 64, 256];

/// Deterministically populated merged matrices (xorshift event stream) —
/// every row carries signal, so a full recompute does real work.
fn populated_stats(blocks: usize, seed: u64) -> MergedStats {
    let mut m = MergedStats::new(blocks);
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..blocks * 16 {
        let x = next() as usize % blocks;
        let y = next() as usize % blocks;
        if next() % 3 == 0 {
            m.add_commit(x, [y].into_iter());
        } else {
            m.add_abort(x, [y].into_iter());
        }
    }
    m
}

/// The full-vs-incremental inference microbench: for each
/// [`INFERENCE_SIZES`] block count, replay the same sparse update stream
/// (≤ 10% of rows dirtied per round) through (a) a full Alg. 5 recompute
/// per round and (b) the persistent [`InferenceEngine`]; report rounds
/// per second for both and their ratio. A correctness pre-pass asserts
/// the two produce identical pair lists at every round before anything
/// is timed.
pub fn inference_microbench(mode: BenchMode, repeats: usize) -> Vec<InferenceBench> {
    let rounds = mode.inference_rounds();
    let th = Thresholds::default();
    INFERENCE_SIZES
        .iter()
        .map(|&n| {
            let dirty_rows = (n / 10).max(1);
            let base = populated_stats(n, 0x5EE2);
            // Pre-drawn sparse update stream: `dirty_rows` distinct rows
            // register one abort each between consecutive rounds.
            let mut state = 0x0BAD_5EEDu64 | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let stream: Vec<Vec<(usize, usize)>> = (0..rounds)
                .map(|_| {
                    let mut xs: Vec<usize> = Vec::with_capacity(dirty_rows);
                    while xs.len() < dirty_rows {
                        let x = next() as usize % n;
                        if !xs.contains(&x) {
                            xs.push(x);
                        }
                    }
                    xs.into_iter().map(|x| (x, next() as usize % n)).collect()
                })
                .collect();
            let apply = |stats: &mut MergedStats, round: &[(usize, usize)]| {
                for &(x, y) in round {
                    stats.add_abort(x, [y].into_iter());
                }
            };

            // Correctness pre-pass: the engine must match the reference
            // at every round of the exact stream being timed.
            {
                let mut stats = base.clone();
                let mut engine = InferenceEngine::new();
                engine.round(&mut stats, th, MIN_DISCRIMINATIVE_SIGMA);
                for round in &stream {
                    apply(&mut stats, round);
                    let reference = infer_conflict_pairs_with(&stats, th, MIN_DISCRIMINATIVE_SIGMA);
                    let got = engine.round(&mut stats, th, MIN_DISCRIMINATIVE_SIGMA);
                    assert_eq!(got, &reference[..], "incremental diverged at n={n}");
                }
            }

            let full_secs = best_of(repeats, || {
                let mut stats = base.clone();
                for round in &stream {
                    apply(&mut stats, round);
                    std::hint::black_box(
                        infer_conflict_pairs_with(&stats, th, MIN_DISCRIMINATIVE_SIGMA).len(),
                    );
                }
            });
            let incremental_secs = best_of(repeats, || {
                let mut stats = base.clone();
                let mut engine = InferenceEngine::new();
                // The priming round is timed too — the engine pays it once
                // per scheduler lifetime, the reference pays full price
                // every round.
                engine.round(&mut stats, th, MIN_DISCRIMINATIVE_SIGMA);
                for round in &stream {
                    apply(&mut stats, round);
                    std::hint::black_box(engine.round(&mut stats, th, MIN_DISCRIMINATIVE_SIGMA).len());
                }
            });
            let full_rounds_per_sec = safe_rate(rounds as f64, full_secs);
            let incremental_rounds_per_sec = safe_rate(rounds as f64, incremental_secs);
            InferenceBench {
                blocks: n,
                dirty_rows,
                full_rounds_per_sec,
                incremental_rounds_per_sec,
                speedup_vs_full: if full_rounds_per_sec > 0.0 {
                    incremental_rounds_per_sec / full_rounds_per_sec
                } else {
                    0.0
                },
            }
        })
        .collect()
}

fn best_of(repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

// ---- validation & baseline comparison ----------------------------------

fn field<'a>(json: &'a Json, key: &str, ctx: &str) -> Result<&'a Json, String> {
    json.get(key).ok_or_else(|| format!("{ctx}: missing field {key:?}"))
}

fn finite_positive(json: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    let v = field(json, key, ctx)?
        .as_f64()
        .ok_or_else(|| format!("{ctx}: {key} is not a number"))?;
    if !v.is_finite() || v <= 0.0 {
        return Err(format!("{ctx}: {key} = {v} is not finite and positive"));
    }
    Ok(v)
}

/// Checks a parsed report against the documented schema: version, mode,
/// non-empty queue and cell tables with well-typed fields (inference
/// mode instead requires a non-empty inference table and allows the
/// others to be empty), and totals consistent with the cell rows. The
/// `inference` section is optional in smoke/full reports — baselines
/// committed before it existed (`BENCH_006.json`) still validate.
pub fn validate_report(report: &Json) -> Result<(), String> {
    let version = field(report, "schema_version", "report")?
        .as_u64()
        .ok_or("report: schema_version is not an integer")?;
    if version != SCHEMA_VERSION {
        return Err(format!("report: schema_version {version} != {SCHEMA_VERSION}"));
    }
    let mode = field(report, "mode", "report")?
        .as_str()
        .ok_or("report: mode is not a string")?;
    let Some(parsed_mode) = BenchMode::parse(mode) else {
        return Err(format!("report: unknown mode {mode:?}"));
    };
    let inference_only = parsed_mode == BenchMode::Inference;

    let queue = field(report, "queue", "report")?
        .as_array()
        .ok_or("report: queue is not an array")?;
    if queue.is_empty() && !inference_only {
        return Err("report: queue table is empty".into());
    }
    for (i, row) in queue.iter().enumerate() {
        let ctx = format!("queue[{i}]");
        let n = field(row, "n", &ctx)?.as_u64().ok_or_else(|| format!("{ctx}: n is not an integer"))?;
        if n == 0 {
            return Err(format!("{ctx}: n must be positive"));
        }
        finite_positive(row, "queue_events_per_sec", &ctx)?;
        finite_positive(row, "heap_events_per_sec", &ctx)?;
        finite_positive(row, "speedup_vs_heap", &ctx)?;
    }

    let cells = field(report, "cells", "report")?
        .as_array()
        .ok_or("report: cells is not an array")?;
    if cells.is_empty() && !inference_only {
        return Err("report: cell table is empty".into());
    }
    let mut total_events = 0u64;
    for (i, row) in cells.iter().enumerate() {
        let ctx = format!("cells[{i}]");
        field(row, "benchmark", &ctx)?.as_str().ok_or_else(|| format!("{ctx}: benchmark is not a string"))?;
        field(row, "policy", &ctx)?.as_str().ok_or_else(|| format!("{ctx}: policy is not a string"))?;
        let threads = field(row, "threads", &ctx)?.as_u64().ok_or_else(|| format!("{ctx}: threads is not an integer"))?;
        if threads == 0 {
            return Err(format!("{ctx}: threads must be positive"));
        }
        field(row, "seed", &ctx)?.as_u64().ok_or_else(|| format!("{ctx}: seed is not an integer"))?;
        let events = field(row, "events", &ctx)?.as_u64().ok_or_else(|| format!("{ctx}: events is not an integer"))?;
        if events == 0 {
            return Err(format!("{ctx}: events must be positive"));
        }
        let hash = field(row, "trace_hash", &ctx)?.as_u64().ok_or_else(|| format!("{ctx}: trace_hash is not an integer"))?;
        if hash == 0 {
            return Err(format!("{ctx}: trace_hash must be non-zero"));
        }
        finite_positive(row, "events_per_sec", &ctx)?;
        finite_positive(row, "wall_ms", &ctx)?;
        total_events += events;
    }

    // The inference table: mandatory (and non-empty) in inference mode,
    // optional otherwise.
    match report.get("inference") {
        None if inference_only => return Err("report: inference table is missing".into()),
        None => {}
        Some(section) => {
            let rows = section.as_array().ok_or("report: inference is not an array")?;
            if rows.is_empty() && inference_only {
                return Err("report: inference table is empty".into());
            }
            for (i, row) in rows.iter().enumerate() {
                let ctx = format!("inference[{i}]");
                let blocks = field(row, "blocks", &ctx)?
                    .as_u64()
                    .ok_or_else(|| format!("{ctx}: blocks is not an integer"))?;
                if blocks == 0 {
                    return Err(format!("{ctx}: blocks must be positive"));
                }
                let dirty = field(row, "dirty_rows", &ctx)?
                    .as_u64()
                    .ok_or_else(|| format!("{ctx}: dirty_rows is not an integer"))?;
                if dirty == 0 || dirty > blocks {
                    return Err(format!("{ctx}: dirty_rows {dirty} out of range 1..={blocks}"));
                }
                finite_positive(row, "full_rounds_per_sec", &ctx)?;
                finite_positive(row, "incremental_rounds_per_sec", &ctx)?;
                finite_positive(row, "speedup_vs_full", &ctx)?;
            }
        }
    }

    let totals = field(report, "totals", "report")?;
    let t_cells = field(totals, "cells", "totals")?.as_u64().ok_or("totals: cells is not an integer")?;
    if t_cells as usize != cells.len() {
        return Err(format!("totals: cells {t_cells} != cell table length {}", cells.len()));
    }
    let t_events = field(totals, "events", "totals")?.as_u64().ok_or("totals: events is not an integer")?;
    if t_events != total_events {
        return Err(format!("totals: events {t_events} != sum of cell events {total_events}"));
    }
    if !cells.is_empty() {
        finite_positive(totals, "cells_per_sec", "totals")?;
        finite_positive(totals, "events_per_sec", "totals")?;
    }
    Ok(())
}

fn cell_key(row: &Json) -> (String, String, u64, u64) {
    (
        row.get("benchmark").and_then(Json::as_str).unwrap_or("").to_string(),
        row.get("policy").and_then(Json::as_str).unwrap_or("").to_string(),
        row.get("threads").and_then(Json::as_u64).unwrap_or(0),
        row.get("seed").and_then(Json::as_u64).unwrap_or(0),
    )
}

/// Compares a fresh report against the committed baseline. Returns the
/// list of regressions/mismatches (empty = the gate passes):
///
/// * modes must match — smoke numbers are only comparable to smoke numbers;
/// * every baseline cell must reappear with *identical* `events` and
///   `trace_hash` (determinism facts; no tolerance);
/// * every baseline queue row's `speedup_vs_heap` may drop at most
///   `tolerance` (fraction, e.g. 0.25) below the baseline ratio;
/// * likewise every baseline inference row's `speedup_vs_full` (keyed by
///   `(blocks, dirty_rows)`); baselines without an inference section gate
///   nothing there.
pub fn compare_reports(report: &Json, baseline: &Json, tolerance: f64) -> Vec<String> {
    let mut violations = Vec::new();

    let mode = report.get("mode").and_then(Json::as_str).unwrap_or("?");
    let base_mode = baseline.get("mode").and_then(Json::as_str).unwrap_or("?");
    if mode != base_mode {
        violations.push(format!(
            "mode mismatch: report is {mode:?} but baseline is {base_mode:?} \
             (run `seer bench --mode {base_mode}`)"
        ));
        return violations;
    }

    let empty = Vec::new();
    let cells = report.get("cells").and_then(Json::as_array).unwrap_or(&empty);
    for base_row in baseline.get("cells").and_then(Json::as_array).unwrap_or(&empty) {
        let key = cell_key(base_row);
        let Some(row) = cells.iter().find(|r| cell_key(r) == key) else {
            violations.push(format!("cell {key:?} present in baseline but missing from report"));
            continue;
        };
        let (events, base_events) = (
            row.get("events").and_then(Json::as_u64),
            base_row.get("events").and_then(Json::as_u64),
        );
        if events != base_events {
            violations.push(format!(
                "cell {key:?}: event count changed: {events:?} != baseline {base_events:?}"
            ));
        }
        let (hash, base_hash) = (
            row.get("trace_hash").and_then(Json::as_u64),
            base_row.get("trace_hash").and_then(Json::as_u64),
        );
        if hash != base_hash {
            violations.push(format!(
                "cell {key:?}: trace hash changed: {hash:?} != baseline {base_hash:?}"
            ));
        }
    }

    let queue = report.get("queue").and_then(Json::as_array).unwrap_or(&empty);
    for base_row in baseline.get("queue").and_then(Json::as_array).unwrap_or(&empty) {
        let n = base_row.get("n").and_then(Json::as_u64).unwrap_or(0);
        let Some(row) = queue.iter().find(|r| r.get("n").and_then(Json::as_u64) == Some(n)) else {
            violations.push(format!("queue row n={n} present in baseline but missing from report"));
            continue;
        };
        let base_ratio = base_row.get("speedup_vs_heap").and_then(Json::as_f64).unwrap_or(0.0);
        let ratio = row.get("speedup_vs_heap").and_then(Json::as_f64).unwrap_or(0.0);
        let floor = base_ratio * (1.0 - tolerance);
        if ratio < floor {
            violations.push(format!(
                "queue n={n}: speedup_vs_heap regressed to {ratio:.3} \
                 (baseline {base_ratio:.3}, tolerance floor {floor:.3})"
            ));
        }
    }

    let inference = report.get("inference").and_then(Json::as_array).unwrap_or(&empty);
    for base_row in baseline.get("inference").and_then(Json::as_array).unwrap_or(&empty) {
        let key = inference_key(base_row);
        let Some(row) = inference.iter().find(|r| inference_key(r) == key) else {
            violations.push(format!(
                "inference row (blocks={}, dirty_rows={}) present in baseline but missing from report",
                key.0, key.1
            ));
            continue;
        };
        let base_ratio = base_row.get("speedup_vs_full").and_then(Json::as_f64).unwrap_or(0.0);
        let ratio = row.get("speedup_vs_full").and_then(Json::as_f64).unwrap_or(0.0);
        let floor = base_ratio * (1.0 - tolerance);
        if ratio < floor {
            violations.push(format!(
                "inference blocks={}: speedup_vs_full regressed to {ratio:.3} \
                 (baseline {base_ratio:.3}, tolerance floor {floor:.3})",
                key.0
            ));
        }
    }
    violations
}

fn inference_key(row: &Json) -> (u64, u64) {
    (
        row.get("blocks").and_then(Json::as_u64).unwrap_or(0),
        row.get("dirty_rows").and_then(Json::as_u64).unwrap_or(0),
    )
}

/// Renders the performance *trajectory* from an older committed report
/// to a fresh one: per-queue-row speedup-ratio movement and per-cell
/// throughput movement, as human-readable lines. Unlike
/// [`compare_reports`] this never gates — absolute events/sec move with
/// the host and ratios drift within tolerance — it exists so a perf PR
/// diffs against the committed trajectory instead of only intra-file
/// ratios. The only hard error is a mode mismatch (smoke numbers are
/// not comparable to full numbers).
pub fn trend_lines(report: &Json, against: &Json) -> Result<Vec<String>, String> {
    let mode = report.get("mode").and_then(Json::as_str).unwrap_or("?");
    let against_mode = against.get("mode").and_then(Json::as_str).unwrap_or("?");
    if mode != against_mode {
        return Err(format!(
            "mode mismatch: report is {mode:?} but --against is {against_mode:?} \
             (trends are only meaningful within one mode)"
        ));
    }

    fn pct(now: f64, then: f64) -> String {
        if then <= 0.0 {
            return "n/a".into();
        }
        format!("{:+.1}%", (now / then - 1.0) * 100.0)
    }

    let mut lines = Vec::new();
    let empty = Vec::new();
    let queue = report.get("queue").and_then(Json::as_array).unwrap_or(&empty);
    for old_row in against.get("queue").and_then(Json::as_array).unwrap_or(&empty) {
        let n = old_row.get("n").and_then(Json::as_u64).unwrap_or(0);
        let Some(row) = queue.iter().find(|r| r.get("n").and_then(Json::as_u64) == Some(n)) else {
            lines.push(format!("queue n={n}: dropped from the matrix"));
            continue;
        };
        let then = old_row.get("speedup_vs_heap").and_then(Json::as_f64).unwrap_or(0.0);
        let now = row.get("speedup_vs_heap").and_then(Json::as_f64).unwrap_or(0.0);
        lines.push(format!(
            "queue n={n}: speedup_vs_heap {then:.3} -> {now:.3} ({})",
            pct(now, then)
        ));
    }
    let cells = report.get("cells").and_then(Json::as_array).unwrap_or(&empty);
    for old_row in against.get("cells").and_then(Json::as_array).unwrap_or(&empty) {
        let key = cell_key(old_row);
        let Some(row) = cells.iter().find(|r| cell_key(r) == key) else {
            lines.push(format!(
                "cell {}/{}/t{}/s{}: dropped from the matrix",
                key.0, key.1, key.2, key.3
            ));
            continue;
        };
        let then = old_row.get("events_per_sec").and_then(Json::as_f64).unwrap_or(0.0);
        let now = row.get("events_per_sec").and_then(Json::as_f64).unwrap_or(0.0);
        lines.push(format!(
            "cell {}/{}/t{}/s{}: {then:.0} -> {now:.0} events/s ({})",
            key.0,
            key.1,
            key.2,
            key.3,
            pct(now, then)
        ));
    }
    let inference = report.get("inference").and_then(Json::as_array).unwrap_or(&empty);
    for old_row in against.get("inference").and_then(Json::as_array).unwrap_or(&empty) {
        let key = inference_key(old_row);
        let Some(row) = inference.iter().find(|r| inference_key(r) == key) else {
            lines.push(format!("inference blocks={}: dropped from the matrix", key.0));
            continue;
        };
        let then = old_row.get("speedup_vs_full").and_then(Json::as_f64).unwrap_or(0.0);
        let now = row.get("speedup_vs_full").and_then(Json::as_f64).unwrap_or(0.0);
        lines.push(format!(
            "inference blocks={} (dirty {}): speedup_vs_full {then:.3} -> {now:.3} ({})",
            key.0,
            key.1,
            pct(now, then)
        ));
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_pinned_to_sixteen_cells() {
        let cells = bench_matrix();
        assert_eq!(cells.len(), 16);
        // No duplicates, everything at the two pinned thread counts.
        for c in &cells {
            assert!(c.threads == 4 || c.threads == 8);
        }
        let mut keys: Vec<_> = cells
            .iter()
            .map(|c| (c.benchmark.name(), c.policy.name(), c.threads))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 16);
    }

    #[test]
    fn reference_heap_queue_matches_the_kernel_queue() {
        // The timing baseline must do the same work as the real queue:
        // same pop schedule, same trace digest arithmetic.
        let mut rng = SimRng::new(11);
        let times: Vec<Cycles> = (0..2_000).map(|_| rng.below(1 << 20)).collect();
        let mut q = EventQueue::new();
        let mut r = ReferenceHeapQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
            r.push(t, i);
        }
        loop {
            match (q.pop(), r.pop()) {
                (None, None) => break,
                (a, b) => assert_eq!(a, b),
            }
        }
        assert_eq!(q.trace_hash(), r.trace_hash());
    }

    #[test]
    fn queue_microbench_reports_positive_ratios() {
        // Tiny op budget: the assertion is structural, not statistical.
        let rows = queue_microbench(2_000, 1);
        assert_eq!(rows.len(), QUEUE_SIZES.len());
        for row in rows {
            assert!(row.queue_events_per_sec > 0.0);
            assert!(row.heap_events_per_sec > 0.0);
            assert!(row.speedup_vs_heap > 0.0);
        }
    }

    fn tiny_report() -> BenchReport {
        BenchReport {
            mode: BenchMode::Smoke,
            queue: vec![QueueBench {
                n: 1_000,
                queue_events_per_sec: 2e6,
                heap_events_per_sec: 1e6,
                speedup_vs_heap: 2.0,
            }],
            cells: vec![CellBench {
                benchmark: "genome",
                policy: "rtm",
                threads: 4,
                seed: 0,
                events: 1234,
                trace_hash: 0xdead_beef,
                events_per_sec: 5e5,
                wall_ms: 2.5,
            }],
            inference: vec![InferenceBench {
                blocks: 256,
                dirty_rows: 25,
                full_rounds_per_sec: 1e3,
                incremental_rounds_per_sec: 8e3,
                speedup_vs_full: 8.0,
            }],
        }
    }

    #[test]
    fn report_roundtrips_through_json_and_validates() {
        let json = tiny_report().to_json();
        let text = json.to_string_pretty();
        let parsed = Json::parse(&text).expect("report must re-parse");
        validate_report(&parsed).expect("report must validate");
        assert_eq!(parsed.get("mode").and_then(Json::as_str), Some("smoke"));
        let totals = parsed.get("totals").unwrap();
        assert_eq!(totals.get("events").and_then(Json::as_u64), Some(1234));
    }

    #[test]
    fn validation_rejects_structural_damage() {
        let good = tiny_report().to_json();
        // Wrong schema version.
        let mut bad = good.clone();
        if let Json::Object(fields) = &mut bad {
            fields[0].1 = Json::UInt(99);
        }
        assert!(validate_report(&bad).is_err());
        // Unknown mode.
        let mut bad = good.clone();
        if let Json::Object(fields) = &mut bad {
            fields[1].1 = Json::Str("warp".into());
        }
        assert!(validate_report(&bad).is_err());
        // Totals that disagree with the cell rows.
        let mut bad = good.clone();
        if let Json::Object(fields) = &mut bad {
            let totals = fields.iter_mut().find(|(k, _)| k == "totals").unwrap();
            if let Json::Object(t) = &mut totals.1 {
                t.iter_mut().find(|(k, _)| k == "events").unwrap().1 = Json::UInt(1);
            }
        }
        assert!(validate_report(&bad).is_err());
        // Missing field inside a cell row.
        let mut bad = good;
        if let Json::Object(fields) = &mut bad {
            let cells = fields.iter_mut().find(|(k, _)| k == "cells").unwrap();
            if let Json::Array(rows) = &mut cells.1 {
                if let Json::Object(row) = &mut rows[0] {
                    row.retain(|(k, _)| k != "trace_hash");
                }
            }
        }
        assert!(validate_report(&bad).is_err());
    }

    #[test]
    fn comparison_gates_determinism_exactly_and_speed_with_tolerance() {
        let base = tiny_report().to_json();

        // Identical report: clean pass.
        assert!(compare_reports(&base, &base, 0.25).is_empty());

        // Faster is always fine.
        let mut faster = tiny_report();
        faster.queue[0].speedup_vs_heap = 3.0;
        assert!(compare_reports(&faster.to_json(), &base, 0.25).is_empty());

        // A within-tolerance slowdown passes; past it fails.
        let mut slower = tiny_report();
        slower.queue[0].speedup_vs_heap = 1.6; // -20% of 2.0
        assert!(compare_reports(&slower.to_json(), &base, 0.25).is_empty());
        slower.queue[0].speedup_vs_heap = 1.4; // -30%
        let violations = compare_reports(&slower.to_json(), &base, 0.25);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("speedup_vs_heap"));

        // Determinism facts have no tolerance at all.
        let mut drifted = tiny_report();
        drifted.cells[0].trace_hash ^= 1;
        let violations = compare_reports(&drifted.to_json(), &base, 0.25);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("trace hash"));
        let mut drifted = tiny_report();
        drifted.cells[0].events += 1;
        assert!(!compare_reports(&drifted.to_json(), &base, 0.25).is_empty());

        // A missing cell is a violation, as is a mode mismatch.
        let mut missing = tiny_report();
        missing.cells.clear();
        assert!(!compare_reports(&missing.to_json(), &base, 0.25).is_empty());
        let mut full = tiny_report();
        full.mode = BenchMode::Full;
        let violations = compare_reports(&full.to_json(), &base, 0.25);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("mode mismatch"));
    }

    #[test]
    fn inference_rows_gate_with_tolerance_against_a_sectioned_baseline() {
        let base = tiny_report().to_json();

        // Within tolerance passes, past it fails.
        let mut slower = tiny_report();
        slower.inference[0].speedup_vs_full = 6.5; // ~-19% of 8.0
        assert!(compare_reports(&slower.to_json(), &base, 0.25).is_empty());
        slower.inference[0].speedup_vs_full = 5.0; // -37.5%
        let violations = compare_reports(&slower.to_json(), &base, 0.25);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("speedup_vs_full"));

        // Dropping the row the baseline has is a violation.
        let mut missing = tiny_report();
        missing.inference.clear();
        let violations = compare_reports(&missing.to_json(), &base, 0.25);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("inference row"));

        // A baseline *without* the section (pre-existing BENCH_006-era
        // reports) gates nothing about inference — and still validates.
        let mut old = tiny_report().to_json();
        if let Json::Object(fields) = &mut old {
            fields.retain(|(k, _)| k != "inference");
        }
        validate_report(&old).expect("section-less report must validate");
        assert!(compare_reports(&tiny_report().to_json(), &old, 0.25).is_empty());
    }

    #[test]
    fn inference_mode_report_validates_without_queue_or_cells() {
        let report = BenchReport {
            mode: BenchMode::Inference,
            queue: Vec::new(),
            cells: Vec::new(),
            inference: tiny_report().inference,
        };
        let json = Json::parse(&report.to_json().to_string_pretty()).unwrap();
        validate_report(&json).expect("inference-mode report must validate");
        // But an inference-mode report with nothing in it is rejected.
        let empty = BenchReport {
            mode: BenchMode::Inference,
            queue: Vec::new(),
            cells: Vec::new(),
            inference: Vec::new(),
        };
        assert!(validate_report(&empty.to_json()).is_err());
        // And a smoke report must still carry queue + cells.
        let mut smoke = tiny_report();
        smoke.cells.clear();
        assert!(validate_report(&smoke.to_json()).is_err());
    }

    #[test]
    fn inference_rows_are_malformation_checked() {
        let mut bad = tiny_report();
        bad.inference[0].dirty_rows = 0;
        assert!(validate_report(&bad.to_json()).is_err());
        let mut bad = tiny_report();
        bad.inference[0].dirty_rows = 1_000; // > blocks
        assert!(validate_report(&bad.to_json()).is_err());
        let mut bad = tiny_report();
        bad.inference[0].speedup_vs_full = f64::NAN;
        assert!(validate_report(&bad.to_json()).is_err());
    }

    #[test]
    fn inference_microbench_measures_and_agrees() {
        // One tiny deterministic pass: structural assertions only (the
        // ≥3× acceptance number is checked on the committed report, not
        // on a loaded CI box). The correctness pre-pass inside asserts
        // full == incremental at every round.
        let rows = inference_microbench(BenchMode::Inference, 1);
        assert_eq!(rows.len(), INFERENCE_SIZES.len());
        for row in &rows {
            assert!(row.dirty_rows * 10 <= row.blocks.max(10), "sparse stream: {row:?}");
            assert!(row.full_rounds_per_sec > 0.0);
            assert!(row.incremental_rounds_per_sec > 0.0);
            assert!(row.speedup_vs_full > 0.0);
        }
    }

    #[test]
    fn trend_lines_cover_the_inference_section() {
        let now = tiny_report().to_json();
        let lines = trend_lines(&now, &now).unwrap();
        assert!(
            lines.iter().any(|l| l.contains("inference blocks=256")),
            "{lines:?}"
        );
    }
}
