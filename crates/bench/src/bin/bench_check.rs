//! Schema checker and perf-regression gate for `seer bench` reports (CI).
//!
//! Validates a `BENCH_*.json` report against the schema documented in
//! `DESIGN.md` §12, and — when given a committed baseline — gates it:
//! per-cell `events`/`trace_hash` must match the baseline exactly
//! (determinism facts carry no tolerance), and each queue row's
//! `speedup_vs_heap` may drop at most `--tolerance` (default 0.25) below
//! the baseline ratio. Absolute events/sec are never gated: they move
//! with the host CPU, while the in-process speedup ratio does not.
//!
//! With `--against <BENCH_*.json>` it additionally prints the perf
//! *trajectory* from that (usually older) committed report to the fresh
//! one — per-queue speedup-ratio and per-cell throughput movement — so
//! perf PRs diff against the committed history instead of only
//! intra-file ratios. Trends never gate; only a mode mismatch errors.
//!
//! Usage: `bench_check <report.json> [--baseline BENCH_006.json] [--tolerance 0.25] [--against BENCH_005.json]`

use std::process::ExitCode;

use seer_bench::harness::{compare_reports, trend_lines, validate_report};
use seer_harness::Json;

const USAGE: &str =
    "usage: bench_check <report.json> [--baseline FILE] [--tolerance FRACTION] [--against FILE]";

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn run(args: &[String]) -> Result<(), String> {
    let mut report_path: Option<&str> = None;
    let mut baseline_path: Option<&str> = None;
    let mut against_path: Option<&str> = None;
    let mut tolerance = 0.25f64;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => {
                baseline_path =
                    Some(it.next().ok_or_else(|| format!("--baseline needs a value\n{USAGE}"))?);
            }
            "--against" => {
                against_path =
                    Some(it.next().ok_or_else(|| format!("--against needs a value\n{USAGE}"))?);
            }
            "--tolerance" => {
                let raw = it.next().ok_or_else(|| format!("--tolerance needs a value\n{USAGE}"))?;
                tolerance = raw
                    .parse::<f64>()
                    .ok()
                    .filter(|t| (0.0..1.0).contains(t))
                    .ok_or_else(|| {
                        format!("--tolerance must be a fraction in [0, 1), got {raw:?}\n{USAGE}")
                    })?;
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}\n{USAGE}"));
            }
            other => {
                if report_path.replace(other).is_some() {
                    return Err(format!("more than one report path given\n{USAGE}"));
                }
            }
        }
    }

    let report_path = report_path.ok_or_else(|| format!("no report path given\n{USAGE}"))?;
    let report = load(report_path)?;
    validate_report(&report).map_err(|e| format!("{report_path}: {e}"))?;
    println!("{report_path}: schema OK");

    if let Some(baseline_path) = baseline_path {
        let baseline = load(baseline_path)?;
        validate_report(&baseline).map_err(|e| format!("{baseline_path}: {e}"))?;
        let violations = compare_reports(&report, &baseline, tolerance);
        if !violations.is_empty() {
            let mut msg = format!(
                "{report_path}: {} violation(s) vs baseline {baseline_path}:",
                violations.len()
            );
            for v in &violations {
                msg.push_str("\n  - ");
                msg.push_str(v);
            }
            return Err(msg);
        }
        println!("{report_path}: within tolerance {tolerance} of baseline {baseline_path}");
    }

    if let Some(against_path) = against_path {
        let against = load(against_path)?;
        validate_report(&against).map_err(|e| format!("{against_path}: {e}"))?;
        let lines = trend_lines(&report, &against)?;
        println!("{report_path}: trend vs {against_path}:");
        for line in &lines {
            println!("  {line}");
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bench_check: {msg}");
            ExitCode::FAILURE
        }
    }
}
