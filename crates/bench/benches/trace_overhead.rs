//! Tracing overhead: `simulate_cold` against its no-op-sink traced twin.
//!
//! Tracing is a sink, not a feature flag, so the disabled cost must be
//! one cached boolean test per emission site — in the noise for a whole
//! simulation. Before timing anything the setup asserts the zero-cost
//! claim structurally: the traced run's event-schedule digest is
//! bit-identical to the untraced run's, and tracing adds no simulation
//! work to the executor (its miss counter is untouched by traced runs).

use criterion::{criterion_group, criterion_main, Criterion};
use seer::{Seer, SeerConfig};
use seer_bench::{bench_executor, simulate_cold, simulate_cold_traced};
use seer_harness::{Cell, PolicyKind};
use seer_runtime::{DriverConfig, MemoryTraceSink, NullTraceSink, Workload};
use seer_stamp::Benchmark;
use std::hint::black_box;

fn probe_cell() -> Cell {
    Cell {
        benchmark: Benchmark::Ssca2,
        policy: PolicyKind::Seer,
        threads: 8,
    }
}

/// The structural zero-overhead assertions, run once before timing.
fn assert_sink_is_pure_observer(cell: Cell) {
    let exec = bench_executor(1);
    let untraced = exec.metrics(cell, 0);
    let misses_before = exec.misses();

    let mut null = NullTraceSink;
    let traced = simulate_cold_traced(cell, &mut null);
    assert_eq!(
        untraced.trace_hash, traced.trace_hash,
        "a no-op sink changed the event schedule"
    );
    assert_eq!(untraced.commits, traced.commits);
    assert_eq!(untraced.makespan, traced.makespan);
    assert_eq!(
        exec.misses(),
        misses_before,
        "a traced run added simulation work to the executor"
    );

    // A collecting sink observes the same run too (sink choice can
    // never steer the simulation).
    let mut memory = MemoryTraceSink::new();
    let collected = simulate_cold_traced(cell, &mut memory);
    assert_eq!(untraced.trace_hash, collected.trace_hash);
    assert!(!memory.lifecycle.is_empty());

    // The incremental engine changed who fills the trace rows (cached
    // fits replayed through `RowFit::into_row_trace`, pair buffers drawn
    // from the recycled pool): every inference record must still carry
    // one row per atomic block, each with its fitted Gaussian. The bench
    // cell is too small to hit a periodic round, so this check runs a
    // contended cell at a scale that does (same shape as the conformance
    // decision snapshot).
    let mut w = Benchmark::KmeansHigh.instantiate(8, 200);
    let blocks = w.num_blocks();
    let mut sched = Seer::new(SeerConfig::full(), 8, blocks);
    let mut rounds = MemoryTraceSink::new();
    seer_runtime::run_traced(&mut w, &mut sched, &DriverConfig::paper_machine(8, 1), &mut rounds);
    assert!(!rounds.inference.is_empty(), "traced run recorded no inference rounds");
    for inf in &rounds.inference {
        assert_eq!(inf.rows.len(), blocks, "inference record is missing rows");
        for row in &inf.rows {
            assert_eq!(row.pairs.len(), blocks, "row {} is missing pair verdicts", row.x);
            assert!(row.sigma2 >= 0.0);
        }
    }
}

fn trace_overhead(c: &mut Criterion) {
    let cell = probe_cell();
    assert_sink_is_pure_observer(cell);

    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.bench_function("simulate_cold", |b| {
        b.iter(|| black_box(simulate_cold(cell).makespan));
    });
    group.bench_function("simulate_cold_noop_sink", |b| {
        b.iter(|| {
            let mut sink = NullTraceSink;
            black_box(simulate_cold_traced(cell, &mut sink).makespan)
        });
    });
    group.bench_function("simulate_cold_memory_sink", |b| {
        b.iter(|| {
            let mut sink = MemoryTraceSink::new();
            black_box(simulate_cold_traced(cell, &mut sink).makespan)
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = trace_overhead
}
criterion_main!(benches);
