//! Figure 4 kernel: RTM vs profile-only Seer on the overhead probe
//! workloads (the instrumentation cost study).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seer_bench::simulate_cold;
use seer_harness::{Cell, PolicyKind};
use seer_stamp::Benchmark;
use std::hint::black_box;

fn fig4_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for benchmark in [Benchmark::HashmapLow, Benchmark::Ssca2] {
        for policy in [PolicyKind::Rtm, PolicyKind::SeerProfileOnly] {
            let id = BenchmarkId::new(benchmark.name(), policy.label());
            group.bench_function(id, |b| {
                b.iter(|| {
                    let m = simulate_cold(Cell {
                        benchmark,
                        policy,
                        threads: 8,
                    });
                    black_box(m.speedup())
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = fig4_cells
}
criterion_main!(benches);
