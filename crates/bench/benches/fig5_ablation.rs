//! Figure 5 kernel: the cumulative Seer variants on one conflict-heavy
//! benchmark at 8 threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seer_bench::simulate_cold;
use seer_harness::{Cell, PolicyKind};
use seer_stamp::Benchmark;
use std::hint::black_box;

fn fig5_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for policy in PolicyKind::FIGURE5 {
        let id = BenchmarkId::from_parameter(policy.label());
        group.bench_function(id, |b| {
            b.iter(|| {
                let m = simulate_cold(Cell {
                    benchmark: Benchmark::Genome,
                    policy,
                    threads: 8,
                });
                black_box(m.speedup())
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = fig5_variants
}
criterion_main!(benches);
