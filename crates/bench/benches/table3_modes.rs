//! Table 3 kernel: the mode-breakdown sweep at the paper's thread counts
//! for one representative benchmark per policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seer_bench::simulate_cold;
use seer_harness::{Cell, PolicyKind};
use seer_stamp::Benchmark;
use std::hint::black_box;

fn table3_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for policy in PolicyKind::FIGURE3 {
        for threads in [2usize, 8] {
            let id = BenchmarkId::new(policy.label(), threads);
            group.bench_function(id, |b| {
                b.iter(|| {
                    let m = simulate_cold(Cell {
                        benchmark: Benchmark::VacationHigh,
                        policy,
                        threads,
                    });
                    black_box(m.modes.total())
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = table3_rows
}
criterion_main!(benches);
