//! Figure 3 kernel: one full simulated run per (benchmark, policy) cell at
//! 8 threads, plus the whole Figure 3 plan through the cell executor at 1
//! and 4 jobs (the wall-clock quantity `--jobs`/`SEER_JOBS` buys). The
//! timed quantity is the simulator's cost of regenerating cells; the
//! *figures themselves* come from `cargo run -p seer-harness --bin fig3`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seer_bench::{bench_executor, simulate_cold};
use seer_harness::{Cell, Plan, PolicyKind};
use seer_stamp::Benchmark;
use std::hint::black_box;

fn fig3_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for benchmark in Benchmark::STAMP {
        for policy in PolicyKind::FIGURE3 {
            let id = BenchmarkId::new(benchmark.name(), policy.label());
            group.bench_function(id, |b| {
                b.iter(|| {
                    let m = simulate_cold(Cell {
                        benchmark,
                        policy,
                        threads: 8,
                    });
                    black_box(m.speedup())
                });
            });
        }
    }
    group.finish();
}

fn fig3_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_plan");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for jobs in [1usize, 4] {
        let id = BenchmarkId::new("jobs", jobs);
        group.bench_function(id, |b| {
            b.iter(|| {
                // A fresh executor per iteration: all 32 cells are misses,
                // so this times the fan-out, not the cache.
                let exec = bench_executor(jobs);
                let mut plan = Plan::new();
                plan.add_grid(
                    &Benchmark::STAMP,
                    &PolicyKind::FIGURE3,
                    &[8],
                    exec.config(),
                );
                exec.execute(&plan);
                black_box(exec.misses())
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = fig3_cells, fig3_plan
}
criterion_main!(benches);
