//! Figure 3 kernel: one full simulated run per (benchmark, policy) cell at
//! 8 threads. The timed quantity is the simulator's wall-clock cost of
//! regenerating one Figure 3 cell; the *figures themselves* come from
//! `cargo run -p seer-harness --bin fig3`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seer_bench::BENCH_SCALE;
use seer_harness::{run_once, Cell, PolicyKind};
use seer_stamp::Benchmark;
use std::hint::black_box;

fn fig3_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for benchmark in Benchmark::STAMP {
        for policy in PolicyKind::FIGURE3 {
            let id = BenchmarkId::new(benchmark.name(), policy.label());
            group.bench_function(id, |b| {
                b.iter(|| {
                    let m = run_once(
                        Cell {
                            benchmark,
                            policy,
                            threads: 8,
                        },
                        0,
                        BENCH_SCALE,
                    );
                    black_box(m.speedup())
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = fig3_cells
}
criterion_main!(benches);
