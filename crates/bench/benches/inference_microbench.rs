//! Microbenchmarks of Seer's inference machinery: the UPDATE-Seer-LOCKS
//! cost (Alg. 5), the Gaussian percentile math, the activeTxs scan, and
//! the merge-period ablation (DESIGN.md §5, items 2 and 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seer::gaussian::{gaussian_percentile, std_normal_quantile};
use seer::inference::{infer_conflict_pairs, infer_conflict_pairs_with, Thresholds};
use seer::stats::{MergedStats, ThreadStats};
use seer::{InferenceEngine, Seer, SeerConfig};
use seer_runtime::{run, DriverConfig, Workload};
use seer_sim::SimRng;
use seer_stamp::Benchmark;
use std::hint::black_box;

fn populated_stats(blocks: usize, seed: u64) -> MergedStats {
    let mut rng = SimRng::new(seed);
    let mut t = ThreadStats::new(blocks);
    for _ in 0..blocks * blocks * 40 {
        let x = rng.below(blocks as u64) as usize;
        let y = rng.below(blocks as u64) as usize;
        if rng.chance(0.4) {
            t.register_abort(x, [y].into_iter());
        } else {
            t.register_commit(x, [y].into_iter());
        }
    }
    let mut m = MergedStats::new(blocks);
    m.merge_from([&t].into_iter());
    m
}

/// Alg. 5: cost of a full lock-scheme recomputation as the number of
/// atomic blocks grows (O(blocks²)).
fn update_locks_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_seer_locks");
    for blocks in [4usize, 16, 64] {
        let stats = populated_stats(blocks, 3);
        group.bench_function(BenchmarkId::from_parameter(blocks), |b| {
            b.iter(|| black_box(infer_conflict_pairs(&stats, Thresholds::default())));
        });
    }
    group.finish();
}

/// Full recompute vs the incremental [`InferenceEngine`] under a sparse
/// update stream (≤ 10% of rows dirtied between rounds) — the steady
/// state of a periodic scheduler round. Same sizes as the `inference`
/// group of the JSON report (`seer bench --mode inference`).
fn full_vs_incremental(c: &mut Criterion) {
    use seer::inference::MIN_DISCRIMINATIVE_SIGMA;

    let th = Thresholds::default();
    for blocks in [16usize, 64, 256] {
        let dirty = (blocks / 10).max(1);
        let mut group = c.benchmark_group(format!("inference_round/{blocks}"));
        let mut rng = SimRng::new(0x1D1E);
        let mut sparse = move |stats: &mut MergedStats| {
            for _ in 0..dirty {
                let x = rng.below(blocks as u64) as usize;
                let y = rng.below(blocks as u64) as usize;
                stats.add_abort(x, [y].into_iter());
            }
        };

        let mut full_stats = populated_stats(blocks, 3);
        group.bench_function("full", |b| {
            b.iter(|| {
                sparse(&mut full_stats);
                black_box(infer_conflict_pairs_with(
                    &full_stats,
                    th,
                    MIN_DISCRIMINATIVE_SIGMA,
                ))
            });
        });

        let mut incr_stats = populated_stats(blocks, 3);
        let mut engine = InferenceEngine::new();
        engine.round(&mut incr_stats, th, MIN_DISCRIMINATIVE_SIGMA); // prime
        group.bench_function("incremental", |b| {
            b.iter(|| {
                sparse(&mut incr_stats);
                black_box(
                    engine
                        .round(&mut incr_stats, th, MIN_DISCRIMINATIVE_SIGMA)
                        .len(),
                )
            });
        });
        group.finish();
    }
}

fn gaussian_math(c: &mut Criterion) {
    let mut group = c.benchmark_group("gaussian");
    group.bench_function("quantile", |b| {
        b.iter(|| black_box(std_normal_quantile(black_box(0.8))));
    });
    group.bench_function("percentile", |b| {
        b.iter(|| black_box(gaussian_percentile(black_box(0.4), black_box(0.02), black_box(0.8))));
    });
    group.finish();
}

/// Merge-period ablation: end-to-end speedup sensitivity to how often the
/// statistics are merged and the scheme recomputed.
fn merge_period_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_period");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for period in [100u64, 500, 5_000] {
        group.bench_function(BenchmarkId::from_parameter(period), |b| {
            b.iter(|| {
                let threads = 8;
                let mut w = Benchmark::KmeansHigh.instantiate(threads, 40);
                let blocks = w.num_blocks();
                let mut cfg = SeerConfig::full();
                cfg.update_period_execs = period;
                let mut sched = Seer::new(cfg, threads, blocks);
                let m = run(&mut w, &mut sched, &DriverConfig::paper_machine(threads, 9));
                black_box(m.speedup())
            });
        });
    }
    group.finish();
}

/// Sampling ablation (paper future work): overhead/quality trade-off of
/// registering only a fraction of commit/abort events.
fn sampling_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for p in [1.0f64, 0.5, 0.1] {
        group.bench_function(BenchmarkId::from_parameter(p), |b| {
            b.iter(|| {
                let threads = 8;
                let mut w = Benchmark::KmeansHigh.instantiate(threads, 40);
                let blocks = w.num_blocks();
                let mut sched = Seer::new(SeerConfig::with_sampling(p), threads, blocks);
                let m = run(&mut w, &mut sched, &DriverConfig::paper_machine(threads, 9));
                black_box(m.speedup())
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = update_locks_cost, full_vs_incremental, gaussian_math, merge_period_ablation, sampling_ablation
}
criterion_main!(benches);
