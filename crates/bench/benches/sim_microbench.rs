//! Microbenchmarks of the simulation substrate: event-queue throughput and
//! the multi-CAS lock-acquisition ablation (DESIGN.md §5, item 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seer::{Seer, SeerConfig};
use seer_bench::BENCH_SCALE;
use seer_runtime::{run, DriverConfig, Workload};
use seer_sim::{EventQueue, SimRng};
use seer_stamp::Benchmark;
use std::hint::black_box;

fn event_queue_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for n in [1_000usize, 100_000] {
        group.bench_function(BenchmarkId::new("push_pop", n), |b| {
            let mut rng = SimRng::new(7);
            let times: Vec<u64> = (0..n).map(|_| rng.below(1 << 20)).collect();
            b.iter(|| {
                let mut q = EventQueue::new();
                for &t in &times {
                    q.push(t, ());
                }
                let mut count = 0;
                while q.pop().is_some() {
                    count += 1;
                }
                black_box(count)
            });
        });
    }
    group.finish();
}

/// Multi-CAS ablation: full Seer with and without the HTM-assisted
/// multi-lock acquisition, on a workload whose lock rows span several
/// blocks (genome at 8 threads).
fn multi_cas_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("lock_acquire");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for via_htm in [false, true] {
        let label = if via_htm { "htm_multi_cas" } else { "per_lock_cas" };
        group.bench_function(label, |b| {
            b.iter(|| {
                let threads = 8;
                let txs = (Benchmark::Genome.default_txs() as f64 * BENCH_SCALE) as usize;
                let mut w = Benchmark::Genome.instantiate(threads, txs);
                let blocks = w.num_blocks();
                let mut cfg = SeerConfig::plus_core_locks();
                cfg.htm_lock_acquisition = via_htm;
                let mut sched = Seer::new(cfg, threads, blocks);
                let m = run(&mut w, &mut sched, &DriverConfig::paper_machine(threads, 21));
                black_box(m.speedup())
            });
        });
    }
    group.finish();
}

/// Retry-hint ablation: RTM retrying capacity aborts (the paper's policy)
/// vs giving up immediately (Intel's guidance), on the capacity-bound yada
/// model.
fn capacity_retry_ablation(c: &mut Criterion) {
    use seer_baselines::Rtm;
    let mut group = c.benchmark_group("capacity_retry");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for respect_hint in [false, true] {
        let label = if respect_hint { "give_up" } else { "retry_anyway" };
        group.bench_function(label, |b| {
            b.iter(|| {
                let threads = 8;
                let txs = (Benchmark::Yada.default_txs() as f64 * BENCH_SCALE) as usize;
                let mut w = Benchmark::Yada.instantiate(threads, txs.max(20));
                let mut sched = if respect_hint {
                    Rtm::respecting_retry_hint(5)
                } else {
                    Rtm::new(5)
                };
                let m = run(&mut w, &mut sched, &DriverConfig::paper_machine(threads, 77));
                black_box(m.speedup())
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = event_queue_throughput, multi_cas_ablation, capacity_retry_ablation
}
criterion_main!(benches);
