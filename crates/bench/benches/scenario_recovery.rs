//! Scenario-engine cost: a faulted run against its stationary twin.
//!
//! The injector is a handful of extra heap events in a multi-million-event
//! schedule, so a scenario run must cost what the underlying simulation
//! costs — the directive layer's overhead is the difference between these
//! two timings. Before timing, the setup asserts the engine's work
//! conservation structurally: injecting the fault reschedules events but
//! never changes how many transactions commit.

use criterion::{criterion_group, criterion_main, Criterion};
use seer_harness::PolicyKind;
use seer_scenario::{FaultKind, FaultSpec, RunRequest, ScenarioSpec};
use seer_stamp::Benchmark;
use std::hint::black_box;

/// A half-scale stats-amnesia: big enough to cross several inference
/// rounds, small enough to sample repeatedly.
fn faulted() -> ScenarioSpec {
    let mut spec =
        ScenarioSpec::stationary("bench-amnesia", Benchmark::KmeansHigh, 4, 1.0, 100_000);
    spec.faults.push(FaultSpec {
        at: 250_000,
        fault: FaultKind::WipeStats,
    });
    spec
}

fn stationary() -> ScenarioSpec {
    ScenarioSpec::stationary("bench-stationary", Benchmark::KmeansHigh, 4, 1.0, 100_000)
}

fn assert_faults_conserve_work() {
    let with_fault = RunRequest::scenario(&faulted()).policy(PolicyKind::Seer).run();
    let without = RunRequest::scenario(&stationary()).policy(PolicyKind::Seer).run();
    assert_eq!(
        with_fault.metrics.commits, without.metrics.commits,
        "a fault may reschedule work, never add or drop it"
    );
    assert!(
        with_fault.report.scores.iter().any(|s| s.time_to_reconverge.is_some()),
        "the benched scenario must actually exercise recovery scoring"
    );
}

fn scenario_recovery(c: &mut Criterion) {
    assert_faults_conserve_work();

    let mut group = c.benchmark_group("scenario_recovery");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));

    group.bench_function("stationary", |b| {
        let spec = stationary();
        b.iter(|| black_box(RunRequest::scenario(&spec).policy(PolicyKind::Seer).run().metrics.commits));
    });
    group.bench_function("stats-amnesia", |b| {
        let spec = faulted();
        b.iter(|| black_box(RunRequest::scenario(&spec).policy(PolicyKind::Seer).run().metrics.commits));
    });
    group.finish();
}

criterion_group!(benches, scenario_recovery);
criterion_main!(benches);
