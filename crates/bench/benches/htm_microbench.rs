//! Microbenchmarks of the HTM model's hot paths and the
//! conflict-resolution ablation (DESIGN.md §5, item 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seer_htm::{AccessKind, HtmConfig, HtmMachine, LineSet};
use seer_sim::{SimRng, Topology};
use std::hint::black_box;

fn line_set_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("line_set");
    group.bench_function("insert_512_distinct", |b| {
        b.iter(|| {
            let mut s = LineSet::with_capacity(512);
            for i in 0..512u64 {
                s.insert(black_box(i * 37));
            }
            black_box(s.len())
        });
    });
    group.bench_function("contains_hit_and_miss", |b| {
        let mut s = LineSet::with_capacity(512);
        for i in 0..512u64 {
            s.insert(i * 37);
        }
        b.iter(|| {
            let mut hits = 0;
            for i in 0..1024u64 {
                if s.contains(black_box(i * 37)) {
                    hits += 1;
                }
            }
            black_box(hits)
        });
    });
    group.bench_function("clear_and_reuse", |b| {
        let mut s = LineSet::with_capacity(512);
        b.iter(|| {
            for i in 0..128u64 {
                s.insert(i);
            }
            s.clear();
            black_box(s.len())
        });
    });
    group.finish();
}

/// Ablation: the cost of conflict probing as the number of concurrently
/// transactional CPUs grows (the kill-scan is O(cpus) per access).
fn conflict_probe_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("htm_conflict_probe");
    for cpus in [2usize, 4, 8] {
        group.bench_function(BenchmarkId::from_parameter(cpus), |b| {
            let mut m = HtmMachine::new(Topology::new(cpus, 1), HtmConfig::default());
            let mut rng = SimRng::new(1);
            for t in 0..cpus {
                m.begin(t);
                for _ in 0..32 {
                    // Disjoint footprints: the probe pays full cost but
                    // never aborts anyone.
                    m.access(t, (t as u64) << 20 | rng.below(1 << 16), AccessKind::Read);
                }
            }
            b.iter(|| {
                let r = m.access(0, black_box(1 << 30), AccessKind::Write);
                black_box(r.victims.len())
            });
        });
    }
    group.finish();
}

/// Full begin-access-commit cycles: the machine's end-to-end throughput.
fn tx_lifecycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("htm_lifecycle");
    for footprint in [8u64, 64, 256] {
        group.bench_function(BenchmarkId::from_parameter(footprint), |b| {
            let mut m = HtmMachine::new(Topology::haswell_e3(), HtmConfig::default());
            b.iter(|| {
                m.begin(0);
                for i in 0..footprint {
                    m.access(0, i * 3, AccessKind::Write);
                }
                m.commit(0);
            });
        });
    }
    group.finish();
}

/// End-to-end conflict-resolution ablation (DESIGN.md §6 item 1):
/// requester-wins (TSX) vs requester-aborts on a conflict-heavy model.
fn conflict_policy_ablation(c: &mut Criterion) {
    use seer_baselines::Rtm;
    use seer_htm::ConflictResolution;
    use seer_runtime::{run, DriverConfig};
    use seer_stamp::Benchmark;

    let mut group = c.benchmark_group("htm_conflict_policy");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for (label, policy) in [
        ("requester_wins", ConflictResolution::RequesterWins),
        ("requester_aborts", ConflictResolution::RequesterAborts),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let threads = 8;
                let mut w = Benchmark::KmeansHigh.instantiate(threads, 40);
                let mut sched = Rtm::default();
                let mut cfg = DriverConfig::paper_machine(threads, 5);
                cfg.htm.conflict_resolution = policy;
                let m = run(&mut w, &mut sched, &cfg);
                black_box(m.speedup())
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = line_set_ops, conflict_probe_scaling, tx_lifecycle, conflict_policy_ablation
}
criterion_main!(benches);
