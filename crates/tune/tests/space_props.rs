//! Property tests for the search-space spec and its samplers.
//!
//! Three contracts:
//!
//! * **Round-trip** — any space that validates serializes to JSON and
//!   parses back to an identical space (floats included: the JSON layer
//!   renders shortest-round-trip).
//! * **Bounds** — `sample`, `midpoint`, and every `neighbors` step land
//!   strictly inside the declared ranges, degenerate (constant)
//!   dimensions included, and every in-space point yields a policy spec
//!   that parses back (the cache/wire identity).
//! * **Never panic** — arbitrary dimension lists either validate or
//!   return a `SpaceError`; malformed ranges (inverted, NaN, empty
//!   choices, unknown knobs) are rejected, not mis-sampled.

use proptest::prelude::*;
use seer_sim::SimRng;
use seer_tune::{
    sampler::{midpoint, neighbors, sample},
    Dim, DimKind, ParamSpace,
};

/// Raw material for one *valid* dimension of the knob picked by `sel`.
/// Degenerate ranges (span 0, a single choice) are reachable — proptest
/// shrinks toward them — and must validate, warn, and sample safely.
#[allow(clippy::too_many_arguments)]
fn build_valid_dim(
    sel: usize,
    int_lo: u64,
    int_span: u64,
    n_choices: usize,
    f_lo_millis: u64,
    f_span_millis: u64,
    ratio_tenths: u64,
    log: bool,
) -> Dim {
    match sel % 6 {
        0 => Dim {
            name: "window".into(),
            kind: DimKind::Int { min: int_lo, max: int_lo + int_span },
        },
        1 => Dim {
            name: "climb".into(),
            kind: DimKind::Int { min: int_lo, max: int_lo + int_span },
        },
        2 => {
            let all = ["off", "2", "16", "64"];
            Dim {
                name: "decay".into(),
                kind: DimKind::Choice {
                    options: all[..1 + n_choices % 4].iter().map(|s| s.to_string()).collect(),
                },
            }
        }
        3 => {
            // A positive range, optionally log-sampled; exactly dyadic
            // endpoints are unnecessary — any finite float round-trips.
            let min = (1 + f_lo_millis) as f64 / 1000.0;
            let ratio = 1.0 + ratio_tenths as f64 / 10.0;
            Dim {
                name: "min-sigma".into(),
                kind: DimKind::Float { min, max: min * ratio, log },
            }
        }
        4 => {
            let min = (f_lo_millis % 500) as f64 / 1000.0;
            let max = (min + f_span_millis as f64 / 1000.0).min(1.0);
            Dim {
                name: "th1".into(),
                kind: DimKind::Float { min, max, log: false },
            }
        }
        _ => {
            let min = (f_lo_millis % 500) as f64 / 1000.0;
            let max = (min + f_span_millis as f64 / 1000.0).min(1.0);
            Dim {
                name: "th2".into(),
                kind: DimKind::Float { min, max, log: false },
            }
        }
    }
}

type RawDim = (usize, u64, u64, usize, u64, u64, u64, bool);

/// A valid space from a bag of raw draws: one dimension per distinct
/// knob, at least one dimension total.
fn build_valid_space(raw: &[RawDim]) -> ParamSpace {
    let mut dims: Vec<Dim> = Vec::new();
    for &(sel, a, b, c, d, e, f, g) in raw {
        let dim = build_valid_dim(sel, a, b, c, d, e, f, g);
        if !dims.iter().any(|existing| existing.name == dim.name) {
            dims.push(dim);
        }
    }
    ParamSpace::new(dims).expect("generated dimensions validate")
}

fn raw_dim_strategy() -> impl Strategy<Value = RawDim> {
    (
        0usize..6,
        1u64..2000,
        0u64..2000,
        0usize..8,
        0u64..400,
        0u64..500,
        0u64..100,
        any::<bool>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn valid_spaces_round_trip_through_json(raw in prop::collection::vec(raw_dim_strategy(), 1..=6)) {
        let space = build_valid_space(&raw);
        let text = space.to_json().to_string_pretty();
        let back = ParamSpace::parse(&text).expect("serialized spaces re-validate");
        prop_assert_eq!(back, space);
    }

    #[test]
    fn samples_midpoint_and_neighbors_stay_in_bounds(
        raw in prop::collection::vec(raw_dim_strategy(), 1..=6),
        seed in 0u64..1_000,
    ) {
        let space = build_valid_space(&raw);
        let mut rng = SimRng::new(seed);
        let mut points = vec![midpoint(&space), sample(&space, &mut rng)];
        let drawn = points[1].clone();
        points.extend(neighbors(&space, &drawn));
        for point in &points {
            prop_assert_eq!(point.len(), space.dims().len());
            for (d, v) in point.iter().enumerate() {
                prop_assert!(
                    space.contains(d, v),
                    "dim {} out of range: {:?}", d, v
                );
            }
            // Every in-space point maps onto params and a policy spec
            // that parses back (the cache/wire identity).
            let spec = space.policy(point).spec();
            prop_assert!(
                spec.parse::<seer_harness::PolicyKind>().is_ok(),
                "spec must round-trip: {}", spec
            );
        }
    }

    #[test]
    fn arbitrary_dimensions_validate_or_error_but_never_panic(
        names in prop::collection::vec(0usize..8, 0..6),
        kinds in prop::collection::vec(0usize..3, 0..6),
        ints in prop::collection::vec((any::<u64>(), any::<u64>()), 0..6),
        // Raw bit patterns: NaN, infinities, subnormals all reachable.
        float_bits in prop::collection::vec((any::<u64>(), any::<u64>(), any::<bool>()), 0..6),
        options in prop::collection::vec(prop::collection::vec(0u8..4, 0..3), 0..6),
    ) {
        let knob_names = ["window", "climb", "decay", "min-sigma", "th1", "th2", "", "bogus"];
        let n = names.len().min(kinds.len()).min(ints.len()).min(float_bits.len()).min(options.len());
        let dims: Vec<Dim> = (0..n)
            .map(|i| {
                let kind = match kinds[i] {
                    0 => DimKind::Int { min: ints[i].0, max: ints[i].1 },
                    1 => DimKind::Float {
                        min: f64::from_bits(float_bits[i].0),
                        max: f64::from_bits(float_bits[i].1),
                        log: float_bits[i].2,
                    },
                    _ => DimKind::Choice {
                        options: options[i]
                            .iter()
                            .map(|&b| match b {
                                0 => "off".to_string(),
                                other => other.to_string(),
                            })
                            .collect(),
                    },
                };
                Dim { name: knob_names[names[i]].to_string(), kind }
            })
            .collect();
        // Either outcome is fine; reaching this line without a panic is
        // the property. When the space validates, sampling must too.
        if let Ok(space) = ParamSpace::new(dims) {
            let mut rng = SimRng::new(0);
            let p = sample(&space, &mut rng);
            for (d, v) in p.iter().enumerate() {
                prop_assert!(space.contains(d, v));
            }
        }
    }

    #[test]
    fn inverted_ranges_are_rejected(lo in 1u64..1000, span in 1u64..1000) {
        let dims = vec![Dim {
            name: "window".into(),
            kind: DimKind::Int { min: lo + span, max: lo },
        }];
        prop_assert!(ParamSpace::new(dims).is_err());
    }
}
