//! Golden leaderboard fixture: one small pinned search whose rendered
//! report JSON is committed byte-for-byte. Any drift in the sampler
//! streams, the drivers' proposal order, the objective arithmetic, or
//! the report schema shows up here as a diff.
//!
//! Fixture regeneration after an *intentional* change:
//!
//! ```text
//! SEER_BLESS=1 cargo test -p seer-tune --test golden
//! ```

use seer_tune::{
    report_json, run_search, validate_report, CombinedObjective, DriverKind, ParamSpace,
};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/leaderboard.json"
);

#[test]
fn pinned_search_renders_the_committed_leaderboard() {
    let space = ParamSpace::default_space();
    let exec = seer_tune::TuneExecutor::new(2);
    let outcome = run_search(
        &space,
        DriverKind::Random,
        3,
        42,
        &CombinedObjective,
        &exec,
        &mut |_, _| {},
    );
    assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);
    let doc = report_json(
        &space,
        DriverKind::Random,
        3,
        42,
        "combined",
        &outcome,
        None,
    );
    assert!(
        validate_report(&doc).is_empty(),
        "the golden report must satisfy the tune_check schema: {:?}",
        validate_report(&doc)
    );
    let computed = doc.to_string_pretty() + "\n";

    if std::env::var_os("SEER_BLESS").is_some() {
        std::fs::write(FIXTURE, &computed).expect("write fixture");
        return;
    }
    let golden = std::fs::read_to_string(FIXTURE)
        .expect("missing tests/fixtures/leaderboard.json — run with SEER_BLESS=1 to create it");
    assert_eq!(
        golden, computed,
        "the leaderboard drifted from the committed fixture \
         (intentional? re-bless with SEER_BLESS=1)"
    );
}
