//! Determinism under fan-out: the pinned contract of the whole tune
//! subsystem. One search — same space, driver, budget, objective, seed
//! — is run serially, across four local executor threads, and against a
//! two-worker remote pool (real serve loops on real TCP sockets), and
//! every outcome field plus the rendered report JSON must agree
//! byte-for-byte.

use std::sync::Arc;

use seer_remote::{PoolConfig, WorkerPool};
use seer_tune::{
    report_json, run_search, CombinedObjective, DriverKind, ParamSpace, SearchOutcome,
    TuneExecutor,
};

const DRIVER: DriverKind = DriverKind::Halving;
const BUDGET: u64 = 4;
const SEED: u64 = 0;

/// Starts an in-process worker (the real serve loop on a real TCP
/// socket) and returns its address.
fn spawn_worker() -> String {
    let listener = seer_remote::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().expect("resolved address").to_string();
    std::thread::spawn(move || {
        let _ = seer_remote::serve(listener);
    });
    addr
}

fn search(exec: &TuneExecutor) -> (SearchOutcome, String) {
    let space = ParamSpace::default_space();
    let outcome = run_search(
        &space,
        DRIVER,
        BUDGET,
        SEED,
        &CombinedObjective,
        exec,
        &mut |_, _| {},
    );
    let rendered = report_json(
        &space,
        DRIVER,
        BUDGET,
        SEED,
        "combined",
        &outcome,
        None,
    )
    .to_string_pretty();
    (outcome, rendered)
}

/// Field-for-field equality, score compared by bit pattern: "close
/// enough" floats would mask a schedule divergence.
fn assert_outcomes_identical(what: &str, a: &SearchOutcome, b: &SearchOutcome) {
    assert_eq!(a.trials.len(), b.trials.len(), "{what}: trial count");
    for (x, y) in a.trials.iter().zip(&b.trials) {
        assert_eq!(x.index, y.index, "{what}: proposal order");
        assert_eq!(x.point, y.point, "{what}: trial {} point", x.index);
        assert_eq!(x.fidelity, y.fidelity, "{what}: trial {} fidelity", x.index);
        assert_eq!(
            x.score.map(f64::to_bits),
            y.score.map(f64::to_bits),
            "{what}: trial {} score bits",
            x.index
        );
    }
    assert_eq!(a.best, b.best, "{what}: incumbent");
    assert!(a.failures.is_empty(), "{what}: unexpected failures");
    assert!(b.failures.is_empty(), "{what}: unexpected failures");
}

#[test]
fn search_is_bit_identical_serial_parallel_and_remote() {
    let (serial, serial_json) = search(&TuneExecutor::new(1));
    assert!(serial.best.is_some(), "the pinned search must score");

    let (parallel, parallel_json) = search(&TuneExecutor::new(4));
    assert_outcomes_identical("jobs=4", &serial, &parallel);
    assert_eq!(serial_json, parallel_json, "jobs=4: rendered report bytes");

    let addrs = [spawn_worker(), spawn_worker()];
    let pool = Arc::new(WorkerPool::connect(
        &addrs,
        PoolConfig {
            window: 4,
            ..PoolConfig::default()
        },
    ));
    assert_eq!(pool.alive_workers(), 2, "both workers must handshake");
    let exec = TuneExecutor::new(2).with_remote(pool.clone(), pool.clone());
    let (remote, remote_json) = search(&exec);
    assert_outcomes_identical("remote", &serial, &remote);
    assert_eq!(serial_json, remote_json, "remote: rendered report bytes");
    // The pool really did the work: tuned-policy specs travelled the
    // wire and came back as values, not local recomputation.
    assert!(
        remote.exec_report.remote_hits > 0,
        "the remote pass must resolve runs remotely, got {:?}",
        remote.exec_report
    );
    assert_eq!(remote.exec_report.computed, 0, "nothing computed locally");
}
