//! `TuneExecutor`: trial evaluation routed through the generic
//! `Executor<K, V>` stack.
//!
//! A trial is nothing but a keyed batch of cells and scenarios — the
//! tuned policy travels inside [`CellKey`]/[`ScenarioKey`] as its
//! textual spec — so every mechanism the execution stack already has
//! applies verbatim: memoization, the content-addressed disk store
//! (`--store`/`--resume`), supervised local fan-out (`--jobs`), and the
//! remote worker pool (`--workers`) with **zero new wire messages**
//! (workers parse the spec back into a policy with `FromStr`).

use std::path::Path;
use std::sync::Arc;

use seer_harness::{CellExecutor, HarnessConfig, Plan, Store};
use seer_runtime::RunMetrics;
use seer_harness::{CellKey, FailedItem};
use seer_scenario::{ScenarioExecutor, ScenarioKey, ScenarioOutcome, ScenarioPlan};
use seer_store::RemoteResolver;

/// Aggregated coverage counters for one evaluation batch (cells and
/// scenarios summed), in the same vocabulary as a sweep's report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TuneExecReport {
    /// Unique runs planned across both executors.
    pub planned: usize,
    /// Served from the in-memory memo cache.
    pub memo_hits: u64,
    /// Served from the disk store.
    pub disk_hits: u64,
    /// Computed by remote workers.
    pub remote_hits: u64,
    /// Simulated locally.
    pub computed: u64,
    /// Runs the supervisor gave up on (the coverage gap).
    pub failed: u64,
}

impl TuneExecReport {
    /// Folds another batch's counters into this one.
    pub fn absorb(&mut self, other: &TuneExecReport) {
        self.planned += other.planned;
        self.memo_hits += other.memo_hits;
        self.disk_hits += other.disk_hits;
        self.remote_hits += other.remote_hits;
        self.computed += other.computed;
        self.failed += other.failed;
    }
}

/// The two-executor facade every objective evaluates through.
pub struct TuneExecutor {
    cells: CellExecutor,
    scenarios: ScenarioExecutor,
}

impl TuneExecutor {
    /// An executor fanning uncached work across `jobs` OS threads, with
    /// no disk store.
    pub fn new(jobs: usize) -> Self {
        Self::with_store_dir(jobs, None::<&Path>)
    }

    /// Like [`new`](Self::new), but persisting into (and warm-starting
    /// from) the store rooted at `dir`. Cells and scenarios share the
    /// directory — shard files are namespaced by key kind, exactly as
    /// when a sweep and a scenario run share `--store`.
    pub fn with_store_dir(jobs: usize, dir: Option<impl AsRef<Path>>) -> Self {
        let cfg = HarnessConfig {
            jobs,
            ..HarnessConfig::default()
        };
        let supervisor = seer_harness::SupervisorConfig::from_env();
        let (cell_store, scenario_store) = match dir {
            Some(dir) => (
                Some(Store::open(dir.as_ref())),
                Some(Store::open(dir.as_ref())),
            ),
            None => (None, None),
        };
        Self {
            cells: CellExecutor::with_options(cfg, cell_store, supervisor),
            scenarios: ScenarioExecutor::with_options(jobs, scenario_store, supervisor),
        }
    }

    /// Attaches remote resolvers (typically two clones of one
    /// `Arc<WorkerPool>`, which implements both) to both executors.
    pub fn with_remote(
        mut self,
        cells: Arc<dyn RemoteResolver<CellKey, RunMetrics>>,
        scenarios: Arc<dyn RemoteResolver<ScenarioKey, ScenarioOutcome>>,
    ) -> Self {
        self.cells = self.cells.with_remote(cells);
        self.scenarios = self.scenarios.with_remote(scenarios);
        self
    }

    /// Runs every not-yet-cached item of both plans and returns the
    /// summed coverage counters plus the individual failures.
    pub fn execute(
        &self,
        cells: &Plan,
        scenarios: &ScenarioPlan,
    ) -> (TuneExecReport, Vec<String>) {
        let mut report = TuneExecReport::default();
        let mut failures = Vec::new();
        if !cells.is_empty() {
            let r = self.cells.execute(cells);
            report.planned += r.planned;
            report.memo_hits += r.memo_hits;
            report.disk_hits += r.disk_hits;
            report.remote_hits += r.remote_hits;
            report.computed += r.computed;
            report.failed += r.failed.len() as u64;
            failures.extend(r.failed.iter().map(describe_cell_failure));
        }
        if !scenarios.is_empty() {
            let r = self.scenarios.execute(scenarios);
            report.planned += r.planned;
            report.memo_hits += r.memo_hits;
            report.disk_hits += r.disk_hits;
            report.remote_hits += r.remote_hits;
            report.computed += r.computed;
            report.failed += r.failed.len() as u64;
            failures.extend(r.failed.iter().map(describe_scenario_failure));
        }
        (report, failures)
    }

    /// The cell half (objectives read results back through this).
    pub fn cells(&self) -> &CellExecutor {
        &self.cells
    }

    /// The scenario half.
    pub fn scenarios(&self) -> &ScenarioExecutor {
        &self.scenarios
    }
}

fn describe_cell_failure(f: &FailedItem<CellKey>) -> String {
    format!(
        "{}/{}/t{}/s{}: {} (after {} attempt(s))",
        f.key.cell().benchmark.name(),
        f.key.cell().policy.spec(),
        f.key.cell().threads,
        f.key.seed,
        f.failure,
        f.attempts
    )
}

fn describe_scenario_failure(f: &FailedItem<ScenarioKey>) -> String {
    format!(
        "{}/{}/s{}: {} (after {} attempt(s))",
        f.key.scenario,
        f.key.policy.spec(),
        f.key.seed,
        f.failure,
        f.attempts
    )
}
