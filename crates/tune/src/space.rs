//! `ParamSpace`: the pure-data search-space specification.
//!
//! A space is a list of named dimensions over Seer's scheduling knobs
//! (see [`seer::SeerParams`]): integer ranges, linear or logarithmic
//! float ranges, and categorical choices. Spaces parse from and
//! serialize to the workspace's hand-rolled JSON, validate fully
//! (impossible ranges are errors, degenerate ones warn once and
//! collapse to constants), and map sampled points onto `SeerParams`.

use std::sync::Once;

use seer::SeerParams;
use seer_harness::{PolicyKind, TunedParams};
use seer_store::{Json, ToJson};

/// The knob a dimension name is allowed to drive, with its value shape.
///
/// The tuner is not a generic optimizer: every dimension must address a
/// real `SeerParams` field, so a typo in a space file fails validation
/// instead of silently searching nothing.
const KNOBS: [(&str, &str); 6] = [
    ("window", "int"),
    ("climb", "int"),
    ("decay", "int-or-choice"),
    ("min-sigma", "float"),
    ("th1", "float"),
    ("th2", "float"),
];

/// One named dimension of a [`ParamSpace`].
#[derive(Debug, Clone, PartialEq)]
pub struct Dim {
    /// Knob name; must be one of `window`, `climb`, `decay`,
    /// `min-sigma`, `th1`, `th2`.
    pub name: String,
    /// The value range or choice set.
    pub kind: DimKind,
}

/// The range shape of a dimension.
#[derive(Debug, Clone, PartialEq)]
pub enum DimKind {
    /// Inclusive integer range.
    Int {
        /// Lower bound (inclusive).
        min: u64,
        /// Upper bound (inclusive).
        max: u64,
    },
    /// Inclusive float range, sampled linearly or log-uniformly.
    Float {
        /// Lower bound (inclusive; must be `> 0` when `log`).
        min: f64,
        /// Upper bound (inclusive).
        max: f64,
        /// Sample `exp(uniform(ln min, ln max))` instead of
        /// `uniform(min, max)` — the right prior for scale-like knobs
        /// such as `min-sigma`.
        log: bool,
    },
    /// Categorical choice over explicit option strings.
    Choice {
        /// The options, in declaration order (order matters: samplers
        /// index into it and hill-climbing steps to adjacent entries).
        options: Vec<String>,
    },
}

/// One sampled coordinate. Floats are compared by bit pattern so points
/// are usable as exact identities; choices are stored as indices into
/// the dimension's option list.
#[derive(Debug, Clone, Copy)]
pub enum ParamValue {
    /// Value of an [`DimKind::Int`] dimension.
    Int(u64),
    /// Value of a [`DimKind::Float`] dimension.
    Float(f64),
    /// Index into a [`DimKind::Choice`] dimension's options.
    Choice(usize),
}

impl PartialEq for ParamValue {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (ParamValue::Int(a), ParamValue::Int(b)) => a == b,
            (ParamValue::Float(a), ParamValue::Float(b)) => a.to_bits() == b.to_bits(),
            (ParamValue::Choice(a), ParamValue::Choice(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for ParamValue {}

/// One point of the space: a value per dimension, in dimension order.
pub type Point = Vec<ParamValue>;

/// A validation or parse failure. Never a panic: every malformed space
/// file or JSON shape lands here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpaceError(pub String);

impl std::fmt::Display for SpaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid parameter space: {}", self.0)
    }
}

impl std::error::Error for SpaceError {}

/// A validated search space.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpace {
    dims: Vec<Dim>,
}

static DEGENERATE_WARNING: Once = Once::new();

impl ParamSpace {
    /// Validates and wraps `dims`.
    ///
    /// Errors on: no dimensions, duplicate or unknown names, a name
    /// whose kind does not fit the knob (e.g. a float `window`),
    /// inverted ranges (`min > max`), non-finite float bounds, log
    /// ranges touching zero, empty or duplicate choice sets, and
    /// `decay` options that are neither `off` nor a positive integer.
    ///
    /// Degenerate but well-formed ranges (`min == max`, a single
    /// choice) are accepted — the dimension collapses to a constant —
    /// with a once-per-process diagnostic on stderr.
    pub fn new(dims: Vec<Dim>) -> Result<Self, SpaceError> {
        if dims.is_empty() {
            return Err(SpaceError("a space needs at least one dimension".into()));
        }
        let mut seen: Vec<&str> = Vec::new();
        let mut degenerate: Vec<String> = Vec::new();
        for dim in &dims {
            if seen.contains(&dim.name.as_str()) {
                return Err(SpaceError(format!("duplicate dimension {:?}", dim.name)));
            }
            seen.push(&dim.name);
            let shape = KNOBS
                .iter()
                .find(|(name, _)| *name == dim.name)
                .map(|(_, shape)| *shape)
                .ok_or_else(|| {
                    SpaceError(format!(
                        "unknown knob {:?} (expected one of window, climb, decay, min-sigma, th1, th2)",
                        dim.name
                    ))
                })?;
            match &dim.kind {
                DimKind::Int { min, max } => {
                    if shape == "float" {
                        return Err(SpaceError(format!("{:?} is a float knob", dim.name)));
                    }
                    if min > max {
                        return Err(SpaceError(format!(
                            "{:?}: min {} > max {}",
                            dim.name, min, max
                        )));
                    }
                    // `window`/`climb` periods of zero can never run.
                    if *min == 0 && dim.name != "decay" {
                        return Err(SpaceError(format!("{:?}: min must be positive", dim.name)));
                    }
                    if min == max {
                        degenerate.push(format!("{}={}", dim.name, min));
                    }
                }
                DimKind::Float { min, max, log } => {
                    if shape != "float" {
                        return Err(SpaceError(format!("{:?} is not a float knob", dim.name)));
                    }
                    if !min.is_finite() || !max.is_finite() {
                        return Err(SpaceError(format!("{:?}: bounds must be finite", dim.name)));
                    }
                    if min > max {
                        return Err(SpaceError(format!(
                            "{:?}: min {} > max {}",
                            dim.name, min, max
                        )));
                    }
                    if *log && *min <= 0.0 {
                        return Err(SpaceError(format!(
                            "{:?}: log range needs min > 0, got {}",
                            dim.name, min
                        )));
                    }
                    if *min < 0.0 {
                        return Err(SpaceError(format!("{:?}: min must be >= 0", dim.name)));
                    }
                    if (dim.name == "th1" || dim.name == "th2") && *max > 1.0 {
                        return Err(SpaceError(format!("{:?}: max must be <= 1", dim.name)));
                    }
                    if min.to_bits() == max.to_bits() {
                        degenerate.push(format!("{}={}", dim.name, min));
                    }
                }
                DimKind::Choice { options } => {
                    if dim.name != "decay" {
                        return Err(SpaceError(format!(
                            "{:?} does not take categorical choices",
                            dim.name
                        )));
                    }
                    if options.is_empty() {
                        return Err(SpaceError(format!("{:?}: empty choice set", dim.name)));
                    }
                    let mut sorted = options.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    if sorted.len() != options.len() {
                        return Err(SpaceError(format!("{:?}: duplicate options", dim.name)));
                    }
                    for opt in options {
                        if opt != "off" && opt.parse::<u64>().map_or(true, |n| n == 0) {
                            return Err(SpaceError(format!(
                                "{:?}: option {:?} is neither \"off\" nor a positive integer",
                                dim.name, opt
                            )));
                        }
                    }
                    if options.len() == 1 {
                        degenerate.push(format!("{}={}", dim.name, options[0]));
                    }
                }
            }
        }
        if !degenerate.is_empty() {
            DEGENERATE_WARNING.call_once(|| {
                eprintln!(
                    "tune: warning: degenerate dimension(s) collapse to constants: {}",
                    degenerate.join(", ")
                );
            });
        }
        Ok(Self { dims })
    }

    /// The dimensions, in declaration (= point coordinate) order.
    pub fn dims(&self) -> &[Dim] {
        &self.dims
    }

    /// The default space `seer tune` searches when `--space` is absent:
    /// every knob, with ranges wide enough to matter and centred so the
    /// paper defaults are reachable.
    pub fn default_space() -> Self {
        Self::new(vec![
            Dim {
                name: "window".into(),
                kind: DimKind::Int { min: 50, max: 1200 },
            },
            Dim {
                name: "decay".into(),
                kind: DimKind::Choice {
                    options: vec!["off".into(), "4".into(), "16".into(), "64".into()],
                },
            },
            Dim {
                name: "min-sigma".into(),
                kind: DimKind::Float {
                    min: 0.005,
                    max: 0.2,
                    log: true,
                },
            },
            Dim {
                name: "th1".into(),
                kind: DimKind::Float {
                    min: 0.05,
                    max: 0.6,
                    log: false,
                },
            },
            Dim {
                name: "th2".into(),
                kind: DimKind::Float {
                    min: 0.5,
                    max: 0.95,
                    log: false,
                },
            },
        ])
        .expect("the built-in space validates")
    }

    /// Parses a JSON space document (see `to_json` for the shape).
    pub fn parse(text: &str) -> Result<Self, SpaceError> {
        let json = Json::parse(text).map_err(SpaceError)?;
        Self::from_json(&json)
    }

    /// Decodes `{"dims": [{"name", "type", ...}, ...]}`.
    pub fn from_json(json: &Json) -> Result<Self, SpaceError> {
        let dims_json = json
            .get("dims")
            .and_then(|d| d.as_array())
            .ok_or_else(|| SpaceError("expected an object with a \"dims\" array".into()))?;
        let mut dims = Vec::with_capacity(dims_json.len());
        for dim in dims_json {
            let name = dim
                .get("name")
                .and_then(|n| n.as_str())
                .ok_or_else(|| SpaceError("dimension without a \"name\" string".into()))?
                .to_string();
            let ty = dim
                .get("type")
                .and_then(|t| t.as_str())
                .ok_or_else(|| SpaceError(format!("{name:?}: missing \"type\"")))?;
            let bound = |key: &str| -> Result<&Json, SpaceError> {
                dim.get(key)
                    .ok_or_else(|| SpaceError(format!("{name:?}: missing {key:?}")))
            };
            let kind = match ty {
                "int" => DimKind::Int {
                    min: bound("min")?
                        .as_u64()
                        .ok_or_else(|| SpaceError(format!("{name:?}: non-integer min")))?,
                    max: bound("max")?
                        .as_u64()
                        .ok_or_else(|| SpaceError(format!("{name:?}: non-integer max")))?,
                },
                "float" | "log-float" => DimKind::Float {
                    min: bound("min")?
                        .as_f64()
                        .ok_or_else(|| SpaceError(format!("{name:?}: non-numeric min")))?,
                    max: bound("max")?
                        .as_f64()
                        .ok_or_else(|| SpaceError(format!("{name:?}: non-numeric max")))?,
                    log: ty == "log-float",
                },
                "choice" => {
                    let options = bound("options")?
                        .as_array()
                        .ok_or_else(|| SpaceError(format!("{name:?}: \"options\" must be an array")))?
                        .iter()
                        .map(|o| {
                            o.as_str().map(str::to_string).ok_or_else(|| {
                                SpaceError(format!("{name:?}: options must be strings"))
                            })
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    DimKind::Choice { options }
                }
                other => {
                    return Err(SpaceError(format!(
                        "{name:?}: unknown type {other:?} (int, float, log-float, choice)"
                    )))
                }
            };
            dims.push(Dim { name, kind });
        }
        Self::new(dims)
    }

    /// Serializes to the canonical JSON document; `from_json` of the
    /// result reproduces `self` exactly (floats render shortest
    /// round-trip).
    pub fn to_json(&self) -> Json {
        let dims = self
            .dims
            .iter()
            .map(|dim| match &dim.kind {
                DimKind::Int { min, max } => Json::object([
                    ("name", dim.name.to_json()),
                    ("type", "int".to_json()),
                    ("min", (*min).to_json()),
                    ("max", (*max).to_json()),
                ]),
                DimKind::Float { min, max, log } => Json::object([
                    ("name", dim.name.to_json()),
                    ("type", if *log { "log-float" } else { "float" }.to_json()),
                    ("min", (*min).to_json()),
                    ("max", (*max).to_json()),
                ]),
                DimKind::Choice { options } => Json::object([
                    ("name", dim.name.to_json()),
                    ("type", "choice".to_json()),
                    (
                        "options",
                        Json::Array(options.iter().map(|o| o.to_json()).collect()),
                    ),
                ]),
            })
            .collect();
        Json::object([("dims", Json::Array(dims))])
    }

    /// Renders `point` as a `{name: value}` JSON object (choices as
    /// their option strings).
    ///
    /// # Panics
    /// If `point` does not belong to this space.
    pub fn point_json(&self, point: &Point) -> Json {
        assert_eq!(point.len(), self.dims.len(), "point/space arity mismatch");
        Json::Object(
            self.dims
                .iter()
                .zip(point)
                .map(|(dim, value)| {
                    let v = match (value, &dim.kind) {
                        (ParamValue::Int(n), _) => (*n).to_json(),
                        (ParamValue::Float(f), _) => (*f).to_json(),
                        (ParamValue::Choice(i), DimKind::Choice { options }) => {
                            options[*i].to_json()
                        }
                        (ParamValue::Choice(_), _) => unreachable!("choice value on a range dim"),
                    };
                    (dim.name.clone(), v)
                })
                .collect(),
        )
    }

    /// Maps a point onto [`SeerParams`], starting from the paper
    /// defaults — dimensions absent from the space keep their default.
    ///
    /// # Panics
    /// If `point` does not belong to this space (wrong arity, value
    /// kind mismatching the dimension, out-of-range choice index). The
    /// samplers only produce in-space points.
    pub fn seer_params(&self, point: &Point) -> SeerParams {
        assert_eq!(point.len(), self.dims.len(), "point/space arity mismatch");
        let mut p = SeerParams::default();
        for (dim, value) in self.dims.iter().zip(point) {
            match (dim.name.as_str(), value, &dim.kind) {
                ("window", ParamValue::Int(n), _) => p.update_period_execs = *n,
                ("climb", ParamValue::Int(n), _) => p.climb_period_execs = *n,
                ("decay", ParamValue::Int(n), _) => {
                    p.decay_every_updates = if *n == 0 { None } else { Some(*n) };
                }
                ("decay", ParamValue::Choice(i), DimKind::Choice { options }) => {
                    p.decay_every_updates = match options[*i].as_str() {
                        "off" => None,
                        n => Some(n.parse().expect("validated as a positive integer")),
                    };
                }
                ("min-sigma", ParamValue::Float(f), _) => p.min_sigma = *f,
                ("th1", ParamValue::Float(f), _) => p.th1 = *f,
                ("th2", ParamValue::Float(f), _) => p.th2 = *f,
                (name, value, _) => panic!("value {value:?} does not fit dimension {name:?}"),
            }
        }
        p
    }

    /// The tuned policy a point denotes — the identity used for cache
    /// keys, wire dispatch, and the leaderboard.
    pub fn policy(&self, point: &Point) -> PolicyKind {
        PolicyKind::SeerTuned(TunedParams::from_params(self.seer_params(point)))
    }

    /// True when `value` lies inside dimension `d`'s range.
    pub fn contains(&self, d: usize, value: &ParamValue) -> bool {
        match (&self.dims[d].kind, value) {
            (DimKind::Int { min, max }, ParamValue::Int(n)) => min <= n && n <= max,
            (DimKind::Float { min, max, .. }, ParamValue::Float(f)) => {
                f.is_finite() && *min <= *f && *f <= *max
            }
            (DimKind::Choice { options }, ParamValue::Choice(i)) => *i < options.len(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn float_dim(name: &str, min: f64, max: f64, log: bool) -> Dim {
        Dim {
            name: name.into(),
            kind: DimKind::Float { min, max, log },
        }
    }

    #[test]
    fn default_space_round_trips_through_json() {
        let space = ParamSpace::default_space();
        let text = space.to_json().to_string_pretty();
        let back = ParamSpace::parse(&text).unwrap();
        assert_eq!(back, space);
    }

    #[test]
    fn inverted_and_malformed_ranges_are_errors() {
        for (dims, what) in [
            (vec![], "empty"),
            (
                vec![Dim {
                    name: "window".into(),
                    kind: DimKind::Int { min: 10, max: 5 },
                }],
                "inverted int",
            ),
            (vec![float_dim("th1", 0.5, 0.2, false)], "inverted float"),
            (vec![float_dim("min-sigma", 0.0, 0.1, true)], "log from zero"),
            (vec![float_dim("th2", 0.5, 1.5, false)], "threshold above 1"),
            (vec![float_dim("nope", 0.0, 1.0, false)], "unknown knob"),
            (vec![float_dim("window", 1.0, 2.0, false)], "float window"),
            (
                vec![Dim {
                    name: "th1".into(),
                    kind: DimKind::Choice { options: vec!["a".into()] },
                }],
                "choice threshold",
            ),
            (
                vec![Dim {
                    name: "decay".into(),
                    kind: DimKind::Choice { options: vec![] },
                }],
                "empty choices",
            ),
            (
                vec![Dim {
                    name: "decay".into(),
                    kind: DimKind::Choice { options: vec!["0".into()] },
                }],
                "zero decay option",
            ),
            (
                vec![
                    float_dim("th1", 0.1, 0.2, false),
                    float_dim("th1", 0.1, 0.2, false),
                ],
                "duplicate",
            ),
        ] {
            assert!(ParamSpace::new(dims).is_err(), "{what} must be rejected");
        }
    }

    #[test]
    fn degenerate_ranges_collapse_but_validate() {
        let space = ParamSpace::new(vec![Dim {
            name: "window".into(),
            kind: DimKind::Int { min: 300, max: 300 },
        }])
        .unwrap();
        let p = space.seer_params(&vec![ParamValue::Int(300)]);
        assert_eq!(p.update_period_execs, 300);
    }

    #[test]
    fn points_map_onto_params_with_defaults_for_absent_knobs() {
        let space = ParamSpace::new(vec![
            Dim {
                name: "window".into(),
                kind: DimKind::Int { min: 50, max: 1200 },
            },
            Dim {
                name: "decay".into(),
                kind: DimKind::Choice {
                    options: vec!["off".into(), "16".into()],
                },
            },
        ])
        .unwrap();
        let p = space.seer_params(&vec![ParamValue::Int(150), ParamValue::Choice(1)]);
        assert_eq!(p.update_period_execs, 150);
        assert_eq!(p.decay_every_updates, Some(16));
        // Untouched knobs stay at the paper values.
        assert_eq!(p.th1, SeerParams::default().th1);
        let off = space.seer_params(&vec![ParamValue::Int(150), ParamValue::Choice(0)]);
        assert_eq!(off.decay_every_updates, None);
    }

    #[test]
    fn bad_json_shapes_are_errors_not_panics() {
        for text in [
            "",
            "[]",
            "{}",
            r#"{"dims": 3}"#,
            r#"{"dims": [{"type": "int"}]}"#,
            r#"{"dims": [{"name": "window"}]}"#,
            r#"{"dims": [{"name": "window", "type": "mystery"}]}"#,
            r#"{"dims": [{"name": "window", "type": "int", "min": 1}]}"#,
            r#"{"dims": [{"name": "window", "type": "int", "min": -3, "max": 5}]}"#,
            r#"{"dims": [{"name": "decay", "type": "choice", "options": [1, 2]}]}"#,
        ] {
            assert!(ParamSpace::parse(text).is_err(), "{text:?} must fail");
        }
    }
}
