//! Objectives: scalar scores folded from results the execution stack
//! already produces.
//!
//! An objective contributes runs to a batch plan (`plan`) and later
//! folds the cached results into a score (`score`). The split is what
//! makes searches reproducible at any fan-out width: drivers batch all
//! planning before any execution, and scoring reads memoized values, so
//! neither depends on completion order.

use seer_harness::{geometric_mean, Cell, Plan, PolicyKind};
use seer_scenario::{RecoveryReport, ScenarioPlan};
use seer_stamp::Benchmark;

use crate::exec::TuneExecutor;

/// The pinned throughput workload: two STAMP benchmarks with opposite
/// contention profiles, at the conformance replay thread count and a
/// scale small enough that a 64-config halving search stays
/// interactive.
pub const PINNED_BENCHMARKS: [Benchmark; 2] = [Benchmark::KmeansHigh, Benchmark::Ssca2];
/// Thread count of every pinned cell.
pub const PINNED_THREADS: usize = 4;
/// Scale factor of every pinned cell. Matches the interactive sweep
/// scale — and, critically, keeps every run long enough (1400–2400
/// transactions at 4 threads) for the sampled update windows to fire
/// several times; much below this the scheduler never re-trains and
/// every configuration scores identically.
pub const PINNED_SCALE: f64 = 0.5;
/// The pinned robustness scenarios: a phase change and a churn burst,
/// scored at seed 0 (robustness is fidelity-independent; see
/// [`RobustnessObjective`]).
pub const PINNED_SCENARIOS: [&str; 2] = ["phase-flip", "churn-storm"];

/// A scalar figure of merit over one candidate policy. Higher is
/// better. Implementations must be pure folds over the executor's
/// cached results — no I/O, no randomness, no extra runs.
pub trait Objective {
    /// Stable name, recorded in the leaderboard.
    fn name(&self) -> &'static str;

    /// Adds every run this objective needs for `policy` at `fidelity`
    /// (the number of harness seeds, `0..fidelity`) to the batch plans.
    fn plan(&self, policy: PolicyKind, fidelity: u64, cells: &mut Plan, scenarios: &mut ScenarioPlan);

    /// Folds the (now cached) results into a score; `None` when any
    /// needed run failed, which ranks the trial below every scored one.
    fn score(&self, policy: PolicyKind, fidelity: u64, exec: &TuneExecutor) -> Option<f64>;
}

/// Parses an objective name from the CLI (`--objective`).
pub fn objective_by_name(name: &str) -> Option<Box<dyn Objective>> {
    match name {
        "throughput" => Some(Box::new(ThroughputObjective)),
        "robustness" => Some(Box::new(RobustnessObjective)),
        "combined" => Some(Box::new(CombinedObjective)),
        _ => None,
    }
}

fn pinned_cell(benchmark: Benchmark, policy: PolicyKind) -> Cell {
    Cell {
        benchmark,
        policy,
        threads: PINNED_THREADS,
    }
}

/// Mean stationary throughput over the pinned cell plan: the geometric
/// mean across benchmarks of the seed-averaged commit rate
/// (commits per kilocycle — scale-free across benchmarks thanks to the
/// geometric mean).
pub struct ThroughputObjective;

impl Objective for ThroughputObjective {
    fn name(&self) -> &'static str {
        "throughput"
    }

    fn plan(&self, policy: PolicyKind, fidelity: u64, cells: &mut Plan, _: &mut ScenarioPlan) {
        for benchmark in PINNED_BENCHMARKS {
            for seed in 0..fidelity {
                cells.add_one(pinned_cell(benchmark, policy), seed, PINNED_SCALE);
            }
        }
    }

    fn score(&self, policy: PolicyKind, fidelity: u64, exec: &TuneExecutor) -> Option<f64> {
        let mut per_benchmark = Vec::with_capacity(PINNED_BENCHMARKS.len());
        for benchmark in PINNED_BENCHMARKS {
            let mut rates = Vec::with_capacity(fidelity as usize);
            for seed in 0..fidelity {
                let m = exec
                    .cells()
                    .cached(pinned_cell(benchmark, policy), seed, PINNED_SCALE)?;
                rates.push(m.commits as f64 / m.makespan as f64 * 1_000.0);
            }
            per_benchmark.push(rates.iter().sum::<f64>() / rates.len() as f64);
        }
        Some(geometric_mean(&per_benchmark))
    }
}

/// Folds one [`RecoveryReport`] into `[0, 1]`: half for re-converging
/// after every disturbance, half for shallow regressions while
/// disturbed.
pub fn recovery_score(report: &RecoveryReport) -> f64 {
    if report.scores.is_empty() {
        return if report.recovered { 1.0 } else { 0.0 };
    }
    let n = report.scores.len() as f64;
    let reconverged = report
        .scores
        .iter()
        .filter(|s| s.reconverged_at.is_some())
        .count() as f64
        / n;
    let mean_depth = report
        .scores
        .iter()
        .map(|s| s.regression_depth.clamp(0.0, 1.0))
        .sum::<f64>()
        / n;
    0.5 * reconverged + 0.5 * (1.0 - mean_depth)
}

/// Robustness under disturbance: the mean [`recovery_score`] over the
/// pinned scenarios. Always evaluated at scenario seed 0 — recovery
/// scoring is already an aggregate over a run's disturbance windows, so
/// the fidelity axis (which the halving driver doubles) is spent on the
/// throughput cells instead.
pub struct RobustnessObjective;

impl Objective for RobustnessObjective {
    fn name(&self) -> &'static str {
        "robustness"
    }

    fn plan(&self, policy: PolicyKind, _fidelity: u64, _: &mut Plan, scenarios: &mut ScenarioPlan) {
        for name in PINNED_SCENARIOS {
            scenarios.add(name, policy, 0);
        }
    }

    fn score(&self, policy: PolicyKind, _fidelity: u64, exec: &TuneExecutor) -> Option<f64> {
        let mut total = 0.0;
        for name in PINNED_SCENARIOS {
            let outcome = exec.scenarios().cached(name, policy, 0)?;
            total += recovery_score(&outcome.report);
        }
        Some(total / PINNED_SCENARIOS.len() as f64)
    }
}

/// The headline objective: stationary throughput scaled by robustness —
/// `throughput × (1 + robustness)` — so a configuration is rewarded for
/// re-converging after disturbances, not just for peak speed.
pub struct CombinedObjective;

impl Objective for CombinedObjective {
    fn name(&self) -> &'static str {
        "combined"
    }

    fn plan(&self, policy: PolicyKind, fidelity: u64, cells: &mut Plan, scenarios: &mut ScenarioPlan) {
        ThroughputObjective.plan(policy, fidelity, cells, scenarios);
        RobustnessObjective.plan(policy, fidelity, cells, scenarios);
    }

    fn score(&self, policy: PolicyKind, fidelity: u64, exec: &TuneExecutor) -> Option<f64> {
        let throughput = ThroughputObjective.score(policy, fidelity, exec)?;
        let robustness = RobustnessObjective.score(policy, fidelity, exec)?;
        Some(throughput * (1.0 + robustness))
    }
}
