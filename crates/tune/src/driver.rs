//! Search drivers: seeded random search, successive halving, and
//! coordinate hill-climbing.
//!
//! ## Determinism under fan-out
//!
//! Every driver is a pure function of `(space, objective, seed)`. The
//! discipline that makes this hold at any `--jobs` or worker count:
//!
//! 1. **Propose before executing.** Each round's candidate points are
//!    drawn from [`SimRng`] streams derived from the search seed and
//!    the proposal index — never from anything an evaluation produced
//!    out of order.
//! 2. **Execute as one batch.** All runs a round needs go into a single
//!    deduplicated plan; the executor may compute them in any order on
//!    any substrate (threads, disk, remote workers) because results are
//!    keyed, not positional.
//! 3. **Score from the cache.** After the batch, scores are pure folds
//!    over memoized values, and every tie-break is by proposal index.

use seer_sim::SimRng;

use crate::exec::{TuneExecReport, TuneExecutor};
use crate::objective::Objective;
use crate::space::{ParamSpace, Point};
use crate::sampler::{midpoint, neighbors, sample};

/// Which search algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverKind {
    /// `budget` independent uniform draws, all at the base fidelity.
    Random,
    /// Successive halving: `budget` initial configs at fidelity 1; each
    /// rung keeps the better half and doubles the fidelity (capped at
    /// [`MAX_FIDELITY`]).
    Halving,
    /// Coordinate hill-climbing from the space midpoint; `budget` bounds
    /// the total number of distinct configs evaluated.
    Climb,
}

impl DriverKind {
    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            DriverKind::Random => "random",
            DriverKind::Halving => "halving",
            DriverKind::Climb => "climb",
        }
    }
}

impl std::str::FromStr for DriverKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "random" => Ok(DriverKind::Random),
            "halving" => Ok(DriverKind::Halving),
            "climb" => Ok(DriverKind::Climb),
            other => Err(format!(
                "unknown driver {other:?} (random, halving, climb)"
            )),
        }
    }
}

/// Fidelity (harness seeds per cell) used by the flat drivers and by
/// halving's first doubling target.
pub const BASE_FIDELITY: u64 = 2;
/// Fidelity cap for successive halving (seeds `0..8` at the top rung).
pub const MAX_FIDELITY: u64 = 8;

/// One evaluated configuration, at the highest fidelity it reached.
#[derive(Debug, Clone)]
pub struct Trial {
    /// Proposal index (stable identity and final tie-break).
    pub index: u64,
    /// The point in space coordinates.
    pub point: Point,
    /// Seeds evaluated (`0..fidelity`).
    pub fidelity: u64,
    /// Objective value; `None` when a needed run failed.
    pub score: Option<f64>,
}

/// The outcome of a search.
pub struct SearchOutcome {
    /// Every distinct configuration evaluated, in proposal order, each
    /// at its final fidelity.
    pub trials: Vec<Trial>,
    /// Index into `trials` of the incumbent (best score, lowest
    /// proposal index on ties). `None` only if every trial failed.
    pub best: Option<usize>,
    /// Execution counters summed over all evaluation batches.
    pub exec_report: TuneExecReport,
    /// Human-readable descriptions of failed runs.
    pub failures: Vec<String>,
}

/// Ranks trial references best-first: scored before failed, higher
/// score first, proposal index as the deterministic tie-break.
pub fn rank(trials: &mut [&mut Trial]) {
    trials.sort_by(|a, b| match (a.score, b.score) {
        (Some(x), Some(y)) => y
            .partial_cmp(&x)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.index.cmp(&b.index)),
        (Some(_), None) => std::cmp::Ordering::Less,
        (None, Some(_)) => std::cmp::Ordering::Greater,
        (None, None) => a.index.cmp(&b.index),
    });
}

/// Runs `driver` over `space` for `objective`, spending at most
/// `budget` (see each [`DriverKind`] for the budget's unit), with every
/// random draw derived from `seed`.
pub fn run_search(
    space: &ParamSpace,
    driver: DriverKind,
    budget: u64,
    seed: u64,
    objective: &dyn Objective,
    exec: &TuneExecutor,
    progress: &mut dyn FnMut(&str, &TuneExecReport),
) -> SearchOutcome {
    let mut state = SearchState {
        space,
        objective,
        exec,
        trials: Vec::new(),
        exec_report: TuneExecReport::default(),
        failures: Vec::new(),
    };
    match driver {
        DriverKind::Random => {
            let rng = SimRng::new(seed).derive(0x52414e44); // "RAND"
            let points: Vec<Point> = (0..budget)
                .map(|i| sample(space, &mut rng.derive(i)))
                .collect();
            let idx = state.propose(points);
            state.evaluate(&idx, BASE_FIDELITY, progress);
        }
        DriverKind::Halving => {
            let rng = SimRng::new(seed).derive(0x48414c56); // "HALV"
            let points: Vec<Point> = (0..budget)
                .map(|i| sample(space, &mut rng.derive(i)))
                .collect();
            let mut cohort = state.propose(points);
            let mut fidelity = 1;
            loop {
                state.evaluate(&cohort, fidelity, progress);
                if cohort.len() <= 1 || fidelity >= MAX_FIDELITY {
                    break;
                }
                // Keep the better half (ceiling, so a cohort of one
                // survivor still reaches the fidelity cap).
                let mut refs: Vec<&mut Trial> = state
                    .trials
                    .iter_mut()
                    .filter(|t| cohort.contains(&(t.index as usize)))
                    .collect();
                rank(&mut refs);
                cohort = refs
                    .iter()
                    .take(cohort.len().div_ceil(2))
                    .map(|t| t.index as usize)
                    .collect();
                fidelity *= 2;
            }
        }
        DriverKind::Climb => {
            let start = state.propose(vec![midpoint(space)]);
            state.evaluate(&start, BASE_FIDELITY, progress);
            let mut current = start[0];
            while (state.trials.len() as u64) < budget {
                let candidates: Vec<Point> = neighbors(space, &state.trials[current].point)
                    .into_iter()
                    .filter(|p| !state.trials.iter().any(|t| t.point == *p))
                    .take((budget as usize).saturating_sub(state.trials.len()))
                    .collect();
                if candidates.is_empty() {
                    break;
                }
                let idx = state.propose(candidates);
                state.evaluate(&idx, BASE_FIDELITY, progress);
                let best_neighbor = idx
                    .iter()
                    .copied()
                    .filter(|&i| state.trials[i].score.is_some())
                    .max_by(|&a, &b| {
                        let (x, y) = (state.trials[a].score, state.trials[b].score);
                        x.partial_cmp(&y)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            // On equal scores prefer the earlier proposal.
                            .then(state.trials[b].index.cmp(&state.trials[a].index))
                    });
                match (best_neighbor, state.trials[current].score) {
                    (Some(n), Some(cur)) if state.trials[n].score > Some(cur) => current = n,
                    (Some(n), None) => current = n,
                    _ => break, // local optimum
                }
            }
        }
    }
    let best = {
        let mut refs: Vec<&mut Trial> = state.trials.iter_mut().collect();
        rank(&mut refs);
        refs.first()
            .filter(|t| t.score.is_some())
            .map(|t| t.index as usize)
    };
    SearchOutcome {
        trials: state.trials,
        best,
        exec_report: state.exec_report,
        failures: state.failures,
    }
}

struct SearchState<'a> {
    space: &'a ParamSpace,
    objective: &'a dyn Objective,
    exec: &'a TuneExecutor,
    trials: Vec<Trial>,
    exec_report: TuneExecReport,
    failures: Vec<String>,
}

impl SearchState<'_> {
    /// Registers distinct new points as trials (deduplicating against
    /// everything already proposed) and returns the trial indices the
    /// batch should evaluate — including re-proposed duplicates.
    fn propose(&mut self, points: Vec<Point>) -> Vec<usize> {
        let mut idx = Vec::with_capacity(points.len());
        for point in points {
            if let Some(existing) = self.trials.iter().position(|t| t.point == point) {
                if !idx.contains(&existing) {
                    idx.push(existing);
                }
                continue;
            }
            self.trials.push(Trial {
                index: self.trials.len() as u64,
                point,
                fidelity: 0,
                score: None,
            });
            idx.push(self.trials.len() - 1);
        }
        idx
    }

    /// Evaluates the given trials at `fidelity`: one deduplicated batch
    /// plan, one execute, then pure-fold scoring.
    fn evaluate(
        &mut self,
        idx: &[usize],
        fidelity: u64,
        progress: &mut dyn FnMut(&str, &TuneExecReport),
    ) {
        let mut cells = seer_harness::Plan::new();
        let mut scenarios = seer_scenario::ScenarioPlan::new();
        for &i in idx {
            let policy = self.space.policy(&self.trials[i].point);
            self.objective.plan(policy, fidelity, &mut cells, &mut scenarios);
        }
        let (report, failures) = self.exec.execute(&cells, &scenarios);
        progress(
            &format!("{} config(s) at fidelity {}", idx.len(), fidelity),
            &report,
        );
        self.exec_report.absorb(&report);
        self.failures.extend(failures);
        for &i in idx {
            let policy = self.space.policy(&self.trials[i].point);
            self.trials[i].score = self.objective.score(policy, fidelity, self.exec);
            self.trials[i].fidelity = fidelity;
        }
    }
}
