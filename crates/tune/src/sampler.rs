//! Deterministic samplers over a [`ParamSpace`].
//!
//! Sampling consumes a caller-provided [`SimRng`] stream; the drivers
//! derive one stream per proposal index, so the proposed points are a
//! pure function of `(space, seed)` — independent of evaluation order,
//! `--jobs`, and worker count.

use seer_sim::SimRng;

use crate::space::{DimKind, ParamSpace, ParamValue, Point};

/// Draws one point uniformly from `space` (log-uniformly on log-float
/// dimensions). Every returned value lies inside its dimension's range,
/// including on degenerate (constant) dimensions.
pub fn sample(space: &ParamSpace, rng: &mut SimRng) -> Point {
    space
        .dims()
        .iter()
        .map(|dim| match &dim.kind {
            DimKind::Int { min, max } => ParamValue::Int(rng.range_inclusive(*min, *max)),
            DimKind::Float { min, max, log } => {
                let u = rng.unit();
                let v = if *log {
                    (min.ln() + u * (max.ln() - min.ln())).exp()
                } else {
                    min + u * (max - min)
                };
                // Rounding in the interpolation may land a hair outside.
                ParamValue::Float(v.clamp(*min, *max))
            }
            DimKind::Choice { options } => {
                ParamValue::Choice(rng.below(options.len() as u64) as usize)
            }
        })
        .collect()
}

/// The centre of the space: integer midpoints, arithmetic float
/// midpoints (geometric on log dimensions), the first choice option.
/// The coordinate-hill-climbing driver starts here.
pub fn midpoint(space: &ParamSpace) -> Point {
    space
        .dims()
        .iter()
        .map(|dim| match &dim.kind {
            DimKind::Int { min, max } => ParamValue::Int(min + (max - min) / 2),
            DimKind::Float { min, max, log } => ParamValue::Float(if *log {
                (min * max).sqrt()
            } else {
                (min + max) / 2.0
            }),
            DimKind::Choice { .. } => ParamValue::Choice(0),
        })
        .collect()
}

/// Number of steps a hill-climbing pass divides each range into.
const CLIMB_STEPS: f64 = 8.0;

/// The coordinate neighbours of `point`: for each dimension, one step
/// down and one step up (an eighth of the range; adjacent options on
/// choice dimensions), clamped into the space and deduplicated against
/// the origin. Deterministic — no randomness involved.
pub fn neighbors(space: &ParamSpace, point: &Point) -> Vec<Point> {
    let mut out = Vec::new();
    for (d, dim) in space.dims().iter().enumerate() {
        let steps: Vec<ParamValue> = match (&dim.kind, &point[d]) {
            (DimKind::Int { min, max }, ParamValue::Int(v)) => {
                let step = ((max - min) / CLIMB_STEPS as u64).max(1);
                vec![
                    ParamValue::Int(v.saturating_sub(step).max(*min)),
                    ParamValue::Int(v.saturating_add(step).min(*max)),
                ]
            }
            (DimKind::Float { min, max, log }, ParamValue::Float(v)) => {
                if *log {
                    let factor = (max / min).powf(1.0 / CLIMB_STEPS);
                    vec![
                        ParamValue::Float((v / factor).clamp(*min, *max)),
                        ParamValue::Float((v * factor).clamp(*min, *max)),
                    ]
                } else {
                    let step = (max - min) / CLIMB_STEPS;
                    vec![
                        ParamValue::Float((v - step).clamp(*min, *max)),
                        ParamValue::Float((v + step).clamp(*min, *max)),
                    ]
                }
            }
            (DimKind::Choice { options }, ParamValue::Choice(i)) => {
                let mut s = Vec::new();
                if *i > 0 {
                    s.push(ParamValue::Choice(i - 1));
                }
                if i + 1 < options.len() {
                    s.push(ParamValue::Choice(i + 1));
                }
                s
            }
            _ => unreachable!("point shape validated against the space"),
        };
        for value in steps {
            if value != point[d] {
                let mut n = point.clone();
                n[d] = value;
                out.push(n);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Dim;

    #[test]
    fn samples_stay_inside_and_are_seed_deterministic() {
        let space = ParamSpace::default_space();
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..200 {
            let p = sample(&space, &mut a);
            assert_eq!(p, sample(&space, &mut b), "same seed, same stream");
            for (d, v) in p.iter().enumerate() {
                assert!(space.contains(d, v), "dim {d} out of range: {v:?}");
            }
        }
    }

    #[test]
    fn neighbors_stay_inside_and_differ_from_origin() {
        let space = ParamSpace::default_space();
        let mut rng = SimRng::new(3);
        for _ in 0..50 {
            let p = sample(&space, &mut rng);
            for n in neighbors(&space, &p) {
                assert_ne!(n, p);
                for (d, v) in n.iter().enumerate() {
                    assert!(space.contains(d, v));
                }
            }
        }
    }

    #[test]
    fn degenerate_dimension_yields_no_neighbors() {
        let space = ParamSpace::new(vec![Dim {
            name: "window".into(),
            kind: crate::space::DimKind::Int { min: 300, max: 300 },
        }])
        .unwrap();
        let p = midpoint(&space);
        assert_eq!(p, vec![ParamValue::Int(300)]);
        assert!(neighbors(&space, &p).is_empty());
    }
}
