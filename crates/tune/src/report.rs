//! The tune report: ranked leaderboard, incumbent-vs-default
//! comparison, and the per-dimension sensitivity table.
//!
//! Everything here is a pure function of the search outcome — no
//! execution counters, no timings, no fan-out detail — so the rendered
//! JSON is bit-identical for serial, `--jobs N`, and remote-pool runs
//! of the same `(space, driver, budget, objective, seed)`.

use seer_store::{Json, ToJson};

use crate::driver::{rank, DriverKind, SearchOutcome, Trial};
use crate::space::{DimKind, ParamSpace, ParamValue};

/// Schema version stamped into every report (checked by `tune_check`).
pub const SCHEMA_VERSION: u64 = 1;
/// Leaderboard length.
pub const LEADERBOARD_TOP: usize = 10;

/// One row of the sensitivity table: how much the objective drops when
/// dimension `dim` moves off the incumbent, estimated from trials
/// already evaluated (no extra runs).
#[derive(Debug, Clone)]
pub struct Sensitivity {
    /// Dimension name.
    pub dim: String,
    /// `incumbent score − best score among trials differing in `dim``;
    /// `None` when no evaluated trial differs in this dimension.
    pub delta: Option<f64>,
    /// The differing value of the best such trial.
    pub best_alternative: Option<ParamValue>,
}

/// Per-dimension sensitivity around the incumbent.
///
/// For each dimension the estimate is the objective gap to the best
/// trial whose coordinate differs there (trials differing in several
/// dimensions still count — with sparse budgets they are often all we
/// have, and the gap then *underestimates* sensitivity, never inflates
/// it). A large delta means the knob matters; a near-zero delta means
/// the search found equally good configs elsewhere along that axis.
pub fn sensitivity(space: &ParamSpace, trials: &[Trial], best: usize) -> Vec<Sensitivity> {
    let incumbent = &trials[best];
    let incumbent_score = incumbent.score.expect("the incumbent is scored");
    space
        .dims()
        .iter()
        .enumerate()
        .map(|(d, dim)| {
            let alternative = trials
                .iter()
                .filter(|t| t.index != incumbent.index)
                .filter(|t| t.point[d] != incumbent.point[d])
                .filter(|t| t.score.is_some())
                .max_by(|a, b| {
                    a.score
                        .partial_cmp(&b.score)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(b.index.cmp(&a.index))
                });
            Sensitivity {
                dim: dim.name.clone(),
                delta: alternative.map(|t| incumbent_score - t.score.unwrap()),
                best_alternative: alternative.map(|t| t.point[d]),
            }
        })
        .collect()
}

fn value_json(kind: &DimKind, value: &ParamValue) -> Json {
    match (value, kind) {
        (ParamValue::Int(n), _) => (*n).to_json(),
        (ParamValue::Float(f), _) => (*f).to_json(),
        (ParamValue::Choice(i), DimKind::Choice { options }) => options[*i].to_json(),
        (ParamValue::Choice(_), _) => unreachable!("choice value on a range dim"),
    }
}

fn trial_json(space: &ParamSpace, trial: &Trial, rank: usize) -> Json {
    Json::object([
        ("rank", rank.to_json()),
        ("trial", trial.index.to_json()),
        ("spec", space.policy(&trial.point).spec().to_json()),
        ("point", space.point_json(&trial.point)),
        ("fidelity", trial.fidelity.to_json()),
        (
            "score",
            match trial.score {
                Some(s) => s.to_json(),
                None => Json::Null,
            },
        ),
    ])
}

/// Renders the full report document.
///
/// `default_score` is the paper-default configuration evaluated on the
/// same objective at the incumbent's fidelity — the yardstick for the
/// `improvement` ratio.
pub fn report_json(
    space: &ParamSpace,
    driver: DriverKind,
    budget: u64,
    seed: u64,
    objective: &str,
    outcome: &SearchOutcome,
    default_score: Option<f64>,
) -> Json {
    let mut ranked: Vec<Trial> = outcome.trials.clone();
    let mut refs: Vec<&mut Trial> = ranked.iter_mut().collect();
    rank(&mut refs);
    let leaderboard: Vec<Json> = refs
        .iter()
        .take(LEADERBOARD_TOP)
        .enumerate()
        .map(|(i, t)| trial_json(space, t, i + 1))
        .collect();
    let best = outcome.best.map(|b| &outcome.trials[b]);
    let improvement = match (best.and_then(|b| b.score), default_score) {
        (Some(b), Some(d)) if d > 0.0 => Some(b / d),
        _ => None,
    };
    let sens = best
        .map(|b| sensitivity(space, &outcome.trials, b.index as usize))
        .unwrap_or_default();
    let sens_json: Vec<Json> = sens
        .iter()
        .map(|s| {
            let dim_kind = &space
                .dims()
                .iter()
                .find(|d| d.name == s.dim)
                .expect("sensitivity rows come from the space")
                .kind;
            Json::object([
                ("dim", s.dim.to_json()),
                (
                    "delta",
                    match s.delta {
                        Some(d) => d.to_json(),
                        None => Json::Null,
                    },
                ),
                (
                    "best_alternative",
                    match &s.best_alternative {
                        Some(v) => value_json(dim_kind, v),
                        None => Json::Null,
                    },
                ),
            ])
        })
        .collect();
    Json::object([
        ("schema_version", SCHEMA_VERSION.to_json()),
        ("driver", driver.name().to_json()),
        ("budget", budget.to_json()),
        ("seed", seed.to_json()),
        ("objective", objective.to_json()),
        ("space", space.to_json()),
        ("trials", outcome.trials.len().to_json()),
        (
            "best",
            match best {
                Some(b) => trial_json(space, b, 1),
                None => Json::Null,
            },
        ),
        (
            "default_score",
            match default_score {
                Some(d) => d.to_json(),
                None => Json::Null,
            },
        ),
        (
            "improvement",
            match improvement {
                Some(r) => r.to_json(),
                None => Json::Null,
            },
        ),
        ("leaderboard", Json::Array(leaderboard)),
        ("sensitivity", Json::Array(sens_json)),
    ])
}

/// Validates a report document against the schema `tune_check` gates in
/// CI. Returns every violation found (empty = valid).
pub fn validate_report(json: &Json) -> Vec<String> {
    let mut violations = Vec::new();
    let field_checks = [
        (
            "schema_version",
            json.get("schema_version").and_then(Json::as_u64) == Some(SCHEMA_VERSION),
        ),
        (
            "driver",
            json.get("driver")
                .and_then(Json::as_str)
                .is_some_and(|d| d.parse::<DriverKind>().is_ok()),
        ),
        ("budget", json.get("budget").and_then(Json::as_u64).is_some()),
        ("seed", json.get("seed").and_then(Json::as_u64).is_some()),
        (
            "objective",
            json.get("objective").and_then(Json::as_str).is_some(),
        ),
        ("trials", json.get("trials").and_then(Json::as_u64).is_some()),
    ];
    for (field, ok) in field_checks {
        if !ok {
            violations.push(format!("missing or malformed field {field:?}"));
        }
    }
    match json.get("space") {
        Some(space) => {
            if let Err(e) = ParamSpace::from_json(space) {
                violations.push(format!("space does not validate: {e}"));
            }
        }
        None => violations.push("missing field \"space\"".into()),
    }
    let rows = json.get("leaderboard").and_then(Json::as_array);
    match rows {
        None => violations.push("missing or malformed field \"leaderboard\"".into()),
        Some(rows) => {
            let mut last_score: Option<f64> = None;
            for (i, row) in rows.iter().enumerate() {
                if row.get("rank").and_then(Json::as_u64) != Some(i as u64 + 1) {
                    violations.push(format!("leaderboard[{i}]: rank must be {}", i + 1));
                }
                let spec_ok = row
                    .get("spec")
                    .and_then(Json::as_str)
                    .is_some_and(|s| s.parse::<seer_harness::PolicyKind>().is_ok());
                if !spec_ok {
                    violations.push(format!("leaderboard[{i}]: spec must parse as a policy"));
                }
                if row.get("fidelity").and_then(Json::as_u64).is_none() {
                    violations.push(format!("leaderboard[{i}]: missing fidelity"));
                }
                let score = row.get("score").and_then(Json::as_f64);
                match (last_score, score) {
                    (Some(prev), Some(s)) if s > prev => {
                        violations.push(format!("leaderboard[{i}]: scores must be non-increasing"));
                    }
                    (_, Some(s)) => last_score = Some(s),
                    // A null score (failed trial) must not precede a
                    // scored one.
                    (_, None) if rows[i..].iter().any(|r| r.get("score").and_then(Json::as_f64).is_some()) => {
                        violations.push(format!("leaderboard[{i}]: failed trial ranked above a scored one"));
                    }
                    _ => {}
                }
            }
        }
    }
    match json.get("sensitivity").and_then(Json::as_array) {
        None => violations.push("missing or malformed field \"sensitivity\"".into()),
        Some(rows) => {
            for (i, row) in rows.iter().enumerate() {
                if row.get("dim").and_then(Json::as_str).is_none() {
                    violations.push(format!("sensitivity[{i}]: missing dim"));
                }
            }
        }
    }
    violations
}
