//! `tune_check` — schema gate for `seer tune` leaderboard reports.
//!
//! ```text
//! tune_check REPORT.json [MORE.json ...]
//! ```
//!
//! Exit 0 when every document validates against the schema documented
//! in `DESIGN.md` §15 (and enforced by `seer_tune::validate_report`);
//! exit 1 with one line per violation otherwise. CI runs this over the
//! smoke-search output so a malformed leaderboard fails the `tune` job
//! rather than a downstream consumer.

use std::process::ExitCode;

use seer_store::Json;
use seer_tune::validate_report;

const USAGE: &str = "usage: tune_check REPORT.json [MORE.json ...]";

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() || paths.iter().any(|p| p == "--help" || p == "-h") {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let mut violations = 0usize;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{path}: unreadable: {e}");
                violations += 1;
                continue;
            }
        };
        let json = match Json::parse(&text) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("{path}: not JSON: {e}");
                violations += 1;
                continue;
            }
        };
        let found = validate_report(&json);
        for v in &found {
            eprintln!("{path}: {v}");
        }
        if found.is_empty() {
            println!("{path}: ok");
        }
        violations += found.len();
    }
    if violations == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("tune_check: {violations} violation(s)");
        ExitCode::FAILURE
    }
}
