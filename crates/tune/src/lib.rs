//! # seer-tune — deterministic parameter search for Seer's knobs
//!
//! The paper pins Seer's scheduling knobs (sampling window, statistics
//! decay, the discriminative-sigma cutoff, the `Th1`/`Th2` activation
//! thresholds) to hand-picked constants. This crate closes the loop the
//! rest of the workspace already enables: a search subsystem that
//! *consumes* the execution stack — memoizing executor, content-
//! addressed store, remote worker pool, scenario recovery scoring —
//! instead of extending it.
//!
//! The moving parts:
//!
//! * [`space::ParamSpace`] — a pure-data search-space spec (named
//!   integer / float / log-float / categorical dimensions) with full
//!   validation and JSON round-tripping;
//! * [`driver`] — seeded random search, successive halving, and
//!   coordinate hill-climbing, all pure functions of
//!   `(space, objective, seed)` and bit-reproducible at any fan-out;
//! * [`objective`] — stationary throughput over a pinned cell plan, a
//!   robustness objective folding scenario `RecoveryReport`s, and their
//!   combination;
//! * [`exec::TuneExecutor`] — trial evaluation through the generic
//!   executor: every run memoizes, persists to `--store`, resumes, and
//!   fans out over `--workers` with zero new wire messages;
//! * [`report`] — the ranked leaderboard plus a per-dimension
//!   sensitivity table derived from trials already evaluated.
//!
//! ```
//! use seer_tune::{run_search, DriverKind, ParamSpace, ThroughputObjective, TuneExecutor};
//!
//! let space = ParamSpace::default_space();
//! let exec = TuneExecutor::new(1);
//! let outcome = run_search(
//!     &space, DriverKind::Random, 2, 0, &ThroughputObjective, &exec, &mut |_, _| {},
//! );
//! assert_eq!(outcome.trials.len(), 2);
//! assert!(outcome.best.is_some());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod driver;
pub mod exec;
pub mod objective;
pub mod report;
pub mod sampler;
pub mod space;

pub use driver::{run_search, DriverKind, SearchOutcome, Trial, BASE_FIDELITY, MAX_FIDELITY};
pub use exec::{TuneExecReport, TuneExecutor};
pub use objective::{
    objective_by_name, recovery_score, CombinedObjective, Objective, RobustnessObjective,
    ThroughputObjective, PINNED_BENCHMARKS, PINNED_SCALE, PINNED_SCENARIOS, PINNED_THREADS,
};
pub use report::{report_json, sensitivity, validate_report, Sensitivity, SCHEMA_VERSION};
pub use space::{Dim, DimKind, ParamSpace, ParamValue, Point, SpaceError};
