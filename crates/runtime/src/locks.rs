//! The lock bank: every software lock the schedulers use, addressable by id.
//!
//! Four classes of locks appear across the evaluated schedulers (paper
//! Table 2 and §5.1):
//!
//! * `Sgl` — the single-global lock of the HTM fall-back path, common to
//!   every scheduler.
//! * `Aux` — SCM's auxiliary serialization lock for aborted transactions.
//! * `Core(i)` — Seer's per-physical-core locks against SMT-induced
//!   capacity aborts.
//! * `Tx(j)` — Seer's per-atomic-block locks implementing the inferred
//!   fine-grained serialization scheme.
//!
//! [`LockId`]'s derived `Ord` is the *canonical acquisition order* used by
//! every multi-lock acquisition in the runtime; acquiring in this order
//! (and never blocking on a lock while holding a later-ordered one without
//! first releasing, see `Gate::ReleaseHeld`) makes the simulated system —
//! and the algorithm it models — deadlock-free. The paper sorts the rows of
//! `locksToAcquire` for the same reason (Alg. 5 line 75).

use seer_sim::{Cycles, SimLock, ThreadId};

use self::lock_release_wake::ReleaseWakePlan;

/// Identifier of a software lock managed by the runtime.
///
/// The derived ordering (`Sgl < Aux < Core(_) < Tx(_)`, each class by
/// index) is the canonical deadlock-avoiding acquisition order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LockId {
    /// The single-global fall-back lock.
    Sgl,
    /// SCM's auxiliary serialization lock.
    Aux,
    /// Seer's per-physical-core lock.
    Core(usize),
    /// Seer's per-atomic-block lock.
    Tx(usize),
}

impl std::fmt::Display for LockId {
    /// The stable label used by the trace JSONL schema: `sgl`, `aux`,
    /// `core:<i>`, `tx:<j>`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockId::Sgl => write!(f, "sgl"),
            LockId::Aux => write!(f, "aux"),
            LockId::Core(i) => write!(f, "core:{i}"),
            LockId::Tx(i) => write!(f, "tx:{i}"),
        }
    }
}

/// All locks of a simulation run.
#[derive(Debug, Clone)]
pub struct LockBank {
    sgl: SimLock,
    aux: SimLock,
    core: Vec<SimLock>,
    tx: Vec<SimLock>,
}

impl LockBank {
    /// A bank with `cores` core locks and `blocks` transaction locks.
    pub fn new(cores: usize, blocks: usize) -> Self {
        Self {
            sgl: SimLock::new(),
            aux: SimLock::new(),
            core: (0..cores).map(|_| SimLock::new()).collect(),
            tx: (0..blocks).map(|_| SimLock::new()).collect(),
        }
    }

    /// Shared access to a lock.
    pub fn get(&self, id: LockId) -> &SimLock {
        match id {
            LockId::Sgl => &self.sgl,
            LockId::Aux => &self.aux,
            LockId::Core(i) => &self.core[i],
            LockId::Tx(i) => &self.tx[i],
        }
    }

    /// Mutable access to a lock.
    pub fn get_mut(&mut self, id: LockId) -> &mut SimLock {
        match id {
            LockId::Sgl => &mut self.sgl,
            LockId::Aux => &mut self.aux,
            LockId::Core(i) => &mut self.core[i],
            LockId::Tx(i) => &mut self.tx[i],
        }
    }

    /// True when `id` is held by any thread.
    pub fn is_locked(&self, id: LockId) -> bool {
        self.get(id).is_locked()
    }

    /// True when `id` is held by `thread`.
    pub fn is_held_by(&self, id: LockId, thread: ThreadId) -> bool {
        self.get(id).is_held_by(thread)
    }

    /// Releases `id` (held by `thread`) and returns the wake plan.
    pub fn release(&mut self, id: LockId, thread: ThreadId, now: Cycles) -> ReleaseWakePlan {
        let wake = self.get_mut(id).release(thread, now);
        ReleaseWakePlan {
            lock: id,
            acquirers: wake.acquirers,
            watchers: wake.watchers,
        }
    }

    /// [`LockBank::release`] draining the wake lists into caller-provided
    /// vectors (cleared first), allocating nothing — the hot path of the
    /// DES driver's lock hand-off.
    pub fn release_into(
        &mut self,
        id: LockId,
        thread: ThreadId,
        now: Cycles,
        acquirers: &mut Vec<ThreadId>,
        watchers: &mut Vec<ThreadId>,
    ) {
        self.get_mut(id).release_into(thread, now, acquirers, watchers);
    }

    /// Number of transaction locks in the bank.
    pub fn tx_lock_count(&self) -> usize {
        self.tx.len()
    }

    /// Number of core locks in the bank.
    pub fn core_lock_count(&self) -> usize {
        self.core.len()
    }
}

/// Helper module kept separate so `LockBank::release` can return a plan
/// without borrowing the bank.
pub mod lock_release_wake {
    use super::LockId;
    use seer_sim::ThreadId;

    /// Which threads to wake after releasing a lock.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct ReleaseWakePlan {
        /// The released lock.
        pub lock: LockId,
        /// Parked acquirers in FIFO order; woken to re-contend.
        pub acquirers: Vec<ThreadId>,
        /// Threads watching for the lock to become free.
        pub watchers: Vec<ThreadId>,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order() {
        let mut ids = vec![
            LockId::Tx(3),
            LockId::Core(1),
            LockId::Sgl,
            LockId::Tx(0),
            LockId::Aux,
            LockId::Core(0),
        ];
        ids.sort();
        assert_eq!(
            ids,
            vec![
                LockId::Sgl,
                LockId::Aux,
                LockId::Core(0),
                LockId::Core(1),
                LockId::Tx(0),
                LockId::Tx(3),
            ]
        );
    }

    #[test]
    fn bank_addressing() {
        let mut bank = LockBank::new(4, 10);
        assert_eq!(bank.core_lock_count(), 4);
        assert_eq!(bank.tx_lock_count(), 10);
        assert!(bank.get_mut(LockId::Tx(7)).try_acquire(2, 0));
        assert!(bank.is_locked(LockId::Tx(7)));
        assert!(bank.is_held_by(LockId::Tx(7), 2));
        assert!(!bank.is_locked(LockId::Tx(6)));
        assert!(!bank.is_locked(LockId::Sgl));
    }

    #[test]
    fn release_produces_wake_plan() {
        let mut bank = LockBank::new(1, 1);
        assert!(bank.get_mut(LockId::Sgl).try_acquire(0, 0));
        bank.get_mut(LockId::Sgl).enqueue_acquirer(1);
        bank.get_mut(LockId::Sgl).add_watcher(2);
        let plan = bank.release(LockId::Sgl, 0, 50);
        assert_eq!(plan.lock, LockId::Sgl);
        assert_eq!(plan.acquirers, vec![1]);
        assert_eq!(plan.watchers, vec![2]);
        assert!(!bank.is_locked(LockId::Sgl));
    }
}
