//! Run metrics: everything the paper's evaluation section reports.
//!
//! * [`TxMode`] — the transaction-mode taxonomy of Table 3 (HTM with no
//!   locks, with SCM's auxiliary lock, with Seer's transaction and/or core
//!   locks, or the SGL fall-back).
//! * [`RunMetrics`] — commits/aborts by cause and mode, attempt
//!   distribution, wait time, the sequential-execution cost used as the
//!   speedup denominator, and fine-granularity lock statistics (§5.2's
//!   "fraction of transaction locks acquired").
//! * [`ConflictGroundTruth`] — the simulator's private record of who
//!   actually killed whom, per atomic-block pair. Never exposed to a
//!   scheduler; used by the `accuracy` experiment to score Seer's
//!   probabilistic inference against reality.

use seer_sim::{CycleHistogram, Cycles};

use crate::trace::LifecycleEvent;
use crate::workload::BlockId;

/// How a committed transaction instance executed (Table 3 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxMode {
    /// Hardware transaction, no scheduler locks held.
    HtmNoLocks,
    /// Hardware transaction under SCM's auxiliary lock.
    HtmAuxLock,
    /// Hardware transaction holding Seer transaction lock(s).
    HtmTxLocks,
    /// Hardware transaction holding a Seer core lock.
    HtmCoreLock,
    /// Hardware transaction holding both transaction and core locks.
    HtmTxAndCoreLocks,
    /// Single-global-lock fall-back path.
    SglFallback,
}

impl TxMode {
    /// All modes, in Table 3 presentation order.
    pub const ALL: [TxMode; 6] = [
        TxMode::HtmNoLocks,
        TxMode::HtmAuxLock,
        TxMode::HtmTxLocks,
        TxMode::HtmCoreLock,
        TxMode::HtmTxAndCoreLocks,
        TxMode::SglFallback,
    ];

    /// Table-style label.
    pub fn label(self) -> &'static str {
        match self {
            TxMode::HtmNoLocks => "HTM no locks",
            TxMode::HtmAuxLock => "HTM + Aux lock",
            TxMode::HtmTxLocks => "HTM + Tx Locks",
            TxMode::HtmCoreLock => "HTM + Core Locks",
            TxMode::HtmTxAndCoreLocks => "HTM + Tx + Core Locks",
            TxMode::SglFallback => "SGL fall-back",
        }
    }

    fn index(self) -> usize {
        match self {
            TxMode::HtmNoLocks => 0,
            TxMode::HtmAuxLock => 1,
            TxMode::HtmTxLocks => 2,
            TxMode::HtmCoreLock => 3,
            TxMode::HtmTxAndCoreLocks => 4,
            TxMode::SglFallback => 5,
        }
    }
}

/// Counts of committed transactions per execution mode.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModeCounts {
    counts: [u64; 6],
}

impl ModeCounts {
    /// Records one commit in `mode`.
    pub fn record(&mut self, mode: TxMode) {
        self.counts[mode.index()] += 1;
    }

    /// Commits in `mode`.
    pub fn get(&self, mode: TxMode) -> u64 {
        self.counts[mode.index()]
    }

    /// Total commits across modes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of commits in `mode` (0 when empty).
    pub fn fraction(&self, mode: TxMode) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(mode) as f64 / total as f64
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &ModeCounts) {
        for i in 0..6 {
            self.counts[i] += other.counts[i];
        }
    }

    /// The raw per-mode tallies in [`TxMode::ALL`] order (for lossless
    /// persistence; `counts[i]` is the count for `TxMode::ALL[i]`).
    pub fn counts(&self) -> [u64; 6] {
        self.counts
    }

    /// Rebuilds a tally from raw counts in [`TxMode::ALL`] order — the
    /// inverse of [`ModeCounts::counts`].
    pub fn from_counts(counts: [u64; 6]) -> Self {
        Self { counts }
    }
}

/// Abort tallies by coarse cause (what `XStatus` distinguishes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AbortCounts {
    /// Data-conflict aborts.
    pub conflict: u64,
    /// Capacity-overflow aborts (read or write set).
    pub capacity: u64,
    /// Explicit aborts (SGL subscription).
    pub explicit: u64,
    /// Asynchronous-event aborts (no cause bits).
    pub other: u64,
}

impl AbortCounts {
    /// Total aborts.
    pub fn total(&self) -> u64 {
        self.conflict + self.capacity + self.explicit + self.other
    }
}

/// Ground-truth conflict record: `kills[victim][killer]` counts how many
/// times an instance of atomic block `killer` actually aborted an instance
/// of block `victim`. This is the oracle Seer cannot see.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictGroundTruth {
    blocks: usize,
    kills: Vec<u64>,
}

impl ConflictGroundTruth {
    /// A zeroed matrix over `blocks` atomic blocks.
    pub fn new(blocks: usize) -> Self {
        Self {
            blocks,
            kills: vec![0; blocks * blocks],
        }
    }

    /// Records that an instance of `killer` aborted an instance of `victim`.
    pub fn record(&mut self, victim: BlockId, killer: BlockId) {
        self.kills[victim * self.blocks + killer] += 1;
    }

    /// Number of atomic blocks.
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Kill count for the (victim, killer) pair.
    pub fn get(&self, victim: BlockId, killer: BlockId) -> u64 {
        self.kills[victim * self.blocks + killer]
    }

    /// Total recorded kills.
    pub fn total(&self) -> u64 {
        self.kills.iter().sum()
    }

    /// The raw kill matrix, row-major: `kills()[victim * blocks + killer]`
    /// (for lossless persistence).
    pub fn kills(&self) -> &[u64] {
        &self.kills
    }

    /// Rebuilds a matrix from its raw row-major form — the inverse of
    /// [`ConflictGroundTruth::kills`]. Rejects a length that is not
    /// `blocks²` instead of panicking on a later lookup.
    pub fn from_raw(blocks: usize, kills: Vec<u64>) -> Result<Self, String> {
        if kills.len() != blocks * blocks {
            return Err(format!(
                "kill matrix over {blocks} blocks needs {} entries, got {}",
                blocks * blocks,
                kills.len()
            ));
        }
        Ok(Self { blocks, kills })
    }

    /// Pairs `(victim, killer)` responsible for at least `fraction` of all
    /// kills of that victim — the "real" conflict relations to compare
    /// against Seer's inferred locking scheme.
    pub fn significant_pairs(&self, min_kills: u64) -> Vec<(BlockId, BlockId)> {
        let mut out = Vec::new();
        for v in 0..self.blocks {
            for k in 0..self.blocks {
                if self.get(v, k) >= min_kills {
                    out.push((v, k));
                }
            }
        }
        out
    }
}

/// Everything measured over one simulation run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Committed transaction instances.
    pub commits: u64,
    /// Commits by execution mode (Table 3).
    pub modes: ModeCounts,
    /// Aborts by coarse cause.
    pub aborts: AbortCounts,
    /// Total hardware attempts started.
    pub htm_attempts: u64,
    /// Times the SGL fall-back path was taken.
    pub fallbacks: u64,
    /// Commits indexed by the number of hardware attempts consumed
    /// (index 0 = first-attempt commit; last index = fall-back).
    pub attempts_histogram: Vec<u64>,
    /// Virtual cycles threads spent parked on locks or watch-waits.
    pub wait_cycles: Cycles,
    /// Distribution of individual park durations (log₂ buckets).
    pub wait_histogram: CycleHistogram,
    /// Makespan: virtual time when the last thread finished.
    pub makespan: Cycles,
    /// Cost of the same work executed sequentially, non-instrumented
    /// (speedup denominator, as in the paper's Figure 3).
    pub sequential_cycles: Cycles,
    /// Events where a thread acquired at least one Seer transaction lock,
    /// paired with how many locks it took (for §5.2's granularity stat).
    pub tx_lock_acquisitions: Vec<u32>,
    /// Number of transaction locks that exist (denominator for the above).
    pub tx_locks_available: usize,
    /// Ground truth of who killed whom (simulator-private oracle).
    pub ground_truth: ConflictGroundTruth,
    /// True when the run hit the event safety valve before completing.
    pub truncated: bool,
    /// Total DES events dispatched by the driver's main loop — the
    /// denominator for the bench harness's events/sec throughput figures.
    pub events: u64,
    /// Digest of the run's entire event schedule in execution order (from
    /// [`seer_sim::EventQueue::trace_hash`]). Two runs of the same
    /// (workload, scheduler, config, seed) must report identical hashes;
    /// the conformance suite's replay fixtures pin selected values.
    pub trace_hash: u64,
}

impl RunMetrics {
    /// Fresh metrics for a run over `blocks` atomic blocks with the given
    /// attempt budget.
    pub fn new(blocks: usize, budget: u32, tx_locks_available: usize) -> Self {
        Self {
            commits: 0,
            modes: ModeCounts::default(),
            aborts: AbortCounts::default(),
            htm_attempts: 0,
            fallbacks: 0,
            attempts_histogram: vec![0; budget as usize + 1],
            wait_cycles: 0,
            wait_histogram: CycleHistogram::new(),
            makespan: 0,
            sequential_cycles: 0,
            tx_lock_acquisitions: Vec::new(),
            tx_locks_available,
            ground_truth: ConflictGroundTruth::new(blocks),
            truncated: false,
            events: 0,
            trace_hash: 0,
        }
    }

    /// Checks the conservation laws that must hold at the end of any
    /// non-truncated run, regardless of workload or scheduler. Returns the
    /// list of violated laws (empty = all hold).
    ///
    /// The laws, and what each one pins down:
    ///
    /// 1. **Modes partition commits** — every committed transaction is
    ///    classified in exactly one Table 3 mode.
    /// 2. **Attempt histogram partitions commits** — every commit consumed
    ///    a definite number of hardware attempts (or fell back).
    /// 3. **Fall-backs fill the last histogram bucket, and only it** —
    ///    `fallbacks`, SGL-mode commits, and the final bucket are three
    ///    counters for the same set of transactions.
    /// 4. **Ground truth matches conflict aborts** — the simulator's
    ///    private kill matrix records exactly one (victim, killer) pair per
    ///    conflict abort.
    /// 5. **Attempt accounting** — every hardware attempt ends in exactly
    ///    one of: an HTM commit (a commit in any non-SGL mode) or an abort,
    ///    so `htm_attempts = (commits − fallbacks) + total aborts`.
    pub fn check_conservation(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let mut check = |ok: bool, law: String| {
            if !ok {
                violations.push(law);
            }
        };
        check(
            self.modes.total() == self.commits,
            format!(
                "modes must partition commits: {} != {}",
                self.modes.total(),
                self.commits
            ),
        );
        let hist_total: u64 = self.attempts_histogram.iter().sum();
        check(
            hist_total == self.commits,
            format!("attempt histogram must partition commits: {hist_total} != {}", self.commits),
        );
        let last_bucket = self.attempts_histogram.last().copied().unwrap_or(0);
        check(
            last_bucket == self.fallbacks,
            format!(
                "last histogram bucket must equal fallbacks: {last_bucket} != {}",
                self.fallbacks
            ),
        );
        check(
            self.modes.get(TxMode::SglFallback) == self.fallbacks,
            format!(
                "SGL-mode commits must equal fallbacks: {} != {}",
                self.modes.get(TxMode::SglFallback),
                self.fallbacks
            ),
        );
        check(
            self.ground_truth.total() == self.aborts.conflict,
            format!(
                "ground-truth kills must equal conflict aborts: {} != {}",
                self.ground_truth.total(),
                self.aborts.conflict
            ),
        );
        check(
            self.htm_attempts == (self.commits - self.fallbacks) + self.aborts.total(),
            format!(
                "attempts must balance commits + aborts: {} != ({} - {}) + {}",
                self.htm_attempts,
                self.commits,
                self.fallbacks,
                self.aborts.total()
            ),
        );
        violations
    }

    /// Speedup over the sequential non-instrumented execution.
    pub fn speedup(&self) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            self.sequential_cycles as f64 / self.makespan as f64
        }
    }

    /// Aborts per commit — the contention signal.
    pub fn abort_ratio(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.aborts.total() as f64 / self.commits as f64
        }
    }

    /// Fraction of commits that used the SGL fall-back.
    pub fn fallback_fraction(&self) -> f64 {
        self.modes.fraction(TxMode::SglFallback)
    }

    /// Median fraction of available transaction locks taken per
    /// lock-acquiring transaction (§5.2 reports: "in 50% of the cases …
    /// lower than 23% of the globally available transaction locks").
    pub fn median_tx_lock_fraction(&self) -> Option<f64> {
        if self.tx_lock_acquisitions.is_empty() || self.tx_locks_available == 0 {
            return None;
        }
        let mut v = self.tx_lock_acquisitions.clone();
        v.sort_unstable();
        let mid = v[v.len() / 2];
        Some(f64::from(mid) / self.tx_locks_available as f64)
    }
}

/// One fixed-width cycle window of run activity, tallied from the
/// lifecycle trace stream (see [`WindowedMetrics`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsWindow {
    /// Window start (inclusive), in virtual cycles.
    pub from: Cycles,
    /// Window end (exclusive), in virtual cycles.
    pub to: Cycles,
    /// Commits completed in the window (HTM + fall-back).
    pub commits: u64,
    /// Commits that completed in hardware.
    pub htm_commits: u64,
    /// Commits that completed under the SGL fall-back.
    pub fallback_commits: u64,
    /// Hardware aborts in the window.
    pub aborts: u64,
    /// Hardware attempts begun in the window.
    pub attempts: u64,
    /// Times a thread entered the SGL fall-back path in the window.
    pub fallbacks_entered: u64,
}

impl MetricsWindow {
    /// Commits per cycle over the window (0 for an empty window).
    pub fn throughput(&self) -> f64 {
        let span = self.to.saturating_sub(self.from);
        if span == 0 {
            0.0
        } else {
            self.commits as f64 / span as f64
        }
    }
}

/// Cycle-windowed run metrics: the whole-run aggregates of [`RunMetrics`]
/// sliced into fixed-width windows of virtual time, built from the
/// lifecycle stream a `MemoryTraceSink` collects. The scenario engine's
/// `RecoveryReport` scores re-convergence on these windows, and
/// `seer explain` can reuse them to localize behaviour in time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowedMetrics {
    width: Cycles,
    windows: Vec<MetricsWindow>,
}

impl WindowedMetrics {
    /// Tallies `events` into windows of `width` cycles covering
    /// `[0, until)` (rounded up to whole windows; `until` is normally the
    /// run's makespan). Events at or beyond the last window's end extend
    /// the coverage, so no event is ever silently dropped.
    ///
    /// # Panics
    /// If `width` is zero.
    pub fn from_lifecycle(events: &[LifecycleEvent], width: Cycles, until: Cycles) -> Self {
        assert!(width > 0, "window width must be positive");
        let span = until.max(events.iter().map(|e| e.at() + 1).max().unwrap_or(0));
        let count = (span.div_ceil(width)).max(1) as usize;
        let mut windows: Vec<MetricsWindow> = (0..count)
            .map(|i| MetricsWindow {
                from: i as Cycles * width,
                to: (i as Cycles + 1) * width,
                ..MetricsWindow::default()
            })
            .collect();
        for ev in events {
            let w = &mut windows[(ev.at() / width) as usize];
            match ev {
                LifecycleEvent::AttemptBegin { .. } => w.attempts += 1,
                LifecycleEvent::Abort { .. } => w.aborts += 1,
                LifecycleEvent::SglFallback { .. } => w.fallbacks_entered += 1,
                LifecycleEvent::HtmCommit { .. } => {
                    w.commits += 1;
                    w.htm_commits += 1;
                }
                LifecycleEvent::FallbackCommit { .. } => {
                    w.commits += 1;
                    w.fallback_commits += 1;
                }
                LifecycleEvent::LockWait { .. } | LifecycleEvent::LocksAcquired { .. } => {}
            }
        }
        Self { width, windows }
    }

    /// Window width in cycles.
    pub fn width(&self) -> Cycles {
        self.width
    }

    /// The windows, in time order, contiguously covering `[0, n*width)`.
    pub fn windows(&self) -> &[MetricsWindow] {
        &self.windows
    }

    /// Rebuilds windowed metrics from raw windows — the inverse of
    /// [`WindowedMetrics::windows`] (for lossless persistence).
    ///
    /// # Panics
    /// If `width` is zero.
    pub fn from_windows(width: Cycles, windows: Vec<MetricsWindow>) -> Self {
        assert!(width > 0, "window width must be positive");
        Self { width, windows }
    }

    /// The window containing virtual time `t`, if covered.
    pub fn window_at(&self, t: Cycles) -> Option<&MetricsWindow> {
        self.windows.get((t / self.width) as usize)
    }

    /// Per-window conservation laws plus the partition law against the
    /// whole-run `totals`: the windows are a partition of the run, so
    /// their sums must reproduce the aggregate counters exactly. Returns
    /// the violated laws (empty = all hold).
    pub fn check_partition(&self, totals: &RunMetrics) -> Vec<String> {
        let mut violations = Vec::new();
        let mut check = |ok: bool, law: String| {
            if !ok {
                violations.push(law);
            }
        };
        let mut commits = 0u64;
        let mut aborts = 0u64;
        let mut attempts = 0u64;
        let mut fallbacks = 0u64;
        for (i, w) in self.windows.iter().enumerate() {
            check(
                w.commits == w.htm_commits + w.fallback_commits,
                format!(
                    "window {i}: commits must partition by path: {} != {} + {}",
                    w.commits, w.htm_commits, w.fallback_commits
                ),
            );
            check(
                w.from == i as Cycles * self.width && w.to == w.from + self.width,
                format!("window {i}: bounds drifted: [{}, {})", w.from, w.to),
            );
            commits += w.commits;
            aborts += w.aborts;
            attempts += w.attempts;
            fallbacks += w.fallbacks_entered;
        }
        check(
            commits == totals.commits,
            format!("window commits must sum to the run total: {commits} != {}", totals.commits),
        );
        check(
            aborts == totals.aborts.total(),
            format!(
                "window aborts must sum to the run total: {aborts} != {}",
                totals.aborts.total()
            ),
        );
        check(
            attempts == totals.htm_attempts,
            format!(
                "window attempts must sum to the run total: {attempts} != {}",
                totals.htm_attempts
            ),
        );
        check(
            fallbacks == totals.fallbacks,
            format!(
                "window fall-back entries must sum to the run total: {fallbacks} != {}",
                totals.fallbacks
            ),
        );
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_counts_roundtrip() {
        let mut m = ModeCounts::default();
        m.record(TxMode::HtmNoLocks);
        m.record(TxMode::HtmNoLocks);
        m.record(TxMode::SglFallback);
        assert_eq!(m.get(TxMode::HtmNoLocks), 2);
        assert_eq!(m.get(TxMode::SglFallback), 1);
        assert_eq!(m.total(), 3);
        assert!((m.fraction(TxMode::HtmNoLocks) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mode_counts_merge() {
        let mut a = ModeCounts::default();
        a.record(TxMode::HtmTxLocks);
        let mut b = ModeCounts::default();
        b.record(TxMode::HtmTxLocks);
        b.record(TxMode::HtmCoreLock);
        a.merge(&b);
        assert_eq!(a.get(TxMode::HtmTxLocks), 2);
        assert_eq!(a.get(TxMode::HtmCoreLock), 1);
    }

    #[test]
    fn empty_fraction_is_zero() {
        let m = ModeCounts::default();
        assert_eq!(m.fraction(TxMode::SglFallback), 0.0);
    }

    #[test]
    fn ground_truth_matrix() {
        let mut g = ConflictGroundTruth::new(3);
        g.record(0, 2);
        g.record(0, 2);
        g.record(1, 0);
        assert_eq!(g.get(0, 2), 2);
        assert_eq!(g.get(1, 0), 1);
        assert_eq!(g.get(2, 1), 0);
        assert_eq!(g.total(), 3);
        assert_eq!(g.significant_pairs(2), vec![(0, 2)]);
    }

    #[test]
    fn speedup_and_ratios() {
        let mut m = RunMetrics::new(2, 5, 2);
        m.sequential_cycles = 1000;
        m.makespan = 250;
        m.commits = 10;
        m.aborts.conflict = 5;
        assert!((m.speedup() - 4.0).abs() < 1e-12);
        assert!((m.abort_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn median_lock_fraction() {
        let mut m = RunMetrics::new(2, 5, 10);
        assert_eq!(m.median_tx_lock_fraction(), None);
        m.tx_lock_acquisitions = vec![1, 2, 3, 4, 9];
        assert_eq!(m.median_tx_lock_fraction(), Some(0.3));
    }

    #[test]
    fn zero_makespan_guard() {
        let m = RunMetrics::new(1, 5, 0);
        assert_eq!(m.speedup(), 0.0);
        assert_eq!(m.abort_ratio(), 0.0);
    }

    #[test]
    fn mode_labels_are_distinct() {
        let mut labels: Vec<_> = TxMode::ALL.iter().map(|m| m.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 6);
    }

    fn commit_at(at: Cycles) -> LifecycleEvent {
        LifecycleEvent::HtmCommit {
            at,
            thread: 0,
            block: 0,
            attempts_used: 0,
        }
    }

    #[test]
    fn windowed_metrics_bucket_by_time() {
        let events = vec![
            LifecycleEvent::AttemptBegin { at: 5, thread: 0, block: 0, attempt: 0 },
            commit_at(60),
            commit_at(140),
            LifecycleEvent::FallbackCommit { at: 150, thread: 1, block: 0 },
        ];
        let w = WindowedMetrics::from_lifecycle(&events, 100, 200);
        assert_eq!(w.windows().len(), 2);
        assert_eq!(w.windows()[0].attempts, 1);
        assert_eq!(w.windows()[0].commits, 1);
        assert_eq!(w.windows()[1].commits, 2);
        assert_eq!(w.windows()[1].fallback_commits, 1);
        assert_eq!(w.window_at(199).unwrap().from, 100);
        assert!((w.windows()[1].throughput() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn windowed_metrics_extend_past_until() {
        // An event past `until` grows coverage instead of being dropped.
        let events = vec![commit_at(250)];
        let w = WindowedMetrics::from_lifecycle(&events, 100, 100);
        assert_eq!(w.windows().len(), 3);
        assert_eq!(w.windows()[2].commits, 1);
    }

    #[test]
    fn window_partition_check_catches_mismatch() {
        let events = vec![
            LifecycleEvent::AttemptBegin { at: 10, thread: 0, block: 0, attempt: 0 },
            commit_at(20),
        ];
        let w = WindowedMetrics::from_lifecycle(&events, 50, 50);
        let mut totals = RunMetrics::new(1, 5, 1);
        totals.commits = 1;
        totals.htm_attempts = 1;
        assert!(w.check_partition(&totals).is_empty());
        totals.commits = 2;
        assert!(!w.check_partition(&totals).is_empty());
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_window_width_rejected() {
        let _ = WindowedMetrics::from_lifecycle(&[], 0, 10);
    }
}
