//! Decision-provenance and transaction-lifecycle tracing.
//!
//! Tracing is a **sink object, not a feature flag**: the driver and the
//! schedulers hand fully-formed records to a [`TraceSink`] passed in at
//! run time, and the records are pure observations of state the
//! simulation already computes — no RNG draws, no extra events, no timing
//! changes. A run therefore produces a bit-identical event schedule (and
//! [`crate::RunMetrics::trace_hash`]) whether the sink is
//! [`NullTraceSink`] or a real collector; the golden trace-hash fixtures
//! in `seer-conformance` pin exactly that.
//!
//! Two streams flow through a sink:
//!
//! * **lifecycle** ([`LifecycleEvent`]) — per-transaction events from the
//!   driver: attempt begin, abort with its HTM-status cause, lock waits
//!   with the holder's identity, scheduler-lock acquisitions (e.g. the
//!   core lock taken after a CAPACITY abort), SGL fall-backs, and both
//!   commit flavours;
//! * **inference** ([`InferenceTrace`]) — one record per Seer inference
//!   round, carrying the merged-matrix digest, every per-pair
//!   conditional/conjunctive probability, the fitted Gaussian (η, σ²),
//!   the Th2 percentile cutoff actually used, and the per-pair
//!   [`Verdict`] with the reason (which threshold failed).
//!
//! Emission sites guard on [`TraceSink::enabled`] before building a
//! record, so the disabled path costs one virtual call (or, in the
//! driver, one cached boolean test) and zero allocation.

use seer_htm::XStatus;
use seer_sim::{Cycles, ThreadId};

use crate::locks::LockId;
use crate::workload::BlockId;

/// Coarse abort cause, mirroring the [`crate::AbortCounts`] buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortCause {
    /// Data conflict with another transaction (or an SGL `kill_all` sweep).
    Conflict,
    /// Read/write-set capacity overflow.
    Capacity,
    /// Explicit `xabort` (begin-time SGL subscription).
    Explicit,
    /// Everything else (asynchronous interrupts/faults).
    Other,
}

impl AbortCause {
    /// Classifies an HTM status word the same way the metrics do.
    pub fn from_status(status: XStatus) -> Self {
        if status.is_conflict() {
            AbortCause::Conflict
        } else if status.is_capacity() {
            AbortCause::Capacity
        } else if status.is_explicit() {
            AbortCause::Explicit
        } else {
            AbortCause::Other
        }
    }

    /// Stable lower-case label used by the JSONL schema.
    pub fn label(self) -> &'static str {
        match self {
            AbortCause::Conflict => "conflict",
            AbortCause::Capacity => "capacity",
            AbortCause::Explicit => "explicit",
            AbortCause::Other => "other",
        }
    }
}

/// One per-transaction lifecycle event emitted by the driver.
///
/// Every variant carries the virtual time `at` at which the driver
/// processed the underlying simulation event, and the thread it happened
/// on.
#[derive(Debug, Clone, PartialEq)]
pub enum LifecycleEvent {
    /// A hardware attempt began (counted in `RunMetrics::htm_attempts`).
    AttemptBegin {
        /// Virtual time.
        at: Cycles,
        /// Executing thread.
        thread: ThreadId,
        /// Atomic block of the transaction.
        block: BlockId,
        /// Zero-based attempt index within this transaction instance.
        attempt: u32,
    },
    /// A hardware attempt aborted.
    Abort {
        /// Virtual time.
        at: Cycles,
        /// Executing thread.
        thread: ThreadId,
        /// Atomic block of the transaction.
        block: BlockId,
        /// Cause, classified from the HTM status word.
        cause: AbortCause,
        /// Budget remaining after this abort (0 forces the fall-back).
        attempts_left: u32,
    },
    /// The thread parked waiting on a lock.
    LockWait {
        /// Virtual time.
        at: Cycles,
        /// Waiting thread.
        thread: ThreadId,
        /// The lock waited on.
        lock: LockId,
        /// The thread currently holding it, if any (it can be released
        /// between the wait decision and the park in real hardware; in
        /// the simulation a park implies a holder except on re-contended
        /// acquisition hand-offs).
        holder: Option<ThreadId>,
    },
    /// The thread acquired scheduler locks (covers the core-lock taken
    /// after a CAPACITY abort and the per-block tx locks of the inferred
    /// serialization scheme).
    LocksAcquired {
        /// Virtual time.
        at: Cycles,
        /// Acquiring thread.
        thread: ThreadId,
        /// The locks acquired, in canonical order.
        locks: Vec<LockId>,
    },
    /// The transaction gave up on hardware and entered the SGL path
    /// (counted in `RunMetrics::fallbacks`).
    SglFallback {
        /// Virtual time.
        at: Cycles,
        /// Falling-back thread.
        thread: ThreadId,
        /// Atomic block of the transaction.
        block: BlockId,
    },
    /// The transaction committed in hardware.
    HtmCommit {
        /// Virtual time.
        at: Cycles,
        /// Committing thread.
        thread: ThreadId,
        /// Atomic block of the transaction.
        block: BlockId,
        /// Aborted attempts before this successful one.
        attempts_used: u32,
    },
    /// The transaction completed under the SGL fall-back.
    FallbackCommit {
        /// Virtual time.
        at: Cycles,
        /// Committing thread.
        thread: ThreadId,
        /// Atomic block of the transaction.
        block: BlockId,
    },
}

impl LifecycleEvent {
    /// Virtual time of the event.
    pub fn at(&self) -> Cycles {
        match *self {
            LifecycleEvent::AttemptBegin { at, .. }
            | LifecycleEvent::Abort { at, .. }
            | LifecycleEvent::LockWait { at, .. }
            | LifecycleEvent::LocksAcquired { at, .. }
            | LifecycleEvent::SglFallback { at, .. }
            | LifecycleEvent::HtmCommit { at, .. }
            | LifecycleEvent::FallbackCommit { at, .. } => at,
        }
    }

    /// Thread the event happened on.
    pub fn thread(&self) -> ThreadId {
        match *self {
            LifecycleEvent::AttemptBegin { thread, .. }
            | LifecycleEvent::Abort { thread, .. }
            | LifecycleEvent::LockWait { thread, .. }
            | LifecycleEvent::LocksAcquired { thread, .. }
            | LifecycleEvent::SglFallback { thread, .. }
            | LifecycleEvent::HtmCommit { thread, .. }
            | LifecycleEvent::FallbackCommit { thread, .. } => thread,
        }
    }

    /// Stable kebab-case label used by the JSONL schema's `"type"` field.
    pub fn kind(&self) -> &'static str {
        match self {
            LifecycleEvent::AttemptBegin { .. } => "attempt-begin",
            LifecycleEvent::Abort { .. } => "abort",
            LifecycleEvent::LockWait { .. } => "lock-wait",
            LifecycleEvent::LocksAcquired { .. } => "locks-acquired",
            LifecycleEvent::SglFallback { .. } => "sgl-fallback",
            LifecycleEvent::HtmCommit { .. } => "htm-commit",
            LifecycleEvent::FallbackCommit { .. } => "fallback-commit",
        }
    }
}

/// Outcome of one pair's serialize/unserialize decision, with the reason.
///
/// The decision is `conjunctive > Th1 && (!discriminative || conditional >
/// cutoff)`; the verdict records which of the two threshold checks
/// failed. On a non-discriminative row (σ below
/// `MIN_DISCRIMINATIVE_SIGMA`), the Th2 check is vacuously true.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Both checks passed: the pair goes into the locking scheme.
    Serialize,
    /// The conjunctive probability did not clear Th1.
    RejectTh1,
    /// The conditional probability did not clear the Th2 percentile cutoff.
    RejectTh2,
    /// Both checks failed.
    RejectBoth,
}

impl Verdict {
    /// Builds a verdict from the two threshold checks.
    pub fn from_checks(conjunctive_ok: bool, conditional_ok: bool) -> Self {
        match (conjunctive_ok, conditional_ok) {
            (true, true) => Verdict::Serialize,
            (false, true) => Verdict::RejectTh1,
            (true, false) => Verdict::RejectTh2,
            (false, false) => Verdict::RejectBoth,
        }
    }

    /// Whether the pair was serialized.
    pub fn serialize(self) -> bool {
        matches!(self, Verdict::Serialize)
    }

    /// Stable label used by the JSONL schema.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Serialize => "serialize",
            Verdict::RejectTh1 => "reject-th1",
            Verdict::RejectTh2 => "reject-th2",
            Verdict::RejectBoth => "reject-both",
        }
    }

    /// Human-readable reason, naming the threshold(s) that failed.
    pub fn reason(self) -> &'static str {
        match self {
            Verdict::Serialize => "conjunctive > Th1 and conditional > Th2 cutoff",
            Verdict::RejectTh1 => "conjunctive <= Th1",
            Verdict::RejectTh2 => "conditional <= Th2 cutoff",
            Verdict::RejectBoth => "conjunctive <= Th1 and conditional <= Th2 cutoff",
        }
    }
}

/// One pair's decision inside a [`RowTrace`].
#[derive(Debug, Clone, PartialEq)]
pub struct PairDecision {
    /// The column (the "other" atomic block `y`).
    pub y: BlockId,
    /// `P(x aborts | x ‖ y)`.
    pub conditional: f64,
    /// `P(x aborts ∧ x ‖ y)`.
    pub conjunctive: f64,
    /// The serialize/reject outcome with its reason.
    pub verdict: Verdict,
}

/// One row (`x`) of an inference round: the fitted Gaussian over the
/// conditional-probability row and every pair decision made against it.
#[derive(Debug, Clone, PartialEq)]
pub struct RowTrace {
    /// The row's atomic block `x`.
    pub x: BlockId,
    /// Fitted mean η of the conditional-probability row.
    pub eta: f64,
    /// Fitted variance σ² of the conditional-probability row.
    pub sigma2: f64,
    /// The Th2 percentile cutoff actually used for this row.
    pub cutoff: f64,
    /// Whether σ cleared `MIN_DISCRIMINATIVE_SIGMA` (if not, the Th2
    /// check is skipped for every pair in the row).
    pub discriminative: bool,
    /// Per-pair probabilities and verdicts, one entry per column `y`.
    pub pairs: Vec<PairDecision>,
}

/// One full inference round of the Seer scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceTrace {
    /// 1-based index of the inference round within the run.
    pub round: u64,
    /// Virtual time at which the round ran.
    pub at: Cycles,
    /// FNV-1a digest of the merged statistics matrices the round read.
    pub stats_digest: u64,
    /// Th1 threshold in force.
    pub th1: f64,
    /// Th2 threshold in force.
    pub th2: f64,
    /// Total block executions observed when the round ran.
    pub total_execs: u64,
    /// Per-row traces, one per atomic block.
    pub rows: Vec<RowTrace>,
}

impl InferenceTrace {
    /// The decision for pair `(x, y)` in this round, if both ids are in
    /// range.
    pub fn decision(&self, x: BlockId, y: BlockId) -> Option<(&RowTrace, &PairDecision)> {
        let row = self.rows.iter().find(|r| r.x == x)?;
        let pair = row.pairs.iter().find(|p| p.y == y)?;
        Some((row, pair))
    }
}

/// Receiver of the two trace streams.
///
/// Implementations must be pure observers: a sink may not influence the
/// simulation in any way (the driver hands it records *after* all
/// scheduling decisions are made).
pub trait TraceSink {
    /// Whether the sink wants records at all. Emission sites check this
    /// before building a record, so disabled tracing allocates nothing.
    fn enabled(&self) -> bool {
        true
    }

    /// A lifecycle event from the driver.
    fn lifecycle(&mut self, event: LifecycleEvent);

    /// An inference round from the Seer scheduler.
    fn inference(&mut self, trace: InferenceTrace);
}

/// The disabled sink: `enabled()` is false and both methods are no-ops.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTraceSink;

impl TraceSink for NullTraceSink {
    fn enabled(&self) -> bool {
        false
    }

    fn lifecycle(&mut self, _event: LifecycleEvent) {}

    fn inference(&mut self, _trace: InferenceTrace) {}
}

/// A sink that collects both streams into vectors, in emission order
/// (which is chronological per stream).
#[derive(Debug, Default, Clone)]
pub struct MemoryTraceSink {
    /// Collected lifecycle events.
    pub lifecycle: Vec<LifecycleEvent>,
    /// Collected inference rounds.
    pub inference: Vec<InferenceTrace>,
}

impl MemoryTraceSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lifecycle events of the given kind label.
    pub fn count_kind(&self, kind: &str) -> usize {
        self.lifecycle.iter().filter(|e| e.kind() == kind).count()
    }

    /// Abort events with the given cause.
    pub fn count_abort_cause(&self, cause: AbortCause) -> usize {
        self.lifecycle
            .iter()
            .filter(|e| matches!(e, LifecycleEvent::Abort { cause: c, .. } if *c == cause))
            .count()
    }
}

impl TraceSink for MemoryTraceSink {
    fn lifecycle(&mut self, event: LifecycleEvent) {
        self.lifecycle.push(event);
    }

    fn inference(&mut self, trace: InferenceTrace) {
        self.inference.push(trace);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        let mut s = NullTraceSink;
        assert!(!s.enabled());
        s.lifecycle(LifecycleEvent::SglFallback { at: 0, thread: 0, block: 0 });
        s.inference(InferenceTrace {
            round: 1,
            at: 0,
            stats_digest: 0,
            th1: 0.3,
            th2: 0.8,
            total_execs: 0,
            rows: Vec::new(),
        });
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let mut s = MemoryTraceSink::new();
        assert!(s.enabled());
        s.lifecycle(LifecycleEvent::AttemptBegin { at: 10, thread: 1, block: 0, attempt: 0 });
        s.lifecycle(LifecycleEvent::HtmCommit { at: 20, thread: 1, block: 0, attempts_used: 0 });
        assert_eq!(s.lifecycle.len(), 2);
        assert_eq!(s.lifecycle[0].at(), 10);
        assert_eq!(s.lifecycle[0].kind(), "attempt-begin");
        assert_eq!(s.count_kind("htm-commit"), 1);
        assert_eq!(s.count_kind("abort"), 0);
    }

    #[test]
    fn verdict_from_checks_covers_all_cases() {
        assert_eq!(Verdict::from_checks(true, true), Verdict::Serialize);
        assert_eq!(Verdict::from_checks(false, true), Verdict::RejectTh1);
        assert_eq!(Verdict::from_checks(true, false), Verdict::RejectTh2);
        assert_eq!(Verdict::from_checks(false, false), Verdict::RejectBoth);
        assert!(Verdict::Serialize.serialize());
        assert!(!Verdict::RejectTh1.serialize());
        assert!(Verdict::RejectTh1.reason().contains("Th1"));
        assert!(Verdict::RejectTh2.reason().contains("Th2"));
    }

    #[test]
    fn abort_cause_classification_matches_status_words() {
        use seer_htm::xabort_codes;
        assert_eq!(AbortCause::from_status(XStatus::conflict()), AbortCause::Conflict);
        assert_eq!(AbortCause::from_status(XStatus::capacity()), AbortCause::Capacity);
        assert_eq!(
            AbortCause::from_status(XStatus::explicit(xabort_codes::SGL_LOCKED)),
            AbortCause::Explicit
        );
        assert_eq!(AbortCause::from_status(XStatus::other()), AbortCause::Other);
    }

    #[test]
    fn inference_trace_pair_lookup() {
        let tr = InferenceTrace {
            round: 1,
            at: 100,
            stats_digest: 7,
            th1: 0.3,
            th2: 0.8,
            total_execs: 42,
            rows: vec![RowTrace {
                x: 0,
                eta: 0.1,
                sigma2: 0.01,
                cutoff: 0.2,
                discriminative: true,
                pairs: vec![PairDecision {
                    y: 1,
                    conditional: 0.5,
                    conjunctive: 0.4,
                    verdict: Verdict::Serialize,
                }],
            }],
        };
        assert!(tr.decision(0, 1).is_some());
        assert!(tr.decision(0, 2).is_none());
        assert!(tr.decision(1, 0).is_none());
    }
}
