//! The discrete-event simulation driver.
//!
//! [`run`] executes a [`Workload`] over the simulated HTM machine under a
//! [`Scheduler`], in virtual time, and returns [`RunMetrics`]. The driver
//! owns the generic structure of Algorithm 1 of the paper — the retry loop,
//! the attempt budget, the single-global-lock (SGL) fall-back, the
//! begin-time SGL subscription — while the scheduler-specific behaviour
//! (waits, extra locks, statistics) is injected through the [`Scheduler`]
//! callbacks.
//!
//! ## Thread lifecycle
//!
//! ```text
//!           next()                gates pass              commit point
//! Thinking ───────► Gating ───────────────► Running ───────────────► (next tx)
//!    ▲                │  ▲                     │ abort (conflict /
//!    │                │  │ retry gates         │  capacity / async /
//!    │                │  └─────────────────────┤  sgl-subscription)
//!    │                │ budget exhausted or    │
//!    │                ▼ scheduler says so      ▼
//!    └──────── FallbackRunning ◄────────── Gating(Acquire SGL)
//! ```
//!
//! Every transition bumps the thread's *epoch*; scheduled events carry the
//! epoch they were created under and are dropped if stale, which is how
//! asynchronous aborts cancel a victim's in-flight access/commit events.
//!
//! ## Deadlock freedom
//!
//! Multi-lock acquisitions go through [`Gate::AcquireMany`], which acquires
//! in canonical [`LockId`] order; adding a lock to an already-held set is
//! expressed as [`Gate::ReleaseHeld`] followed by a fresh ordered
//! acquisition. Advisory waits ([`Gate::WaitWhileLocked`]) carry a patience
//! bound, so the cooperative waiting of `WAIT-Seer-LOCKS` can never wedge
//! the system (the underlying HTM, not the waits, guarantees correctness).

use seer_htm::{xabort_codes, CostModel, HtmConfig, HtmMachine, XStatus};
use seer_sim::{Cycles, EventQueue, SimRng, ThreadId, Topology};

use crate::locks::{LockBank, LockId};
use crate::metrics::{RunMetrics, TxMode};
use crate::scheduler::{AbortDecision, Gate, HookPoint, SchedEnv, SchedFault, Scheduler};
use crate::trace::{AbortCause, LifecycleEvent, NullTraceSink, TraceSink};
use crate::workload::{TxRequest, Workload};

/// A scripted disturbance applied at a scheduled virtual time (see
/// [`TimedDirective`] and `crates/scenario`). Directives are delivered as
/// ordinary events in the same DES queue as every transaction step, so an
/// injected run stays a pure function of `(workload, scheduler, config)`.
#[derive(Debug, Clone, PartialEq)]
pub enum Directive {
    /// Cross into scenario phase `idx`: forwarded to
    /// [`Workload::on_phase`] so the workload can switch its mix, skew or
    /// think time.
    Phase(usize),
    /// Park the thread at its next transaction boundary (its in-flight
    /// transaction completes normally; no new work is issued until an
    /// [`Directive::Unpark`]).
    Park(ThreadId),
    /// Resume a thread parked by [`Directive::Park`].
    Unpark(ThreadId),
    /// Stall one thread for `cycles`, preferring the lowest-id thread that
    /// currently holds a scheduler lock (a lock holder descheduled mid
    /// critical path — the cooperation/lemming stress case).
    StallLockHolder {
        /// Length of the stall in cycles.
        cycles: Cycles,
    },
    /// Override the HTM capacity budget: clamp write-set associativity to
    /// `ways` and the read-set line budget to `read_lines` (either `None`
    /// leaves that axis at the configured geometry). `Capacity { ways:
    /// None, read_lines: None }` restores the configured budget.
    Capacity {
        /// Write-set ways clamp, if any.
        ways: Option<usize>,
        /// Read-set line-budget clamp, if any.
        read_lines: Option<usize>,
    },
    /// Deliver a scheduler-visible fault (see [`SchedFault`]).
    Sched(SchedFault),
}

/// A [`Directive`] scheduled at an absolute virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedDirective {
    /// Virtual time at which the directive fires.
    pub at: Cycles,
    /// The disturbance to apply.
    pub directive: Directive,
}

/// Configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Machine shape. Threads are pinned: thread `i` runs on logical CPU `i`.
    pub topology: Topology,
    /// Number of simulated threads (≤ logical CPUs).
    pub threads: usize,
    /// HTM buffer geometry.
    pub htm: HtmConfig,
    /// Latency model.
    pub costs: CostModel,
    /// RNG seed; a run is a pure function of `(workload, scheduler, config)`.
    pub seed: u64,
    /// Interval of the scheduler maintenance tick, if any.
    pub periodic_tick: Option<Cycles>,
    /// Patience bound for advisory waits (see module docs).
    pub wait_patience: Cycles,
    /// Slowdown factor applied to the execution speed of threads whose
    /// physical core hosts another simulated thread (SMT resource
    /// sharing): each such thread's cycles stretch by this factor. 1.0
    /// disables the effect.
    pub smt_slowdown: f64,
    /// Safety valve: abort the simulation after this many events.
    pub max_events: u64,
    /// Scenario script: timed disturbances delivered through the event
    /// queue (empty for ordinary stationary runs — the common case pays
    /// nothing beyond this Vec's emptiness).
    pub script: Vec<TimedDirective>,
}

impl DriverConfig {
    /// The paper's setup: 4-core × 2-SMT machine, default costs, a 200k-cycle
    /// maintenance tick, running `threads` simulated threads.
    pub fn paper_machine(threads: usize, seed: u64) -> Self {
        Self {
            topology: Topology::haswell_e3(),
            threads,
            htm: HtmConfig::default(),
            costs: CostModel::default(),
            seed,
            periodic_tick: Some(200_000),
            wait_patience: 100_000,
            smt_slowdown: 1.5,
            max_events: 400_000_000,
            script: Vec::new(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Thinking,
    Gating,
    Running,
    FallbackRunning,
    /// Churned out by [`Directive::Park`]: no request, no scheduled events;
    /// wakes only on [`Directive::Unpark`].
    Parked,
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AfterGates {
    BeginAttempt,
    StartFallback,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    ThinkDone { th: ThreadId, epoch: u64 },
    GateResume { th: ThreadId, epoch: u64 },
    Access { th: ThreadId, epoch: u64, idx: usize },
    AsyncAbort { th: ThreadId, epoch: u64 },
    CommitPoint { th: ThreadId, epoch: u64 },
    FallbackDone { th: ThreadId, epoch: u64 },
    Tick,
    /// `cfg.script[idx]` fires. Scheduled once per script entry at
    /// bootstrap, so pending directives also keep the queue non-empty
    /// while parked threads wait for their `Unpark`.
    Directive { idx: usize },
}

struct ThreadCtx {
    req: Option<TxRequest>,
    attempts_left: u32,
    attempts_used: u32,
    epoch: u64,
    phase: Phase,
    /// Set by [`Directive::Park`]; honoured at the next transaction
    /// boundary (`next_tx`), cleared by [`Directive::Unpark`].
    suspend_requested: bool,
    held: Vec<LockId>,
    pending_gates: Vec<Gate>,
    after_gates: AfterGates,
    gates_entered_at: Cycles,
    park_start: Option<Cycles>,
    pending_delay: Cycles,
    body_start: Cycles,
    finished_at: Cycles,
}

impl ThreadCtx {
    fn new() -> Self {
        Self {
            req: None,
            attempts_left: 0,
            attempts_used: 0,
            epoch: 0,
            phase: Phase::Thinking,
            suspend_requested: false,
            held: Vec::new(),
            pending_gates: Vec::new(),
            after_gates: AfterGates::BeginAttempt,
            gates_entered_at: 0,
            park_start: None,
            pending_delay: 0,
            body_start: 0,
            finished_at: 0,
        }
    }

    fn block(&self) -> usize {
        self.req.as_ref().expect("thread has no active request").block
    }
}

/// Runs `workload` under `sched` on the configured machine and returns the
/// collected metrics.
///
/// ```
/// use seer_runtime::synthetic::{SyntheticSpec, SyntheticWorkload};
/// use seer_runtime::{run, DriverConfig, NullScheduler};
///
/// let mut workload =
///     SyntheticWorkload::new(SyntheticSpec::low_contention_hashmap(25), 4);
/// let mut sched = NullScheduler::new(5);
/// let metrics = run(&mut workload, &mut sched, &DriverConfig::paper_machine(4, 7));
/// assert_eq!(metrics.commits, 100);
/// assert!(metrics.speedup() > 1.0);
/// ```
///
/// # Panics
/// If `cfg.threads` is zero or exceeds the topology's logical CPUs.
pub fn run(
    workload: &mut dyn Workload,
    sched: &mut dyn Scheduler,
    cfg: &DriverConfig,
) -> RunMetrics {
    run_traced(workload, sched, cfg, &mut NullTraceSink)
}

/// Like [`run`], but hands decision-provenance records to `sink`.
///
/// Tracing is purely observational: the returned metrics — including
/// [`RunMetrics::trace_hash`] — are bit-identical to an untraced run of
/// the same `(workload, scheduler, config)`; the sink only receives
/// copies of state the simulation already computes.
///
/// # Panics
/// If `cfg.threads` is zero or exceeds the topology's logical CPUs.
pub fn run_traced(
    workload: &mut dyn Workload,
    sched: &mut dyn Scheduler,
    cfg: &DriverConfig,
    sink: &mut dyn TraceSink,
) -> RunMetrics {
    assert!(cfg.threads > 0, "need at least one thread");
    assert!(
        cfg.threads <= cfg.topology.logical_cpus(),
        "more threads ({}) than logical CPUs ({})",
        cfg.threads,
        cfg.topology.logical_cpus()
    );
    let mut driver = Driver::new(workload, sched, sink, cfg.clone());
    driver.bootstrap();
    driver.main_loop();
    driver.finish()
}

struct Driver<'w, 's, 't> {
    cfg: DriverConfig,
    workload: &'w mut dyn Workload,
    sched: &'s mut dyn Scheduler,
    sink: &'t mut dyn TraceSink,
    /// `sink.enabled()`, cached: the hot path pays one boolean test.
    trace_on: bool,
    machine: HtmMachine,
    locks: LockBank,
    queue: EventQueue<Event>,
    threads: Vec<ThreadCtx>,
    metrics: RunMetrics,
    rng: SimRng,
    now: Cycles,
    live_threads: usize,
    budget: u32,
    smt_factor: Vec<f64>,
    /// Reusable scratch buffers for the per-event hot paths. Each is
    /// filled and drained within a single dispatch (taken with
    /// `mem::take`, restored afterwards so the capacity survives), which
    /// keeps steady-state event handling free of heap allocation.
    scratch_gates: Vec<Gate>,
    scratch_needed: Vec<LockId>,
    scratch_squeezed: Vec<(ThreadId, seer_htm::AbortCause)>,
    scratch_victims: Vec<ThreadId>,
    scratch_acquirers: Vec<ThreadId>,
    scratch_watchers: Vec<ThreadId>,
}

impl<'w, 's, 't> Driver<'w, 's, 't> {
    fn new(
        workload: &'w mut dyn Workload,
        sched: &'s mut dyn Scheduler,
        sink: &'t mut dyn TraceSink,
        cfg: DriverConfig,
    ) -> Self {
        let budget = sched.attempt_budget();
        assert!(budget > 0, "scheduler attempt budget must be positive");
        let blocks = workload.num_blocks();
        let machine = HtmMachine::new(cfg.topology, cfg.htm);
        let locks = LockBank::new(cfg.topology.physical_cores(), blocks);
        let metrics = RunMetrics::new(blocks, budget, blocks);
        let rng = SimRng::new(cfg.seed);
        let threads = (0..cfg.threads).map(|_| ThreadCtx::new()).collect();
        let live_threads = cfg.threads;
        let smt_factor = (0..cfg.threads)
            .map(|t| {
                let shared = (0..cfg.threads).any(|o| cfg.topology.are_smt_siblings(t, o));
                if shared { cfg.smt_slowdown.max(1.0) } else { 1.0 }
            })
            .collect();
        let trace_on = sink.enabled();
        Self {
            cfg,
            workload,
            sched,
            sink,
            trace_on,
            machine,
            locks,
            queue: EventQueue::new(),
            threads,
            metrics,
            rng,
            now: 0,
            live_threads,
            budget,
            smt_factor,
            scratch_gates: Vec::new(),
            scratch_needed: Vec::new(),
            scratch_squeezed: Vec::new(),
            scratch_victims: Vec::new(),
            scratch_acquirers: Vec::new(),
            scratch_watchers: Vec::new(),
        }
    }

    /// Stretches a request's timing by the thread's SMT sharing factor.
    /// Sequential cost accounting always uses the unscaled trace.
    fn scale_req(&self, th: ThreadId, req: &mut TxRequest) {
        let f = self.smt_factor[th];
        if f <= 1.0 {
            return;
        }
        req.think = (req.think as f64 * f) as Cycles;
        req.duration = (req.duration as f64 * f).ceil() as Cycles;
        for a in &mut req.accesses {
            a.offset = (a.offset as f64 * f) as Cycles;
        }
    }

    fn bootstrap(&mut self) {
        for th in 0..self.cfg.threads {
            self.next_tx(th, 0);
        }
        if let Some(p) = self.cfg.periodic_tick {
            self.queue.push(p, Event::Tick);
        }
        // Schedule every scripted disturbance up front. A still-pending
        // directive also keeps the queue non-empty, which is what lets a
        // fully-parked thread population wait for its scripted `Unpark`
        // without tripping the drained-queue panic.
        for (idx, td) in self.cfg.script.iter().enumerate() {
            self.queue.push(td.at, Event::Directive { idx });
        }
    }

    fn main_loop(&mut self) {
        let mut events = 0u64;
        while self.live_threads > 0 {
            let Some((time, ev)) = self.queue.pop() else {
                // No events but threads alive: every live thread must be
                // parked waiting for a wake that can no longer come. This
                // is a bug in the model, not a workload condition.
                panic!(
                    "event queue drained with {} live thread(s) at t={}",
                    self.live_threads, self.now
                );
            };
            self.now = time;
            events += 1;
            if events > self.cfg.max_events {
                self.metrics.truncated = true;
                break;
            }
            self.dispatch(ev);
            #[cfg(feature = "check-invariants")]
            self.assert_invariants();
        }
        self.metrics.events = events;
    }

    fn finish(self) -> RunMetrics {
        let mut metrics = self.metrics;
        metrics.makespan = self
            .threads
            .iter()
            .map(|t| t.finished_at)
            .max()
            .unwrap_or(0);
        metrics.trace_hash = self.queue.trace_hash();
        #[cfg(feature = "check-invariants")]
        if !metrics.truncated {
            let violations = metrics.check_conservation();
            assert!(
                violations.is_empty(),
                "conservation laws violated at end of run: {violations:#?}"
            );
        }
        metrics
    }

    /// Structural invariants that must hold between any two driver events.
    /// Compiled only under `check-invariants`; see DESIGN.md (conformance
    /// layer) for the catalogue.
    #[cfg(feature = "check-invariants")]
    fn assert_invariants(&self) {
        // SGL subscription consistency: while the fall-back lock is held no
        // hardware transaction may be running — begin-time subscription
        // aborts late starters and `kill_all` sweeps the rest on acquire.
        if self.locks.is_locked(LockId::Sgl) {
            for (th, ctx) in self.threads.iter().enumerate() {
                assert!(
                    ctx.phase != Phase::Running,
                    "thread {th} runs in HTM while the SGL is held"
                );
            }
        }
        for (th, ctx) in self.threads.iter().enumerate() {
            // Held-lock bookkeeping must agree with the lock bank, with no
            // duplicate entries (a duplicate would double-release).
            let mut sorted = ctx.held.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert!(
                sorted.len() == ctx.held.len(),
                "thread {th} records duplicate held locks: {:?}",
                ctx.held
            );
            for &l in &ctx.held {
                assert!(
                    self.locks.is_held_by(l, th),
                    "thread {th} records {l:?} as held but the bank disagrees"
                );
            }
            // Phase / request consistency.
            match ctx.phase {
                Phase::Thinking | Phase::Gating | Phase::Running | Phase::FallbackRunning => {
                    assert!(
                        ctx.req.is_some(),
                        "thread {th} in {:?} without an active request",
                        ctx.phase
                    );
                }
                Phase::Parked => {
                    assert!(ctx.req.is_none(), "parked thread {th} still has a request");
                    assert!(
                        ctx.held.is_empty(),
                        "parked thread {th} holds locks: {:?}",
                        ctx.held
                    );
                }
                Phase::Done => {
                    assert!(ctx.req.is_none(), "finished thread {th} still has a request");
                }
            }
            if ctx.phase == Phase::FallbackRunning {
                assert!(
                    self.locks.is_held_by(LockId::Sgl, th),
                    "thread {th} on the fall-back path without the SGL"
                );
            }
        }
        // Running conservation: commits are partitioned by mode and by the
        // attempt histogram at every instant, every conflict abort has a
        // ground-truth kill record, and attempts never lag their outcomes.
        let m = &self.metrics;
        assert_eq!(m.modes.total(), m.commits, "modes must partition commits");
        let hist: u64 = m.attempts_histogram.iter().sum();
        assert_eq!(hist, m.commits, "attempt histogram must partition commits");
        assert_eq!(
            m.ground_truth.total(),
            m.aborts.conflict,
            "every conflict abort needs a ground-truth kill record"
        );
        let htm_commits = m.commits - m.modes.get(TxMode::SglFallback);
        assert!(
            m.htm_attempts >= htm_commits + m.aborts.total(),
            "more attempt outcomes ({} commits + {} aborts) than attempts ({})",
            htm_commits,
            m.aborts.total(),
            m.htm_attempts
        );
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::Tick => {
                self.with_env(|sched, env| sched.on_periodic(env));
                if self.live_threads > 0 {
                    if let Some(p) = self.cfg.periodic_tick {
                        self.queue.push(self.now + p, Event::Tick);
                    }
                }
            }
            Event::ThinkDone { th, epoch } => {
                if self.stale(th, epoch) {
                    return;
                }
                self.tx_arrived(th);
            }
            Event::GateResume { th, epoch } => {
                if self.stale(th, epoch) || self.threads[th].phase != Phase::Gating {
                    return;
                }
                self.unpark(th);
                self.process_gates(th);
            }
            Event::Access { th, epoch, idx } => {
                if self.stale(th, epoch) {
                    return;
                }
                self.do_access(th, idx);
            }
            Event::AsyncAbort { th, epoch } => {
                if self.stale(th, epoch) || self.threads[th].phase != Phase::Running {
                    return;
                }
                self.machine.abort(th);
                self.handle_abort(th, XStatus::other());
            }
            Event::CommitPoint { th, epoch } => {
                if self.stale(th, epoch) {
                    return;
                }
                self.do_commit(th);
            }
            Event::FallbackDone { th, epoch } => {
                if self.stale(th, epoch) {
                    return;
                }
                self.fallback_done(th);
            }
            Event::Directive { idx } => {
                let directive = self.cfg.script[idx].directive.clone();
                self.apply_directive(directive);
            }
        }
    }

    /// Applies one scripted disturbance. Everything here is driven by
    /// state the simulation already tracks — no wall-clock, no hidden
    /// randomness — so injected runs replay bit-identically.
    fn apply_directive(&mut self, directive: Directive) {
        match directive {
            Directive::Phase(idx) => self.workload.on_phase(idx),
            Directive::Park(th) => {
                if th < self.threads.len() {
                    self.threads[th].suspend_requested = true;
                }
            }
            Directive::Unpark(th) => {
                if th >= self.threads.len() {
                    return;
                }
                self.threads[th].suspend_requested = false;
                if self.threads[th].phase == Phase::Parked {
                    self.next_tx(th, 0);
                }
            }
            Directive::StallLockHolder { cycles } => self.stall_lock_holder(cycles),
            Directive::Capacity { ways, read_lines } => {
                self.machine.set_capacity_override(ways, read_lines);
            }
            Directive::Sched(fault) => {
                self.with_env(|sched, env| sched.on_fault(&fault, env));
            }
        }
    }

    /// [`Directive::StallLockHolder`]: deschedule one thread for `cycles`,
    /// preferring the lowest-id live thread holding a scheduler lock (the
    /// interesting case — its locks stay held for the whole stall), else
    /// the lowest-id live thread. A no-op when every thread is done or
    /// parked.
    fn stall_lock_holder(&mut self, cycles: Cycles) {
        let eligible =
            |ctx: &ThreadCtx| !matches!(ctx.phase, Phase::Done | Phase::Parked);
        let target = self
            .threads
            .iter()
            .position(|c| eligible(c) && !c.held.is_empty())
            .or_else(|| self.threads.iter().position(eligible));
        let Some(th) = target else { return };
        if self.threads[th].phase == Phase::Running {
            // An interrupt lands on a thread inside a hardware
            // transaction: the transaction aborts (as on real HTM), and
            // the stall below pushes out the retry the abort scheduled.
            self.machine.abort(th);
            self.handle_abort(th, XStatus::other());
        }
        // Invalidate whatever wake the thread had pending and replace it
        // with one after the stall. A lock granted to the thread by a
        // hand-off in the meantime stays held until the stall ends —
        // exactly the holder-descheduled case the fault models.
        self.bump(th);
        let epoch = self.threads[th].epoch;
        let resume = self.now + cycles;
        match self.threads[th].phase {
            Phase::Thinking => self.queue.push(resume, Event::ThinkDone { th, epoch }),
            Phase::Gating => self.queue.push(resume, Event::GateResume { th, epoch }),
            Phase::FallbackRunning => {
                self.queue.push(resume, Event::FallbackDone { th, epoch })
            }
            Phase::Running | Phase::Parked | Phase::Done => {
                unreachable!("stall target in phase {:?}", self.threads[th].phase)
            }
        }
    }

    fn stale(&self, th: ThreadId, epoch: u64) -> bool {
        // Epoch monotonicity: epochs only ever advance, so a delivered event
        // can carry at most the thread's current epoch. Anything newer means
        // the event was fabricated or the epoch counter went backwards.
        #[cfg(feature = "check-invariants")]
        assert!(
            epoch <= self.threads[th].epoch,
            "event for thread {th} carries epoch {epoch} from the future (current {})",
            self.threads[th].epoch
        );
        self.threads[th].epoch != epoch
    }

    fn bump(&mut self, th: ThreadId) {
        self.threads[th].epoch += 1;
    }

    fn with_env<R>(&mut self, f: impl FnOnce(&mut dyn Scheduler, &mut SchedEnv<'_>) -> R) -> R {
        let mut env = SchedEnv {
            now: self.now,
            locks: &self.locks,
            topology: self.cfg.topology,
            rng: &mut self.rng,
            trace: &mut *self.sink,
        };
        f(self.sched, &mut env)
    }

    // ---- lifecycle ----------------------------------------------------

    fn next_tx(&mut self, th: ThreadId, extra_delay: Cycles) {
        if self.threads[th].suspend_requested {
            // Scripted churn: honour the park at this transaction boundary
            // without consuming any work from the workload. The thread
            // stays live (no metrics accounting — it is descheduled, not
            // waiting) until a scripted `Unpark` calls back in here.
            let ctx = &mut self.threads[th];
            ctx.phase = Phase::Parked;
            ctx.epoch += 1;
            return;
        }
        let next = self.workload.next(th, &mut self.rng);
        match next {
            None => {
                self.threads[th].phase = Phase::Done;
                self.threads[th].finished_at = self.now;
                self.bump(th);
                self.live_threads -= 1;
            }
            Some(mut req) => {
                debug_assert!(req.is_well_formed(), "malformed trace from workload");
                debug_assert!(req.block < self.workload.num_blocks());
                self.metrics.sequential_cycles += req.think + req.duration;
                self.scale_req(th, &mut req);
                let think = req.think;
                let ctx = &mut self.threads[th];
                ctx.req = Some(req);
                ctx.attempts_left = self.budget;
                ctx.attempts_used = 0;
                ctx.phase = Phase::Thinking;
                ctx.epoch += 1;
                let epoch = ctx.epoch;
                self.queue
                    .push(self.now + extra_delay + think, Event::ThinkDone { th, epoch });
            }
        }
    }

    /// Alg. 1 START: announce, decide pre-tx serialization, gate, attempt.
    fn tx_arrived(&mut self, th: ThreadId) {
        let block = self.threads[th].block();
        self.with_env(|sched, env| sched.on_tx_start(th, block, env));
        let start_overhead = self.sched.overhead(HookPoint::TxStart);
        let force_fallback = self.with_env(|sched, env| sched.pre_tx_fallback(th, block, env));
        if force_fallback {
            self.enter_fallback_path(th);
            self.threads[th].pending_delay += start_overhead;
        } else {
            let attempts_left = self.threads[th].attempts_left;
            let gates =
                self.with_env(|sched, env| sched.pre_attempt_gates(th, block, attempts_left, env));
            self.install_gates(th, gates, AfterGates::BeginAttempt);
            self.threads[th].pending_delay += start_overhead;
            self.process_gates(th);
        }
    }

    fn install_gates(&mut self, th: ThreadId, gates: Vec<Gate>, after: AfterGates) {
        self.threads[th].pending_gates = gates;
        self.finish_install(th, after);
    }

    /// [`Driver::install_gates`] for a single gate, reusing the thread's
    /// pending-gate storage instead of allocating a fresh list.
    fn install_single_gate(&mut self, th: ThreadId, gate: Gate, after: AfterGates) {
        let ctx = &mut self.threads[th];
        ctx.pending_gates.clear();
        ctx.pending_gates.push(gate);
        self.finish_install(th, after);
    }

    fn finish_install(&mut self, th: ThreadId, after: AfterGates) {
        let now = self.now;
        let ctx = &mut self.threads[th];
        ctx.phase = Phase::Gating;
        ctx.after_gates = after;
        ctx.gates_entered_at = now;
        ctx.pending_delay = 0;
        ctx.epoch += 1;
    }

    fn park(&mut self, th: ThreadId) {
        if self.threads[th].park_start.is_none() {
            self.threads[th].park_start = Some(self.now);
        }
    }

    fn unpark(&mut self, th: ThreadId) {
        if let Some(start) = self.threads[th].park_start.take() {
            let waited = self.now.saturating_sub(start);
            self.metrics.wait_cycles += waited;
            self.metrics.wait_histogram.record(waited);
        }
    }

    /// Processes the pending gate list from the top. Returns having either
    /// parked the thread (watcher/acquirer) or completed all gates and
    /// transitioned.
    fn process_gates(&mut self, th: ThreadId) {
        debug_assert_eq!(self.threads[th].phase, Phase::Gating);
        // The gate list must stay pending (a parked thread re-enters here
        // from the top), but processing mutates thread state — so iterate
        // a working copy, held in reused scratch storage rather than a
        // fresh allocation per wake.
        let mut gates = std::mem::take(&mut self.scratch_gates);
        gates.clone_from(&self.threads[th].pending_gates);
        let patience_deadline = self.threads[th].gates_entered_at + self.cfg.wait_patience;
        let mut parked = false;
        for gate in gates.iter_mut() {
            match gate {
                Gate::WaitWhileLocked(l) => {
                    let l = *l;
                    if self.locks.is_locked(l)
                        && !self.locks.is_held_by(l, th)
                        && self.now < patience_deadline
                    {
                        if l == LockId::Sgl {
                            self.with_env(|sched, env| sched.on_sgl_wait(th, env));
                        }
                        if self.trace_on {
                            self.sink.lifecycle(LifecycleEvent::LockWait {
                                at: self.now,
                                thread: th,
                                lock: l,
                                holder: self.locks.get(l).owner(),
                            });
                        }
                        self.locks.get_mut(l).add_watcher(th);
                        self.park(th);
                        let epoch = self.threads[th].epoch;
                        self.queue
                            .push(patience_deadline.max(self.now + 1), Event::GateResume { th, epoch });
                        parked = true;
                        break;
                    }
                }
                Gate::Acquire(l) => {
                    if !self.acquire_or_park(th, *l) {
                        parked = true;
                        break;
                    }
                }
                Gate::AcquireMany { locks, via_htm } => {
                    let via_htm = *via_htm;
                    // `locks` is our working copy: sort it in place.
                    locks.sort_unstable();
                    locks.dedup();
                    let mut needed = std::mem::take(&mut self.scratch_needed);
                    needed.clear();
                    for &l in locks.iter() {
                        if self.locks.is_held_by(l, th) {
                            // Granted by a release hand-off while parked:
                            // record ownership so the lock is released later.
                            if !self.threads[th].held.contains(&l) {
                                self.threads[th].held.push(l);
                                if self.trace_on {
                                    self.sink.lifecycle(LifecycleEvent::LocksAcquired {
                                        at: self.now,
                                        thread: th,
                                        locks: vec![l],
                                    });
                                }
                            }
                        } else {
                            needed.push(l);
                        }
                    }
                    if needed.is_empty() {
                        self.scratch_needed = needed;
                        continue;
                    }
                    let all_free = needed.iter().all(|&l| !self.locks.is_locked(l));
                    if via_htm && all_free && needed.len() >= 2 {
                        // Multi-CAS: take all locks in one tiny hardware
                        // transaction (paper §4). Cost: one begin/commit
                        // pair instead of one RMW per lock.
                        for &l in &needed {
                            #[cfg(feature = "check-invariants")]
                            assert!(
                                self.threads[th].held.iter().all(|&h| h < l),
                                "non-canonical acquisition: {l:?} after holding {:?}",
                                self.threads[th].held
                            );
                            let ok = self.locks.get_mut(l).try_acquire(th, self.now);
                            debug_assert!(ok);
                            self.threads[th].held.push(l);
                        }
                        self.threads[th].pending_delay +=
                            self.cfg.costs.xbegin + self.cfg.costs.xend;
                        self.record_tx_lock_acquisition(&needed);
                        if self.trace_on {
                            self.sink.lifecycle(LifecycleEvent::LocksAcquired {
                                at: self.now,
                                thread: th,
                                locks: needed.clone(),
                            });
                        }
                    } else {
                        let mut newly_tx = 0usize;
                        for &l in &needed {
                            if !self.acquire_or_park(th, l) {
                                parked = true;
                                break;
                            }
                            if matches!(l, LockId::Tx(_)) {
                                newly_tx += 1;
                            }
                        }
                        if newly_tx > 0 {
                            self.metrics.tx_lock_acquisitions.push(newly_tx as u32);
                        }
                    }
                    self.scratch_needed = needed;
                    if parked {
                        break;
                    }
                }
                Gate::ReleaseHeld => self.release_all_held(th),
            }
        }
        self.scratch_gates = gates;
        if parked {
            return;
        }
        // All gates passed.
        let after = self.threads[th].after_gates;
        match after {
            AfterGates::BeginAttempt => self.begin_attempt(th),
            AfterGates::StartFallback => self.start_fallback(th),
        }
    }

    /// Try-acquire with FIFO parking; true when the lock is now held.
    fn acquire_or_park(&mut self, th: ThreadId, l: LockId) -> bool {
        if self.locks.is_held_by(l, th) {
            if !self.threads[th].held.contains(&l) {
                // Granted by a release hand-off while we were parked.
                self.threads[th].held.push(l);
                if self.trace_on {
                    self.sink.lifecycle(LifecycleEvent::LocksAcquired {
                        at: self.now,
                        thread: th,
                        locks: vec![l],
                    });
                }
            }
            return true;
        }
        // Deadlock freedom rests on every thread acquiring in canonical
        // `LockId` order; growing a held set downwards must instead go
        // through `ReleaseHeld` + fresh ordered acquisition.
        #[cfg(feature = "check-invariants")]
        assert!(
            self.threads[th].held.iter().all(|&h| h < l),
            "non-canonical acquisition: {l:?} after holding {:?}",
            self.threads[th].held
        );
        if self.locks.get_mut(l).try_acquire(th, self.now) {
            self.threads[th].held.push(l);
            self.threads[th].pending_delay += self.cfg.costs.cas;
            if matches!(l, LockId::Tx(_)) {
                self.record_tx_lock_acquisition(&[l]);
            }
            if self.trace_on {
                self.sink.lifecycle(LifecycleEvent::LocksAcquired {
                    at: self.now,
                    thread: th,
                    locks: vec![l],
                });
            }
            true
        } else {
            if self.trace_on {
                self.sink.lifecycle(LifecycleEvent::LockWait {
                    at: self.now,
                    thread: th,
                    lock: l,
                    holder: self.locks.get(l).owner(),
                });
            }
            self.locks.get_mut(l).enqueue_acquirer(th);
            self.park(th);
            false
        }
    }

    fn record_tx_lock_acquisition(&mut self, locks: &[LockId]) {
        let tx_count = locks.iter().filter(|l| matches!(l, LockId::Tx(_))).count();
        if tx_count > 0 {
            self.metrics.tx_lock_acquisitions.push(tx_count as u32);
        }
    }

    fn release_all_held(&mut self, th: ThreadId) {
        // Take the held list to release in insertion order (the order is
        // part of the deterministic wake schedule), then hand its buffer
        // back: the thread refills it on its very next acquisition.
        let mut held = std::mem::take(&mut self.threads[th].held);
        for &l in &held {
            self.release_lock(th, l);
        }
        held.clear();
        self.threads[th].held = held;
    }

    fn release_lock(&mut self, th: ThreadId, l: LockId) {
        let mut acquirers = std::mem::take(&mut self.scratch_acquirers);
        let mut watchers = std::mem::take(&mut self.scratch_watchers);
        self.locks.release_into(l, th, self.now, &mut acquirers, &mut watchers);
        let handoff = self.now + self.cfg.costs.lock_handoff;
        // Wake queued acquirers first (in FIFO order) and watchers after,
        // staggered: cache-line arbitration serializes the waiters'
        // re-reads of the lock word, which preserves rough FIFO fairness
        // and breaks the synchronized retry herd a simultaneous wake would
        // create. Acquirers that lose the re-contention re-queue.
        let step = (self.cfg.costs.cas / 2).max(1);
        let mut i: Cycles = 0;
        for &a in &acquirers {
            let epoch = self.threads[a].epoch;
            self.queue
                .push(handoff + i * step, Event::GateResume { th: a, epoch });
            i += 1;
        }
        for &w in &watchers {
            let epoch = self.threads[w].epoch;
            self.queue
                .push(handoff + i * step, Event::GateResume { th: w, epoch });
            i += 1;
        }
        self.scratch_acquirers = acquirers;
        self.scratch_watchers = watchers;
    }

    // ---- hardware attempt ----------------------------------------------

    fn begin_attempt(&mut self, th: ThreadId) {
        self.bump(th);
        self.threads[th].phase = Phase::Running;
        self.metrics.htm_attempts += 1;
        if self.trace_on {
            self.sink.lifecycle(LifecycleEvent::AttemptBegin {
                at: self.now,
                thread: th,
                block: self.threads[th].block(),
                attempt: self.threads[th].attempts_used,
            });
        }
        let delay = std::mem::take(&mut self.threads[th].pending_delay);
        let body_start = self.now + delay + self.cfg.costs.xbegin;
        self.threads[th].body_start = body_start;

        // Begin-time SGL subscription (Alg. 1 lines 10-12): if the
        // fall-back lock is held, the transaction self-aborts explicitly.
        if self.locks.is_locked(LockId::Sgl) && !self.locks.is_held_by(LockId::Sgl, th) {
            self.handle_abort(th, XStatus::explicit(xabort_codes::SGL_LOCKED));
            return;
        }

        let mut squeezed = std::mem::take(&mut self.scratch_squeezed);
        self.machine.begin_into(th, &mut squeezed);
        for &(victim, cause) in &squeezed {
            if self.threads[victim].phase == Phase::Running {
                self.handle_abort(victim, XStatus::from(cause));
            }
        }
        self.scratch_squeezed = squeezed;

        let (duration, first_access, epoch) = {
            let ctx = &self.threads[th];
            let req = ctx.req.as_ref().expect("running thread without request");
            (
                req.duration,
                req.accesses.first().map(|a| a.offset),
                ctx.epoch,
            )
        };

        // Asynchronous aborts (interrupts, faults): probability grows with
        // the transaction's footprint in time.
        let p_async = duration as f64 * self.cfg.costs.async_abort_per_cycle;
        if self.rng.chance(p_async) {
            let at = body_start + self.rng.below(duration.max(1));
            self.queue.push(at, Event::AsyncAbort { th, epoch });
        }

        match first_access {
            Some(offset) => self
                .queue
                .push(body_start + offset, Event::Access { th, epoch, idx: 0 }),
            None => self.queue.push(
                body_start + duration + self.cfg.costs.xend,
                Event::CommitPoint { th, epoch },
            ),
        }
    }

    fn do_access(&mut self, th: ThreadId, idx: usize) {
        debug_assert_eq!(self.threads[th].phase, Phase::Running);
        let (line, kind, my_block) = {
            let ctx = &self.threads[th];
            let req = ctx.req.as_ref().expect("access without request");
            let a = req.accesses[idx];
            (a.line, a.kind, req.block)
        };
        let mut victims = std::mem::take(&mut self.scratch_victims);
        let self_abort = self.machine.access_into(th, line, kind, &mut victims);
        for &victim in &victims {
            if self.threads[victim].phase == Phase::Running {
                let victim_block = self.threads[victim].block();
                self.metrics.ground_truth.record(victim_block, my_block);
                self.handle_abort(victim, XStatus::conflict());
            }
        }
        self.scratch_victims = victims;
        if let Some(cause) = self_abort {
            self.handle_abort(th, XStatus::from(cause));
            return;
        }
        // Schedule the next step of the body.
        let ctx = &self.threads[th];
        let req = ctx.req.as_ref().expect("access without request");
        let epoch = ctx.epoch;
        let body_start = ctx.body_start;
        if idx + 1 < req.accesses.len() {
            let at = body_start + req.accesses[idx + 1].offset;
            self.queue
                .push(at.max(self.now), Event::Access { th, epoch, idx: idx + 1 });
        } else {
            let at = body_start + req.duration + self.cfg.costs.xend;
            self.queue
                .push(at.max(self.now), Event::CommitPoint { th, epoch });
        }
    }

    fn do_commit(&mut self, th: ThreadId) {
        debug_assert_eq!(self.threads[th].phase, Phase::Running);
        self.machine.commit(th);
        self.bump(th);
        let block = self.threads[th].block();
        self.with_env(|sched, env| sched.on_htm_commit(th, block, env));

        let mode = self.classify_mode(th);
        self.metrics.modes.record(mode);
        self.metrics.commits += 1;
        let used = self.threads[th].attempts_used.min(self.budget - 1) as usize;
        self.metrics.attempts_histogram[used] += 1;
        if self.trace_on {
            self.sink.lifecycle(LifecycleEvent::HtmCommit {
                at: self.now,
                thread: th,
                block,
                attempts_used: self.threads[th].attempts_used,
            });
        }

        self.release_all_held(th);
        let req = self.threads[th].req.take().expect("commit without request");
        self.workload.commit(th, &req, &mut self.rng);
        self.next_tx(th, self.sched.overhead(HookPoint::HtmCommit));
    }

    fn classify_mode(&self, th: ThreadId) -> TxMode {
        let held = &self.threads[th].held;
        let aux = held.contains(&LockId::Aux);
        let tx = held.iter().any(|l| matches!(l, LockId::Tx(_)));
        let core = held.iter().any(|l| matches!(l, LockId::Core(_)));
        match (aux, tx, core) {
            (true, _, _) => TxMode::HtmAuxLock,
            (false, true, true) => TxMode::HtmTxAndCoreLocks,
            (false, true, false) => TxMode::HtmTxLocks,
            (false, false, true) => TxMode::HtmCoreLock,
            (false, false, false) => TxMode::HtmNoLocks,
        }
    }

    // ---- abort handling --------------------------------------------------

    fn handle_abort(&mut self, th: ThreadId, status: XStatus) {
        debug_assert!(!status.is_started());
        self.bump(th);
        let abort_counts = &mut self.metrics.aborts;
        if status.is_conflict() {
            abort_counts.conflict += 1;
        } else if status.is_capacity() {
            abort_counts.capacity += 1;
        } else if status.is_explicit() {
            abort_counts.explicit += 1;
        } else {
            abort_counts.other += 1;
        }
        // The machine slot is already clear for victims/capacity; make sure
        // for the explicit/async paths too.
        self.machine.abort(th);

        let ctx = &mut self.threads[th];
        ctx.attempts_left = ctx.attempts_left.saturating_sub(1);
        ctx.attempts_used += 1;
        let attempts_left = ctx.attempts_left;
        let block = ctx.block();
        if self.trace_on {
            self.sink.lifecycle(LifecycleEvent::Abort {
                at: self.now,
                thread: th,
                block,
                cause: AbortCause::from_status(status),
                attempts_left,
            });
        }

        let decision =
            self.with_env(|sched, env| sched.on_abort(th, block, status, attempts_left, env));

        let resume_at =
            self.now + self.cfg.costs.abort_penalty + self.sched.overhead(HookPoint::Abort);
        if attempts_left == 0 || matches!(decision, AbortDecision::Fallback) {
            self.enter_fallback_path_at(th, resume_at);
        } else {
            let AbortDecision::Retry { gates } = decision else {
                unreachable!()
            };
            // Re-generate the trace: a re-executed transaction re-reads the
            // (possibly changed) data structures.
            let mut req = self.threads[th].req.take().expect("abort without request");
            self.workload.regenerate(th, &mut req, &mut self.rng);
            debug_assert!(req.is_well_formed());
            self.scale_req(th, &mut req);
            self.threads[th].req = Some(req);

            let mut all_gates = gates;
            let more = self
                .with_env(|sched, env| sched.pre_attempt_gates(th, block, attempts_left, env));
            all_gates.extend(more);
            self.install_gates(th, all_gates, AfterGates::BeginAttempt);
            let epoch = self.threads[th].epoch;
            self.queue.push(resume_at, Event::GateResume { th, epoch });
        }
    }

    // ---- fall-back path --------------------------------------------------

    fn enter_fallback_path(&mut self, th: ThreadId) {
        self.enter_fallback_path_at(th, self.now);
    }

    fn enter_fallback_path_at(&mut self, th: ThreadId, at: Cycles) {
        self.metrics.fallbacks += 1;
        if self.trace_on {
            self.sink.lifecycle(LifecycleEvent::SglFallback {
                at: self.now,
                thread: th,
                block: self.threads[th].block(),
            });
        }
        // RELEASE-Seer-LOCKS before taking the global lock (Alg. 1 line 19).
        self.release_all_held(th);
        self.install_single_gate(th, Gate::Acquire(LockId::Sgl), AfterGates::StartFallback);
        let epoch = self.threads[th].epoch;
        self.queue.push(at.max(self.now), Event::GateResume { th, epoch });
    }

    fn start_fallback(&mut self, th: ThreadId) {
        debug_assert!(self.locks.is_held_by(LockId::Sgl, th));
        self.bump(th);
        self.threads[th].phase = Phase::FallbackRunning;
        // Acquiring the SGL invalidates the lock line every hardware
        // transaction subscribed to at begin: they all abort.
        let block = self.threads[th].block();
        let mut killed = std::mem::take(&mut self.scratch_victims);
        self.machine.kill_all_into(&mut killed);
        for &victim in &killed {
            if victim != th && self.threads[victim].phase == Phase::Running {
                let victim_block = self.threads[victim].block();
                self.metrics.ground_truth.record(victim_block, block);
                self.handle_abort(victim, XStatus::conflict());
            }
        }
        self.scratch_victims = killed;
        let delay = std::mem::take(&mut self.threads[th].pending_delay);
        let duration = self.threads[th].req.as_ref().expect("fallback without request").duration;
        let epoch = self.threads[th].epoch;
        self.queue
            .push(self.now + delay + duration, Event::FallbackDone { th, epoch });
    }

    fn fallback_done(&mut self, th: ThreadId) {
        debug_assert_eq!(self.threads[th].phase, Phase::FallbackRunning);
        self.bump(th);
        let block = self.threads[th].block();
        self.with_env(|sched, env| sched.on_fallback_commit(th, block, env));
        self.metrics.modes.record(TxMode::SglFallback);
        self.metrics.commits += 1;
        *self
            .metrics
            .attempts_histogram
            .last_mut()
            .expect("histogram sized by budget") += 1;
        if self.trace_on {
            self.sink.lifecycle(LifecycleEvent::FallbackCommit {
                at: self.now,
                thread: th,
                block,
            });
        }
        self.release_lock(th, LockId::Sgl);
        self.threads[th].held.retain(|&l| l != LockId::Sgl);
        let req = self.threads[th].req.take().expect("fallback without request");
        self.workload.commit(th, &req, &mut self.rng);
        self.next_tx(th, self.sched.overhead(HookPoint::FallbackCommit));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::NullScheduler;
    use crate::workload::{Access, BlockId, TxRequest};
    use seer_htm::AccessKind;

    /// A workload of `per_thread` identical transactions per thread, each
    /// touching `lines` distinct lines starting at a per-thread or shared
    /// base, with optional conflicts.
    struct Uniform {
        per_thread: usize,
        issued: Vec<usize>,
        lines: u64,
        shared: bool,
        writes: bool,
        blocks: usize,
    }

    impl Uniform {
        fn new(threads: usize, per_thread: usize, lines: u64, shared: bool, writes: bool) -> Self {
            Self {
                per_thread,
                issued: vec![0; threads],
                lines,
                shared,
                writes,
                blocks: 1,
            }
        }
    }

    impl Workload for Uniform {
        fn name(&self) -> &str {
            "uniform-test"
        }
        fn num_blocks(&self) -> usize {
            self.blocks
        }
        fn next(&mut self, thread: ThreadId, _rng: &mut SimRng) -> Option<TxRequest> {
            if self.issued[thread] >= self.per_thread {
                return None;
            }
            self.issued[thread] += 1;
            let base = if self.shared { 0 } else { (thread as u64 + 1) * 10_000 };
            let kind = if self.writes { AccessKind::Write } else { AccessKind::Read };
            let accesses = (0..self.lines)
                .map(|i| Access {
                    line: base + i,
                    kind,
                    offset: i * 10,
                })
                .collect();
            Some(TxRequest {
                block: 0 as BlockId,
                accesses,
                duration: self.lines * 10 + 20,
                think: 50,
            })
        }
    }

    fn quiet_config(threads: usize) -> DriverConfig {
        let mut cfg = DriverConfig::paper_machine(threads, 42);
        cfg.costs.async_abort_per_cycle = 0.0;
        cfg
    }

    #[test]
    fn single_thread_all_commits_first_attempt() {
        let mut w = Uniform::new(1, 100, 8, false, true);
        let mut s = NullScheduler::new(5);
        let m = run(&mut w, &mut s, &quiet_config(1));
        assert_eq!(m.commits, 100);
        assert_eq!(m.aborts.total(), 0);
        assert_eq!(m.modes.get(TxMode::HtmNoLocks), 100);
        assert_eq!(m.attempts_histogram[0], 100);
        assert!(!m.truncated);
        assert!(m.makespan > 0);
    }

    #[test]
    fn disjoint_threads_never_conflict() {
        let mut w = Uniform::new(4, 50, 8, false, true);
        let mut s = NullScheduler::new(5);
        let m = run(&mut w, &mut s, &quiet_config(4));
        assert_eq!(m.commits, 200);
        assert_eq!(m.aborts.conflict, 0);
        assert_eq!(m.fallbacks, 0);
    }

    #[test]
    fn shared_writes_conflict_and_still_complete() {
        let mut w = Uniform::new(4, 50, 8, true, true);
        let mut s = NullScheduler::new(5);
        let m = run(&mut w, &mut s, &quiet_config(4));
        assert_eq!(m.commits, 200);
        assert!(m.aborts.conflict > 0, "shared hot lines must conflict");
        assert!(!m.truncated);
    }

    #[test]
    fn shared_reads_do_not_conflict() {
        let mut w = Uniform::new(4, 50, 8, true, false);
        let mut s = NullScheduler::new(5);
        let m = run(&mut w, &mut s, &quiet_config(4));
        assert_eq!(m.commits, 200);
        assert_eq!(m.aborts.conflict, 0);
    }

    #[test]
    fn parallel_speedup_on_disjoint_work() {
        let mut w1 = Uniform::new(1, 200, 16, false, true);
        let mut s = NullScheduler::new(5);
        let m1 = run(&mut w1, &mut s, &quiet_config(1));
        let mut w4 = Uniform::new(4, 50, 16, false, true);
        let m4 = run(&mut w4, &mut s, &quiet_config(4));
        assert!(
            m4.speedup() > 2.0 * m1.speedup(),
            "4 disjoint threads should scale: {} vs {}",
            m4.speedup(),
            m1.speedup()
        );
    }

    #[test]
    fn ground_truth_records_conflicts() {
        let mut w = Uniform::new(2, 100, 4, true, true);
        let mut s = NullScheduler::new(5);
        let m = run(&mut w, &mut s, &quiet_config(2));
        assert!(m.ground_truth.total() > 0);
        assert_eq!(m.ground_truth.total(), m.aborts.conflict);
    }

    #[test]
    fn deterministic_across_runs() {
        let run_once = || {
            let mut w = Uniform::new(4, 40, 8, true, true);
            let mut s = NullScheduler::new(5);
            run(&mut w, &mut s, &quiet_config(4))
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.commits, b.commits);
        assert_eq!(a.aborts.total(), b.aborts.total());
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.modes, b.modes);
        // The trace hash digests the full event schedule, so agreement here
        // is a far stronger statement than the aggregate equalities above.
        assert_ne!(a.trace_hash, 0, "driver must export the schedule digest");
        assert_eq!(a.trace_hash, b.trace_hash);
    }

    #[test]
    fn conservation_laws_hold_across_contention_levels() {
        for (shared, writes, threads) in
            [(false, true, 4), (true, true, 8), (true, false, 4)]
        {
            let mut w = Uniform::new(threads, 40, 8, shared, writes);
            let mut s = NullScheduler::new(3);
            let m = run(&mut w, &mut s, &quiet_config(threads));
            let violations = m.check_conservation();
            assert!(violations.is_empty(), "violated: {violations:#?}");
        }
    }

    #[test]
    fn budget_exhaustion_falls_back_to_sgl() {
        // Single line, all writes, 8 threads: extreme contention guarantees
        // some transactions exhaust their budget.
        let mut w = Uniform::new(8, 30, 1, true, true);
        let mut s = NullScheduler::new(2);
        let m = run(&mut w, &mut s, &quiet_config(8));
        assert_eq!(m.commits, 240);
        assert!(m.fallbacks > 0, "contention must trigger the fall-back");
        assert!(m.modes.get(TxMode::SglFallback) > 0);
    }

    #[test]
    fn empty_workload_finishes_immediately() {
        let mut w = Uniform::new(2, 0, 4, false, true);
        let mut s = NullScheduler::new(5);
        let m = run(&mut w, &mut s, &quiet_config(2));
        assert_eq!(m.commits, 0);
        assert_eq!(m.makespan, 0);
    }

    #[test]
    fn async_aborts_occur_when_enabled() {
        let mut cfg = quiet_config(1);
        cfg.costs.async_abort_per_cycle = 1e-3; // absurdly high for the test
        let mut w = Uniform::new(1, 100, 8, false, true);
        let mut s = NullScheduler::new(5);
        let m = run(&mut w, &mut s, &cfg);
        assert_eq!(m.commits, 100);
        assert!(m.aborts.other > 0);
    }

    #[test]
    #[should_panic(expected = "more threads")]
    fn too_many_threads_panics() {
        let mut w = Uniform::new(9, 1, 1, false, true);
        let mut s = NullScheduler::new(5);
        let _ = run(&mut w, &mut s, &quiet_config(9));
    }

    #[test]
    fn traced_run_is_bit_identical_and_events_reconcile() {
        use crate::trace::{AbortCause, MemoryTraceSink};
        let mut s = NullScheduler::new(2);
        // High contention so aborts and SGL fall-backs both occur.
        let mut w = Uniform::new(8, 30, 1, true, true);
        let untraced = run(&mut w, &mut s, &quiet_config(8));
        let mut w2 = Uniform::new(8, 30, 1, true, true);
        let mut sink = MemoryTraceSink::new();
        let traced = run_traced(&mut w2, &mut s, &quiet_config(8), &mut sink);

        // Tracing is a sink, not a flag: the schedule digest cannot move.
        assert_eq!(untraced.trace_hash, traced.trace_hash);
        assert_eq!(untraced.commits, traced.commits);
        assert_eq!(untraced.makespan, traced.makespan);

        // The lifecycle stream reconciles exactly with the metrics.
        assert_eq!(sink.count_kind("attempt-begin") as u64, traced.htm_attempts);
        assert_eq!(
            sink.count_abort_cause(AbortCause::Conflict) as u64,
            traced.aborts.conflict
        );
        assert_eq!(
            sink.count_abort_cause(AbortCause::Capacity) as u64,
            traced.aborts.capacity
        );
        assert_eq!(
            sink.count_abort_cause(AbortCause::Explicit) as u64,
            traced.aborts.explicit
        );
        assert_eq!(sink.count_kind("sgl-fallback") as u64, traced.fallbacks);
        let sgl_commits = traced.modes.get(TxMode::SglFallback);
        assert_eq!(sink.count_kind("fallback-commit") as u64, sgl_commits);
        assert_eq!(
            sink.count_kind("htm-commit") as u64,
            traced.commits - sgl_commits
        );
        assert!(traced.fallbacks > 0, "test workload must exercise the fall-back");
    }

    #[test]
    fn sequential_cycles_accumulate() {
        let mut w = Uniform::new(2, 10, 4, false, true);
        let mut s = NullScheduler::new(5);
        let m = run(&mut w, &mut s, &quiet_config(2));
        // 20 txs, each think=50 duration=60.
        assert_eq!(m.sequential_cycles, 20 * (50 + 60));
    }

    fn scripted(threads: usize, script: Vec<TimedDirective>) -> DriverConfig {
        let mut cfg = quiet_config(threads);
        cfg.script = script;
        cfg
    }

    fn at(t: Cycles, directive: Directive) -> TimedDirective {
        TimedDirective { at: t, directive }
    }

    #[test]
    fn empty_script_leaves_trace_hash_unchanged() {
        let run_with = |script: Vec<TimedDirective>| {
            let mut w = Uniform::new(4, 40, 8, true, true);
            let mut s = NullScheduler::new(5);
            run(&mut w, &mut s, &scripted(4, script))
        };
        let plain = run_with(Vec::new());
        let mut w = Uniform::new(4, 40, 8, true, true);
        let mut s = NullScheduler::new(5);
        let unscripted = run(&mut w, &mut s, &quiet_config(4));
        assert_eq!(plain.trace_hash, unscripted.trace_hash);
        assert_eq!(plain.commits, unscripted.commits);
    }

    #[test]
    fn park_and_unpark_preserve_all_work() {
        let mut w = Uniform::new(2, 50, 4, false, true);
        let mut s = NullScheduler::new(5);
        let m = run(
            &mut w,
            &mut s,
            &scripted(
                2,
                vec![
                    at(1_000, Directive::Park(1)),
                    at(50_000, Directive::Unpark(1)),
                ],
            ),
        );
        // The parked thread resumes and finishes its full share.
        assert_eq!(m.commits, 100);
        assert!(!m.truncated);
        // The park stretches the makespan past the unpark time.
        assert!(m.makespan > 50_000, "makespan {} too short", m.makespan);
    }

    #[test]
    fn park_directives_are_deterministic() {
        let run_once = || {
            let mut w = Uniform::new(4, 30, 8, true, true);
            let mut s = NullScheduler::new(5);
            run(
                &mut w,
                &mut s,
                &scripted(
                    4,
                    vec![
                        at(2_000, Directive::Park(0)),
                        at(2_000, Directive::Park(2)),
                        at(40_000, Directive::Unpark(0)),
                        at(60_000, Directive::Unpark(2)),
                    ],
                ),
            )
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.commits, 120);
        assert_eq!(a.trace_hash, b.trace_hash);
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn unpark_of_never_parked_thread_is_noop() {
        let mut w = Uniform::new(2, 20, 4, false, true);
        let mut s = NullScheduler::new(5);
        let m = run(
            &mut w,
            &mut s,
            &scripted(2, vec![at(500, Directive::Unpark(1)), at(600, Directive::Park(7))]),
        );
        assert_eq!(m.commits, 40);
    }

    #[test]
    fn capacity_directive_forces_capacity_aborts() {
        // 16-line read transactions commit fine under the default geometry
        // but overflow once the read budget clamps to 2 lines.
        let mut w = Uniform::new(1, 50, 16, false, false);
        let mut s = NullScheduler::new(5);
        let baseline = run(&mut w, &mut s, &quiet_config(1));
        assert_eq!(baseline.aborts.capacity, 0);

        let mut w = Uniform::new(1, 50, 16, false, false);
        let m = run(
            &mut w,
            &mut s,
            &scripted(
                1,
                vec![
                    at(1_000, Directive::Capacity { ways: Some(2), read_lines: Some(2) }),
                    at(20_000, Directive::Capacity { ways: None, read_lines: None }),
                ],
            ),
        );
        assert!(m.aborts.capacity > 0, "clamp must force capacity aborts");
        assert_eq!(m.commits, 50, "work still completes via the fall-back");
        assert!(m.fallbacks > 0);
    }

    #[test]
    fn stall_directive_delays_progress_deterministically() {
        let run_with = |script: Vec<TimedDirective>| {
            let mut w = Uniform::new(2, 30, 4, false, true);
            let mut s = NullScheduler::new(5);
            run(&mut w, &mut s, &scripted(2, script))
        };
        let plain = run_with(Vec::new());
        let stalled = run_with(vec![at(2_000, Directive::StallLockHolder { cycles: 80_000 })]);
        assert_eq!(stalled.commits, plain.commits);
        assert!(
            stalled.makespan > plain.makespan,
            "an 80k-cycle stall must show up in the makespan: {} vs {}",
            stalled.makespan,
            plain.makespan
        );
        let again = run_with(vec![at(2_000, Directive::StallLockHolder { cycles: 80_000 })]);
        assert_eq!(stalled.trace_hash, again.trace_hash);
    }

    #[test]
    fn sched_fault_reaches_the_scheduler() {
        struct FaultRecorder {
            inner: NullScheduler,
            seen: Vec<SchedFault>,
        }
        impl Scheduler for FaultRecorder {
            fn name(&self) -> &'static str {
                "fault-recorder"
            }
            fn on_fault(&mut self, fault: &SchedFault, _env: &mut SchedEnv<'_>) {
                self.seen.push(*fault);
            }
            fn attempt_budget(&self) -> u32 {
                self.inner.attempt_budget()
            }
        }
        let mut w = Uniform::new(2, 20, 4, false, true);
        let mut s = FaultRecorder { inner: NullScheduler::new(5), seen: Vec::new() };
        let _ = run(
            &mut w,
            &mut s,
            &scripted(
                2,
                vec![
                    at(1_000, Directive::Sched(SchedFault::WipeStats)),
                    at(2_000, Directive::Sched(SchedFault::DelayInference { rounds: 3 })),
                ],
            ),
        );
        assert_eq!(
            s.seen,
            vec![SchedFault::WipeStats, SchedFault::DelayInference { rounds: 3 }]
        );
    }

    #[test]
    fn phase_directive_reaches_the_workload() {
        struct PhaseRecorder {
            inner: Uniform,
            phases: std::rc::Rc<std::cell::RefCell<Vec<usize>>>,
        }
        impl Workload for PhaseRecorder {
            fn name(&self) -> &str {
                "phase-recorder"
            }
            fn num_blocks(&self) -> usize {
                self.inner.num_blocks()
            }
            fn next(&mut self, thread: ThreadId, rng: &mut SimRng) -> Option<TxRequest> {
                self.inner.next(thread, rng)
            }
            fn on_phase(&mut self, phase: usize) {
                self.phases.borrow_mut().push(phase);
            }
        }
        let phases = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut w = PhaseRecorder {
            inner: Uniform::new(2, 20, 4, false, true),
            phases: phases.clone(),
        };
        let mut s = NullScheduler::new(5);
        let _ = run(
            &mut w,
            &mut s,
            &scripted(2, vec![at(500, Directive::Phase(1)), at(1_500, Directive::Phase(2))]),
        );
        assert_eq!(*phases.borrow(), vec![1, 2]);
    }
}
