//! Configurable synthetic workloads for tests, microbenches and overhead
//! studies (e.g. the low-contention hash-map of the paper's §5.3).
//!
//! A [`SyntheticSpec`] describes a program as a set of atomic blocks, each
//! with an access-count footprint, a write fraction, and a *hot region* —
//! a shared range of cache lines it touches with some probability. Blocks
//! that share a hot region conflict with each other; blocks with disjoint
//! regions do not. This gives tests precise control over the conflict
//! graph the schedulers must discover.

use seer_htm::AccessKind;
use seer_sim::{Cycles, SimRng, ThreadId, ZipfTable};

use crate::workload::{Access, TxRequest, Workload};

/// Static description of one atomic block.
#[derive(Debug, Clone)]
pub struct BlockSpec {
    /// Relative frequency of this block in the transaction mix.
    pub weight: f64,
    /// Number of memory accesses per transaction body.
    pub accesses: u64,
    /// Fraction of accesses that are writes.
    pub write_fraction: f64,
    /// Identifier of the shared hot region this block touches (blocks with
    /// equal region ids contend with each other).
    pub hot_region: u64,
    /// Number of cache lines in the hot region.
    pub hot_lines: u64,
    /// Probability that an access targets the hot region (the rest go to
    /// thread-private lines).
    pub hot_probability: f64,
    /// Zipf exponent of hot-region accesses (0 = uniform).
    pub zipf_theta: f64,
    /// Uniform range of cycles between consecutive accesses.
    pub spacing: (Cycles, Cycles),
}

impl Default for BlockSpec {
    fn default() -> Self {
        Self {
            weight: 1.0,
            accesses: 20,
            write_fraction: 0.3,
            hot_region: 0,
            hot_lines: 64,
            hot_probability: 0.2,
            zipf_theta: 0.0,
            spacing: (8, 24),
        }
    }
}

/// Static description of a synthetic program.
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    /// Report name.
    pub name: String,
    /// The atomic blocks.
    pub blocks: Vec<BlockSpec>,
    /// Transactions each thread executes.
    pub txs_per_thread: usize,
    /// Uniform range of non-transactional cycles between transactions.
    pub think: (Cycles, Cycles),
}

impl SyntheticSpec {
    /// A single-block, low-contention read-mostly spec resembling the
    /// paper's 4k-element / 1k-bucket hash-map overhead probe.
    pub fn low_contention_hashmap(txs_per_thread: usize) -> Self {
        Self {
            name: "hashmap-low".to_string(),
            blocks: vec![BlockSpec {
                weight: 1.0,
                accesses: 12,
                write_fraction: 0.1,
                hot_region: 0,
                hot_lines: 1024,
                hot_probability: 0.9,
                zipf_theta: 0.0,
                spacing: (6, 14),
            }],
            txs_per_thread,
            think: (100, 300),
        }
    }
}

const REGION_STRIDE: u64 = 1 << 24;
const PRIVATE_BASE: u64 = 1 << 40;
const PRIVATE_STRIDE: u64 = 1 << 20;

/// Instantiated synthetic workload (holds per-thread issue state).
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    spec: SyntheticSpec,
    weights_cdf: Vec<f64>,
    zipf: Vec<ZipfTable>,
    issued: Vec<usize>,
    private_cursor: Vec<u64>,
}

impl SyntheticWorkload {
    /// Instantiates `spec` for `threads` simulated threads.
    ///
    /// # Panics
    /// If the spec has no blocks or non-positive total weight.
    pub fn new(spec: SyntheticSpec, threads: usize) -> Self {
        assert!(!spec.blocks.is_empty(), "spec needs at least one block");
        let total: f64 = spec.blocks.iter().map(|b| b.weight).sum();
        assert!(total > 0.0, "total block weight must be positive");
        let mut acc = 0.0;
        let weights_cdf = spec
            .blocks
            .iter()
            .map(|b| {
                acc += b.weight / total;
                acc
            })
            .collect();
        let zipf = spec
            .blocks
            .iter()
            .map(|b| ZipfTable::new(b.hot_lines.max(1) as usize, b.zipf_theta))
            .collect();
        Self {
            spec,
            weights_cdf,
            zipf,
            issued: vec![0; threads],
            private_cursor: (0..threads as u64)
                .map(|t| PRIVATE_BASE + t * PRIVATE_STRIDE)
                .collect(),
        }
    }

    /// The instantiated spec.
    pub fn spec(&self) -> &SyntheticSpec {
        &self.spec
    }

    fn pick_block(&self, rng: &mut SimRng) -> usize {
        let u = rng.unit();
        self.weights_cdf
            .partition_point(|&c| c < u)
            .min(self.spec.blocks.len() - 1)
    }

    fn build_trace(&mut self, thread: ThreadId, block: usize, rng: &mut SimRng) -> TxRequest {
        let spec = &self.spec.blocks[block];
        let mut accesses = Vec::with_capacity(spec.accesses as usize);
        let mut offset: Cycles = 0;
        for _ in 0..spec.accesses {
            offset += rng.cycles_between(spec.spacing.0, spec.spacing.1);
            let line = if rng.chance(spec.hot_probability) {
                spec.hot_region * REGION_STRIDE + rng.zipf(&self.zipf[block]) as u64
            } else {
                let cursor = &mut self.private_cursor[thread];
                *cursor += 1;
                // Wrap within the thread's private window so the address
                // space stays bounded over long runs.
                PRIVATE_BASE
                    + thread as u64 * PRIVATE_STRIDE
                    + (*cursor % (PRIVATE_STRIDE / 2))
            };
            let kind = if rng.chance(spec.write_fraction) {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            accesses.push(Access { line, kind, offset });
        }
        let duration = offset + rng.cycles_between(spec.spacing.0, spec.spacing.1);
        let think = rng.cycles_between(self.spec.think.0, self.spec.think.1);
        TxRequest {
            block,
            accesses,
            duration,
            think,
        }
    }
}

impl Workload for SyntheticWorkload {
    fn name(&self) -> &str {
        &self.spec.name
    }

    fn num_blocks(&self) -> usize {
        self.spec.blocks.len()
    }

    fn next(&mut self, thread: ThreadId, rng: &mut SimRng) -> Option<TxRequest> {
        if self.issued[thread] >= self.spec.txs_per_thread {
            return None;
        }
        self.issued[thread] += 1;
        let block = self.pick_block(rng);
        Some(self.build_trace(thread, block, rng))
    }

    fn regenerate(&mut self, thread: ThreadId, req: &mut TxRequest, rng: &mut SimRng) {
        // Re-execution re-probes the data structures: rebuild the trace for
        // the same atomic block, preserving the original think time (it was
        // already consumed).
        let block = req.block;
        let think = req.think;
        *req = self.build_trace(thread, block, rng);
        req.think = think;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run, DriverConfig};
    use crate::scheduler::NullScheduler;

    fn spec_two_conflicting_blocks() -> SyntheticSpec {
        SyntheticSpec {
            name: "pairwise".to_string(),
            blocks: vec![
                BlockSpec {
                    hot_region: 0,
                    hot_lines: 4,
                    hot_probability: 0.9,
                    write_fraction: 0.8,
                    ..BlockSpec::default()
                },
                BlockSpec {
                    hot_region: 0,
                    hot_lines: 4,
                    hot_probability: 0.9,
                    write_fraction: 0.8,
                    ..BlockSpec::default()
                },
                BlockSpec {
                    hot_region: 1,
                    hot_probability: 0.05,
                    write_fraction: 0.1,
                    ..BlockSpec::default()
                },
            ],
            txs_per_thread: 100,
            think: (50, 100),
        }
    }

    #[test]
    fn traces_are_well_formed() {
        let mut w = SyntheticWorkload::new(spec_two_conflicting_blocks(), 4);
        let mut rng = SimRng::new(1);
        for th in 0..4 {
            while let Some(req) = w.next(th, &mut rng) {
                assert!(req.is_well_formed());
                assert!(req.block < 3);
                assert_eq!(req.accesses.len(), 20);
            }
        }
    }

    #[test]
    fn per_thread_quota_respected() {
        let mut w = SyntheticWorkload::new(spec_two_conflicting_blocks(), 2);
        let mut rng = SimRng::new(2);
        let count = std::iter::from_fn(|| w.next(0, &mut rng)).count();
        assert_eq!(count, 100);
        assert!(w.next(0, &mut rng).is_none());
        // Thread 1 unaffected.
        assert!(w.next(1, &mut rng).is_some());
    }

    #[test]
    fn regenerate_keeps_block_and_think() {
        let mut w = SyntheticWorkload::new(spec_two_conflicting_blocks(), 1);
        let mut rng = SimRng::new(3);
        let mut req = w.next(0, &mut rng).unwrap();
        let block = req.block;
        let think = req.think;
        w.regenerate(0, &mut req, &mut rng);
        assert_eq!(req.block, block);
        assert_eq!(req.think, think);
        assert!(req.is_well_formed());
    }

    #[test]
    fn conflicting_blocks_conflict_disjoint_blocks_do_not() {
        let mut spec = spec_two_conflicting_blocks();
        spec.txs_per_thread = 150;
        let mut w = SyntheticWorkload::new(spec, 4);
        let mut s = NullScheduler::new(5);
        let mut cfg = DriverConfig::paper_machine(4, 7);
        cfg.costs.async_abort_per_cycle = 0.0;
        let m = run(&mut w, &mut s, &cfg);
        assert_eq!(m.commits, 600);
        // Blocks 0 and 1 share a tiny hot region: they must dominate the
        // ground-truth kill matrix; block 2 is nearly conflict-free.
        let hot: u64 = [(0, 0), (0, 1), (1, 0), (1, 1)]
            .iter()
            .map(|&(v, k)| m.ground_truth.get(v, k))
            .sum();
        let cold: u64 = (0..3).map(|k| m.ground_truth.get(2, k)).sum();
        assert!(hot > 0, "hot blocks must conflict");
        // The cold block is still occasionally killed as collateral of a
        // fall-back (acquiring the SGL aborts every in-flight transaction),
        // so it is not zero — but data conflicts must dominate on the hot
        // pair.
        assert!(
            cold < hot,
            "cold block should be a victim less often: hot={hot} cold={cold}"
        );
    }

    #[test]
    fn low_contention_hashmap_rarely_aborts() {
        let mut w = SyntheticWorkload::new(SyntheticSpec::low_contention_hashmap(200), 4);
        let mut s = NullScheduler::new(5);
        let mut cfg = DriverConfig::paper_machine(4, 11);
        cfg.costs.async_abort_per_cycle = 0.0;
        let m = run(&mut w, &mut s, &cfg);
        assert_eq!(m.commits, 800);
        assert!(
            m.abort_ratio() < 0.05,
            "low-contention spec aborts too much: {}",
            m.abort_ratio()
        );
    }
}
