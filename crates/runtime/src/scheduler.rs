//! The scheduler (policy) interface between the DES driver and a TM
//! contention-management algorithm.
//!
//! A [`Scheduler`] is a *global* object — one instance governs all
//! simulated threads, matching the shared tables of the real algorithms
//! (Seer's `activeTxs`, `locksToAcquire`; ATS's contention factor). The
//! driver calls into it at the control points of Algorithm 1 of the paper:
//! transaction arrival, before each hardware attempt, on abort, on commit,
//! and while waiting for the fall-back lock. The scheduler answers with
//! [`Gate`]s — declarative wait/acquire steps the driver executes in
//! simulated time.

use seer_htm::XStatus;
use seer_sim::{Cycles, SimRng, ThreadId, Topology};

use crate::locks::{LockBank, LockId};
use crate::trace::TraceSink;
use crate::workload::BlockId;

/// Instrumentation points at which a scheduler can charge fixed overhead
/// cycles to the calling thread (how Seer's monitoring cost — Figure 4 of
/// the paper — becomes visible in simulated time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HookPoint {
    /// A transaction instance arrived (announcement cost).
    TxStart,
    /// A hardware attempt aborted (abort registration / scan cost).
    Abort,
    /// A hardware commit (commit registration / scan cost).
    HtmCommit,
    /// A fall-back completion.
    FallbackCommit,
}

/// A synchronization step a thread must pass before proceeding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Gate {
    /// Park while the lock is held by another thread, without acquiring it
    /// (the `wait while is-locked(...)` loops of `WAIT-Seer-LOCKS`).
    WaitWhileLocked(LockId),
    /// Acquire the lock, queueing FIFO if busy. Skipped if already held.
    Acquire(LockId),
    /// Acquire several locks. With `via_htm`, first try to take all of
    /// them atomically inside one small hardware transaction (the
    /// multi-CAS optimization of paper §4); if any is busy, fall back to
    /// acquiring one by one in canonical [`LockId`] order.
    AcquireMany {
        /// Locks to take; the driver sorts them canonically.
        locks: Vec<LockId>,
        /// Whether to attempt the single-HTM-transaction fast path.
        via_htm: bool,
    },
    /// Release every scheduler lock currently held. Used to restart a
    /// multi-lock acquisition in canonical order when a new lock must be
    /// added to an already-held set (deadlock avoidance).
    ReleaseHeld,
}

/// Scheduler's verdict after an aborted hardware attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbortDecision {
    /// Retry in hardware after passing `gates` (e.g. acquiring a core lock
    /// after a capacity abort). The driver re-applies
    /// [`Scheduler::pre_attempt_gates`] after these.
    Retry {
        /// Gates to pass before the retry.
        gates: Vec<Gate>,
    },
    /// Give up on hardware: release scheduler locks and take the
    /// single-global-lock fall-back path.
    Fallback,
}

/// Read-only-ish environment handed to scheduler callbacks.
pub struct SchedEnv<'a> {
    /// Current virtual time.
    pub now: Cycles,
    /// State of every lock (for `is-locked` style checks).
    pub locks: &'a LockBank,
    /// Machine topology (for core-of-thread mapping).
    pub topology: Topology,
    /// Deterministic randomness (hill climbing random jumps, etc.).
    pub rng: &'a mut SimRng,
    /// Decision-provenance sink. A pure observer: schedulers may emit
    /// records (guarded on [`TraceSink::enabled`]) but must not let the
    /// sink influence any decision.
    pub trace: &'a mut dyn TraceSink,
}

/// A scheduler-visible fault injected by a scenario script (see
/// `crates/scenario`). Faults arrive through [`Scheduler::on_fault`] as
/// ordinary scheduled events in the DES queue — there is no wall-clock or
/// out-of-band channel, so an injected run replays bit-identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedFault {
    /// Zero every per-thread and merged statistics matrix, as if the
    /// scheduler's profile memory were lost (stats amnesia).
    WipeStats,
    /// Overwrite the scheduler's operating thresholds (Seer's Th1/Th2),
    /// knocking the hill climber off its current optimum.
    KickThresholds {
        /// New conditional-probability threshold.
        th1: f64,
        /// New conjunctive-probability threshold.
        th2: f64,
    },
    /// Suppress the next `rounds` inference rounds (staleness: the stats
    /// keep accumulating but the lock tables stop being refreshed).
    DelayInference {
        /// Number of due inference rounds to drop.
        rounds: u64,
    },
}

/// A contention-management policy for best-effort HTM.
///
/// Default implementations make the trait a no-op scheduler: a plain retry
/// loop with no waiting and no locks, which is also a useful experimental
/// baseline ("raw HTM").
pub trait Scheduler {
    /// Display name (used in reports and figures).
    fn name(&self) -> &'static str;

    /// `MAX_ATTEMPTS`: hardware attempts before the fall-back (the paper
    /// and Intel use 5 for STAMP).
    fn attempt_budget(&self) -> u32 {
        5
    }

    /// A new transaction instance arrived on `thread` (Alg. 1 START
    /// preamble — e.g. Seer announces it in `activeTxs`).
    fn on_tx_start(&mut self, _thread: ThreadId, _block: BlockId, _env: &mut SchedEnv<'_>) {}

    /// When true, skip hardware entirely and execute under the SGL (ATS's
    /// serialization mode when the contention factor is high).
    fn pre_tx_fallback(&mut self, _thread: ThreadId, _block: BlockId, _env: &mut SchedEnv<'_>) -> bool {
        false
    }

    /// Gates to pass before every hardware attempt (`WAIT-Seer-LOCKS`; the
    /// lemming-effect wait on the SGL for RTM-style policies).
    fn pre_attempt_gates(
        &mut self,
        _thread: ThreadId,
        _block: BlockId,
        _attempts_left: u32,
        _env: &mut SchedEnv<'_>,
    ) -> Vec<Gate> {
        Vec::new()
    }

    /// A hardware attempt aborted with `status`; `attempts_left` is the
    /// remaining budget (0 means the driver forces the fall-back regardless
    /// of the returned decision).
    fn on_abort(
        &mut self,
        _thread: ThreadId,
        _block: BlockId,
        _status: XStatus,
        _attempts_left: u32,
        _env: &mut SchedEnv<'_>,
    ) -> AbortDecision {
        AbortDecision::Retry { gates: Vec::new() }
    }

    /// The transaction committed in hardware (REGISTER-COMMIT point).
    fn on_htm_commit(&mut self, _thread: ThreadId, _block: BlockId, _env: &mut SchedEnv<'_>) {}

    /// The transaction completed under the SGL fall-back.
    fn on_fallback_commit(&mut self, _thread: ThreadId, _block: BlockId, _env: &mut SchedEnv<'_>) {}

    /// `thread` just parked waiting for the SGL to be released — the point
    /// where Seer opportunistically recomputes the locking scheme and runs
    /// the hill climber (Alg. 4 lines 52–54).
    fn on_sgl_wait(&mut self, _thread: ThreadId, _env: &mut SchedEnv<'_>) {}

    /// Periodic maintenance tick from the driver (in addition to SGL-wait
    /// opportunities), so inference still runs in workloads that rarely
    /// fall back.
    fn on_periodic(&mut self, _env: &mut SchedEnv<'_>) {}

    /// A scenario fault was injected (see [`SchedFault`]). Schedulers that
    /// keep no learned state ignore it — the default is a no-op, so fault
    /// injection is free for every policy that does not opt in.
    fn on_fault(&mut self, _fault: &SchedFault, _env: &mut SchedEnv<'_>) {}

    /// Fixed instrumentation cost, in cycles, charged to the calling
    /// thread at each hook point (zero for uninstrumented schedulers).
    fn overhead(&self, _point: HookPoint) -> Cycles {
        0
    }
}

/// The trivial scheduler: plain HTM retry loop, no waiting, no locks.
///
/// Provided for tests and as the "no scheduling at all" experimental
/// control; the paper's baselines live in `seer-baselines`.
#[derive(Debug, Default, Clone)]
pub struct NullScheduler {
    budget: u32,
}

impl NullScheduler {
    /// A null scheduler with the given attempt budget.
    pub fn new(budget: u32) -> Self {
        assert!(budget > 0, "attempt budget must be positive");
        Self { budget }
    }
}

impl Scheduler for NullScheduler {
    fn name(&self) -> &'static str {
        "null"
    }

    fn attempt_budget(&self) -> u32 {
        if self.budget == 0 {
            5
        } else {
            self.budget
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_scheduler_defaults() {
        let mut s = NullScheduler::new(3);
        assert_eq!(s.attempt_budget(), 3);
        assert_eq!(s.name(), "null");
        let bank = LockBank::new(1, 1);
        let mut rng = SimRng::new(1);
        let mut sink = crate::trace::NullTraceSink;
        let mut env = SchedEnv {
            now: 0,
            locks: &bank,
            topology: Topology::haswell_e3(),
            rng: &mut rng,
            trace: &mut sink,
        };
        assert!(!s.pre_tx_fallback(0, 0, &mut env));
        assert!(s.pre_attempt_gates(0, 0, 3, &mut env).is_empty());
        match s.on_abort(0, 0, XStatus::conflict(), 2, &mut env) {
            AbortDecision::Retry { gates } => assert!(gates.is_empty()),
            AbortDecision::Fallback => panic!("null scheduler never volunteers fallback"),
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_budget_rejected() {
        NullScheduler::new(0);
    }
}
