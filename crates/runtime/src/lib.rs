//! # seer-runtime — the transaction execution runtime
//!
//! Binds a [`workload::Workload`] (a TM application), a
//! [`scheduler::Scheduler`] (a contention-management policy) and the
//! simulated HTM machine (`seer-htm`) together under a deterministic
//! discrete-event driver ([`driver::run`]).
//!
//! The driver implements the *generic* structure every evaluated scheduler
//! shares — the retry loop with an attempt budget, the single-global-lock
//! fall-back, begin-time lock subscription, abort penalties — which is
//! Algorithm 1 of the paper minus the Seer-specific lines. Policies hook in
//! through [`scheduler::Scheduler`] callbacks and declarative
//! [`scheduler::Gate`]s; the baselines (`seer-baselines`) and Seer itself
//! (`seer` crate) are both implemented purely against this interface, so
//! every comparison in the harness runs on identical substrate mechanics.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod driver;
pub mod locks;
pub mod metrics;
pub mod scheduler;
pub mod synthetic;
pub mod trace;
pub mod workload;

pub use driver::{run, run_traced, Directive, DriverConfig, TimedDirective};
pub use locks::{LockBank, LockId};
pub use metrics::{
    AbortCounts, ConflictGroundTruth, MetricsWindow, ModeCounts, RunMetrics, TxMode,
    WindowedMetrics,
};
pub use scheduler::{
    AbortDecision, Gate, HookPoint, NullScheduler, SchedEnv, SchedFault, Scheduler,
};
pub use trace::{
    AbortCause, InferenceTrace, LifecycleEvent, MemoryTraceSink, NullTraceSink, PairDecision,
    RowTrace, TraceSink, Verdict,
};
pub use workload::{Access, BlockId, TxRequest, Workload};
