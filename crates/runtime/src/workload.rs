//! The workload interface: programs as streams of transactional requests.
//!
//! A workload models a TM application the way the scheduler sees it: a set
//! of *atomic blocks* (static program locations, identified by [`BlockId`]
//! exactly as Seer's minimal compiler support enumerates them — paper §3),
//! and per-thread streams of transaction instances. Each instance carries a
//! concrete *access trace* over cache lines, generated from the workload's
//! logical state at attempt time, plus timing (body duration, preceding
//! non-transactional think time).
//!
//! Traces are regenerated on retry via [`Workload::regenerate`] so that
//! data-dependent footprints (hash probes, tree paths) can move as the
//! logical state evolves, like re-executed hardware transactions would.

use seer_htm::{AccessKind, LineAddr};
use seer_sim::{Cycles, SimRng, ThreadId};

/// Identifier of an atomic block (static program location).
pub type BlockId = usize;

/// One transactional memory access at `offset` cycles into the body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Target cache line.
    pub line: LineAddr,
    /// Load or store.
    pub kind: AccessKind,
    /// Cycles from the start of the transaction body to this access.
    pub offset: Cycles,
}

/// A transaction instance: one dynamic execution of an atomic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxRequest {
    /// Which atomic block this instance executes.
    pub block: BlockId,
    /// The accesses, sorted by non-decreasing `offset`.
    pub accesses: Vec<Access>,
    /// Body length in cycles, at least the last access offset.
    pub duration: Cycles,
    /// Non-transactional work preceding this transaction.
    pub think: Cycles,
}

impl TxRequest {
    /// Validates the well-formedness invariants (sorted offsets within the
    /// duration). Used by tests and debug assertions in the driver.
    pub fn is_well_formed(&self) -> bool {
        let mut prev = 0;
        for a in &self.accesses {
            if a.offset < prev || a.offset > self.duration {
                return false;
            }
            prev = a.offset;
        }
        true
    }
}

/// A transactional application driven by the simulator.
///
/// All methods take `&mut self`; the DES driver is single-threaded, so the
/// workload's logical state needs no synchronization (the simulated
/// program's synchronization is exactly what the HTM model enforces).
pub trait Workload {
    /// Human-readable name (used in reports).
    fn name(&self) -> &str;

    /// Number of atomic blocks in the program source. Block ids in every
    /// [`TxRequest`] are below this bound.
    fn num_blocks(&self) -> usize;

    /// Produces the next transaction for `thread`, or `None` when the
    /// thread has finished its share of the work.
    fn next(&mut self, thread: ThreadId, rng: &mut SimRng) -> Option<TxRequest>;

    /// Refreshes `req`'s trace for a retry after an abort. The default
    /// keeps the trace unchanged (re-execution touches the same data).
    fn regenerate(&mut self, _thread: ThreadId, _req: &mut TxRequest, _rng: &mut SimRng) {}

    /// Applies the logical effects of `req` committing.
    fn commit(&mut self, _thread: ThreadId, _req: &TxRequest, _rng: &mut SimRng) {}

    /// A scenario phase boundary was crossed (see `crates/scenario`):
    /// `phase` is the 0-based index into the scenario's phase list. Plain
    /// stationary workloads ignore it — the default is a no-op.
    fn on_phase(&mut self, _phase: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(line: u64, offset: Cycles) -> Access {
        Access {
            line,
            kind: AccessKind::Read,
            offset,
        }
    }

    #[test]
    fn well_formed_accepts_sorted_within_duration() {
        let req = TxRequest {
            block: 0,
            accesses: vec![acc(1, 0), acc(2, 5), acc(3, 5), acc(4, 10)],
            duration: 10,
            think: 0,
        };
        assert!(req.is_well_formed());
    }

    #[test]
    fn well_formed_rejects_unsorted() {
        let req = TxRequest {
            block: 0,
            accesses: vec![acc(1, 5), acc(2, 3)],
            duration: 10,
            think: 0,
        };
        assert!(!req.is_well_formed());
    }

    #[test]
    fn well_formed_rejects_offset_past_duration() {
        let req = TxRequest {
            block: 0,
            accesses: vec![acc(1, 11)],
            duration: 10,
            think: 0,
        };
        assert!(!req.is_well_formed());
    }

    #[test]
    fn empty_trace_is_well_formed() {
        let req = TxRequest {
            block: 0,
            accesses: vec![],
            duration: 0,
            think: 0,
        };
        assert!(req.is_well_formed());
    }
}
