//! Scratch-buffer reuse audit (simulation-kernel fast path).
//!
//! The hot paths of the driver and the HTM machine stopped allocating:
//! they write results into reusable scratch vectors (`begin_into`,
//! `access_into`, `kill_all_into`, the driver's internal scratch fields).
//! Reuse is only sound if stale contents from a previous event can never
//! leak into the next one. These tests audit exactly that, at both layers:
//!
//! * machine level — replaying one access script through the allocating
//!   wrappers on a fresh machine and through `_into` methods with
//!   deliberately dirtied, reused buffers (on a machine reused across
//!   episodes) must produce identical squeezes, victims and self-aborts;
//! * driver level — back-to-back full simulations of the same
//!   configuration must be bit-identical in every metric, event count and
//!   trace hash, even though the second run's process state (allocator,
//!   buffer capacities) differs from the first's.

use seer_htm::{AccessKind, HtmConfig, HtmMachine};
use seer_runtime::synthetic::{BlockSpec, SyntheticSpec, SyntheticWorkload};
use seer_runtime::{run, DriverConfig, NullScheduler};
use seer_sim::Topology;

/// One scripted access episode: SMT-paired threads begin (squeezing
/// siblings), collide on shared lines, and wind down through commit and
/// abort — touching every `_into` output path.
fn episode(
    m: &mut HtmMachine,
    squeezed: &mut Vec<(seer_sim::ThreadId, seer_htm::AbortCause)>,
    victims: &mut Vec<seer_sim::ThreadId>,
    log: &mut Vec<String>,
) {
    // Threads 0 and 4 are SMT siblings on core 0 of haswell_e3 (4c/8t),
    // so the second begin squeezes the first if the config says so.
    for t in [0, 1, 4] {
        m.begin_into(t, squeezed);
        log.push(format!("begin {t}: {squeezed:?}"));
    }
    for (t, line, kind) in [
        (0, 10, AccessKind::Read),
        (1, 10, AccessKind::Write), // conflicts with 0's read
        (1, 11, AccessKind::Write),
        (4, 11, AccessKind::Read), // conflicts with 1's write
        (4, 12, AccessKind::Write),
    ] {
        let self_abort = m.access_into(t, line, kind, victims);
        log.push(format!("access {t} line {line}: {self_abort:?} victims {victims:?}"));
    }
    let alive: Vec<usize> = (0..8).filter(|&t| m.in_tx(t)).collect();
    log.push(format!("alive: {alive:?}"));
    for t in alive {
        m.commit(t);
    }
    m.non_tx_access_into(7, 10, AccessKind::Write, victims);
    log.push(format!("non-tx write: victims {victims:?}"));
    m.begin_into(2, squeezed);
    log.push(format!("begin 2: {squeezed:?}"));
    let killed = victims; // kill_all_into reuses the same scratch shape
    m.kill_all_into(killed);
    log.push(format!("kill_all: {killed:?}"));
}

#[test]
fn reused_dirty_buffers_match_fresh_allocations() {
    let topo = Topology::haswell_e3();
    let cfg = HtmConfig::default();

    // Reference: a fresh machine per episode, fresh buffers every call.
    let fresh_log = {
        let mut m = HtmMachine::new(topo, cfg);
        let mut log = Vec::new();
        let (mut squeezed, mut victims) = (Vec::new(), Vec::new());
        episode(&mut m, &mut squeezed, &mut victims, &mut log);
        log
    };

    // Audit: one machine and one pair of buffers reused across episodes,
    // the buffers pre-poisoned with garbage before the first call.
    let mut m = HtmMachine::new(topo, cfg);
    let mut squeezed = vec![(99, seer_htm::AbortCause::Conflict); 7];
    let mut victims = vec![42; 13];
    for round in 0..2 {
        let mut log = Vec::new();
        episode(&mut m, &mut squeezed, &mut victims, &mut log);
        assert_eq!(log, fresh_log, "episode {round} diverged under reuse");
    }
}

fn audit_run(seed: u64) -> seer_runtime::RunMetrics {
    let spec = SyntheticSpec {
        name: "scratch-audit".into(),
        blocks: vec![BlockSpec {
            weight: 1.0,
            accesses: 12,
            write_fraction: 0.5,
            hot_region: 0,
            hot_lines: 24,
            hot_probability: 0.6,
            zipf_theta: 0.8,
            spacing: (6, 14),
        }],
        txs_per_thread: 150,
        think: (40, 120),
    };
    let mut w = SyntheticWorkload::new(spec, 8);
    let mut s = NullScheduler::new(5);
    let mut cfg = DriverConfig::paper_machine(8, seed);
    cfg.costs.async_abort_per_cycle = 0.0;
    run(&mut w, &mut s, &cfg)
}

#[test]
fn back_to_back_runs_are_bit_identical() {
    // Contended enough that the abort/wake scratch paths all fire.
    let a = audit_run(0xA0D1);
    let b = audit_run(0xA0D1);
    assert!(a.aborts.total() > 0, "audit workload must exercise aborts");
    assert_eq!(a.commits, b.commits);
    assert_eq!(a.aborts.total(), b.aborts.total());
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.events, b.events, "event counts must match exactly");
    assert_eq!(a.trace_hash, b.trace_hash, "schedules must be bit-identical");
    assert_eq!(a.wait_cycles, b.wait_cycles);
    assert_eq!(a.tx_lock_acquisitions, b.tx_lock_acquisitions);
}
