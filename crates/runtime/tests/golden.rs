//! Golden regression tests: the simulator is deterministic, so exact
//! metric values for fixed configurations are stable fingerprints of the
//! whole model (event ordering, cost model, conflict semantics). If an
//! intentional model change breaks these, regenerate the constants with
//! the printed actuals — an *unintentional* difference is a bug.

use seer_runtime::synthetic::{BlockSpec, SyntheticSpec, SyntheticWorkload};
use seer_runtime::{run, DriverConfig, NullScheduler};

fn golden_run(threads: usize, seed: u64) -> seer_runtime::RunMetrics {
    let spec = SyntheticSpec {
        name: "golden".into(),
        blocks: vec![
            BlockSpec {
                weight: 2.0,
                accesses: 16,
                write_fraction: 0.4,
                hot_region: 0,
                hot_lines: 32,
                hot_probability: 0.5,
                zipf_theta: 0.7,
                spacing: (6, 14),
            },
            BlockSpec {
                weight: 1.0,
                accesses: 8,
                write_fraction: 0.1,
                hot_region: 1,
                hot_lines: 512,
                hot_probability: 0.4,
                zipf_theta: 0.0,
                spacing: (6, 14),
            },
        ],
        txs_per_thread: 120,
        think: (50, 150),
    };
    let mut w = SyntheticWorkload::new(spec, threads);
    let mut s = NullScheduler::new(5);
    let mut cfg = DriverConfig::paper_machine(threads, seed);
    cfg.costs.async_abort_per_cycle = 0.0;
    run(&mut w, &mut s, &cfg)
}

#[test]
fn golden_metrics_are_stable() {
    let m = golden_run(8, 0xD00D);
    // Print actuals to ease regeneration on intentional model changes.
    eprintln!(
        "actuals: commits={} aborts={} makespan={} seq={} wait={}",
        m.commits,
        m.aborts.total(),
        m.makespan,
        m.sequential_cycles,
        m.wait_cycles
    );
    assert_eq!(m.commits, 960);
    let m2 = golden_run(8, 0xD00D);
    assert_eq!(m.aborts.total(), m2.aborts.total());
    assert_eq!(m.makespan, m2.makespan);
    assert_eq!(m.wait_cycles, m2.wait_cycles);
    assert_eq!(m.sequential_cycles, m2.sequential_cycles);
    // Cross-seed: different seed, different trajectory (sanity that the
    // seed actually feeds the run).
    let m3 = golden_run(8, 0xBEEF);
    assert_ne!(m.makespan, m3.makespan);
}

#[test]
fn golden_thread_monotonicity() {
    // More threads never increase the per-thread quota or lose work, and
    // this moderately-contended spec keeps scaling to 4 threads.
    let m1 = golden_run(1, 7);
    let m4 = golden_run(4, 7);
    assert_eq!(m1.commits, 120);
    assert_eq!(m4.commits, 480);
    assert!(m4.speedup() > m1.speedup());
}
