//! Property-based tests of the DES driver's end-to-end invariants over
//! randomized synthetic workloads and schedulers.

use proptest::prelude::*;
use seer_runtime::synthetic::{BlockSpec, SyntheticSpec, SyntheticWorkload};
use seer_runtime::{run, DriverConfig, NullScheduler, RunMetrics};

fn arb_block() -> impl Strategy<Value = BlockSpec> {
    (
        1u64..30,        // accesses
        0.0f64..1.0,     // write fraction
        0u64..3,         // hot region
        1u64..128,       // hot lines
        0.0f64..0.9,     // hot probability
        0.0f64..1.5,     // zipf theta
    )
        .prop_map(|(accesses, wf, region, lines, hp, theta)| BlockSpec {
            weight: 1.0,
            accesses,
            write_fraction: wf,
            hot_region: region,
            hot_lines: lines,
            hot_probability: hp,
            zipf_theta: theta,
            spacing: (4, 16),
        })
}

fn arb_spec() -> impl Strategy<Value = SyntheticSpec> {
    (prop::collection::vec(arb_block(), 1..5), 5usize..40).prop_map(|(blocks, txs)| {
        SyntheticSpec {
            name: "prop".into(),
            blocks,
            txs_per_thread: txs,
            think: (20, 120),
        }
    })
}

fn run_spec(spec: &SyntheticSpec, threads: usize, seed: u64, budget: u32) -> RunMetrics {
    let mut w = SyntheticWorkload::new(spec.clone(), threads);
    let mut s = NullScheduler::new(budget);
    let mut cfg = DriverConfig::paper_machine(threads, seed);
    cfg.costs.async_abort_per_cycle = 0.0;
    run(&mut w, &mut s, &cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Liveness + conservation: every issued transaction commits exactly
    /// once, whatever the contention pattern; the accounting identities
    /// hold between the metric families.
    #[test]
    fn all_work_commits_and_accounting_balances(
        spec in arb_spec(),
        threads in 1usize..8,
        seed in any::<u64>(),
        budget in 1u32..7,
    ) {
        let m = run_spec(&spec, threads, seed, budget);
        prop_assert!(!m.truncated);
        prop_assert_eq!(m.commits, (spec.txs_per_thread * threads) as u64);
        // Mode tallies partition the commits.
        prop_assert_eq!(m.modes.total(), m.commits);
        // The attempts histogram partitions the commits too.
        let hist_total: u64 = m.attempts_histogram.iter().sum();
        prop_assert_eq!(hist_total, m.commits);
        // Conflict ground truth records at most one victim per conflict abort.
        prop_assert_eq!(m.ground_truth.total(), m.aborts.conflict);
        // Fall-backs appear in the last histogram bucket.
        prop_assert_eq!(*m.attempts_histogram.last().unwrap(), m.fallbacks);
        // A fall-back can only follow a full budget of aborts.
        prop_assert!(m.aborts.total() >= m.fallbacks * u64::from(budget));
    }

    /// Determinism: identical configuration => identical metrics.
    #[test]
    fn identical_runs_are_bit_identical(
        spec in arb_spec(),
        threads in 1usize..8,
        seed in any::<u64>(),
    ) {
        let a = run_spec(&spec, threads, seed, 5);
        let b = run_spec(&spec, threads, seed, 5);
        prop_assert_eq!(a.commits, b.commits);
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.sequential_cycles, b.sequential_cycles);
        prop_assert_eq!(a.aborts.total(), b.aborts.total());
        prop_assert_eq!(a.wait_cycles, b.wait_cycles);
        prop_assert_eq!(a.modes, b.modes);
        prop_assert_eq!(a.trace_hash, b.trace_hash);
    }

    /// Read-only workloads never conflict, never fall back, and commit on
    /// the first attempt.
    #[test]
    fn read_only_is_conflict_free(
        threads in 1usize..8,
        seed in any::<u64>(),
        lines in 1u64..64,
    ) {
        let spec = SyntheticSpec {
            name: "ro".into(),
            blocks: vec![BlockSpec {
                accesses: 12,
                write_fraction: 0.0,
                hot_lines: lines,
                hot_probability: 0.8,
                ..BlockSpec::default()
            }],
            txs_per_thread: 25,
            think: (10, 60),
        };
        let m = run_spec(&spec, threads, seed, 5);
        prop_assert_eq!(m.aborts.conflict, 0);
        prop_assert_eq!(m.fallbacks, 0);
        prop_assert_eq!(m.attempts_histogram[0], m.commits);
    }

    /// The sequential-cycle accumulator equals the sum of think + duration
    /// over the unscaled traces (single-thread run: makespan ≥ sequential
    /// because of HTM begin/commit overheads).
    #[test]
    fn single_thread_is_slower_than_sequential(spec in arb_spec(), seed in any::<u64>()) {
        let m = run_spec(&spec, 1, seed, 5);
        prop_assert!(m.makespan >= m.sequential_cycles,
            "1-thread HTM run cannot beat the raw sequential cost: {} < {}",
            m.makespan, m.sequential_cycles);
    }
}

// ---- canonical lock ordering ------------------------------------------

use seer_runtime::{AbortDecision, Gate, LockId, SchedEnv, Scheduler};

fn arb_lock() -> impl Strategy<Value = LockId> {
    (0u8..4, 0usize..8).prop_map(|(variant, idx)| match variant {
        0 => LockId::Sgl,
        1 => LockId::Aux,
        2 => LockId::Core(idx),
        _ => LockId::Tx(idx),
    })
}

fn class_rank(l: LockId) -> u8 {
    match l {
        LockId::Sgl => 0,
        LockId::Aux => 1,
        LockId::Core(_) => 2,
        LockId::Tx(_) => 3,
    }
}

/// A scheduler that demands a scrambled multi-lock set before every
/// attempt: the driver must canonicalize the order, so the run completes
/// without deadlock no matter how adversarial the list is.
struct ScrambledLocks {
    locks: Vec<LockId>,
    via_htm: bool,
}

impl Scheduler for ScrambledLocks {
    fn name(&self) -> &'static str {
        "scrambled-locks"
    }
    fn attempt_budget(&self) -> u32 {
        5
    }
    fn pre_attempt_gates(
        &mut self,
        _thread: usize,
        _block: usize,
        _attempts_left: u32,
        _env: &mut SchedEnv<'_>,
    ) -> Vec<Gate> {
        vec![
            Gate::ReleaseHeld,
            Gate::AcquireMany {
                locks: self.locks.clone(),
                via_htm: self.via_htm,
            },
        ]
    }
    fn on_abort(
        &mut self,
        _thread: usize,
        _block: usize,
        _status: seer_htm::XStatus,
        _attempts_left: u32,
        _env: &mut SchedEnv<'_>,
    ) -> AbortDecision {
        AbortDecision::Retry { gates: Vec::new() }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The derived `Ord` is the canonical deadlock-avoiding order:
    /// `Sgl < Aux < Core(_) < Tx(_)`, each class by index.
    #[test]
    fn lock_ordering_is_canonical(
        locks in prop::collection::vec(arb_lock(), 0..12),
        a in arb_lock(),
        b in arb_lock(),
    ) {
        let mut sorted = locks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        for w in sorted.windows(2) {
            prop_assert!(class_rank(w[0]) <= class_rank(w[1]),
                "class order violated: {:?} before {:?}", w[0], w[1]);
            match (w[0], w[1]) {
                (LockId::Core(i), LockId::Core(j)) | (LockId::Tx(i), LockId::Tx(j)) => {
                    prop_assert!(i < j, "index order violated: {:?} before {:?}", w[0], w[1]);
                }
                _ => {}
            }
        }
        // Total, antisymmetric, consistent with equality.
        prop_assert_eq!(a == b, a.cmp(&b).is_eq());
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
    }

    /// Scrambled, duplicated, adversarially-ordered `AcquireMany` lists
    /// must never wedge the driver: it canonicalizes the order, so every
    /// transaction still commits.
    #[test]
    fn scrambled_multi_lock_acquisition_cannot_deadlock(
        locks in prop::collection::vec(arb_lock(), 1..6),
        via_htm in any::<bool>(),
        threads in 2usize..8,
        seed in any::<u64>(),
    ) {
        // Exclude the SGL (acquiring the fall-back lock as a scheduler lock
        // and then entering the fall-back path would double-acquire it) and
        // clamp indices to the lock bank's actual shape: 4 physical cores,
        // `blocks` transaction locks.
        let blocks = 4usize;
        let locks: Vec<LockId> = locks
            .into_iter()
            .filter(|l| *l != LockId::Sgl)
            .map(|l| match l {
                LockId::Core(i) => LockId::Core(i % 4),
                LockId::Tx(i) => LockId::Tx(i % blocks),
                other => other,
            })
            .collect();
        let spec = SyntheticSpec {
            name: "scramble".into(),
            blocks: vec![
                BlockSpec { accesses: 6, write_fraction: 0.5, ..BlockSpec::default() };
                blocks
            ],
            txs_per_thread: 15,
            think: (10, 60),
        };
        let mut w = SyntheticWorkload::new(spec, threads);
        let mut s = ScrambledLocks { locks, via_htm };
        let mut cfg = DriverConfig::paper_machine(threads, seed);
        cfg.costs.async_abort_per_cycle = 0.0;
        let m = run(&mut w, &mut s, &cfg);
        prop_assert!(!m.truncated, "scrambled locks wedged the driver");
        prop_assert_eq!(m.commits, (15 * threads) as u64);
    }
}
