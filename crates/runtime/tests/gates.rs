//! Targeted tests of the driver's gate machinery, exercised through
//! purpose-built schedulers: advisory waits with patience, blocking
//! acquisition, multi-CAS acquisition, ReleaseHeld re-acquisition, and the
//! pre-transaction fall-back path.

use seer_htm::XStatus;
use seer_runtime::synthetic::{BlockSpec, SyntheticSpec, SyntheticWorkload};
use seer_runtime::{
    run, AbortDecision, DriverConfig, Gate, LockId, RunMetrics, SchedEnv, Scheduler, TxMode,
};
use seer_sim::ThreadId;

fn spec(threads_work: usize) -> SyntheticSpec {
    SyntheticSpec {
        name: "gate-test".into(),
        blocks: vec![BlockSpec {
            weight: 1.0,
            accesses: 10,
            write_fraction: 0.6,
            hot_region: 0,
            hot_lines: 8,
            hot_probability: 0.6,
            zipf_theta: 0.0,
            spacing: (5, 10),
        }],
        txs_per_thread: threads_work,
        think: (20, 60),
    }
}

fn run_sched(s: &mut dyn Scheduler, threads: usize, txs: usize, seed: u64) -> RunMetrics {
    let mut w = SyntheticWorkload::new(spec(txs), threads);
    let mut cfg = DriverConfig::paper_machine(threads, seed);
    cfg.costs.async_abort_per_cycle = 0.0;
    run(&mut w, s, &cfg)
}

/// A scheduler that acquires one fixed transaction lock on every abort —
/// exercises Acquire + automatic release at commit.
struct LockOnAbort;

impl Scheduler for LockOnAbort {
    fn name(&self) -> &'static str {
        "lock-on-abort"
    }
    fn on_abort(
        &mut self,
        _t: ThreadId,
        _b: usize,
        _s: XStatus,
        _left: u32,
        _e: &mut SchedEnv<'_>,
    ) -> AbortDecision {
        AbortDecision::Retry {
            gates: vec![Gate::Acquire(LockId::Tx(0))],
        }
    }
}

#[test]
fn acquire_gate_serializes_and_commits_under_lock() {
    let mut s = LockOnAbort;
    let m = run_sched(&mut s, 6, 60, 1);
    assert_eq!(m.commits, 360);
    assert!(
        m.modes.get(TxMode::HtmTxLocks) > 0,
        "some commits should hold the tx lock"
    );
    assert!(!m.truncated);
}

/// A scheduler that multi-CAS-acquires two locks on every abort —
/// exercises AcquireMany in both its HTM fast path and its fallback.
struct MultiLockOnAbort {
    via_htm: bool,
}

impl Scheduler for MultiLockOnAbort {
    fn name(&self) -> &'static str {
        "multi-lock"
    }
    fn on_abort(
        &mut self,
        _t: ThreadId,
        _b: usize,
        _s: XStatus,
        _left: u32,
        _e: &mut SchedEnv<'_>,
    ) -> AbortDecision {
        AbortDecision::Retry {
            gates: vec![Gate::AcquireMany {
                // Deliberately unsorted: the driver must sort canonically.
                locks: vec![LockId::Tx(0), LockId::Core(0), LockId::Tx(0)],
                via_htm: self.via_htm,
            }],
        }
    }
}

#[test]
fn acquire_many_works_with_and_without_htm_fast_path() {
    for via_htm in [false, true] {
        let mut s = MultiLockOnAbort { via_htm };
        let m = run_sched(&mut s, 6, 60, 2);
        assert_eq!(m.commits, 360, "via_htm={via_htm}");
        assert!(
            m.modes.get(TxMode::HtmTxAndCoreLocks) > 0,
            "commits should carry both lock classes (via_htm={via_htm})"
        );
        assert!(!m.truncated);
    }
}

/// A scheduler that releases everything and re-acquires a different lock on
/// each abort — exercises ReleaseHeld mid-gate-list.
struct Churner;

impl Scheduler for Churner {
    fn name(&self) -> &'static str {
        "churner"
    }
    fn on_abort(
        &mut self,
        thread: ThreadId,
        _b: usize,
        _s: XStatus,
        left: u32,
        _e: &mut SchedEnv<'_>,
    ) -> AbortDecision {
        let lock = if left.is_multiple_of(2) {
            LockId::Core(thread % 4)
        } else {
            LockId::Tx(0)
        };
        AbortDecision::Retry {
            gates: vec![
                Gate::ReleaseHeld,
                Gate::AcquireMany {
                    locks: vec![lock],
                    via_htm: false,
                },
            ],
        }
    }
}

#[test]
fn release_held_then_reacquire_never_wedges() {
    let mut s = Churner;
    let m = run_sched(&mut s, 8, 50, 3);
    assert_eq!(m.commits, 400);
    assert!(!m.truncated);
}

/// A scheduler that waits on a lock nobody ever takes (the advisory wait
/// must pass immediately) and on the SGL (exercised under contention).
struct Waiter;

impl Scheduler for Waiter {
    fn name(&self) -> &'static str {
        "waiter"
    }
    fn pre_attempt_gates(
        &mut self,
        _t: ThreadId,
        _b: usize,
        _left: u32,
        _e: &mut SchedEnv<'_>,
    ) -> Vec<Gate> {
        vec![
            Gate::WaitWhileLocked(LockId::Tx(0)),
            Gate::WaitWhileLocked(LockId::Sgl),
        ]
    }
}

#[test]
fn advisory_waits_on_free_locks_cost_nothing() {
    let mut s = Waiter;
    let m = run_sched(&mut s, 4, 50, 4);
    assert_eq!(m.commits, 200);
    assert!(!m.truncated);
}

/// A scheduler that sends every transaction straight to the fall-back.
struct AlwaysSerial;

impl Scheduler for AlwaysSerial {
    fn name(&self) -> &'static str {
        "always-serial"
    }
    fn pre_tx_fallback(&mut self, _t: ThreadId, _b: usize, _e: &mut SchedEnv<'_>) -> bool {
        true
    }
}

#[test]
fn pre_tx_fallback_serializes_everything() {
    let mut s = AlwaysSerial;
    let m = run_sched(&mut s, 4, 40, 5);
    assert_eq!(m.commits, 160);
    assert_eq!(m.modes.get(TxMode::SglFallback), 160);
    assert_eq!(m.htm_attempts, 0, "no hardware attempt should start");
    assert_eq!(m.aborts.total(), 0);
    // Fully serialized execution can never beat sequential.
    assert!(m.speedup() <= 1.05, "speedup {}", m.speedup());
}

/// Patience: a scheduler whose threads wait on a lock held for a very long
/// time by thread 0 must eventually give up the advisory wait and proceed.
struct HogAndWait {
    hogged: bool,
}

impl Scheduler for HogAndWait {
    fn name(&self) -> &'static str {
        "hog-and-wait"
    }
    fn pre_attempt_gates(
        &mut self,
        thread: ThreadId,
        _b: usize,
        _left: u32,
        _e: &mut SchedEnv<'_>,
    ) -> Vec<Gate> {
        if thread == 0 && !self.hogged {
            // Thread 0 takes the lock once and keeps it for its first
            // transaction (released at commit).
            self.hogged = true;
            vec![Gate::Acquire(LockId::Tx(0))]
        } else {
            vec![Gate::WaitWhileLocked(LockId::Tx(0))]
        }
    }
}

#[test]
fn patience_bound_prevents_advisory_wait_wedges() {
    // Use a tiny patience so the test observes the bound directly.
    let mut w = SyntheticWorkload::new(spec(30), 4);
    let mut s = HogAndWait { hogged: false };
    let mut cfg = DriverConfig::paper_machine(4, 6);
    cfg.costs.async_abort_per_cycle = 0.0;
    cfg.wait_patience = 2_000;
    let m = run(&mut w, &mut s, &cfg);
    assert_eq!(m.commits, 120);
    assert!(!m.truncated);
}
