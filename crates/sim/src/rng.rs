//! Seeded, splittable RNG plus the samplers the workload models need.
//!
//! Everything random in the reproduction flows through [`SimRng`] so that a
//! run is a pure function of `(config, seed)`. The paper averages 20
//! wall-clock runs on real hardware; we average over seeds instead
//! (`DESIGN.md` §2).
//!
//! The generator is a self-contained xoshiro256++ (seeded through
//! SplitMix64), so the simulation owns its entire entropy pipeline: no
//! external crate can silently change the stream between releases, which is
//! what the deterministic-replay fixtures in `seer-conformance` rely on.

use crate::Cycles;

/// Deterministic simulation RNG.
///
/// A xoshiro256++ generator with domain helpers: integer ranges, Bernoulli
/// trials, bounded Zipf sampling (used by the STAMP workload models for
/// skewed data-structure access), and derived per-thread streams.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

/// One step of SplitMix64 over `state`, returning the next output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // Expand the seed into the 256-bit state with SplitMix64, the
        // initialization the xoshiro authors recommend: it guarantees a
        // non-zero state and decorrelates adjacent seeds.
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent child stream, e.g. one per simulated thread.
    ///
    /// Mixing the label through SplitMix64 decorrelates the child streams
    /// even for adjacent labels.
    pub fn derive(&self, label: u64) -> Self {
        let mut z = self.seed_fingerprint() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self::new(z ^ (z >> 31))
    }

    fn seed_fingerprint(&self) -> u64 {
        // Clone so fingerprinting does not advance this stream.
        self.clone().next_u64()
    }

    /// Next 64 random bits (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32 random bits (upper half of a 64-bit step).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    /// If `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Lemire's nearly-divisionless bounded sampling: widen, multiply,
        // reject the biased low slice.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }

    /// Uniform cycle count in `[lo, hi]`, a convenience alias used by the
    /// workload trace generators.
    pub fn cycles_between(&mut self, lo: Cycles, hi: Cycles) -> Cycles {
        self.range_inclusive(lo, hi)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Uniform float in `[0, 1)` (53 bits of precision).
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples an index in `[0, n)` from a Zipf distribution with exponent
    /// `theta` via inverse-CDF over precomputed weights in [`ZipfTable`].
    ///
    /// The workload models construct a [`ZipfTable`] once and sample from it
    /// per access, so the O(n) normalization cost is paid only at setup.
    pub fn zipf(&mut self, table: &ZipfTable) -> usize {
        table.sample(self.unit())
    }
}

/// Precomputed cumulative weights for bounded Zipf sampling.
///
/// Element `i` (0-based) has weight `1 / (i + 1)^theta`. `theta = 0` is
/// uniform; larger `theta` concentrates probability on low indices, which
/// the workload models use for hot-spot data structures (e.g. the intruder
/// work-queue head).
#[derive(Debug, Clone)]
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Builds a table over `n` elements with exponent `theta >= 0`.
    ///
    /// # Panics
    /// If `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "ZipfTable over zero elements");
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "invalid Zipf exponent {theta}"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for w in &mut cdf {
            *w /= total;
        }
        // Guard against floating-point round-off at the tail.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the table covers a single element.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Maps a uniform draw `u in [0, 1)` to an index by binary search.
    pub fn sample(&self, u: f64) -> usize {
        debug_assert!((0.0..=1.0).contains(&u));
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_is_deterministic_and_decorrelated() {
        let root = SimRng::new(7);
        let mut c1 = root.derive(0);
        let mut c1b = root.derive(0);
        let mut c2 = root.derive(1);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = SimRng::new(13);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[r.below(8) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    fn unit_is_in_half_open_interval() {
        let mut r = SimRng::new(17);
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u), "u = {u}");
        }
    }

    #[test]
    fn range_inclusive_covers_endpoints() {
        let mut r = SimRng::new(19);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            match r.range_inclusive(5, 7) {
                5 => saw_lo = true,
                7 => saw_hi = true,
                6 => {}
                v => panic!("out of range: {v}"),
            }
        }
        assert!(saw_lo && saw_hi);
        assert_eq!(r.range_inclusive(9, 9), 9);
    }

    #[test]
    fn fill_bytes_varies() {
        let mut r = SimRng::new(23);
        let mut a = [0u8; 13];
        let mut b = [0u8; 13];
        r.fill_bytes(&mut a);
        r.fill_bytes(&mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_rough_frequency() {
        let mut r = SimRng::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn zipf_uniform_when_theta_zero() {
        let table = ZipfTable::new(4, 0.0);
        let mut r = SimRng::new(5);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[r.zipf(&table)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    fn zipf_skews_to_head() {
        let table = ZipfTable::new(100, 1.2);
        let mut r = SimRng::new(5);
        let mut head = 0usize;
        let n = 20_000;
        for _ in 0..n {
            if r.zipf(&table) < 10 {
                head += 1;
            }
        }
        // With theta=1.2 the first 10 of 100 elements carry well over half
        // of the probability mass.
        assert!(head > n / 2, "head draws = {head}");
    }

    #[test]
    fn zipf_sample_boundaries() {
        let table = ZipfTable::new(3, 1.0);
        assert_eq!(table.sample(0.0), 0);
        assert!(table.sample(0.999_999) < 3);
        assert_eq!(table.len(), 3);
    }
}
