//! A log₂-bucketed histogram for cycle quantities (wait times, hold
//! times). Constant memory, O(1) record, approximate quantiles with a
//! factor-of-two resolution — plenty for the distribution questions the
//! metrics answer ("are waits microseconds or milliseconds?").

use crate::Cycles;

/// Log₂-bucketed histogram of cycle values.
///
/// Value `v` lands in bucket `⌊log₂(v)⌋ + 1` (bucket 0 holds zeros), so
/// bucket `i > 0` covers `[2^(i-1), 2^i)`.
///
/// ```
/// use seer_sim::CycleHistogram;
///
/// let mut h = CycleHistogram::new();
/// for v in [10, 12, 14, 5_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.quantile(0.5) < 16);      // median bucket covers 8..16
/// assert!(h.quantile(0.99) >= 4_096); // the outlier's bucket
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleHistogram {
    buckets: [u64; 65],
    count: u64,
    total: Cycles,
    max: Cycles,
}

impl Default for CycleHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl CycleHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; 65],
            count: 0,
            total: 0,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: Cycles) {
        let idx = if v == 0 { 0 } else { (64 - v.leading_zeros()) as usize };
        self.buckets[idx] += 1;
        self.count += 1;
        // Saturate: a sum pinned at u64::MAX beats a debug-mode panic when
        // extreme values land in the top bucket.
        self.total = self.total.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn total(&self) -> Cycles {
        self.total
    }

    /// Largest recorded value.
    pub fn max(&self) -> Cycles {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`0 < q ≤ 1`): the upper bound of the
    /// bucket containing the `⌈q·count⌉`-th smallest value. Returns 0 for
    /// an empty histogram.
    pub fn quantile(&self, q: f64) -> Cycles {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i == 0 {
                    0
                } else {
                    ((1u128 << i) - 1).min(u128::from(u64::MAX)) as Cycles
                };
            }
        }
        self.max
    }

    /// The raw log₂ buckets (for lossless persistence).
    pub fn buckets(&self) -> &[u64; 65] {
        &self.buckets
    }

    /// Rebuilds a histogram from its raw parts — the inverse of
    /// [`CycleHistogram::buckets`]/[`CycleHistogram::count`]/
    /// [`CycleHistogram::total`]/[`CycleHistogram::max`]. `count`, `total`
    /// and `max` are carried rather than derived: the log₂ buckets do not
    /// retain the exact values that produced them.
    pub fn from_raw(buckets: [u64; 65], count: u64, total: Cycles, max: Cycles) -> Self {
        Self {
            buckets,
            count,
            total,
            max,
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &CycleHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.total = self.total.saturating_add(other.total);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = CycleHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn records_and_summarizes() {
        let mut h = CycleHistogram::new();
        for v in [0u64, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.total(), 1106);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 1106.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_bracket_values() {
        let mut h = CycleHistogram::new();
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        // Median bucket covers 10 (range [8,16) -> upper bound 15).
        assert!(h.quantile(0.5) < 16);
        // p99 must land in the tail bucket.
        assert!(h.quantile(0.99) >= 100_000 / 2);
        assert!(h.quantile(1.0) >= 100_000 / 2);
    }

    #[test]
    fn zero_bucket_is_exact() {
        let mut h = CycleHistogram::new();
        h.record(0);
        h.record(0);
        h.record(8);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CycleHistogram::new();
        a.record(5);
        let mut b = CycleHistogram::new();
        b.record(50);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.total(), 555);
        assert_eq!(a.max(), 500);
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let mut h = CycleHistogram::new();
        h.record(u64::MAX / 2);
        assert!(h.quantile(0.5) >= u64::MAX / 4);
    }

    #[test]
    fn empty_histogram_answers_every_quantile_with_zero() {
        let h = CycleHistogram::new();
        for q in [0.0, 0.001, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0, "empty histogram, q = {q}");
        }
        // Out-of-range requests clamp rather than panic or index astray.
        assert_eq!(h.quantile(-1.0), 0);
        assert_eq!(h.quantile(2.0), 0);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn single_sample_owns_every_quantile() {
        let mut h = CycleHistogram::new();
        h.record(1000); // bucket [512, 1024) -> upper bound 1023
        for q in [0.0, 0.001, 0.5, 1.0] {
            assert_eq!(h.quantile(q), 1023, "single sample, q = {q}");
        }
        assert_eq!(h.max(), 1000);
        assert_eq!(h.mean(), 1000.0);
    }

    #[test]
    fn saturating_top_bucket_clamps_to_u64_max() {
        // u64::MAX lands in bucket 64, whose nominal upper bound 2^64 - 1
        // must saturate to u64::MAX instead of wrapping.
        let mut h = CycleHistogram::new();
        h.record(u64::MAX);
        assert_eq!(h.quantile(0.5), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        // A quantile below the top bucket is unaffected by the extreme,
        // and the running total saturates instead of overflowing.
        h.record(1);
        h.record(1);
        h.record(1);
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.total(), u64::MAX);
    }
}
