//! Simulated locks with FIFO waiter queues and occupancy statistics.
//!
//! A [`SimLock`] models a spin/queue lock of the simulated program. It never
//! blocks the host: the runtime driver calls [`SimLock::try_acquire`], and
//! on failure parks the simulated thread by registering it as a waiter;
//! [`SimLock::release`] hands back the set of threads the driver must wake
//! (at the release time plus a hand-off latency decided by the cost model).
//!
//! Two waiting disciplines are needed by the Seer algorithms:
//!
//! * **acquirers** — threads that want ownership (e.g. `acquire-lock(sgl)`
//!   on the fall-back path, Alg. 1 line 20). Handed the lock FIFO, one at a
//!   time.
//! * **watchers** — threads that merely wait for the lock to be free
//!   without taking it (the `wait while is-locked(...)` loops of
//!   `WAIT-Seer-LOCKS`, Alg. 4 lines 55–58). All watchers wake on release.

use std::collections::VecDeque;

use crate::{Cycles, ThreadId};

/// Statistics accumulated by a simulated lock over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Number of successful acquisitions.
    pub acquisitions: u64,
    /// Number of failed `try_acquire` calls (contended attempts).
    pub contended: u64,
    /// Total cycles the lock spent held.
    pub held_cycles: Cycles,
    /// Maximum number of simultaneous queued acquirers observed.
    pub max_queue: usize,
}

/// A simulated lock. See the module docs for the waiting disciplines.
#[derive(Debug, Clone)]
pub struct SimLock {
    owner: Option<ThreadId>,
    acquired_at: Cycles,
    acquirers: VecDeque<ThreadId>,
    watchers: Vec<ThreadId>,
    stats: LockStats,
}

impl Default for SimLock {
    fn default() -> Self {
        Self::new()
    }
}

/// Threads to wake after a release. The lock becomes observably *free*:
/// queued acquirers are woken in FIFO order to re-contend (the first to
/// retry wins, so the queue order is preserved under the driver's ordered
/// wake-ups), and watchers are woken to re-check their conditions. This
/// models a real test-and-set lock, where a release is followed by a
/// visible free window rather than a direct hand-off — a window the
/// `WAIT-Seer-LOCKS` loops depend on to make progress.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReleaseWake {
    /// Parked acquirers, in FIFO order; they must retry `try_acquire`.
    pub acquirers: Vec<ThreadId>,
    /// Threads that were watching for the lock to become free.
    pub watchers: Vec<ThreadId>,
}

impl SimLock {
    /// Creates a free lock.
    pub fn new() -> Self {
        Self {
            owner: None,
            acquired_at: 0,
            acquirers: VecDeque::new(),
            watchers: Vec::new(),
            stats: LockStats::default(),
        }
    }

    /// Current owner, if held.
    pub fn owner(&self) -> Option<ThreadId> {
        self.owner
    }

    /// True when some thread holds the lock.
    pub fn is_locked(&self) -> bool {
        self.owner.is_some()
    }

    /// True when `thread` holds the lock.
    pub fn is_held_by(&self, thread: ThreadId) -> bool {
        self.owner == Some(thread)
    }

    /// Attempts to take the lock for `thread` at time `now`.
    ///
    /// Returns `true` on success. On failure the caller should either give
    /// up or park the thread via [`SimLock::enqueue_acquirer`] /
    /// [`SimLock::add_watcher`].
    ///
    /// # Panics
    /// If `thread` already owns the lock (the simulated locks are not
    /// reentrant; the Seer algorithms guard against re-acquisition with the
    /// `acquiredTxLocks` / `acquiredCoreLock` flags).
    pub fn try_acquire(&mut self, thread: ThreadId, now: Cycles) -> bool {
        assert!(
            self.owner != Some(thread),
            "thread {thread} re-acquiring a lock it already holds"
        );
        if self.owner.is_none() {
            self.owner = Some(thread);
            self.acquired_at = now;
            self.stats.acquisitions += 1;
            true
        } else {
            self.stats.contended += 1;
            false
        }
    }

    /// Parks `thread` in the FIFO acquirer queue; idempotent (a thread
    /// woken by an unrelated event may retry and re-park while still
    /// queued).
    ///
    /// The thread is woken to re-contend by a future [`SimLock::release`].
    pub fn enqueue_acquirer(&mut self, thread: ThreadId) {
        if self.acquirers.contains(&thread) {
            return;
        }
        self.acquirers.push_back(thread);
        self.stats.max_queue = self.stats.max_queue.max(self.acquirers.len());
    }

    /// Registers `thread` to be woken (without ownership) when the lock is
    /// next released. Idempotent.
    pub fn add_watcher(&mut self, thread: ThreadId) {
        if !self.watchers.contains(&thread) {
            self.watchers.push(thread);
        }
    }

    /// Removes `thread` from the acquirer queue (e.g. it gave up waiting).
    pub fn cancel_acquirer(&mut self, thread: ThreadId) {
        self.acquirers.retain(|&t| t != thread);
    }

    /// Releases the lock held by `thread` at time `now`.
    ///
    /// The lock becomes free; all queued acquirers are drained (in FIFO
    /// order) and all watchers are returned — the caller wakes them so the
    /// acquirers can re-contend and the watchers can re-check.
    ///
    /// # Panics
    /// If `thread` does not own the lock.
    pub fn release(&mut self, thread: ThreadId, now: Cycles) -> ReleaseWake {
        let mut wake = ReleaseWake::default();
        self.release_into(thread, now, &mut wake.acquirers, &mut wake.watchers);
        wake
    }

    /// [`SimLock::release`] draining the woken threads into caller-provided
    /// vectors (cleared first) — the lock keeps its queue buffers and the
    /// caller reuses its own, so a release allocates nothing.
    ///
    /// # Panics
    /// If `thread` does not own the lock.
    pub fn release_into(
        &mut self,
        thread: ThreadId,
        now: Cycles,
        acquirers: &mut Vec<ThreadId>,
        watchers: &mut Vec<ThreadId>,
    ) {
        assert!(
            self.owner == Some(thread),
            "thread {thread} releasing a lock owned by {:?}",
            self.owner
        );
        self.stats.held_cycles += now.saturating_sub(self.acquired_at);
        self.owner = None;
        acquirers.clear();
        acquirers.extend(self.acquirers.drain(..));
        watchers.clear();
        watchers.append(&mut self.watchers);
    }

    /// Number of queued acquirers.
    pub fn queue_len(&self) -> usize {
        self.acquirers.len()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> LockStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_roundtrip() {
        let mut l = SimLock::new();
        assert!(!l.is_locked());
        assert!(l.try_acquire(1, 100));
        assert!(l.is_locked());
        assert!(l.is_held_by(1));
        assert!(!l.try_acquire(2, 110));
        let wake = l.release(1, 200);
        assert_eq!(wake, ReleaseWake::default());
        assert!(!l.is_locked());
        assert_eq!(l.stats().acquisitions, 1);
        assert_eq!(l.stats().contended, 1);
        assert_eq!(l.stats().held_cycles, 100);
    }

    #[test]
    fn release_drains_acquirers_in_fifo_order() {
        let mut l = SimLock::new();
        assert!(l.try_acquire(0, 0));
        assert!(!l.try_acquire(1, 1));
        l.enqueue_acquirer(1);
        assert!(!l.try_acquire(2, 2));
        l.enqueue_acquirer(2);
        let wake = l.release(0, 10);
        assert_eq!(wake.acquirers, vec![1, 2]);
        // The lock is observably free until someone re-acquires.
        assert!(!l.is_locked());
        assert!(l.try_acquire(1, 11));
        assert!(l.is_held_by(1));
        assert_eq!(l.stats().max_queue, 2);
    }

    #[test]
    fn watchers_drain_on_release() {
        let mut l = SimLock::new();
        assert!(l.try_acquire(0, 0));
        l.add_watcher(5);
        l.add_watcher(6);
        l.add_watcher(5); // idempotent
        let wake = l.release(0, 10);
        assert!(wake.acquirers.is_empty());
        assert_eq!(wake.watchers, vec![5, 6]);
        // Watchers do not persist past a release.
        assert!(l.try_acquire(1, 11));
        assert_eq!(l.release(1, 12).watchers, Vec::<ThreadId>::new());
    }

    #[test]
    fn cancel_acquirer_removes_from_queue() {
        let mut l = SimLock::new();
        assert!(l.try_acquire(0, 0));
        l.enqueue_acquirer(1);
        l.enqueue_acquirer(2);
        l.cancel_acquirer(1);
        let wake = l.release(0, 5);
        assert_eq!(wake.acquirers, vec![2]);
    }

    #[test]
    #[should_panic(expected = "re-acquiring")]
    fn reacquire_panics() {
        let mut l = SimLock::new();
        assert!(l.try_acquire(3, 0));
        let _ = l.try_acquire(3, 1);
    }

    #[test]
    #[should_panic(expected = "releasing a lock owned by")]
    fn foreign_release_panics() {
        let mut l = SimLock::new();
        assert!(l.try_acquire(3, 0));
        let _ = l.release(4, 1);
    }
}
