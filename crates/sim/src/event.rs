//! Stable, deterministic event queue.
//!
//! The queue orders events by `(time, sequence)` where `sequence` is a
//! monotonically increasing insertion counter. Two events scheduled for the
//! same cycle therefore fire in the order they were scheduled, which makes
//! every simulation a total order of events — a property the integration
//! tests rely on to assert bit-identical metrics across repeated runs with
//! the same seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Cycles;

/// A single scheduled event: payload plus its firing time and tie-break key.
#[derive(Debug, Clone)]
pub struct EventEntry<E> {
    /// Virtual time at which the event fires.
    pub time: Cycles,
    /// Insertion sequence number; the tie-break for simultaneous events.
    pub seq: u64,
    /// The event payload, interpreted by the simulation driver.
    pub payload: E,
}

impl<E> PartialEq for EventEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for EventEntry<E> {}

impl<E> PartialOrd for EventEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for EventEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic priority queue of timestamped events.
///
/// ```
/// use seer_sim::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(10, "b");
/// q.push(5, "a");
/// q.push(10, "c"); // same time as "b", inserted later -> fires after "b"
/// assert_eq!(q.pop().unwrap().1, "a");
/// assert_eq!(q.pop().unwrap().1, "b");
/// assert_eq!(q.pop().unwrap().1, "c");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<EventEntry<E>>,
    seq: u64,
    /// Time of the most recently popped event; pushes earlier than this are
    /// causality violations and panic in debug builds.
    watermark: Cycles,
    /// Rolling FNV-1a digest of every popped `(time, seq)` pair: a compact
    /// fingerprint of the entire event schedule in execution order. Two
    /// runs pop the same events in the same order if and only if their
    /// trace hashes agree, which is what the deterministic-replay fixtures
    /// in `seer-conformance` compare.
    trace_hash: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            watermark: 0,
            trace_hash: 0xcbf2_9ce4_8422_2325, // FNV-1a offset basis
        }
    }

    /// Schedules `payload` to fire at `time`.
    ///
    /// Scheduling an event before the current watermark (the time of the
    /// last popped event) would break causality; debug builds and
    /// `check-invariants` builds assert against it, plain release builds
    /// clamp to the watermark.
    pub fn push(&mut self, time: Cycles, payload: E) {
        #[cfg(feature = "check-invariants")]
        assert!(
            time >= self.watermark,
            "causality violation: event scheduled at {} before watermark {}",
            time,
            self.watermark
        );
        debug_assert!(
            time >= self.watermark,
            "event scheduled at {} before watermark {}",
            time,
            self.watermark
        );
        let time = time.max(self.watermark);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(EventEntry { time, seq, payload });
    }

    /// Removes and returns the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        let entry = self.heap.pop()?;
        self.watermark = entry.time;
        // Fold the popped (time, seq) pair into the trace digest. `seq`
        // captures scheduling order, so the digest distinguishes even
        // same-time reorderings.
        for word in [entry.time, entry.seq] {
            for byte in word.to_le_bytes() {
                self.trace_hash ^= u64::from(byte);
                self.trace_hash = self.trace_hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        Some((entry.time, entry.payload))
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycles> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Time of the most recently popped event.
    pub fn now(&self) -> Cycles {
        self.watermark
    }

    /// Digest of every event popped so far, in execution order.
    ///
    /// Two queues that popped identical `(time, seq)` schedules report the
    /// same hash; any divergence — an extra event, a missing event, a
    /// different time, a different tie-break order — changes it.
    pub fn trace_hash(&self) -> u64 {
        self.trace_hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, 3);
        q.push(10, 1);
        q.push(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(42, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((42, i)));
        }
    }

    #[test]
    fn watermark_tracks_pops() {
        let mut q = EventQueue::new();
        q.push(5, ());
        q.push(9, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 5);
        q.pop();
        assert_eq!(q.now(), 9);
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(7, "x");
        q.push(3, "y");
        assert_eq!(q.peek_time(), Some(3));
        q.pop();
        assert_eq!(q.peek_time(), Some(7));
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, ());
        q.push(2, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[cfg(not(any(debug_assertions, feature = "check-invariants")))]
    #[test]
    fn release_mode_clamps_to_watermark() {
        let mut q = EventQueue::new();
        q.push(10, "a");
        q.pop();
        q.push(5, "late"); // clamped to 10
        assert_eq!(q.pop(), Some((10, "late")));
    }

    #[test]
    fn trace_hash_tracks_the_popped_schedule() {
        let schedule = |times: &[Cycles]| {
            let mut q = EventQueue::new();
            for &t in times {
                q.push(t, ());
            }
            while q.pop().is_some() {}
            q.trace_hash()
        };
        // Identical schedules agree.
        assert_eq!(schedule(&[5, 1, 9]), schedule(&[5, 1, 9]));
        // Insertion order matters even for equal times (different seq).
        assert_ne!(schedule(&[5, 1, 9]), schedule(&[1, 5, 9]));
        // Different times differ.
        assert_ne!(schedule(&[5, 1, 9]), schedule(&[5, 1, 10]));
        // Unpopped events don't contribute.
        let mut q = EventQueue::new();
        let empty_hash = q.trace_hash();
        q.push(3, ());
        assert_eq!(q.trace_hash(), empty_hash);
        q.pop();
        assert_ne!(q.trace_hash(), empty_hash);
    }
}
