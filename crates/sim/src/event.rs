//! Stable, deterministic event queue.
//!
//! The queue orders events by `(time, sequence)` where `sequence` is a
//! monotonically increasing insertion counter. Two events scheduled for the
//! same cycle therefore fire in the order they were scheduled, which makes
//! every simulation a total order of events — a property the integration
//! tests rely on to assert bit-identical metrics across repeated runs with
//! the same seed.
//!
//! # Implementation: a calendar queue
//!
//! Internally this is a bucketed *calendar queue* (Brown 1988) tuned to the
//! driver's cycle-delta distribution rather than a binary heap: virtual
//! time is divided into [`DAY`]-cycle "days", and each of the [`NB`] wheel
//! buckets holds every pending event of one day within the current
//! [`NB`]`×`[`DAY`]-cycle window. A push appends to its day's bucket in
//! O(1); the bucket is sorted only when the popping frontier first reaches
//! it, after which pops are O(1) `Vec::pop` calls from the sorted tail.
//! Events beyond the window sit in an overflow list that is migrated into
//! the wheel when the window advances past the wheel's last day. Bucket
//! storage is retained across drains, so after a brief warm-up a
//! simulation pushes and pops without allocating.
//!
//! The pop order is *bit-identical* to the old `BinaryHeap` implementation:
//! equal-time events share a day (hence a bucket), where the full
//! `(time, seq)` key — not just the time — decides both the lazy sort and
//! the sorted-insert path, so the FIFO tie-break and therefore every
//! committed golden trace hash is preserved exactly. `seer bench` measures
//! this implementation against a faithful `BinaryHeap` reference
//! (`seer_bench::harness::ReferenceHeapQueue`) and CI gates the ratio.

use crate::Cycles;

/// Log2 of the cycles per calendar day (day = 4096 cycles): comfortably
/// above the typical event delta (transaction bodies and waits are tens to
/// thousands of cycles), so most pushes land in the current or a nearby
/// bucket.
const DAY_SHIFT: u32 = 12;

/// Cycles per calendar day.
const DAY: Cycles = 1 << DAY_SHIFT;

/// Buckets on the wheel (one per day; power of two so the day→bucket map
/// is a mask). The window spans `NB * DAY` = 2²⁰ cycles — wider than the
/// driver's longest single event delta, so overflow migration is rare.
const NB: usize = 256;

/// Words in the bucket-occupancy bitmap.
const WORDS: usize = NB / 64;

const fn day(time: Cycles) -> u64 {
    time / DAY
}

/// A single scheduled event: payload plus its firing time and tie-break key.
#[derive(Debug, Clone)]
pub struct EventEntry<E> {
    /// Virtual time at which the event fires.
    pub time: Cycles,
    /// Insertion sequence number; the tie-break for simultaneous events.
    pub seq: u64,
    /// The event payload, interpreted by the simulation driver.
    pub payload: E,
}

impl<E> PartialEq for EventEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for EventEntry<E> {}

/// Deterministic priority queue of timestamped events.
///
/// ```
/// use seer_sim::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(10, "b");
/// q.push(5, "a");
/// q.push(10, "c"); // same time as "b", inserted later -> fires after "b"
/// assert_eq!(q.pop().unwrap().1, "a");
/// assert_eq!(q.pop().unwrap().1, "b");
/// assert_eq!(q.pop().unwrap().1, "c");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// One bucket per day of the current window; bucket `d % NB` holds the
    /// pending events of day `d` for `d` in `[wheel_base, wheel_base + NB)`.
    /// Only the bucket named by `cur` is sorted (descending by
    /// `(time, seq)`, so the minimum pops from the tail); the rest are in
    /// insertion order until the frontier reaches them. A fixed-size boxed
    /// array (not a `Vec`) so masked indexing needs no bounds checks.
    wheel: Box<[Vec<EventEntry<E>>; NB]>,
    /// Bit `i` set iff `wheel[i]` is non-empty.
    occupied: [u64; WORDS],
    /// First day covered by the wheel. Never exceeds `day(watermark)`
    /// outside `pop`, so every push lands in the window or in overflow.
    wheel_base: u64,
    /// Bucket currently being drained, if any: non-empty, and sorted when
    /// `cur_sorted` is set.
    cur: Option<usize>,
    /// Drain discipline of the `cur` bucket. Large buckets are sorted once
    /// (descending, tail pops); small ones are drained by selection scan —
    /// the scan's handful of compares hides under the trace-hash fold's
    /// serial multiply chain, where an up-front sort cannot.
    cur_sorted: bool,
    /// Events whose day lies beyond the window; migrated onto the wheel
    /// when everything nearer has been popped.
    overflow: Vec<EventEntry<E>>,
    /// Minimum day present in `overflow` (`u64::MAX` when it is empty).
    overflow_min_day: u64,
    /// Pending events across wheel and overflow.
    len: usize,
    seq: u64,
    /// Time of the most recently popped event; pushes earlier than this are
    /// causality violations and panic in debug builds.
    watermark: Cycles,
    /// Rolling FNV-1a digest of every popped `(time, seq)` pair: a compact
    /// fingerprint of the entire event schedule in execution order. Two
    /// runs pop the same events in the same order if and only if their
    /// trace hashes agree, which is what the deterministic-replay fixtures
    /// in `seer-conformance` compare.
    trace_hash: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            wheel: Box::new([const { Vec::new() }; NB]),
            occupied: [0; WORDS],
            wheel_base: 0,
            cur: None,
            cur_sorted: false,
            overflow: Vec::new(),
            overflow_min_day: u64::MAX,
            len: 0,
            seq: 0,
            watermark: 0,
            trace_hash: 0xcbf2_9ce4_8422_2325, // FNV-1a offset basis
        }
    }

    /// Schedules `payload` to fire at `time`.
    ///
    /// Scheduling an event before the current watermark (the time of the
    /// last popped event) would break causality; debug builds and
    /// `check-invariants` builds assert against it, plain release builds
    /// clamp to the watermark.
    pub fn push(&mut self, time: Cycles, payload: E) {
        #[cfg(feature = "check-invariants")]
        assert!(
            time >= self.watermark,
            "causality violation: event scheduled at {} before watermark {}",
            time,
            self.watermark
        );
        debug_assert!(
            time >= self.watermark,
            "event scheduled at {} before watermark {}",
            time,
            self.watermark
        );
        let time = time.max(self.watermark);
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        // First event after the queue ran dry: nothing is pending, so no
        // bucket aliasing can occur and the window may snap forward to the
        // frontier. Without this, a long empty stretch (virtual time far
        // outstripping `wheel_base`) would shunt every later push through
        // the overflow list and double-handle it on migration.
        if self.len == 1 {
            let frontier = day(self.watermark);
            if frontier > self.wheel_base {
                self.wheel_base = frontier;
            }
        }
        let entry = EventEntry { time, seq, payload };

        let d = day(time);
        if d >= self.wheel_base + NB as u64 {
            self.overflow_min_day = self.overflow_min_day.min(d);
            self.overflow.push(entry);
            return;
        }
        let idx = (d as usize) & (NB - 1);
        if self.cur == Some(idx) && self.cur_sorted {
            // The frontier is inside this very bucket (same day: within the
            // window the day→bucket map is injective), which is already
            // sorted descending — insert at the position that keeps it so.
            // A new entry carries the largest seq yet, so among equal times
            // it lands nearest the front of the Vec, i.e. pops last: FIFO.
            // (A selection-drained `cur` bucket is unsorted; a plain append
            // is correct there, like any other bucket.)
            let bucket = &mut self.wheel[idx];
            let pos = bucket.partition_point(|e| (e.time, e.seq) > (time, seq));
            bucket.insert(pos, entry);
        } else {
            self.wheel[idx].push(entry);
            self.occupied[idx >> 6] |= 1 << (idx & 63);
        }
    }

    /// Removes and returns the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        if self.len == 0 {
            return None;
        }
        loop {
            if let Some(b) = self.cur {
                let b = b & (NB - 1); // teach the optimizer b is in range
                let entry = if self.cur_sorted {
                    self.wheel[b].pop().expect("cur bucket is never empty")
                } else {
                    // Selection drain: scan the (small, unsorted) bucket
                    // for the minimal `(time, seq)` key. The key is unique,
                    // so this is exactly the order a sort would produce.
                    let bucket = &mut self.wheel[b];
                    let mut min = 0;
                    for i in 1..bucket.len() {
                        if (bucket[i].time, bucket[i].seq) < (bucket[min].time, bucket[min].seq) {
                            min = i;
                        }
                    }
                    bucket.swap_remove(min)
                };
                if self.wheel[b].is_empty() {
                    self.occupied[b >> 6] &= !(1 << (b & 63));
                    self.cur = None;
                }
                self.len -= 1;
                debug_assert!(entry.time >= self.watermark);
                self.watermark = entry.time;
                // Fold the popped (time, seq) pair into the trace digest.
                // `seq` captures scheduling order, so the digest
                // distinguishes even same-time reorderings.
                for word in [entry.time, entry.seq] {
                    for byte in word.to_le_bytes() {
                        self.trace_hash ^= u64::from(byte);
                        self.trace_hash = self.trace_hash.wrapping_mul(0x0000_0100_0000_01B3);
                    }
                }
                return Some((entry.time, entry.payload));
            }
            if let Some(idx) = self.first_occupied() {
                // The frontier reached a new bucket. Buckets are typically
                // a handful of events: those drain by selection scan (see
                // `cur_sorted`), whose per-pop compares overlap with the
                // trace-hash fold instead of paying a sort's up-front
                // spike. Genuinely large buckets are sorted once,
                // descending by the full (time, seq) key, so the minimum
                // sits at the tail and every later pop is O(1). The key is
                // unique (seq is), so both disciplines produce the exact
                // order the old binary heap did.
                let bucket = &mut self.wheel[idx & (NB - 1)];
                if bucket.len() <= 16 {
                    self.cur_sorted = false;
                } else {
                    bucket.sort_unstable_by_key(|e| std::cmp::Reverse((e.time, e.seq)));
                    self.cur_sorted = true;
                }
                self.cur = Some(idx);
                continue;
            }
            // Wheel exhausted: advance the window to the nearest overflow
            // day and migrate everything that now fits.
            debug_assert!(!self.overflow.is_empty(), "len > 0 but no events anywhere");
            self.migrate_overflow();
        }
    }

    /// Advances `wheel_base` to the nearest overflow day and moves every
    /// overflow event inside the new window onto the wheel. Only called
    /// with an empty wheel, so bucket aliasing cannot mix days.
    fn migrate_overflow(&mut self) {
        self.wheel_base = self.overflow_min_day;
        let horizon = self.wheel_base + NB as u64;
        let mut next_min = u64::MAX;
        let mut i = 0;
        while i < self.overflow.len() {
            let d = day(self.overflow[i].time);
            if d < horizon {
                let entry = self.overflow.swap_remove(i);
                let idx = (d as usize) & (NB - 1);
                self.wheel[idx].push(entry);
                self.occupied[idx >> 6] |= 1 << (idx & 63);
            } else {
                next_min = next_min.min(d);
                i += 1;
            }
        }
        self.overflow_min_day = next_min;
    }

    /// Index of the first non-empty bucket at or after the popping
    /// frontier, scanning the occupancy bitmap cyclically. Buckets for
    /// days before the frontier are empty (their events already popped),
    /// so the first hit is the minimal pending day.
    fn first_occupied(&self) -> Option<usize> {
        let start_day = day(self.watermark).max(self.wheel_base);
        let start = (start_day as usize) & (NB - 1);
        let (sw, sb) = (start >> 6, start & 63);
        let w = self.occupied[sw] & (!0u64 << sb);
        if w != 0 {
            return Some((sw << 6) + w.trailing_zeros() as usize);
        }
        for i in 1..=WORDS {
            let wi = (sw + i) & (WORDS - 1);
            let mut w = self.occupied[wi];
            if i == WORDS {
                // Back at the start word: only the bits below the start
                // position remain unexamined.
                w &= !(!0u64 << sb);
            }
            if w != 0 {
                return Some((wi << 6) + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycles> {
        if let Some(b) = self.cur {
            return self.wheel[b].last().map(|e| e.time);
        }
        if let Some(idx) = self.first_occupied() {
            // Not yet sorted; a linear scan of one day's bucket. Wheel
            // events always precede overflow events (their days are all
            // smaller), so this is the global minimum.
            return self.wheel[idx].iter().map(|e| e.time).min();
        }
        self.overflow.iter().map(|e| e.time).min()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Discards every pending event without firing it.
    ///
    /// The queue's causal identity survives: the watermark, the insertion
    /// sequence counter and the trace digest all keep their values, so a
    /// cleared queue refuses (debug) or clamps (release) pre-watermark
    /// pushes exactly like a drained one, and its `trace_hash` still
    /// fingerprints everything popped *before* the clear. Discarded events
    /// never contribute to the digest — only popped ones do. Bucket
    /// storage is retained, so clearing does not give back the warm-up
    /// allocations.
    pub fn clear(&mut self) {
        for bucket in self.wheel.iter_mut() {
            bucket.clear();
        }
        self.occupied = [0; WORDS];
        self.cur = None;
        self.overflow.clear();
        self.overflow_min_day = u64::MAX;
        self.len = 0;
    }

    /// Time of the most recently popped event.
    pub fn now(&self) -> Cycles {
        self.watermark
    }

    /// Digest of every event popped so far, in execution order.
    ///
    /// Two queues that popped identical `(time, seq)` schedules report the
    /// same hash; any divergence — an extra event, a missing event, a
    /// different time, a different tie-break order — changes it.
    pub fn trace_hash(&self) -> u64 {
        self.trace_hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, 3);
        q.push(10, 1);
        q.push(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(42, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((42, i)));
        }
    }

    #[test]
    fn ties_break_by_insertion_order_across_the_sort_frontier() {
        // Half the equal-time events are pushed before the first pop (and
        // get lazily sorted), half after (and take the sorted-insert
        // path); the FIFO order must hold across both.
        let mut q = EventQueue::new();
        q.push(1, -1);
        for i in 0..50 {
            q.push(42, i);
        }
        assert_eq!(q.pop(), Some((1, -1)));
        for i in 50..100 {
            q.push(42, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((42, i)));
        }
    }

    #[test]
    fn watermark_tracks_pops() {
        let mut q = EventQueue::new();
        q.push(5, ());
        q.push(9, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 5);
        q.pop();
        assert_eq!(q.now(), 9);
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(7, "x");
        q.push(3, "y");
        assert_eq!(q.peek_time(), Some(3));
        q.pop();
        assert_eq!(q.peek_time(), Some(7));
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, ());
        q.push(2, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn events_beyond_the_window_overflow_and_migrate_back() {
        // Days far outside the NB-day window park in overflow; they must
        // still pop in exact (time, seq) order once the window advances,
        // including several migrations in sequence.
        let mut q = EventQueue::new();
        let window = NB as Cycles * DAY;
        let times = [
            0,
            DAY - 1,
            window - 1,        // last covered day
            window,            // first overflow day
            window + DAY,      // second overflow day
            3 * window + 17,   // needs a second migration
            7 * window + 4096, // and a third
        ];
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        for (i, &t) in times.iter().enumerate() {
            assert_eq!(q.pop(), Some((t, i)));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_far_past_the_first_window() {
        // A long-running simulation shape: the frontier marches far past
        // the initial window while pushes trail just ahead of it.
        let mut q = EventQueue::new();
        let mut expect = Vec::new();
        q.push(0, 0u64);
        let mut next = 1u64;
        for _ in 0..4_000 {
            let (t, _) = q.pop().expect("queue should not run dry");
            expect.push(t);
            // Two successors: one near (same or next day), one far.
            q.push(t + 1_500, next);
            next += 1;
            if next.is_multiple_of(7) {
                q.push(t + 3 * NB as Cycles * DAY, next);
                next += 1;
            }
            while q.len() > 8 {
                let (t, _) = q.pop().unwrap();
                expect.push(t);
            }
        }
        // Pops must have been non-decreasing in time throughout.
        assert!(expect.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn clear_discards_pending_events_but_keeps_identity() {
        let mut q = EventQueue::new();
        q.push(5, "a");
        q.push(10, "b");
        assert_eq!(q.pop(), Some((5, "a")));
        let hash_before = q.trace_hash();

        q.push(2 * NB as Cycles * DAY, "overflowed");
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
        // Discarded events never reach the digest; the watermark (and the
        // causality clamp that rides on it) survives the clear.
        assert_eq!(q.trace_hash(), hash_before);
        assert_eq!(q.now(), 5);

        // The queue drains normally again after a clear.
        q.push(7, "c");
        q.push(7, "d");
        assert_eq!(q.pop(), Some((7, "c")));
        assert_eq!(q.pop(), Some((7, "d")));
        assert_eq!(q.pop(), None);
        assert_ne!(q.trace_hash(), hash_before);
    }

    #[cfg(not(any(debug_assertions, feature = "check-invariants")))]
    #[test]
    fn release_mode_clamps_to_watermark() {
        let mut q = EventQueue::new();
        q.push(10, "a");
        q.pop();
        q.push(5, "late"); // clamped to 10
        assert_eq!(q.pop(), Some((10, "late")));
    }

    #[test]
    fn trace_hash_tracks_the_popped_schedule() {
        let schedule = |times: &[Cycles]| {
            let mut q = EventQueue::new();
            for &t in times {
                q.push(t, ());
            }
            while q.pop().is_some() {}
            q.trace_hash()
        };
        // Identical schedules agree.
        assert_eq!(schedule(&[5, 1, 9]), schedule(&[5, 1, 9]));
        // Insertion order matters even for equal times (different seq).
        assert_ne!(schedule(&[5, 1, 9]), schedule(&[1, 5, 9]));
        // Different times differ.
        assert_ne!(schedule(&[5, 1, 9]), schedule(&[5, 1, 10]));
        // Unpopped events don't contribute.
        let mut q = EventQueue::new();
        let empty_hash = q.trace_hash();
        q.push(3, ());
        assert_eq!(q.trace_hash(), empty_hash);
        q.pop();
        assert_ne!(q.trace_hash(), empty_hash);
    }
}
