//! Simulated machine topology: physical cores and SMT (hyper-thread) layout.
//!
//! The paper's testbed is a Haswell Xeon E3-1275 with 4 physical cores, each
//! running up to 2 hardware threads, for 8 logical CPUs. Linux (and the
//! paper's thread-pinning) enumerates logical CPUs so that CPUs `0..P` land
//! on distinct physical cores and CPUs `P..2P` are their SMT siblings; we
//! reproduce that enumeration because it determines *when* hyper-threads
//! start sharing an L1 cache as the thread count grows (at 5+ threads on the
//! paper's machine), which in turn is what makes Seer's *core locks* start
//! paying off only at 6–8 threads (paper §5.3, Figure 5).

/// Identifier of a simulated thread (== logical CPU; threads are pinned).
pub type ThreadId = usize;

/// Identifier of a physical core.
pub type CoreId = usize;

/// Shape of the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    physical_cores: usize,
    smt_ways: usize,
}

impl Topology {
    /// A machine with `physical_cores` cores, each `smt_ways`-way SMT.
    ///
    /// # Panics
    /// If either argument is zero.
    pub fn new(physical_cores: usize, smt_ways: usize) -> Self {
        assert!(physical_cores > 0, "need at least one physical core");
        assert!(smt_ways > 0, "need at least one hardware thread per core");
        Self {
            physical_cores,
            smt_ways,
        }
    }

    /// The paper's machine: 4 physical cores × 2 hyper-threads.
    pub fn haswell_e3() -> Self {
        Self::new(4, 2)
    }

    /// Number of physical cores.
    pub fn physical_cores(&self) -> usize {
        self.physical_cores
    }

    /// SMT ways per physical core.
    pub fn smt_ways(&self) -> usize {
        self.smt_ways
    }

    /// Total logical CPUs (`physical_cores * smt_ways`).
    pub fn logical_cpus(&self) -> usize {
        self.physical_cores * self.smt_ways
    }

    /// Physical core hosting logical CPU `cpu`.
    ///
    /// Logical CPUs `0..P` map to cores `0..P`; `P..2P` wrap around as SMT
    /// siblings, matching the Linux enumeration on the paper's machine.
    ///
    /// # Panics
    /// If `cpu` is out of range.
    pub fn core_of(&self, cpu: ThreadId) -> CoreId {
        assert!(cpu < self.logical_cpus(), "logical cpu {cpu} out of range");
        cpu % self.physical_cores
    }

    /// Logical CPUs that share the physical core of `cpu`, including `cpu`.
    pub fn siblings(&self, cpu: ThreadId) -> impl Iterator<Item = ThreadId> + '_ {
        let core = self.core_of(cpu);
        (0..self.smt_ways).map(move |way| core + way * self.physical_cores)
    }

    /// True when `a` and `b` are distinct logical CPUs on one physical core.
    pub fn are_smt_siblings(&self, a: ThreadId, b: ThreadId) -> bool {
        a != b && self.core_of(a) == self.core_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haswell_layout() {
        let t = Topology::haswell_e3();
        assert_eq!(t.logical_cpus(), 8);
        assert_eq!(t.physical_cores(), 4);
        // First 4 logical cpus on distinct cores.
        assert_eq!(t.core_of(0), 0);
        assert_eq!(t.core_of(1), 1);
        assert_eq!(t.core_of(2), 2);
        assert_eq!(t.core_of(3), 3);
        // 4..8 wrap around as siblings.
        assert_eq!(t.core_of(4), 0);
        assert_eq!(t.core_of(7), 3);
    }

    #[test]
    fn sibling_enumeration() {
        let t = Topology::haswell_e3();
        let sibs: Vec<_> = t.siblings(2).collect();
        assert_eq!(sibs, vec![2, 6]);
        let sibs: Vec<_> = t.siblings(6).collect();
        assert_eq!(sibs, vec![2, 6]);
    }

    #[test]
    fn sibling_predicate() {
        let t = Topology::haswell_e3();
        assert!(t.are_smt_siblings(0, 4));
        assert!(t.are_smt_siblings(4, 0));
        assert!(!t.are_smt_siblings(0, 1));
        assert!(!t.are_smt_siblings(3, 3));
    }

    #[test]
    fn single_core_no_smt() {
        let t = Topology::new(1, 1);
        assert_eq!(t.logical_cpus(), 1);
        assert_eq!(t.core_of(0), 0);
        assert_eq!(t.siblings(0).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn fewer_threads_than_cores_have_no_siblings() {
        // With 6 threads on a 4x2 machine, threads 4 and 5 pair with 0 and 1.
        let t = Topology::haswell_e3();
        assert!(t.are_smt_siblings(0, 4));
        assert!(t.are_smt_siblings(1, 5));
        assert!(!t.are_smt_siblings(2, 5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn core_of_out_of_range_panics() {
        Topology::haswell_e3().core_of(8);
    }
}
