//! # seer-sim — deterministic discrete-event simulation engine
//!
//! This crate is the lowest layer of the Seer reproduction. It provides the
//! machinery every other crate builds on:
//!
//! * [`Cycles`] — virtual time, measured in CPU cycles of the simulated
//!   machine. All latencies, wait times and throughput numbers in the
//!   reproduction are expressed in this unit, which is what makes the whole
//!   evaluation deterministic and host-independent (the paper measured
//!   wall-clock on a Haswell Xeon; we substitute simulated cycles — see
//!   `DESIGN.md` §2).
//! * [`EventQueue`] — a stable priority queue of timestamped events. Ties
//!   are broken by insertion order so a simulation run is a total order of
//!   events and therefore perfectly reproducible.
//! * [`Topology`] — the simulated machine shape: physical cores × SMT
//!   (hyper-threads). The paper's machine is `Topology::new(4, 2)`.
//! * [`SimLock`] — a simulated lock with a FIFO waiter queue and occupancy
//!   statistics. Locks never block the host; the runtime driver parks
//!   simulated threads on them and wakes them at release events.
//! * [`SimRng`] — a seeded, splittable small RNG plus the samplers the
//!   workload models need (Zipf, geometric, ranges).
//!
//! Nothing in this crate knows about transactions; it is a general-purpose
//! DES substrate with the specific features the HTM model requires.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod event;
pub mod histogram;
pub mod lock;
pub mod rng;
pub mod topology;

pub use event::{EventEntry, EventQueue};
pub use histogram::CycleHistogram;
pub use lock::{LockStats, SimLock};
pub use rng::{SimRng, ZipfTable};
pub use topology::{CoreId, ThreadId, Topology};

/// Virtual time, in cycles of the simulated machine.
///
/// A plain `u64` alias (rather than a newtype) keeps arithmetic in hot
/// simulation loops free of wrapper noise; the type alias still documents
/// intent at API boundaries.
pub type Cycles = u64;

/// Nominal clock used when converting virtual time to the microsecond
/// timestamps external trace formats expect (Chrome's `chrome://tracing`
/// JSON uses µs). One simulated cycle = 1 ns, i.e. a 1 GHz nominal clock:
/// the absolute scale is arbitrary — only ratios of [`Cycles`] carry
/// meaning — but a fixed convention keeps exported traces comparable.
pub const NOMINAL_CYCLES_PER_MICROSECOND: u64 = 1_000;

/// Converts virtual time to trace-export microseconds under the nominal
/// 1 GHz clock. Fractional so sub-microsecond events keep their order.
pub fn cycles_to_trace_micros(cycles: Cycles) -> f64 {
    cycles as f64 / NOMINAL_CYCLES_PER_MICROSECOND as f64
}
